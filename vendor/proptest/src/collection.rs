//! Strategies for collections (`prop::collection::{vec, hash_set}`).

use crate::strategy::Strategy;
use crate::TestRng;
use core::ops::Range;
use std::collections::HashSet;

/// Number of elements a collection strategy may produce. Convertible
/// from an exact `usize` or a half-open `Range<usize>`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end,
        }
    }
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min) as u64) as usize
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.draw(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `HashSet<S::Value>`. The size bound is an upper limit:
/// duplicate draws collapse, so the set may come out smaller (matching
/// real proptest's behavior for narrow element domains).
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + std::hash::Hash,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`hash_set`].
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + std::hash::Hash,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let n = self.size.draw(rng);
        let mut out = HashSet::with_capacity(n);
        // Bounded attempts so a tiny element domain cannot loop forever.
        for _ in 0..n.saturating_mul(4) {
            if out.len() >= n {
                break;
            }
            out.insert(self.element.generate(rng));
        }
        out
    }
}
