//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::TestRng;
use core::ops::Range;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// yields a finished value directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: core::fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: core::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Blanket impl so `&S` works wherever `S` does (the `proptest!` macro
/// generates values through a reference).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T: core::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Boxes a strategy; free-function form used by [`prop_oneof!`](crate::prop_oneof).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    s.boxed()
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + core::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: core::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among several strategies of the same value type.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: core::fmt::Debug> Union<T> {
    /// Builds a union; `arms` must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "Union of zero strategies");
        Self { arms }
    }
}

impl<T: core::fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(draw) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident/$idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
    (A/0, B/1, C/2, D/3, E/4);
}
