//! Minimal offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored stub
//! implements the subset of proptest the workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map`,
//! * [`any`] for the integer/bool primitives, [`Just`], integer ranges
//!   and tuples as strategies,
//! * [`collection::vec`] and [`collection::hash_set`],
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`] and [`prop_assert_ne!`] macros,
//! * [`ProptestConfig::with_cases`].
//!
//! Semantics differ from real proptest in one deliberate way: failing
//! cases are **not shrunk** — the failing input is printed as-is via the
//! panic message. Generation is fully deterministic per test name, so
//! failures reproduce across runs.

pub mod strategy;

pub mod collection;

pub use strategy::{Just, Strategy, Union};

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic test generator (splitmix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from a test name (FNV-1a) so every
    /// property gets an independent but reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h | 1 }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

/// Types with a canonical strategy, backing [`any`].
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy producing arbitrary values of `T` (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary + core::fmt::Debug> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` — uniform over the whole domain.
pub fn any<T: Arbitrary + core::fmt::Debug>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Everything a property test usually imports.
pub mod prelude {
    /// Alias of the crate itself, so `prop::collection::vec(...)` works.
    pub use crate as prop;
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{any, Arbitrary, ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..config.cases {
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )+
                    $body
                }
            }
        )*
    };
}

/// Chooses uniformly among the given strategies (all must share a value
/// type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::strategy::boxed($arm) ),+ ])
    };
}

/// Asserts a property holds (no shrinking: failures panic immediately).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts two expressions differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u8..9, y in any::<bool>()) {
            prop_assert!((3..9).contains(&x));
            let _ = y;
        }

        #[test]
        fn mapping_applies(x in arb_even()) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vectors_respect_size(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn exact_size_vectors(v in prop::collection::vec(any::<bool>(), 7)) {
            prop_assert_eq!(v.len(), 7);
        }

        #[test]
        fn oneof_hits_every_arm(x in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!(x == 1 || x == 2 || x == 5 || x == 6);
        }

        #[test]
        fn hash_sets_are_distinct(s in prop::collection::hash_set(0u64..32, 0..8)) {
            prop_assert!(s.len() < 8);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = prop::collection::vec(any::<u64>(), 1..10);
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..10 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
