//! Minimal offline stand-in for the `criterion` crate.
//!
//! Supports the subset this workspace's benches use: [`Criterion`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros. There is no statistical analysis: each benchmark runs a short
//! warm-up followed by a fixed number of timed iterations and reports the
//! mean wall-clock time per iteration.

use std::time::Instant;

const WARMUP_ITERS: u64 = 100;
const MEASURE_ITERS: u64 = 2_000;

/// Entry point handed to each benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { _criterion: self }
    }
}

/// A named collection of benchmarks (see [`Criterion::benchmark_group`]).
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Times `f` and prints the mean per-iteration wall-clock time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            total_iters: 0,
            elapsed_nanos: 0,
        };
        f(&mut bencher);
        if bencher.total_iters == 0 {
            println!("  {id}: no iterations recorded");
        } else {
            let per_iter = bencher.elapsed_nanos / bencher.total_iters as u128;
            println!("  {id}: {per_iter} ns/iter ({} iters)", bencher.total_iters);
        }
        self
    }

    /// Ends the group (kept for API compatibility; prints nothing).
    pub fn finish(&mut self) {}
}

/// Timer handle passed to the closure given to `bench_function`.
pub struct Bencher {
    total_iters: u64,
    elapsed_nanos: u128,
}

impl Bencher {
    /// Runs `routine` repeatedly, timing the measured iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            std::hint::black_box(routine());
        }
        self.elapsed_nanos += start.elapsed().as_nanos();
        self.total_iters += MEASURE_ITERS;
    }
}

/// Re-export so `criterion::black_box` callers work; benches here use
/// `std::hint::black_box` directly.
pub use std::hint::black_box;

/// Bundles benchmark functions into a runner invoked by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given [`criterion_group!`] bundles.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
