//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so this
//! vendored stub provides exactly the API surface the workspace uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] over integer ranges. The generator is a
//! `splitmix64`-seeded `xorshift64*` — deterministic, fast, and of
//! ample quality for workload shuffling (not for cryptography).

use core::ops::Range;

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_one(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(draw) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling helpers, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value from `range` (half-open, `start..end`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (`xorshift64*`).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 of the seed avoids the all-zero fixed point and
            // decorrelates consecutive seeds.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            Self { state: z | 1 }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64*.
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..1 << 32) == b.gen_range(0u64..1 << 32))
            .count();
        assert!(same < 4, "streams should not track each other");
    }
}
