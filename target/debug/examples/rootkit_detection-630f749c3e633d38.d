/root/repo/target/debug/examples/rootkit_detection-630f749c3e633d38.d: crates/core/../../examples/rootkit_detection.rs

/root/repo/target/debug/examples/rootkit_detection-630f749c3e633d38: crates/core/../../examples/rootkit_detection.rs

crates/core/../../examples/rootkit_detection.rs:
