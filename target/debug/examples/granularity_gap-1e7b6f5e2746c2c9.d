/root/repo/target/debug/examples/granularity_gap-1e7b6f5e2746c2c9.d: crates/core/../../examples/granularity_gap.rs Cargo.toml

/root/repo/target/debug/examples/libgranularity_gap-1e7b6f5e2746c2c9.rmeta: crates/core/../../examples/granularity_gap.rs Cargo.toml

crates/core/../../examples/granularity_gap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
