/root/repo/target/debug/examples/atra_defense-4cdc26a8fdef15f0.d: crates/core/../../examples/atra_defense.rs Cargo.toml

/root/repo/target/debug/examples/libatra_defense-4cdc26a8fdef15f0.rmeta: crates/core/../../examples/atra_defense.rs Cargo.toml

crates/core/../../examples/atra_defense.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
