/root/repo/target/debug/examples/trace_inspection-f9902accea1484bd.d: crates/core/../../examples/trace_inspection.rs

/root/repo/target/debug/examples/trace_inspection-f9902accea1484bd: crates/core/../../examples/trace_inspection.rs

crates/core/../../examples/trace_inspection.rs:
