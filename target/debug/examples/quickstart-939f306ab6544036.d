/root/repo/target/debug/examples/quickstart-939f306ab6544036.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-939f306ab6544036: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
