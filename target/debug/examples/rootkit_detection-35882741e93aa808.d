/root/repo/target/debug/examples/rootkit_detection-35882741e93aa808.d: crates/core/../../examples/rootkit_detection.rs

/root/repo/target/debug/examples/rootkit_detection-35882741e93aa808: crates/core/../../examples/rootkit_detection.rs

crates/core/../../examples/rootkit_detection.rs:
