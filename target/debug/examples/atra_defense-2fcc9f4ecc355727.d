/root/repo/target/debug/examples/atra_defense-2fcc9f4ecc355727.d: crates/core/../../examples/atra_defense.rs

/root/repo/target/debug/examples/atra_defense-2fcc9f4ecc355727: crates/core/../../examples/atra_defense.rs

crates/core/../../examples/atra_defense.rs:
