/root/repo/target/debug/examples/trace_inspection-f51be543b13af1dd.d: crates/core/../../examples/trace_inspection.rs Cargo.toml

/root/repo/target/debug/examples/libtrace_inspection-f51be543b13af1dd.rmeta: crates/core/../../examples/trace_inspection.rs Cargo.toml

crates/core/../../examples/trace_inspection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
