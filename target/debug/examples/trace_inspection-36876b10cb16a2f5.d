/root/repo/target/debug/examples/trace_inspection-36876b10cb16a2f5.d: crates/core/../../examples/trace_inspection.rs

/root/repo/target/debug/examples/trace_inspection-36876b10cb16a2f5: crates/core/../../examples/trace_inspection.rs

crates/core/../../examples/trace_inspection.rs:
