/root/repo/target/debug/examples/atra_defense-6dcdfa248f52a5b9.d: crates/core/../../examples/atra_defense.rs

/root/repo/target/debug/examples/atra_defense-6dcdfa248f52a5b9: crates/core/../../examples/atra_defense.rs

crates/core/../../examples/atra_defense.rs:
