/root/repo/target/debug/examples/rootkit_detection-1c80305cabc98271.d: crates/core/../../examples/rootkit_detection.rs

/root/repo/target/debug/examples/rootkit_detection-1c80305cabc98271: crates/core/../../examples/rootkit_detection.rs

crates/core/../../examples/rootkit_detection.rs:
