/root/repo/target/debug/examples/quickstart-9d2a0c6e792d2eb5.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9d2a0c6e792d2eb5: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
