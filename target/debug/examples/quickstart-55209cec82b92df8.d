/root/repo/target/debug/examples/quickstart-55209cec82b92df8.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-55209cec82b92df8: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
