/root/repo/target/debug/examples/granularity_gap-e12048b10aed5cd6.d: crates/core/../../examples/granularity_gap.rs

/root/repo/target/debug/examples/granularity_gap-e12048b10aed5cd6: crates/core/../../examples/granularity_gap.rs

crates/core/../../examples/granularity_gap.rs:
