/root/repo/target/debug/examples/granularity_gap-817dc0c56cddc0e9.d: crates/core/../../examples/granularity_gap.rs

/root/repo/target/debug/examples/granularity_gap-817dc0c56cddc0e9: crates/core/../../examples/granularity_gap.rs

crates/core/../../examples/granularity_gap.rs:
