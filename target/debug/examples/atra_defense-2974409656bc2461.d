/root/repo/target/debug/examples/atra_defense-2974409656bc2461.d: crates/core/../../examples/atra_defense.rs

/root/repo/target/debug/examples/atra_defense-2974409656bc2461: crates/core/../../examples/atra_defense.rs

crates/core/../../examples/atra_defense.rs:
