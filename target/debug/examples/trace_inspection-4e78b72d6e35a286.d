/root/repo/target/debug/examples/trace_inspection-4e78b72d6e35a286.d: crates/core/../../examples/trace_inspection.rs

/root/repo/target/debug/examples/trace_inspection-4e78b72d6e35a286: crates/core/../../examples/trace_inspection.rs

crates/core/../../examples/trace_inspection.rs:
