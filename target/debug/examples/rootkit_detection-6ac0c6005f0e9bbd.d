/root/repo/target/debug/examples/rootkit_detection-6ac0c6005f0e9bbd.d: crates/core/../../examples/rootkit_detection.rs Cargo.toml

/root/repo/target/debug/examples/librootkit_detection-6ac0c6005f0e9bbd.rmeta: crates/core/../../examples/rootkit_detection.rs Cargo.toml

crates/core/../../examples/rootkit_detection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
