/root/repo/target/debug/examples/granularity_gap-faa1fc5dba22b12c.d: crates/core/../../examples/granularity_gap.rs

/root/repo/target/debug/examples/granularity_gap-faa1fc5dba22b12c: crates/core/../../examples/granularity_gap.rs

crates/core/../../examples/granularity_gap.rs:
