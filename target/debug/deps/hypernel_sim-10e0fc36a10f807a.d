/root/repo/target/debug/deps/hypernel_sim-10e0fc36a10f807a.d: crates/core/src/bin/hypernel-sim.rs Cargo.toml

/root/repo/target/debug/deps/libhypernel_sim-10e0fc36a10f807a.rmeta: crates/core/src/bin/hypernel-sim.rs Cargo.toml

crates/core/src/bin/hypernel-sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
