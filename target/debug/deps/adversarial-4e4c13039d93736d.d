/root/repo/target/debug/deps/adversarial-4e4c13039d93736d.d: crates/hypersec/tests/adversarial.rs

/root/repo/target/debug/deps/adversarial-4e4c13039d93736d: crates/hypersec/tests/adversarial.rs

crates/hypersec/tests/adversarial.rs:
