/root/repo/target/debug/deps/atra-df679c84ab7fc7cb.d: crates/core/../../tests/atra.rs Cargo.toml

/root/repo/target/debug/deps/libatra-df679c84ab7fc7cb.rmeta: crates/core/../../tests/atra.rs Cargo.toml

crates/core/../../tests/atra.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
