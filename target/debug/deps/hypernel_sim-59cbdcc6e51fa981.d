/root/repo/target/debug/deps/hypernel_sim-59cbdcc6e51fa981.d: crates/core/src/bin/hypernel-sim.rs Cargo.toml

/root/repo/target/debug/deps/libhypernel_sim-59cbdcc6e51fa981.rmeta: crates/core/src/bin/hypernel-sim.rs Cargo.toml

crates/core/src/bin/hypernel-sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
