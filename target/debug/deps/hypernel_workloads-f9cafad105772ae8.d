/root/repo/target/debug/deps/hypernel_workloads-f9cafad105772ae8.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs crates/workloads/src/replay.rs

/root/repo/target/debug/deps/libhypernel_workloads-f9cafad105772ae8.rlib: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs crates/workloads/src/replay.rs

/root/repo/target/debug/deps/libhypernel_workloads-f9cafad105772ae8.rmeta: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs crates/workloads/src/replay.rs

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/lmbench.rs:
crates/workloads/src/measure.rs:
crates/workloads/src/replay.rs:
