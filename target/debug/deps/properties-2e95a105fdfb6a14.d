/root/repo/target/debug/deps/properties-2e95a105fdfb6a14.d: crates/mbm/tests/properties.rs

/root/repo/target/debug/deps/properties-2e95a105fdfb6a14: crates/mbm/tests/properties.rs

crates/mbm/tests/properties.rs:
