/root/repo/target/debug/deps/properties-e77254edf1794587.d: crates/machine/tests/properties.rs

/root/repo/target/debug/deps/properties-e77254edf1794587: crates/machine/tests/properties.rs

crates/machine/tests/properties.rs:
