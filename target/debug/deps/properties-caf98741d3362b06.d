/root/repo/target/debug/deps/properties-caf98741d3362b06.d: crates/machine/tests/properties.rs

/root/repo/target/debug/deps/properties-caf98741d3362b06: crates/machine/tests/properties.rs

crates/machine/tests/properties.rs:
