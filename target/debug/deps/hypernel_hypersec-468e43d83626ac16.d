/root/repo/target/debug/deps/hypernel_hypersec-468e43d83626ac16.d: crates/hypersec/src/lib.rs crates/hypersec/src/hypersec.rs crates/hypersec/src/secapp.rs

/root/repo/target/debug/deps/libhypernel_hypersec-468e43d83626ac16.rlib: crates/hypersec/src/lib.rs crates/hypersec/src/hypersec.rs crates/hypersec/src/secapp.rs

/root/repo/target/debug/deps/libhypernel_hypersec-468e43d83626ac16.rmeta: crates/hypersec/src/lib.rs crates/hypersec/src/hypersec.rs crates/hypersec/src/secapp.rs

crates/hypersec/src/lib.rs:
crates/hypersec/src/hypersec.rs:
crates/hypersec/src/secapp.rs:
