/root/repo/target/debug/deps/hypernel_hypervisor-bd33c94fcd25ff3c.d: crates/hypervisor/src/lib.rs

/root/repo/target/debug/deps/libhypernel_hypervisor-bd33c94fcd25ff3c.rlib: crates/hypervisor/src/lib.rs

/root/repo/target/debug/deps/libhypernel_hypervisor-bd33c94fcd25ff3c.rmeta: crates/hypervisor/src/lib.rs

crates/hypervisor/src/lib.rs:
