/root/repo/target/debug/deps/adversarial-283ba2f4d80f6625.d: crates/hypersec/tests/adversarial.rs Cargo.toml

/root/repo/target/debug/deps/libadversarial-283ba2f4d80f6625.rmeta: crates/hypersec/tests/adversarial.rs Cargo.toml

crates/hypersec/tests/adversarial.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
