/root/repo/target/debug/deps/properties-aa25bab37591b22c.d: crates/machine/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-aa25bab37591b22c.rmeta: crates/machine/tests/properties.rs Cargo.toml

crates/machine/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
