/root/repo/target/debug/deps/hypersec_behavior-aaa345610dd88e2c.d: crates/hypersec/tests/hypersec_behavior.rs

/root/repo/target/debug/deps/hypersec_behavior-aaa345610dd88e2c: crates/hypersec/tests/hypersec_behavior.rs

crates/hypersec/tests/hypersec_behavior.rs:
