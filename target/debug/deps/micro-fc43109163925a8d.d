/root/repo/target/debug/deps/micro-fc43109163925a8d.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-fc43109163925a8d.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
