/root/repo/target/debug/deps/ablation_section_mapping-462db37a39afb810.d: crates/bench/benches/ablation_section_mapping.rs Cargo.toml

/root/repo/target/debug/deps/libablation_section_mapping-462db37a39afb810.rmeta: crates/bench/benches/ablation_section_mapping.rs Cargo.toml

crates/bench/benches/ablation_section_mapping.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
