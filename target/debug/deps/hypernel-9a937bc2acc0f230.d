/root/repo/target/debug/deps/hypernel-9a937bc2acc0f230.d: crates/core/src/lib.rs crates/core/src/report.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libhypernel-9a937bc2acc0f230.rlib: crates/core/src/lib.rs crates/core/src/report.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libhypernel-9a937bc2acc0f230.rmeta: crates/core/src/lib.rs crates/core/src/report.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/report.rs:
crates/core/src/system.rs:
