/root/repo/target/debug/deps/hypernel_workloads-63fba82673ab1125.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs crates/workloads/src/replay.rs Cargo.toml

/root/repo/target/debug/deps/libhypernel_workloads-63fba82673ab1125.rmeta: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs crates/workloads/src/replay.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/lmbench.rs:
crates/workloads/src/measure.rs:
crates/workloads/src/replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
