/root/repo/target/debug/deps/hypernel_hypersec-4eb3f09aa1a0d633.d: crates/hypersec/src/lib.rs crates/hypersec/src/hypersec.rs crates/hypersec/src/secapp.rs

/root/repo/target/debug/deps/hypernel_hypersec-4eb3f09aa1a0d633: crates/hypersec/src/lib.rs crates/hypersec/src/hypersec.rs crates/hypersec/src/secapp.rs

crates/hypersec/src/lib.rs:
crates/hypersec/src/hypersec.rs:
crates/hypersec/src/secapp.rs:
