/root/repo/target/debug/deps/hypernel_sim-97b043c97cbd3817.d: crates/core/src/bin/hypernel-sim.rs

/root/repo/target/debug/deps/hypernel_sim-97b043c97cbd3817: crates/core/src/bin/hypernel-sim.rs

crates/core/src/bin/hypernel-sim.rs:
