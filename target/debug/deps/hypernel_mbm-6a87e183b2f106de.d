/root/repo/target/debug/deps/hypernel_mbm-6a87e183b2f106de.d: crates/mbm/src/lib.rs crates/mbm/src/bitmap.rs crates/mbm/src/cache.rs crates/mbm/src/fifo.rs crates/mbm/src/monitor.rs crates/mbm/src/ring.rs Cargo.toml

/root/repo/target/debug/deps/libhypernel_mbm-6a87e183b2f106de.rmeta: crates/mbm/src/lib.rs crates/mbm/src/bitmap.rs crates/mbm/src/cache.rs crates/mbm/src/fifo.rs crates/mbm/src/monitor.rs crates/mbm/src/ring.rs Cargo.toml

crates/mbm/src/lib.rs:
crates/mbm/src/bitmap.rs:
crates/mbm/src/cache.rs:
crates/mbm/src/fifo.rs:
crates/mbm/src/monitor.rs:
crates/mbm/src/ring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
