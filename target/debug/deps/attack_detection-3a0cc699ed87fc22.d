/root/repo/target/debug/deps/attack_detection-3a0cc699ed87fc22.d: crates/core/../../tests/attack_detection.rs

/root/repo/target/debug/deps/attack_detection-3a0cc699ed87fc22: crates/core/../../tests/attack_detection.rs

crates/core/../../tests/attack_detection.rs:
