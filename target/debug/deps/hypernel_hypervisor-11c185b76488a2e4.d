/root/repo/target/debug/deps/hypernel_hypervisor-11c185b76488a2e4.d: crates/hypervisor/src/lib.rs

/root/repo/target/debug/deps/hypernel_hypervisor-11c185b76488a2e4: crates/hypervisor/src/lib.rs

crates/hypervisor/src/lib.rs:
