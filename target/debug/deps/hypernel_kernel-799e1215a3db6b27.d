/root/repo/target/debug/deps/hypernel_kernel-799e1215a3db6b27.d: crates/kernel/src/lib.rs crates/kernel/src/abi.rs crates/kernel/src/attack.rs crates/kernel/src/kernel.rs crates/kernel/src/kobj.rs crates/kernel/src/layout.rs crates/kernel/src/pgalloc.rs crates/kernel/src/pgtable.rs crates/kernel/src/sched.rs crates/kernel/src/slab.rs crates/kernel/src/task.rs Cargo.toml

/root/repo/target/debug/deps/libhypernel_kernel-799e1215a3db6b27.rmeta: crates/kernel/src/lib.rs crates/kernel/src/abi.rs crates/kernel/src/attack.rs crates/kernel/src/kernel.rs crates/kernel/src/kobj.rs crates/kernel/src/layout.rs crates/kernel/src/pgalloc.rs crates/kernel/src/pgtable.rs crates/kernel/src/sched.rs crates/kernel/src/slab.rs crates/kernel/src/task.rs Cargo.toml

crates/kernel/src/lib.rs:
crates/kernel/src/abi.rs:
crates/kernel/src/attack.rs:
crates/kernel/src/kernel.rs:
crates/kernel/src/kobj.rs:
crates/kernel/src/layout.rs:
crates/kernel/src/pgalloc.rs:
crates/kernel/src/pgtable.rs:
crates/kernel/src/sched.rs:
crates/kernel/src/slab.rs:
crates/kernel/src/task.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
