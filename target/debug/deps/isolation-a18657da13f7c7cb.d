/root/repo/target/debug/deps/isolation-a18657da13f7c7cb.d: crates/core/../../tests/isolation.rs

/root/repo/target/debug/deps/isolation-a18657da13f7c7cb: crates/core/../../tests/isolation.rs

crates/core/../../tests/isolation.rs:
