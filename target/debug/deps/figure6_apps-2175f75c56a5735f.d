/root/repo/target/debug/deps/figure6_apps-2175f75c56a5735f.d: crates/bench/benches/figure6_apps.rs Cargo.toml

/root/repo/target/debug/deps/libfigure6_apps-2175f75c56a5735f.rmeta: crates/bench/benches/figure6_apps.rs Cargo.toml

crates/bench/benches/figure6_apps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
