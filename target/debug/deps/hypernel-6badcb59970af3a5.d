/root/repo/target/debug/deps/hypernel-6badcb59970af3a5.d: crates/core/src/lib.rs crates/core/src/report.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libhypernel-6badcb59970af3a5.rlib: crates/core/src/lib.rs crates/core/src/report.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libhypernel-6badcb59970af3a5.rmeta: crates/core/src/lib.rs crates/core/src/report.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/report.rs:
crates/core/src/system.rs:
