/root/repo/target/debug/deps/hypernel_mbm-0b25460142465b42.d: crates/mbm/src/lib.rs crates/mbm/src/bitmap.rs crates/mbm/src/cache.rs crates/mbm/src/fifo.rs crates/mbm/src/monitor.rs crates/mbm/src/ring.rs

/root/repo/target/debug/deps/hypernel_mbm-0b25460142465b42: crates/mbm/src/lib.rs crates/mbm/src/bitmap.rs crates/mbm/src/cache.rs crates/mbm/src/fifo.rs crates/mbm/src/monitor.rs crates/mbm/src/ring.rs

crates/mbm/src/lib.rs:
crates/mbm/src/bitmap.rs:
crates/mbm/src/cache.rs:
crates/mbm/src/fifo.rs:
crates/mbm/src/monitor.rs:
crates/mbm/src/ring.rs:
