/root/repo/target/debug/deps/isolation-b35f683919a4f4fb.d: crates/core/../../tests/isolation.rs

/root/repo/target/debug/deps/isolation-b35f683919a4f4fb: crates/core/../../tests/isolation.rs

crates/core/../../tests/isolation.rs:
