/root/repo/target/debug/deps/hypernel_hypervisor-ccc92ff0fd70b060.d: crates/hypervisor/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhypernel_hypervisor-ccc92ff0fd70b060.rmeta: crates/hypervisor/src/lib.rs Cargo.toml

crates/hypervisor/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
