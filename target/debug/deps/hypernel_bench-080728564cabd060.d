/root/repo/target/debug/deps/hypernel_bench-080728564cabd060.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhypernel_bench-080728564cabd060.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhypernel_bench-080728564cabd060.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
