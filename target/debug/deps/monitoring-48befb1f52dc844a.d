/root/repo/target/debug/deps/monitoring-48befb1f52dc844a.d: crates/core/../../tests/monitoring.rs

/root/repo/target/debug/deps/monitoring-48befb1f52dc844a: crates/core/../../tests/monitoring.rs

crates/core/../../tests/monitoring.rs:
