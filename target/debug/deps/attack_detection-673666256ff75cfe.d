/root/repo/target/debug/deps/attack_detection-673666256ff75cfe.d: crates/core/../../tests/attack_detection.rs

/root/repo/target/debug/deps/attack_detection-673666256ff75cfe: crates/core/../../tests/attack_detection.rs

crates/core/../../tests/attack_detection.rs:
