/root/repo/target/debug/deps/hypernel-54895276c32164e0.d: crates/core/src/lib.rs crates/core/src/report.rs crates/core/src/system.rs

/root/repo/target/debug/deps/hypernel-54895276c32164e0: crates/core/src/lib.rs crates/core/src/report.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/report.rs:
crates/core/src/system.rs:
