/root/repo/target/debug/deps/atra-71daad17f693bdb8.d: crates/core/../../tests/atra.rs

/root/repo/target/debug/deps/atra-71daad17f693bdb8: crates/core/../../tests/atra.rs

crates/core/../../tests/atra.rs:
