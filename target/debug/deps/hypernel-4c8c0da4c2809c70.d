/root/repo/target/debug/deps/hypernel-4c8c0da4c2809c70.d: crates/core/src/lib.rs crates/core/src/report.rs crates/core/src/system.rs

/root/repo/target/debug/deps/hypernel-4c8c0da4c2809c70: crates/core/src/lib.rs crates/core/src/report.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/report.rs:
crates/core/src/system.rs:
