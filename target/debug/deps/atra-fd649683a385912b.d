/root/repo/target/debug/deps/atra-fd649683a385912b.d: crates/core/../../tests/atra.rs

/root/repo/target/debug/deps/atra-fd649683a385912b: crates/core/../../tests/atra.rs

crates/core/../../tests/atra.rs:
