/root/repo/target/debug/deps/hypernel_sim-9959ed1023ba3f02.d: crates/core/src/bin/hypernel-sim.rs

/root/repo/target/debug/deps/hypernel_sim-9959ed1023ba3f02: crates/core/src/bin/hypernel-sim.rs

crates/core/src/bin/hypernel-sim.rs:
