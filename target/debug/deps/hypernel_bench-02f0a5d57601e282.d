/root/repo/target/debug/deps/hypernel_bench-02f0a5d57601e282.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhypernel_bench-02f0a5d57601e282.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
