/root/repo/target/debug/deps/monitoring-92b5a5205adbd55e.d: crates/core/../../tests/monitoring.rs

/root/repo/target/debug/deps/monitoring-92b5a5205adbd55e: crates/core/../../tests/monitoring.rs

crates/core/../../tests/monitoring.rs:
