/root/repo/target/debug/deps/hypersec_behavior-3b07d171fa1c1dc8.d: crates/hypersec/tests/hypersec_behavior.rs

/root/repo/target/debug/deps/hypersec_behavior-3b07d171fa1c1dc8: crates/hypersec/tests/hypersec_behavior.rs

crates/hypersec/tests/hypersec_behavior.rs:
