/root/repo/target/debug/deps/isolation-a6a825f18a0cd502.d: crates/core/../../tests/isolation.rs

/root/repo/target/debug/deps/isolation-a6a825f18a0cd502: crates/core/../../tests/isolation.rs

crates/core/../../tests/isolation.rs:
