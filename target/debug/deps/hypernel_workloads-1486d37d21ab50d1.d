/root/repo/target/debug/deps/hypernel_workloads-1486d37d21ab50d1.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs crates/workloads/src/replay.rs

/root/repo/target/debug/deps/hypernel_workloads-1486d37d21ab50d1: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs crates/workloads/src/replay.rs

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/lmbench.rs:
crates/workloads/src/measure.rs:
crates/workloads/src/replay.rs:
