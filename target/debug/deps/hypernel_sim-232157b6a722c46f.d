/root/repo/target/debug/deps/hypernel_sim-232157b6a722c46f.d: crates/core/src/bin/hypernel-sim.rs

/root/repo/target/debug/deps/hypernel_sim-232157b6a722c46f: crates/core/src/bin/hypernel-sim.rs

crates/core/src/bin/hypernel-sim.rs:
