/root/repo/target/debug/deps/hypernel-224e11fc65ea895c.d: crates/core/src/lib.rs crates/core/src/report.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libhypernel-224e11fc65ea895c.rlib: crates/core/src/lib.rs crates/core/src/report.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libhypernel-224e11fc65ea895c.rmeta: crates/core/src/lib.rs crates/core/src/report.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/report.rs:
crates/core/src/system.rs:
