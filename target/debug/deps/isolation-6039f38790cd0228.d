/root/repo/target/debug/deps/isolation-6039f38790cd0228.d: crates/core/../../tests/isolation.rs Cargo.toml

/root/repo/target/debug/deps/libisolation-6039f38790cd0228.rmeta: crates/core/../../tests/isolation.rs Cargo.toml

crates/core/../../tests/isolation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
