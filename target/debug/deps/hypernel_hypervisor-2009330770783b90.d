/root/repo/target/debug/deps/hypernel_hypervisor-2009330770783b90.d: crates/hypervisor/src/lib.rs

/root/repo/target/debug/deps/hypernel_hypervisor-2009330770783b90: crates/hypervisor/src/lib.rs

crates/hypervisor/src/lib.rs:
