/root/repo/target/debug/deps/hypernel_hypersec-66accdef7e77ea6b.d: crates/hypersec/src/lib.rs crates/hypersec/src/hypersec.rs crates/hypersec/src/secapp.rs

/root/repo/target/debug/deps/libhypernel_hypersec-66accdef7e77ea6b.rlib: crates/hypersec/src/lib.rs crates/hypersec/src/hypersec.rs crates/hypersec/src/secapp.rs

/root/repo/target/debug/deps/libhypernel_hypersec-66accdef7e77ea6b.rmeta: crates/hypersec/src/lib.rs crates/hypersec/src/hypersec.rs crates/hypersec/src/secapp.rs

crates/hypersec/src/lib.rs:
crates/hypersec/src/hypersec.rs:
crates/hypersec/src/secapp.rs:
