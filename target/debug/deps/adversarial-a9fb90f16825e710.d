/root/repo/target/debug/deps/adversarial-a9fb90f16825e710.d: crates/hypersec/tests/adversarial.rs

/root/repo/target/debug/deps/adversarial-a9fb90f16825e710: crates/hypersec/tests/adversarial.rs

crates/hypersec/tests/adversarial.rs:
