/root/repo/target/debug/deps/hypernel_hypersec-53e5d341e07b8888.d: crates/hypersec/src/lib.rs crates/hypersec/src/hypersec.rs crates/hypersec/src/secapp.rs Cargo.toml

/root/repo/target/debug/deps/libhypernel_hypersec-53e5d341e07b8888.rmeta: crates/hypersec/src/lib.rs crates/hypersec/src/hypersec.rs crates/hypersec/src/secapp.rs Cargo.toml

crates/hypersec/src/lib.rs:
crates/hypersec/src/hypersec.rs:
crates/hypersec/src/secapp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
