/root/repo/target/debug/deps/properties-999deaa39d4b5aa4.d: crates/mbm/tests/properties.rs

/root/repo/target/debug/deps/properties-999deaa39d4b5aa4: crates/mbm/tests/properties.rs

crates/mbm/tests/properties.rs:
