/root/repo/target/debug/deps/adversarial-adfc10fe68d32a9a.d: crates/hypersec/tests/adversarial.rs

/root/repo/target/debug/deps/adversarial-adfc10fe68d32a9a: crates/hypersec/tests/adversarial.rs

crates/hypersec/tests/adversarial.rs:
