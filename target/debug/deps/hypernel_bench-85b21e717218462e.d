/root/repo/target/debug/deps/hypernel_bench-85b21e717218462e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhypernel_bench-85b21e717218462e.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhypernel_bench-85b21e717218462e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
