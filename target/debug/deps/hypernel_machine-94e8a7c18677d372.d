/root/repo/target/debug/deps/hypernel_machine-94e8a7c18677d372.d: crates/machine/src/lib.rs crates/machine/src/addr.rs crates/machine/src/bus.rs crates/machine/src/cache.rs crates/machine/src/cost.rs crates/machine/src/irq.rs crates/machine/src/machine.rs crates/machine/src/mem.rs crates/machine/src/pagetable.rs crates/machine/src/regs.rs crates/machine/src/tlb.rs crates/machine/src/trace.rs

/root/repo/target/debug/deps/hypernel_machine-94e8a7c18677d372: crates/machine/src/lib.rs crates/machine/src/addr.rs crates/machine/src/bus.rs crates/machine/src/cache.rs crates/machine/src/cost.rs crates/machine/src/irq.rs crates/machine/src/machine.rs crates/machine/src/mem.rs crates/machine/src/pagetable.rs crates/machine/src/regs.rs crates/machine/src/tlb.rs crates/machine/src/trace.rs

crates/machine/src/lib.rs:
crates/machine/src/addr.rs:
crates/machine/src/bus.rs:
crates/machine/src/cache.rs:
crates/machine/src/cost.rs:
crates/machine/src/irq.rs:
crates/machine/src/machine.rs:
crates/machine/src/mem.rs:
crates/machine/src/pagetable.rs:
crates/machine/src/regs.rs:
crates/machine/src/tlb.rs:
crates/machine/src/trace.rs:
