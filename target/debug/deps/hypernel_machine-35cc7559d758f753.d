/root/repo/target/debug/deps/hypernel_machine-35cc7559d758f753.d: crates/machine/src/lib.rs crates/machine/src/addr.rs crates/machine/src/bus.rs crates/machine/src/cache.rs crates/machine/src/cost.rs crates/machine/src/irq.rs crates/machine/src/machine.rs crates/machine/src/mem.rs crates/machine/src/pagetable.rs crates/machine/src/regs.rs crates/machine/src/tlb.rs crates/machine/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libhypernel_machine-35cc7559d758f753.rmeta: crates/machine/src/lib.rs crates/machine/src/addr.rs crates/machine/src/bus.rs crates/machine/src/cache.rs crates/machine/src/cost.rs crates/machine/src/irq.rs crates/machine/src/machine.rs crates/machine/src/mem.rs crates/machine/src/pagetable.rs crates/machine/src/regs.rs crates/machine/src/tlb.rs crates/machine/src/trace.rs Cargo.toml

crates/machine/src/lib.rs:
crates/machine/src/addr.rs:
crates/machine/src/bus.rs:
crates/machine/src/cache.rs:
crates/machine/src/cost.rs:
crates/machine/src/irq.rs:
crates/machine/src/machine.rs:
crates/machine/src/mem.rs:
crates/machine/src/pagetable.rs:
crates/machine/src/regs.rs:
crates/machine/src/tlb.rs:
crates/machine/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
