/root/repo/target/debug/deps/properties_system-273f811bcb40ab46.d: crates/core/../../tests/properties_system.rs Cargo.toml

/root/repo/target/debug/deps/libproperties_system-273f811bcb40ab46.rmeta: crates/core/../../tests/properties_system.rs Cargo.toml

crates/core/../../tests/properties_system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
