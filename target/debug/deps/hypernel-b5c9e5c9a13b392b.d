/root/repo/target/debug/deps/hypernel-b5c9e5c9a13b392b.d: crates/core/src/lib.rs crates/core/src/report.rs crates/core/src/system.rs

/root/repo/target/debug/deps/hypernel-b5c9e5c9a13b392b: crates/core/src/lib.rs crates/core/src/report.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/report.rs:
crates/core/src/system.rs:
