/root/repo/target/debug/deps/hypernel-98fae02a78eede4f.d: crates/core/src/lib.rs crates/core/src/report.rs crates/core/src/system.rs Cargo.toml

/root/repo/target/debug/deps/libhypernel-98fae02a78eede4f.rmeta: crates/core/src/lib.rs crates/core/src/report.rs crates/core/src/system.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/report.rs:
crates/core/src/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
