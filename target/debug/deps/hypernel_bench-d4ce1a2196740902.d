/root/repo/target/debug/deps/hypernel_bench-d4ce1a2196740902.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/hypernel_bench-d4ce1a2196740902: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
