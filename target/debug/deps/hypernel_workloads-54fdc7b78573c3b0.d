/root/repo/target/debug/deps/hypernel_workloads-54fdc7b78573c3b0.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs crates/workloads/src/replay.rs

/root/repo/target/debug/deps/libhypernel_workloads-54fdc7b78573c3b0.rlib: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs crates/workloads/src/replay.rs

/root/repo/target/debug/deps/libhypernel_workloads-54fdc7b78573c3b0.rmeta: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs crates/workloads/src/replay.rs

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/lmbench.rs:
crates/workloads/src/measure.rs:
crates/workloads/src/replay.rs:
