/root/repo/target/debug/deps/hypernel_workloads-7cc5874a50759ffd.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs crates/workloads/src/replay.rs

/root/repo/target/debug/deps/hypernel_workloads-7cc5874a50759ffd: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs crates/workloads/src/replay.rs

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/lmbench.rs:
crates/workloads/src/measure.rs:
crates/workloads/src/replay.rs:
