/root/repo/target/debug/deps/hypernel_mbm-c5fd7257405372aa.d: crates/mbm/src/lib.rs crates/mbm/src/bitmap.rs crates/mbm/src/cache.rs crates/mbm/src/fifo.rs crates/mbm/src/monitor.rs crates/mbm/src/ring.rs

/root/repo/target/debug/deps/libhypernel_mbm-c5fd7257405372aa.rlib: crates/mbm/src/lib.rs crates/mbm/src/bitmap.rs crates/mbm/src/cache.rs crates/mbm/src/fifo.rs crates/mbm/src/monitor.rs crates/mbm/src/ring.rs

/root/repo/target/debug/deps/libhypernel_mbm-c5fd7257405372aa.rmeta: crates/mbm/src/lib.rs crates/mbm/src/bitmap.rs crates/mbm/src/cache.rs crates/mbm/src/fifo.rs crates/mbm/src/monitor.rs crates/mbm/src/ring.rs

crates/mbm/src/lib.rs:
crates/mbm/src/bitmap.rs:
crates/mbm/src/cache.rs:
crates/mbm/src/fifo.rs:
crates/mbm/src/monitor.rs:
crates/mbm/src/ring.rs:
