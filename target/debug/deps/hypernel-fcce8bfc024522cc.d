/root/repo/target/debug/deps/hypernel-fcce8bfc024522cc.d: crates/core/src/lib.rs crates/core/src/report.rs crates/core/src/system.rs Cargo.toml

/root/repo/target/debug/deps/libhypernel-fcce8bfc024522cc.rmeta: crates/core/src/lib.rs crates/core/src/report.rs crates/core/src/system.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/report.rs:
crates/core/src/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
