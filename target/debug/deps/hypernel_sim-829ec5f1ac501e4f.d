/root/repo/target/debug/deps/hypernel_sim-829ec5f1ac501e4f.d: crates/core/src/bin/hypernel-sim.rs

/root/repo/target/debug/deps/hypernel_sim-829ec5f1ac501e4f: crates/core/src/bin/hypernel-sim.rs

crates/core/src/bin/hypernel-sim.rs:
