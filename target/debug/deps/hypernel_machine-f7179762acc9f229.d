/root/repo/target/debug/deps/hypernel_machine-f7179762acc9f229.d: crates/machine/src/lib.rs crates/machine/src/addr.rs crates/machine/src/bus.rs crates/machine/src/cache.rs crates/machine/src/cost.rs crates/machine/src/irq.rs crates/machine/src/machine.rs crates/machine/src/mem.rs crates/machine/src/pagetable.rs crates/machine/src/regs.rs crates/machine/src/tlb.rs crates/machine/src/trace.rs

/root/repo/target/debug/deps/libhypernel_machine-f7179762acc9f229.rlib: crates/machine/src/lib.rs crates/machine/src/addr.rs crates/machine/src/bus.rs crates/machine/src/cache.rs crates/machine/src/cost.rs crates/machine/src/irq.rs crates/machine/src/machine.rs crates/machine/src/mem.rs crates/machine/src/pagetable.rs crates/machine/src/regs.rs crates/machine/src/tlb.rs crates/machine/src/trace.rs

/root/repo/target/debug/deps/libhypernel_machine-f7179762acc9f229.rmeta: crates/machine/src/lib.rs crates/machine/src/addr.rs crates/machine/src/bus.rs crates/machine/src/cache.rs crates/machine/src/cost.rs crates/machine/src/irq.rs crates/machine/src/machine.rs crates/machine/src/mem.rs crates/machine/src/pagetable.rs crates/machine/src/regs.rs crates/machine/src/tlb.rs crates/machine/src/trace.rs

crates/machine/src/lib.rs:
crates/machine/src/addr.rs:
crates/machine/src/bus.rs:
crates/machine/src/cache.rs:
crates/machine/src/cost.rs:
crates/machine/src/irq.rs:
crates/machine/src/machine.rs:
crates/machine/src/mem.rs:
crates/machine/src/pagetable.rs:
crates/machine/src/regs.rs:
crates/machine/src/tlb.rs:
crates/machine/src/trace.rs:
