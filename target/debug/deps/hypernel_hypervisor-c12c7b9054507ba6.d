/root/repo/target/debug/deps/hypernel_hypervisor-c12c7b9054507ba6.d: crates/hypervisor/src/lib.rs

/root/repo/target/debug/deps/libhypernel_hypervisor-c12c7b9054507ba6.rlib: crates/hypervisor/src/lib.rs

/root/repo/target/debug/deps/libhypernel_hypervisor-c12c7b9054507ba6.rmeta: crates/hypervisor/src/lib.rs

crates/hypervisor/src/lib.rs:
