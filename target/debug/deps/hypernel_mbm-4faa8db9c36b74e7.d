/root/repo/target/debug/deps/hypernel_mbm-4faa8db9c36b74e7.d: crates/mbm/src/lib.rs crates/mbm/src/bitmap.rs crates/mbm/src/cache.rs crates/mbm/src/fifo.rs crates/mbm/src/monitor.rs crates/mbm/src/ring.rs

/root/repo/target/debug/deps/hypernel_mbm-4faa8db9c36b74e7: crates/mbm/src/lib.rs crates/mbm/src/bitmap.rs crates/mbm/src/cache.rs crates/mbm/src/fifo.rs crates/mbm/src/monitor.rs crates/mbm/src/ring.rs

crates/mbm/src/lib.rs:
crates/mbm/src/bitmap.rs:
crates/mbm/src/cache.rs:
crates/mbm/src/fifo.rs:
crates/mbm/src/monitor.rs:
crates/mbm/src/ring.rs:
