/root/repo/target/debug/deps/properties-ecc4917586ce5536.d: crates/kernel/tests/properties.rs

/root/repo/target/debug/deps/properties-ecc4917586ce5536: crates/kernel/tests/properties.rs

crates/kernel/tests/properties.rs:
