/root/repo/target/debug/deps/sensitivity_cost-542cf173ccb1c1ad.d: crates/bench/benches/sensitivity_cost.rs Cargo.toml

/root/repo/target/debug/deps/libsensitivity_cost-542cf173ccb1c1ad.rmeta: crates/bench/benches/sensitivity_cost.rs Cargo.toml

crates/bench/benches/sensitivity_cost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
