/root/repo/target/debug/deps/hypernel_hypersec-80ab5baceea1b51d.d: crates/hypersec/src/lib.rs crates/hypersec/src/hypersec.rs crates/hypersec/src/secapp.rs

/root/repo/target/debug/deps/hypernel_hypersec-80ab5baceea1b51d: crates/hypersec/src/lib.rs crates/hypersec/src/hypersec.rs crates/hypersec/src/secapp.rs

crates/hypersec/src/lib.rs:
crates/hypersec/src/hypersec.rs:
crates/hypersec/src/secapp.rs:
