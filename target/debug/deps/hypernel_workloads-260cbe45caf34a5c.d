/root/repo/target/debug/deps/hypernel_workloads-260cbe45caf34a5c.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs crates/workloads/src/replay.rs

/root/repo/target/debug/deps/libhypernel_workloads-260cbe45caf34a5c.rlib: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs crates/workloads/src/replay.rs

/root/repo/target/debug/deps/libhypernel_workloads-260cbe45caf34a5c.rmeta: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs crates/workloads/src/replay.rs

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/lmbench.rs:
crates/workloads/src/measure.rs:
crates/workloads/src/replay.rs:
