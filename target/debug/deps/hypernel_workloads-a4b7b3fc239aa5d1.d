/root/repo/target/debug/deps/hypernel_workloads-a4b7b3fc239aa5d1.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs crates/workloads/src/replay.rs Cargo.toml

/root/repo/target/debug/deps/libhypernel_workloads-a4b7b3fc239aa5d1.rmeta: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs crates/workloads/src/replay.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/lmbench.rs:
crates/workloads/src/measure.rs:
crates/workloads/src/replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
