/root/repo/target/debug/deps/hypernel_kernel-beda4ac93d7b6b95.d: crates/kernel/src/lib.rs crates/kernel/src/abi.rs crates/kernel/src/attack.rs crates/kernel/src/kernel.rs crates/kernel/src/kobj.rs crates/kernel/src/layout.rs crates/kernel/src/pgalloc.rs crates/kernel/src/pgtable.rs crates/kernel/src/sched.rs crates/kernel/src/slab.rs crates/kernel/src/task.rs

/root/repo/target/debug/deps/hypernel_kernel-beda4ac93d7b6b95: crates/kernel/src/lib.rs crates/kernel/src/abi.rs crates/kernel/src/attack.rs crates/kernel/src/kernel.rs crates/kernel/src/kobj.rs crates/kernel/src/layout.rs crates/kernel/src/pgalloc.rs crates/kernel/src/pgtable.rs crates/kernel/src/sched.rs crates/kernel/src/slab.rs crates/kernel/src/task.rs

crates/kernel/src/lib.rs:
crates/kernel/src/abi.rs:
crates/kernel/src/attack.rs:
crates/kernel/src/kernel.rs:
crates/kernel/src/kobj.rs:
crates/kernel/src/layout.rs:
crates/kernel/src/pgalloc.rs:
crates/kernel/src/pgtable.rs:
crates/kernel/src/sched.rs:
crates/kernel/src/slab.rs:
crates/kernel/src/task.rs:
