/root/repo/target/debug/deps/end_to_end-f350a9bc95a34ddc.d: crates/core/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-f350a9bc95a34ddc: crates/core/../../tests/end_to_end.rs

crates/core/../../tests/end_to_end.rs:
