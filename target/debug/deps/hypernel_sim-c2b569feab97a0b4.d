/root/repo/target/debug/deps/hypernel_sim-c2b569feab97a0b4.d: crates/core/src/bin/hypernel-sim.rs

/root/repo/target/debug/deps/hypernel_sim-c2b569feab97a0b4: crates/core/src/bin/hypernel-sim.rs

crates/core/src/bin/hypernel-sim.rs:
