/root/repo/target/debug/deps/hypernel_telemetry-b4eb0e3703132e3b.d: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/export.rs crates/telemetry/src/histogram.rs crates/telemetry/src/json.rs crates/telemetry/src/registry.rs crates/telemetry/src/sink.rs

/root/repo/target/debug/deps/libhypernel_telemetry-b4eb0e3703132e3b.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/export.rs crates/telemetry/src/histogram.rs crates/telemetry/src/json.rs crates/telemetry/src/registry.rs crates/telemetry/src/sink.rs

/root/repo/target/debug/deps/libhypernel_telemetry-b4eb0e3703132e3b.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/export.rs crates/telemetry/src/histogram.rs crates/telemetry/src/json.rs crates/telemetry/src/registry.rs crates/telemetry/src/sink.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/sink.rs:
