/root/repo/target/debug/deps/attack_detection-2ba474462912bacd.d: crates/core/../../tests/attack_detection.rs

/root/repo/target/debug/deps/attack_detection-2ba474462912bacd: crates/core/../../tests/attack_detection.rs

crates/core/../../tests/attack_detection.rs:
