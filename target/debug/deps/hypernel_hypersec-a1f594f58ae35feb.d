/root/repo/target/debug/deps/hypernel_hypersec-a1f594f58ae35feb.d: crates/hypersec/src/lib.rs crates/hypersec/src/hypersec.rs crates/hypersec/src/secapp.rs

/root/repo/target/debug/deps/hypernel_hypersec-a1f594f58ae35feb: crates/hypersec/src/lib.rs crates/hypersec/src/hypersec.rs crates/hypersec/src/secapp.rs

crates/hypersec/src/lib.rs:
crates/hypersec/src/hypersec.rs:
crates/hypersec/src/secapp.rs:
