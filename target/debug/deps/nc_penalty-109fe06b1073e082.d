/root/repo/target/debug/deps/nc_penalty-109fe06b1073e082.d: crates/bench/benches/nc_penalty.rs Cargo.toml

/root/repo/target/debug/deps/libnc_penalty-109fe06b1073e082.rmeta: crates/bench/benches/nc_penalty.rs Cargo.toml

crates/bench/benches/nc_penalty.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
