/root/repo/target/debug/deps/hypernel_hypersec-5659f5d991ebcbb0.d: crates/hypersec/src/lib.rs crates/hypersec/src/hypersec.rs crates/hypersec/src/secapp.rs

/root/repo/target/debug/deps/libhypernel_hypersec-5659f5d991ebcbb0.rlib: crates/hypersec/src/lib.rs crates/hypersec/src/hypersec.rs crates/hypersec/src/secapp.rs

/root/repo/target/debug/deps/libhypernel_hypersec-5659f5d991ebcbb0.rmeta: crates/hypersec/src/lib.rs crates/hypersec/src/hypersec.rs crates/hypersec/src/secapp.rs

crates/hypersec/src/lib.rs:
crates/hypersec/src/hypersec.rs:
crates/hypersec/src/secapp.rs:
