/root/repo/target/debug/deps/hypersec_behavior-05315481be2d4d2d.d: crates/hypersec/tests/hypersec_behavior.rs Cargo.toml

/root/repo/target/debug/deps/libhypersec_behavior-05315481be2d4d2d.rmeta: crates/hypersec/tests/hypersec_behavior.rs Cargo.toml

crates/hypersec/tests/hypersec_behavior.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
