/root/repo/target/debug/deps/hypernel_bench-17f17e430b7f19b1.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhypernel_bench-17f17e430b7f19b1.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhypernel_bench-17f17e430b7f19b1.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
