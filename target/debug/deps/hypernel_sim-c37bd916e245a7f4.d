/root/repo/target/debug/deps/hypernel_sim-c37bd916e245a7f4.d: crates/core/src/bin/hypernel-sim.rs

/root/repo/target/debug/deps/hypernel_sim-c37bd916e245a7f4: crates/core/src/bin/hypernel-sim.rs

crates/core/src/bin/hypernel-sim.rs:
