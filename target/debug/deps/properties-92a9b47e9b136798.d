/root/repo/target/debug/deps/properties-92a9b47e9b136798.d: crates/kernel/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-92a9b47e9b136798.rmeta: crates/kernel/tests/properties.rs Cargo.toml

crates/kernel/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
