/root/repo/target/debug/deps/hypernel-aa337d72f42f15c1.d: crates/core/src/lib.rs crates/core/src/report.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libhypernel-aa337d72f42f15c1.rlib: crates/core/src/lib.rs crates/core/src/report.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libhypernel-aa337d72f42f15c1.rmeta: crates/core/src/lib.rs crates/core/src/report.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/report.rs:
crates/core/src/system.rs:
