/root/repo/target/debug/deps/hypernel_sim-c5f3a14cbaa3823f.d: crates/core/src/bin/hypernel-sim.rs

/root/repo/target/debug/deps/hypernel_sim-c5f3a14cbaa3823f: crates/core/src/bin/hypernel-sim.rs

crates/core/src/bin/hypernel-sim.rs:
