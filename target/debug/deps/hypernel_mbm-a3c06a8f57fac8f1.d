/root/repo/target/debug/deps/hypernel_mbm-a3c06a8f57fac8f1.d: crates/mbm/src/lib.rs crates/mbm/src/bitmap.rs crates/mbm/src/cache.rs crates/mbm/src/fifo.rs crates/mbm/src/monitor.rs crates/mbm/src/ring.rs

/root/repo/target/debug/deps/libhypernel_mbm-a3c06a8f57fac8f1.rlib: crates/mbm/src/lib.rs crates/mbm/src/bitmap.rs crates/mbm/src/cache.rs crates/mbm/src/fifo.rs crates/mbm/src/monitor.rs crates/mbm/src/ring.rs

/root/repo/target/debug/deps/libhypernel_mbm-a3c06a8f57fac8f1.rmeta: crates/mbm/src/lib.rs crates/mbm/src/bitmap.rs crates/mbm/src/cache.rs crates/mbm/src/fifo.rs crates/mbm/src/monitor.rs crates/mbm/src/ring.rs

crates/mbm/src/lib.rs:
crates/mbm/src/bitmap.rs:
crates/mbm/src/cache.rs:
crates/mbm/src/fifo.rs:
crates/mbm/src/monitor.rs:
crates/mbm/src/ring.rs:
