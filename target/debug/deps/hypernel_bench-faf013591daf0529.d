/root/repo/target/debug/deps/hypernel_bench-faf013591daf0529.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/hypernel_bench-faf013591daf0529: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
