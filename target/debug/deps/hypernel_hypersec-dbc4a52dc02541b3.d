/root/repo/target/debug/deps/hypernel_hypersec-dbc4a52dc02541b3.d: crates/hypersec/src/lib.rs crates/hypersec/src/hypersec.rs crates/hypersec/src/secapp.rs

/root/repo/target/debug/deps/libhypernel_hypersec-dbc4a52dc02541b3.rlib: crates/hypersec/src/lib.rs crates/hypersec/src/hypersec.rs crates/hypersec/src/secapp.rs

/root/repo/target/debug/deps/libhypernel_hypersec-dbc4a52dc02541b3.rmeta: crates/hypersec/src/lib.rs crates/hypersec/src/hypersec.rs crates/hypersec/src/secapp.rs

crates/hypersec/src/lib.rs:
crates/hypersec/src/hypersec.rs:
crates/hypersec/src/secapp.rs:
