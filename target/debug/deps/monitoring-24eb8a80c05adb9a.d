/root/repo/target/debug/deps/monitoring-24eb8a80c05adb9a.d: crates/core/../../tests/monitoring.rs

/root/repo/target/debug/deps/monitoring-24eb8a80c05adb9a: crates/core/../../tests/monitoring.rs

crates/core/../../tests/monitoring.rs:
