/root/repo/target/debug/deps/table2_traps-bf8be5a02ea74cdd.d: crates/bench/benches/table2_traps.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_traps-bf8be5a02ea74cdd.rmeta: crates/bench/benches/table2_traps.rs Cargo.toml

crates/bench/benches/table2_traps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
