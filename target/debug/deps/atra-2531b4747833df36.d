/root/repo/target/debug/deps/atra-2531b4747833df36.d: crates/core/../../tests/atra.rs

/root/repo/target/debug/deps/atra-2531b4747833df36: crates/core/../../tests/atra.rs

crates/core/../../tests/atra.rs:
