/root/repo/target/debug/deps/monitoring-77a738bfc74da51d.d: crates/core/../../tests/monitoring.rs Cargo.toml

/root/repo/target/debug/deps/libmonitoring-77a738bfc74da51d.rmeta: crates/core/../../tests/monitoring.rs Cargo.toml

crates/core/../../tests/monitoring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
