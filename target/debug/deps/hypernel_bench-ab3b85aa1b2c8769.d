/root/repo/target/debug/deps/hypernel_bench-ab3b85aa1b2c8769.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhypernel_bench-ab3b85aa1b2c8769.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhypernel_bench-ab3b85aa1b2c8769.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
