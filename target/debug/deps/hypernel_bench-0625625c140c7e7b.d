/root/repo/target/debug/deps/hypernel_bench-0625625c140c7e7b.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhypernel_bench-0625625c140c7e7b.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
