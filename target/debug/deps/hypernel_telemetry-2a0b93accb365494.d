/root/repo/target/debug/deps/hypernel_telemetry-2a0b93accb365494.d: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/export.rs crates/telemetry/src/histogram.rs crates/telemetry/src/json.rs crates/telemetry/src/registry.rs crates/telemetry/src/sink.rs Cargo.toml

/root/repo/target/debug/deps/libhypernel_telemetry-2a0b93accb365494.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/export.rs crates/telemetry/src/histogram.rs crates/telemetry/src/json.rs crates/telemetry/src/registry.rs crates/telemetry/src/sink.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/sink.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
