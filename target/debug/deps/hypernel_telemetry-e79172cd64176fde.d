/root/repo/target/debug/deps/hypernel_telemetry-e79172cd64176fde.d: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/export.rs crates/telemetry/src/histogram.rs crates/telemetry/src/json.rs crates/telemetry/src/registry.rs crates/telemetry/src/sink.rs

/root/repo/target/debug/deps/hypernel_telemetry-e79172cd64176fde: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/export.rs crates/telemetry/src/histogram.rs crates/telemetry/src/json.rs crates/telemetry/src/registry.rs crates/telemetry/src/sink.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/sink.rs:
