/root/repo/target/debug/deps/end_to_end-12e45a678bbeff3e.d: crates/core/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-12e45a678bbeff3e: crates/core/../../tests/end_to_end.rs

crates/core/../../tests/end_to_end.rs:
