/root/repo/target/debug/deps/hypernel_hypersec-dd3d2ad156ee91e2.d: crates/hypersec/src/lib.rs crates/hypersec/src/hypersec.rs crates/hypersec/src/secapp.rs

/root/repo/target/debug/deps/libhypernel_hypersec-dd3d2ad156ee91e2.rlib: crates/hypersec/src/lib.rs crates/hypersec/src/hypersec.rs crates/hypersec/src/secapp.rs

/root/repo/target/debug/deps/libhypernel_hypersec-dd3d2ad156ee91e2.rmeta: crates/hypersec/src/lib.rs crates/hypersec/src/hypersec.rs crates/hypersec/src/secapp.rs

crates/hypersec/src/lib.rs:
crates/hypersec/src/hypersec.rs:
crates/hypersec/src/secapp.rs:
