/root/repo/target/debug/deps/properties_system-9d6ceba547babcf3.d: crates/core/../../tests/properties_system.rs

/root/repo/target/debug/deps/properties_system-9d6ceba547babcf3: crates/core/../../tests/properties_system.rs

crates/core/../../tests/properties_system.rs:
