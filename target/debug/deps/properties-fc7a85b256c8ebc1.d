/root/repo/target/debug/deps/properties-fc7a85b256c8ebc1.d: crates/kernel/tests/properties.rs

/root/repo/target/debug/deps/properties-fc7a85b256c8ebc1: crates/kernel/tests/properties.rs

crates/kernel/tests/properties.rs:
