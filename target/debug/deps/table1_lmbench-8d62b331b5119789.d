/root/repo/target/debug/deps/table1_lmbench-8d62b331b5119789.d: crates/bench/benches/table1_lmbench.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_lmbench-8d62b331b5119789.rmeta: crates/bench/benches/table1_lmbench.rs Cargo.toml

crates/bench/benches/table1_lmbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
