/root/repo/target/debug/deps/hypernel-ec9cda711a41e5c9.d: crates/core/src/lib.rs crates/core/src/report.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libhypernel-ec9cda711a41e5c9.rlib: crates/core/src/lib.rs crates/core/src/report.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libhypernel-ec9cda711a41e5c9.rmeta: crates/core/src/lib.rs crates/core/src/report.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/report.rs:
crates/core/src/system.rs:
