/root/repo/target/debug/deps/properties_system-ec7000343669019d.d: crates/core/../../tests/properties_system.rs

/root/repo/target/debug/deps/properties_system-ec7000343669019d: crates/core/../../tests/properties_system.rs

crates/core/../../tests/properties_system.rs:
