/root/repo/target/debug/deps/properties_system-f229e908dedab6b8.d: crates/core/../../tests/properties_system.rs

/root/repo/target/debug/deps/properties_system-f229e908dedab6b8: crates/core/../../tests/properties_system.rs

crates/core/../../tests/properties_system.rs:
