/root/repo/target/debug/deps/properties-1d4cd8b62997df76.d: crates/mbm/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-1d4cd8b62997df76.rmeta: crates/mbm/tests/properties.rs Cargo.toml

crates/mbm/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
