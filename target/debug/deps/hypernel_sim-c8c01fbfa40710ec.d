/root/repo/target/debug/deps/hypernel_sim-c8c01fbfa40710ec.d: crates/core/src/bin/hypernel-sim.rs

/root/repo/target/debug/deps/hypernel_sim-c8c01fbfa40710ec: crates/core/src/bin/hypernel-sim.rs

crates/core/src/bin/hypernel-sim.rs:
