/root/repo/target/debug/deps/properties-2016c48c755bc6c2.d: crates/kernel/tests/properties.rs

/root/repo/target/debug/deps/properties-2016c48c755bc6c2: crates/kernel/tests/properties.rs

crates/kernel/tests/properties.rs:
