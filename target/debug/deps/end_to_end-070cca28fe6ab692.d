/root/repo/target/debug/deps/end_to_end-070cca28fe6ab692.d: crates/core/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-070cca28fe6ab692: crates/core/../../tests/end_to_end.rs

crates/core/../../tests/end_to_end.rs:
