/root/repo/target/debug/deps/ablation_bitmap_cache-f65f176a6b4a2747.d: crates/bench/benches/ablation_bitmap_cache.rs Cargo.toml

/root/repo/target/debug/deps/libablation_bitmap_cache-f65f176a6b4a2747.rmeta: crates/bench/benches/ablation_bitmap_cache.rs Cargo.toml

crates/bench/benches/ablation_bitmap_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
