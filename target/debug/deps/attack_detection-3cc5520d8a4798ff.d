/root/repo/target/debug/deps/attack_detection-3cc5520d8a4798ff.d: crates/core/../../tests/attack_detection.rs Cargo.toml

/root/repo/target/debug/deps/libattack_detection-3cc5520d8a4798ff.rmeta: crates/core/../../tests/attack_detection.rs Cargo.toml

crates/core/../../tests/attack_detection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
