/root/repo/target/debug/deps/hypersec_behavior-254ffa1afa02b20a.d: crates/hypersec/tests/hypersec_behavior.rs

/root/repo/target/debug/deps/hypersec_behavior-254ffa1afa02b20a: crates/hypersec/tests/hypersec_behavior.rs

crates/hypersec/tests/hypersec_behavior.rs:
