/root/repo/target/release/deps/hypernel_sim-ba0ece0b8483f442.d: crates/core/src/bin/hypernel-sim.rs

/root/repo/target/release/deps/hypernel_sim-ba0ece0b8483f442: crates/core/src/bin/hypernel-sim.rs

crates/core/src/bin/hypernel-sim.rs:
