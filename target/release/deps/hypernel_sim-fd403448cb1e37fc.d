/root/repo/target/release/deps/hypernel_sim-fd403448cb1e37fc.d: crates/core/src/bin/hypernel-sim.rs

/root/repo/target/release/deps/hypernel_sim-fd403448cb1e37fc: crates/core/src/bin/hypernel-sim.rs

crates/core/src/bin/hypernel-sim.rs:
