/root/repo/target/release/deps/table1_lmbench-2e75ac068eef0e5d.d: crates/bench/benches/table1_lmbench.rs

/root/repo/target/release/deps/table1_lmbench-2e75ac068eef0e5d: crates/bench/benches/table1_lmbench.rs

crates/bench/benches/table1_lmbench.rs:
