/root/repo/target/release/deps/hypernel_mbm-c656bd435e38c3ff.d: crates/mbm/src/lib.rs crates/mbm/src/bitmap.rs crates/mbm/src/cache.rs crates/mbm/src/fifo.rs crates/mbm/src/monitor.rs crates/mbm/src/ring.rs

/root/repo/target/release/deps/libhypernel_mbm-c656bd435e38c3ff.rlib: crates/mbm/src/lib.rs crates/mbm/src/bitmap.rs crates/mbm/src/cache.rs crates/mbm/src/fifo.rs crates/mbm/src/monitor.rs crates/mbm/src/ring.rs

/root/repo/target/release/deps/libhypernel_mbm-c656bd435e38c3ff.rmeta: crates/mbm/src/lib.rs crates/mbm/src/bitmap.rs crates/mbm/src/cache.rs crates/mbm/src/fifo.rs crates/mbm/src/monitor.rs crates/mbm/src/ring.rs

crates/mbm/src/lib.rs:
crates/mbm/src/bitmap.rs:
crates/mbm/src/cache.rs:
crates/mbm/src/fifo.rs:
crates/mbm/src/monitor.rs:
crates/mbm/src/ring.rs:
