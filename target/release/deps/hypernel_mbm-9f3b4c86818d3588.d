/root/repo/target/release/deps/hypernel_mbm-9f3b4c86818d3588.d: crates/mbm/src/lib.rs crates/mbm/src/bitmap.rs crates/mbm/src/cache.rs crates/mbm/src/fifo.rs crates/mbm/src/monitor.rs crates/mbm/src/ring.rs

/root/repo/target/release/deps/libhypernel_mbm-9f3b4c86818d3588.rlib: crates/mbm/src/lib.rs crates/mbm/src/bitmap.rs crates/mbm/src/cache.rs crates/mbm/src/fifo.rs crates/mbm/src/monitor.rs crates/mbm/src/ring.rs

/root/repo/target/release/deps/libhypernel_mbm-9f3b4c86818d3588.rmeta: crates/mbm/src/lib.rs crates/mbm/src/bitmap.rs crates/mbm/src/cache.rs crates/mbm/src/fifo.rs crates/mbm/src/monitor.rs crates/mbm/src/ring.rs

crates/mbm/src/lib.rs:
crates/mbm/src/bitmap.rs:
crates/mbm/src/cache.rs:
crates/mbm/src/fifo.rs:
crates/mbm/src/monitor.rs:
crates/mbm/src/ring.rs:
