/root/repo/target/release/deps/hypernel_telemetry-07464428064d7eaa.d: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/export.rs crates/telemetry/src/histogram.rs crates/telemetry/src/json.rs crates/telemetry/src/registry.rs crates/telemetry/src/sink.rs

/root/repo/target/release/deps/libhypernel_telemetry-07464428064d7eaa.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/export.rs crates/telemetry/src/histogram.rs crates/telemetry/src/json.rs crates/telemetry/src/registry.rs crates/telemetry/src/sink.rs

/root/repo/target/release/deps/libhypernel_telemetry-07464428064d7eaa.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/export.rs crates/telemetry/src/histogram.rs crates/telemetry/src/json.rs crates/telemetry/src/registry.rs crates/telemetry/src/sink.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/sink.rs:
