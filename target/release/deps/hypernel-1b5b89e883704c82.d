/root/repo/target/release/deps/hypernel-1b5b89e883704c82.d: crates/core/src/lib.rs crates/core/src/report.rs crates/core/src/system.rs

/root/repo/target/release/deps/libhypernel-1b5b89e883704c82.rlib: crates/core/src/lib.rs crates/core/src/report.rs crates/core/src/system.rs

/root/repo/target/release/deps/libhypernel-1b5b89e883704c82.rmeta: crates/core/src/lib.rs crates/core/src/report.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/report.rs:
crates/core/src/system.rs:
