/root/repo/target/release/deps/hypernel_kernel-342d0e565427b832.d: crates/kernel/src/lib.rs crates/kernel/src/abi.rs crates/kernel/src/attack.rs crates/kernel/src/kernel.rs crates/kernel/src/kobj.rs crates/kernel/src/layout.rs crates/kernel/src/pgalloc.rs crates/kernel/src/pgtable.rs crates/kernel/src/sched.rs crates/kernel/src/slab.rs crates/kernel/src/task.rs

/root/repo/target/release/deps/libhypernel_kernel-342d0e565427b832.rlib: crates/kernel/src/lib.rs crates/kernel/src/abi.rs crates/kernel/src/attack.rs crates/kernel/src/kernel.rs crates/kernel/src/kobj.rs crates/kernel/src/layout.rs crates/kernel/src/pgalloc.rs crates/kernel/src/pgtable.rs crates/kernel/src/sched.rs crates/kernel/src/slab.rs crates/kernel/src/task.rs

/root/repo/target/release/deps/libhypernel_kernel-342d0e565427b832.rmeta: crates/kernel/src/lib.rs crates/kernel/src/abi.rs crates/kernel/src/attack.rs crates/kernel/src/kernel.rs crates/kernel/src/kobj.rs crates/kernel/src/layout.rs crates/kernel/src/pgalloc.rs crates/kernel/src/pgtable.rs crates/kernel/src/sched.rs crates/kernel/src/slab.rs crates/kernel/src/task.rs

crates/kernel/src/lib.rs:
crates/kernel/src/abi.rs:
crates/kernel/src/attack.rs:
crates/kernel/src/kernel.rs:
crates/kernel/src/kobj.rs:
crates/kernel/src/layout.rs:
crates/kernel/src/pgalloc.rs:
crates/kernel/src/pgtable.rs:
crates/kernel/src/sched.rs:
crates/kernel/src/slab.rs:
crates/kernel/src/task.rs:
