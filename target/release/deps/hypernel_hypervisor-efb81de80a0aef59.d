/root/repo/target/release/deps/hypernel_hypervisor-efb81de80a0aef59.d: crates/hypervisor/src/lib.rs

/root/repo/target/release/deps/libhypernel_hypervisor-efb81de80a0aef59.rlib: crates/hypervisor/src/lib.rs

/root/repo/target/release/deps/libhypernel_hypervisor-efb81de80a0aef59.rmeta: crates/hypervisor/src/lib.rs

crates/hypervisor/src/lib.rs:
