/root/repo/target/release/deps/hypernel-4d9668a212e2e3c6.d: crates/core/src/lib.rs crates/core/src/report.rs crates/core/src/system.rs

/root/repo/target/release/deps/libhypernel-4d9668a212e2e3c6.rlib: crates/core/src/lib.rs crates/core/src/report.rs crates/core/src/system.rs

/root/repo/target/release/deps/libhypernel-4d9668a212e2e3c6.rmeta: crates/core/src/lib.rs crates/core/src/report.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/report.rs:
crates/core/src/system.rs:
