/root/repo/target/release/deps/hypernel_hypersec-4035195daeb60249.d: crates/hypersec/src/lib.rs crates/hypersec/src/hypersec.rs crates/hypersec/src/secapp.rs

/root/repo/target/release/deps/libhypernel_hypersec-4035195daeb60249.rlib: crates/hypersec/src/lib.rs crates/hypersec/src/hypersec.rs crates/hypersec/src/secapp.rs

/root/repo/target/release/deps/libhypernel_hypersec-4035195daeb60249.rmeta: crates/hypersec/src/lib.rs crates/hypersec/src/hypersec.rs crates/hypersec/src/secapp.rs

crates/hypersec/src/lib.rs:
crates/hypersec/src/hypersec.rs:
crates/hypersec/src/secapp.rs:
