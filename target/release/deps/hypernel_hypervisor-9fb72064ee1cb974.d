/root/repo/target/release/deps/hypernel_hypervisor-9fb72064ee1cb974.d: crates/hypervisor/src/lib.rs

/root/repo/target/release/deps/libhypernel_hypervisor-9fb72064ee1cb974.rlib: crates/hypervisor/src/lib.rs

/root/repo/target/release/deps/libhypernel_hypervisor-9fb72064ee1cb974.rmeta: crates/hypervisor/src/lib.rs

crates/hypervisor/src/lib.rs:
