/root/repo/target/release/deps/hypernel_bench-37d5591a5f9c29ea.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libhypernel_bench-37d5591a5f9c29ea.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libhypernel_bench-37d5591a5f9c29ea.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
