/root/repo/target/release/deps/hypernel_hypersec-78902b7ed3fb7fb5.d: crates/hypersec/src/lib.rs crates/hypersec/src/hypersec.rs crates/hypersec/src/secapp.rs

/root/repo/target/release/deps/libhypernel_hypersec-78902b7ed3fb7fb5.rlib: crates/hypersec/src/lib.rs crates/hypersec/src/hypersec.rs crates/hypersec/src/secapp.rs

/root/repo/target/release/deps/libhypernel_hypersec-78902b7ed3fb7fb5.rmeta: crates/hypersec/src/lib.rs crates/hypersec/src/hypersec.rs crates/hypersec/src/secapp.rs

crates/hypersec/src/lib.rs:
crates/hypersec/src/hypersec.rs:
crates/hypersec/src/secapp.rs:
