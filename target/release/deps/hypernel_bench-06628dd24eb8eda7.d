/root/repo/target/release/deps/hypernel_bench-06628dd24eb8eda7.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libhypernel_bench-06628dd24eb8eda7.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libhypernel_bench-06628dd24eb8eda7.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
