/root/repo/target/release/deps/hypernel_bench-92992f44055ea9c4.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libhypernel_bench-92992f44055ea9c4.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libhypernel_bench-92992f44055ea9c4.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
