/root/repo/target/release/deps/hypernel_workloads-430303efa856e034.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs crates/workloads/src/replay.rs

/root/repo/target/release/deps/libhypernel_workloads-430303efa856e034.rlib: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs crates/workloads/src/replay.rs

/root/repo/target/release/deps/libhypernel_workloads-430303efa856e034.rmeta: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs crates/workloads/src/replay.rs

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/lmbench.rs:
crates/workloads/src/measure.rs:
crates/workloads/src/replay.rs:
