/root/repo/target/release/deps/hypernel-39627242e3571381.d: crates/core/src/lib.rs crates/core/src/report.rs crates/core/src/system.rs

/root/repo/target/release/deps/libhypernel-39627242e3571381.rlib: crates/core/src/lib.rs crates/core/src/report.rs crates/core/src/system.rs

/root/repo/target/release/deps/libhypernel-39627242e3571381.rmeta: crates/core/src/lib.rs crates/core/src/report.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/report.rs:
crates/core/src/system.rs:
