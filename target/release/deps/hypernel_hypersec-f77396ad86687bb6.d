/root/repo/target/release/deps/hypernel_hypersec-f77396ad86687bb6.d: crates/hypersec/src/lib.rs crates/hypersec/src/hypersec.rs crates/hypersec/src/secapp.rs

/root/repo/target/release/deps/libhypernel_hypersec-f77396ad86687bb6.rlib: crates/hypersec/src/lib.rs crates/hypersec/src/hypersec.rs crates/hypersec/src/secapp.rs

/root/repo/target/release/deps/libhypernel_hypersec-f77396ad86687bb6.rmeta: crates/hypersec/src/lib.rs crates/hypersec/src/hypersec.rs crates/hypersec/src/secapp.rs

crates/hypersec/src/lib.rs:
crates/hypersec/src/hypersec.rs:
crates/hypersec/src/secapp.rs:
