# Developer entry points. `just ci` is exactly what CI runs.

# Run everything CI runs: format check, lint gate, build, tests.
ci: fmt-check lint
    cargo build --release
    cargo test -q

# Reject unformatted code.
fmt-check:
    cargo fmt --check

# Reject all warnings, in every target (lib, bins, tests, benches).
lint:
    cargo clippy --all-targets -- -D warnings

# Reformat the workspace in place.
fmt:
    cargo fmt

# Quick inner loop: debug build + tests.
test:
    cargo test -q
