# Developer entry points. `just ci` is exactly what CI runs.

# Run everything CI runs: format check, lint gate, build, tests.
ci: fmt-check lint
    cargo build --release
    cargo test -q

# Reject unformatted code.
fmt-check:
    cargo fmt --check

# Reject all warnings, in every target (lib, bins, tests, benches).
lint:
    cargo clippy --all-targets -- -D warnings

# Reformat the workspace in place.
fmt:
    cargo fmt

# Quick inner loop: debug build + tests.
test:
    cargo test -q

# Fast deterministic bench pass: emit machine-readable summaries,
# aggregate them into a dated BENCH_<date>.json trajectory, and gate
# against the committed baseline. This is the CI perf gate.
bench-smoke:
    rm -rf {{justfile_directory()}}/target/bench-summaries
    HYPERNEL_BENCH_DIR={{justfile_directory()}}/target/bench-summaries \
    HYPERNEL_BENCH_ITERS=20 \
        cargo bench -q -p hypernel-bench --bench smoke
    cargo run -q -p hypernel-analyze -- bench \
        --dir {{justfile_directory()}}/target/bench-summaries \
        --out-dir {{justfile_directory()}}/target/bench-trajectory \
        --baseline {{justfile_directory()}}/benchmarks/baseline.json \
        --threshold 0.10

# Regenerate the committed bench baseline (run after an intentional
# cost-model change, then commit benchmarks/baseline.json).
bench-baseline:
    rm -rf {{justfile_directory()}}/target/bench-summaries
    HYPERNEL_BENCH_DIR={{justfile_directory()}}/target/bench-summaries \
    HYPERNEL_BENCH_ITERS=20 \
        cargo bench -q -p hypernel-bench --bench smoke
    cargo run -q -p hypernel-analyze -- bench \
        --dir {{justfile_directory()}}/target/bench-summaries \
        --out {{justfile_directory()}}/benchmarks/baseline.json

# Full adversarial campaign: sweep the shipped scenario corpus across
# 64 seeds and enforce the invariant oracles. Artifacts land in
# target/campaign/.
campaign:
    cargo run -q --release -p hypernel-campaign -- run \
        --corpus {{justfile_directory()}}/corpus \
        --seeds 64 --jobs 8 \
        --out {{justfile_directory()}}/target/campaign/campaign.jsonl \
        --summary {{justfile_directory()}}/target/campaign/campaign-summary.json
    cargo run -q --release -p hypernel-analyze -- campaign \
        {{justfile_directory()}}/target/campaign/campaign.jsonl

# The CI campaign gate: a 16-seed corpus sweep; any oracle violation a
# scenario did not declare exits nonzero.
campaign-smoke:
    cargo run -q --release -p hypernel-campaign -- run \
        --corpus {{justfile_directory()}}/corpus \
        --seeds 16 --jobs 4 \
        --out {{justfile_directory()}}/target/campaign/campaign.jsonl \
        --summary {{justfile_directory()}}/target/campaign/campaign-summary.json
    cargo run -q --release -p hypernel-campaign -- minimize \
        --corpus {{justfile_directory()}}/corpus \
        --scenario fault-drop-irq --seed 0
