# Developer entry points. `just ci` is exactly what CI runs.

# Run everything CI runs: format check, lint gate, build, tests.
ci: fmt-check lint
    cargo build --release
    cargo test -q

# Reject unformatted code.
fmt-check:
    cargo fmt --check

# Reject all warnings, in every target (lib, bins, tests, benches).
lint:
    cargo clippy --all-targets -- -D warnings

# Reformat the workspace in place.
fmt:
    cargo fmt

# Quick inner loop: debug build + tests.
test:
    cargo test -q

# Fast deterministic bench pass: emit machine-readable summaries,
# aggregate them into a dated BENCH_<date>.json trajectory, and gate
# against the committed baseline. This is the CI perf gate.
bench-smoke:
    rm -rf {{justfile_directory()}}/target/bench-summaries
    HYPERNEL_BENCH_DIR={{justfile_directory()}}/target/bench-summaries \
    HYPERNEL_BENCH_ITERS=20 \
        cargo bench -q -p hypernel-bench --bench smoke
    cargo run -q -p hypernel-analyze -- bench \
        --dir {{justfile_directory()}}/target/bench-summaries \
        --out-dir {{justfile_directory()}}/target/bench-trajectory \
        --baseline {{justfile_directory()}}/benchmarks/baseline.json \
        --threshold 0.10

# Regenerate the committed bench baseline (run after an intentional
# cost-model change, then commit benchmarks/baseline.json).
bench-baseline:
    rm -rf {{justfile_directory()}}/target/bench-summaries
    HYPERNEL_BENCH_DIR={{justfile_directory()}}/target/bench-summaries \
    HYPERNEL_BENCH_ITERS=20 \
        cargo bench -q -p hypernel-bench --bench smoke
    cargo run -q -p hypernel-analyze -- bench \
        --dir {{justfile_directory()}}/target/bench-summaries \
        --out {{justfile_directory()}}/benchmarks/baseline.json

# Host-throughput bench: simulated work retired per host second (the
# other perf axis — simulated-cycle results are unaffected by design).
# Gated at ±20% against the committed throughput baseline; `*_mops`
# metrics regress when they DROP. See docs/PERF.md.
bench-throughput:
    rm -rf {{justfile_directory()}}/target/throughput-summaries
    HYPERNEL_BENCH_DIR={{justfile_directory()}}/target/throughput-summaries \
        cargo bench -q -p hypernel-bench --bench throughput
    cargo run -q -p hypernel-analyze -- bench \
        --dir {{justfile_directory()}}/target/throughput-summaries \
        --out-dir {{justfile_directory()}}/target/throughput-trajectory \
        --baseline {{justfile_directory()}}/benchmarks/throughput-baseline.json \
        --threshold 0.20

# Regenerate the committed host-throughput baseline (run on the
# reference machine after an intentional fast-path change, then commit
# benchmarks/throughput-baseline.json).
bench-throughput-baseline:
    rm -rf {{justfile_directory()}}/target/throughput-summaries
    HYPERNEL_BENCH_DIR={{justfile_directory()}}/target/throughput-summaries \
        cargo bench -q -p hypernel-bench --bench throughput
    cargo run -q -p hypernel-analyze -- bench \
        --dir {{justfile_directory()}}/target/throughput-summaries \
        --out {{justfile_directory()}}/benchmarks/throughput-baseline.json

# Determinism gate: the fast paths must be model-invisible. Sweep the
# corpus with fast paths on (at two worker counts) and off, and demand
# byte-identical campaign.jsonl artifacts AND byte-identical
# metrics.jsonl time series.
determinism:
    rm -rf {{justfile_directory()}}/target/determinism/fast-metrics \
           {{justfile_directory()}}/target/determinism/fast-j1-metrics \
           {{justfile_directory()}}/target/determinism/slow-metrics
    cargo run -q --release -p hypernel-campaign -- run \
        --corpus {{justfile_directory()}}/corpus --seeds 8 --jobs 4 \
        --out {{justfile_directory()}}/target/determinism/fast.jsonl \
        --summary {{justfile_directory()}}/target/determinism/fast-summary.json \
        --metrics {{justfile_directory()}}/target/determinism/fast-metrics
    cargo run -q --release -p hypernel-campaign -- run \
        --corpus {{justfile_directory()}}/corpus --seeds 8 --jobs 1 \
        --out {{justfile_directory()}}/target/determinism/fast-j1.jsonl \
        --summary {{justfile_directory()}}/target/determinism/fast-j1-summary.json \
        --metrics {{justfile_directory()}}/target/determinism/fast-j1-metrics
    HYPERNEL_NO_FASTPATH=1 \
        cargo run -q --release -p hypernel-campaign -- run \
        --corpus {{justfile_directory()}}/corpus --seeds 8 --jobs 4 \
        --out {{justfile_directory()}}/target/determinism/slow.jsonl \
        --summary {{justfile_directory()}}/target/determinism/slow-summary.json \
        --metrics {{justfile_directory()}}/target/determinism/slow-metrics
    diff {{justfile_directory()}}/target/determinism/fast.jsonl \
         {{justfile_directory()}}/target/determinism/fast-j1.jsonl
    diff {{justfile_directory()}}/target/determinism/fast.jsonl \
         {{justfile_directory()}}/target/determinism/slow.jsonl
    diff -r {{justfile_directory()}}/target/determinism/fast-metrics \
            {{justfile_directory()}}/target/determinism/fast-j1-metrics
    diff -r {{justfile_directory()}}/target/determinism/fast-metrics \
            {{justfile_directory()}}/target/determinism/slow-metrics
    @echo "determinism: campaign.jsonl + metrics.jsonl byte-identical (fastpath on/off, jobs 1/4)"

# The CI audit gate: lint the scenario corpus schema, then run the
# static whole-system audit (with the ownership sanitizer enabled)
# over every corpus scenario's end state, plus one negative control —
# an unprotected native replay of the W^X attack must be flagged.
# See docs/AUDIT.md.
audit:
    cargo run -q --release -p hypernel-campaign -- lint \
        {{justfile_directory()}}/corpus
    cargo run -q --release -p hypernel-audit-cli --bin hypernel-audit -- \
        corpus {{justfile_directory()}}/corpus --sanitize
    ! cargo run -q --release -p hypernel-audit-cli --bin hypernel-audit -- \
        scenario {{justfile_directory()}}/corpus/wxorx.toml --mode native \
        --json {{justfile_directory()}}/target/audit/wxorx-native.json \
        > /dev/null
    @echo "audit: corpus clean, lint clean, native control flagged"

# Full adversarial campaign: sweep the shipped scenario corpus across
# 64 seeds and enforce the invariant oracles. Artifacts land in
# target/campaign/.
campaign:
    cargo run -q --release -p hypernel-campaign -- run \
        --corpus {{justfile_directory()}}/corpus \
        --seeds 64 --jobs 8 \
        --out {{justfile_directory()}}/target/campaign/campaign.jsonl \
        --summary {{justfile_directory()}}/target/campaign/campaign-summary.json
    cargo run -q --release -p hypernel-analyze -- campaign \
        {{justfile_directory()}}/target/campaign/campaign.jsonl

# The CI campaign gate: a 16-seed corpus sweep; any oracle violation a
# scenario did not declare exits nonzero.
campaign-smoke:
    cargo run -q --release -p hypernel-campaign -- run \
        --corpus {{justfile_directory()}}/corpus \
        --seeds 16 --jobs 4 \
        --out {{justfile_directory()}}/target/campaign/campaign.jsonl \
        --summary {{justfile_directory()}}/target/campaign/campaign-summary.json
    cargo run -q --release -p hypernel-campaign -- minimize \
        --corpus {{justfile_directory()}}/corpus \
        --scenario fault-drop-irq --seed 0

# The CI coverage gate: an 8-seed corpus sweep merged into the coverage
# atlas, rendered and diffed against the committed baseline (any feature
# covered there but not here exits nonzero), then the explore smoke
# (must emit at least one lint-clean novel scenario).
coverage-smoke:
    rm -rf {{justfile_directory()}}/target/coverage
    cargo run -q --release -p hypernel-campaign -- run \
        --corpus {{justfile_directory()}}/corpus \
        --seeds 8 --jobs 4 \
        --coverage {{justfile_directory()}}/target/coverage/coverage.json \
        > /dev/null
    cargo run -q --release -p hypernel-analyze -- coverage \
        {{justfile_directory()}}/target/coverage/coverage.json \
        --against {{justfile_directory()}}/benchmarks/coverage-baseline.json
    cargo run -q --release -p hypernel-campaign -- explore \
        --corpus {{justfile_directory()}}/corpus \
        --out {{justfile_directory()}}/target/coverage/novel
    cargo run -q --release -p hypernel-campaign -- lint \
        {{justfile_directory()}}/target/coverage/novel

# Regenerate benchmarks/coverage-baseline.json after intentionally
# extending coverage (new scenario or new instrumentation). Must use the
# same seeds/jobs as `coverage-smoke` — the atlas is seed-range
# dependent but jobs-independent.
coverage-baseline:
    cargo run -q --release -p hypernel-campaign -- run \
        --corpus {{justfile_directory()}}/corpus \
        --seeds 8 --jobs 4 \
        --coverage {{justfile_directory()}}/benchmarks/coverage-baseline.json \
        > /dev/null
    @echo "wrote benchmarks/coverage-baseline.json — review and commit"

# The CI compose gate: lint + compile the standalone compose
# descriptions, run one composed scenario per protection mode, and
# prove the composed-system artifact survives fastpath-off and a
# different job count byte-for-byte. See docs/COMPOSE.md.
compose-smoke:
    cargo run -q --release -p hypernel-compose -- lint \
        {{justfile_directory()}}/examples/compose
    cargo run -q --release -p hypernel-compose -- compile \
        {{justfile_directory()}}/examples/compose/three-domain.toml
    cargo run -q --release -p hypernel-campaign -- run \
        --corpus {{justfile_directory()}}/corpus --scenario compose-cred-theft \
        --seeds 2 --jobs 2 \
        --out {{justfile_directory()}}/target/compose/hypernel.jsonl
    cargo run -q --release -p hypernel-campaign -- run \
        --corpus {{justfile_directory()}}/corpus --scenario compose-cross-native \
        --seeds 2 --jobs 2 \
        --out {{justfile_directory()}}/target/compose/native.jsonl
    cargo run -q --release -p hypernel-campaign -- run \
        --corpus {{justfile_directory()}}/corpus --scenario compose-cross-kvm \
        --seeds 2 --jobs 2 \
        --out {{justfile_directory()}}/target/compose/kvm.jsonl
    HYPERNEL_NO_FASTPATH=1 \
        cargo run -q --release -p hypernel-campaign -- run \
        --corpus {{justfile_directory()}}/corpus --scenario compose-cred-theft \
        --seeds 2 --jobs 1 \
        --out {{justfile_directory()}}/target/compose/hypernel-slow.jsonl
    diff {{justfile_directory()}}/target/compose/hypernel.jsonl \
         {{justfile_directory()}}/target/compose/hypernel-slow.jsonl
    @echo "compose-smoke: descriptions clean, composed scenarios pass in all modes, artifacts fastpath-invariant"

# The CI flight-recorder gate: the deliberately broken desync scenario
# must FAIL its sweep (hence the `!`), dump a blackbox.json, and that
# dump must render through `hypernel-analyze timeline`. Also diffs the
# fifo-overflow time series against itself as a zero-regression check
# of the timeline gate.
timeline-smoke:
    rm -rf {{justfile_directory()}}/target/timeline
    ! cargo run -q --release -p hypernel-campaign -- run \
        --corpus {{justfile_directory()}}/examples/scenarios \
        --seeds 1 --jobs 1 \
        --out {{justfile_directory()}}/target/timeline/desync.jsonl \
        --blackbox {{justfile_directory()}}/target/timeline/blackbox \
        > /dev/null
    cargo run -q --release -p hypernel-analyze -- timeline \
        {{justfile_directory()}}/target/timeline/blackbox/blackbox-desync-s0.blackbox.json \
        > /dev/null
    cargo run -q --release -p hypernel-campaign -- run \
        --corpus {{justfile_directory()}}/corpus --scenario fifo-overflow \
        --seeds 1 --jobs 1 \
        --metrics {{justfile_directory()}}/target/timeline/metrics \
        > /dev/null
    cargo run -q --release -p hypernel-analyze -- timeline \
        {{justfile_directory()}}/target/timeline/metrics/fifo-overflow-s0.metrics.jsonl \
        --against {{justfile_directory()}}/target/timeline/metrics/fifo-overflow-s0.metrics.jsonl \
        > /dev/null
    @echo "timeline-smoke: blackbox dumped and rendered, timeline gate clean"
