//! The static-audit report: typed findings, the differential verdict
//! and a deterministic JSON serialization `hypernel-analyze` ingests.

use hypernel_machine::shadow::ShadowStats;
use hypernel_machine::TagViolation;
use hypernel_telemetry::json::Json;

use crate::graph::{chain_display, ChainLink};

/// Schema version stamped into every audit-report artifact.
pub const AUDIT_SCHEMA: u64 = 1;

/// `kind` tag of an audit-report artifact.
pub const REPORT_KIND: &str = "hypernel-audit-report";

/// Which invariant a finding violates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CheckKind {
    /// A stage-1 path reaches the secure region.
    SecureReachable,
    /// A leaf is writable and executable.
    WxMapping,
    /// A kernel-half leaf is not identity-mapped (double maps and ATRA
    /// aliases surface here).
    LinearIdentity,
    /// Kernel text is mapped writable somewhere.
    TextWritable,
    /// A live page-table page is mapped writable somewhere.
    TableWritable,
    /// A reachable table is not in the Hypersec-verified pool.
    UnverifiedTable,
    /// An active or kernel-known root is outside the trusted root set.
    RogueRoot,
    /// A registered sensitive word is not covered by the watch bitmap.
    WatchCoverage,
    /// A structurally malformed descriptor (table pointer at leaf
    /// level).
    Malformed,
}

impl CheckKind {
    /// Stable kebab-case name, used in diagnostics and JSON.
    pub fn name(self) -> &'static str {
        match self {
            CheckKind::SecureReachable => "secure-reachable",
            CheckKind::WxMapping => "wx-mapping",
            CheckKind::LinearIdentity => "linear-identity",
            CheckKind::TextWritable => "text-writable",
            CheckKind::TableWritable => "table-writable",
            CheckKind::UnverifiedTable => "unverified-table",
            CheckKind::RogueRoot => "rogue-root",
            CheckKind::WatchCoverage => "watch-coverage",
            CheckKind::Malformed => "malformed",
        }
    }
}

/// One invariant violation found by the static pass, with the
/// descriptor chain that reaches the offending mapping (empty for
/// findings without a chain, e.g. a rogue root).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Violated invariant.
    pub check: CheckKind,
    /// Human-readable specifics.
    pub detail: String,
    /// Descriptor chain from a root to the offending descriptor.
    pub chain: Vec<ChainLink>,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.check.name(), self.detail)?;
        if !self.chain.is_empty() {
            write!(f, " (via {})", chain_display(&self.chain))?;
        }
        Ok(())
    }
}

impl Finding {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("check", Json::str(self.check.name())),
            ("detail", Json::str(&self.detail)),
        ];
        if !self.chain.is_empty() {
            fields.push(("chain", Json::str(&chain_display(&self.chain))));
        }
        Json::obj(fields)
    }
}

/// The static-vs-incremental comparison. Any disagreement means one of
/// the two analyses is wrong — by construction that is a verifier bug
/// (static found what the incremental verifier admitted) or an auditor
/// gap (the incremental runtime audit found what the static pass
/// missed).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DifferentialReport {
    /// Findings of the static pass (count; the findings themselves live
    /// in [`StaticAuditReport::findings`]).
    pub static_findings: u64,
    /// Violations the incremental runtime audit reported.
    pub incremental_violations: Vec<String>,
    /// Explanations of each disagreement, offending chains included.
    pub disagreements: Vec<String>,
}

impl DifferentialReport {
    /// `true` when both sides reached the same verdict.
    pub fn agrees(&self) -> bool {
        self.disagreements.is_empty()
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("static_findings", Json::UInt(self.static_findings)),
            (
                "incremental_violations",
                Json::UInt(self.incremental_violations.len() as u64),
            ),
            ("agrees", Json::Bool(self.agrees())),
            (
                "disagreements",
                Json::Array(self.disagreements.iter().map(|d| Json::str(d)).collect()),
            ),
        ])
    }
}

/// Ownership-sanitizer section of the report (present when the shadow
/// tags were enabled on the machine).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SanitizerReport {
    /// Counters at audit time.
    pub stats: ShadowStats,
    /// Retained typed violations (bounded; see
    /// [`hypernel_machine::shadow::MAX_VIOLATIONS`]).
    pub violations: Vec<TagViolation>,
}

impl SanitizerReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("checked", Json::UInt(self.stats.checked)),
            ("denied", Json::UInt(self.stats.denied)),
            (
                "violations",
                Json::Array(
                    self.violations
                        .iter()
                        .map(|v| {
                            Json::obj(vec![
                                ("writer", Json::str(v.writer.name())),
                                ("pa", Json::UInt(v.pa.raw())),
                                ("value", Json::UInt(v.value)),
                                ("tag", Json::str(v.tag.name())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// The complete result of one static audit pass.
#[derive(Clone, Debug, Default)]
pub struct StaticAuditReport {
    /// Roots walked.
    pub roots_walked: u64,
    /// Distinct table pages visited.
    pub tables_walked: u64,
    /// Leaves checked.
    pub leaves_checked: u64,
    /// Monitored regions whose watch coverage was checked.
    pub regions_checked: u64,
    /// Every invariant violation, in deterministic order.
    pub findings: Vec<Finding>,
    /// Static-vs-incremental comparison (Hypernel mode, post-LOCK).
    pub differential: Option<DifferentialReport>,
    /// Ownership-sanitizer section, when shadow tags are enabled.
    pub sanitizer: Option<SanitizerReport>,
}

impl StaticAuditReport {
    /// `true` when nothing is wrong: no findings, differential (if run)
    /// agrees, sanitizer (if enabled) saw no denial.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
            && self
                .differential
                .as_ref()
                .is_none_or(DifferentialReport::agrees)
            && self.sanitizer.as_ref().is_none_or(|s| s.stats.denied == 0)
    }

    /// Records a finding.
    pub fn finding(&mut self, check: CheckKind, detail: impl Into<String>, chain: Vec<ChainLink>) {
        self.findings.push(Finding {
            check,
            detail: detail.into(),
            chain,
        });
    }

    /// Serializes the report as one deterministic JSON object
    /// (`kind: hypernel-audit-report`).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema", Json::UInt(AUDIT_SCHEMA)),
            ("kind", Json::str(REPORT_KIND)),
            ("roots_walked", Json::UInt(self.roots_walked)),
            ("tables_walked", Json::UInt(self.tables_walked)),
            ("leaves_checked", Json::UInt(self.leaves_checked)),
            ("regions_checked", Json::UInt(self.regions_checked)),
            (
                "findings",
                Json::Array(self.findings.iter().map(Finding::to_json).collect()),
            ),
        ];
        if let Some(diff) = &self.differential {
            fields.push(("differential", diff.to_json()));
        }
        if let Some(san) = &self.sanitizer {
            fields.push(("sanitizer", san.to_json()));
        }
        fields.push(("clean", Json::Bool(self.is_clean())));
        Json::obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypernel_machine::addr::PhysAddr;

    #[test]
    fn clean_report_serializes_and_reports_clean() {
        let report = StaticAuditReport::default();
        assert!(report.is_clean());
        let json = report.to_json().to_string();
        let doc = Json::parse(&json).expect("valid JSON");
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some(REPORT_KIND));
        assert_eq!(doc.get("clean").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn findings_make_the_report_dirty() {
        let mut report = StaticAuditReport::default();
        report.finding(
            CheckKind::WxMapping,
            "writable+executable leaf at va 0x1000",
            vec![ChainLink {
                table: PhysAddr::new(0x2000),
                index: 1,
            }],
        );
        assert!(!report.is_clean());
        let rendered = report.findings[0].to_string();
        assert!(rendered.contains("wx-mapping"));
        assert!(rendered.contains("[1]"));
        let doc = Json::parse(&report.to_json().to_string()).expect("valid");
        assert_eq!(doc.get("clean").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn differential_disagreement_is_dirty() {
        let report = StaticAuditReport {
            differential: Some(DifferentialReport {
                static_findings: 1,
                incremental_violations: vec![],
                disagreements: vec!["static-only finding".to_string()],
            }),
            ..Default::default()
        };
        assert!(!report.is_clean());
    }
}
