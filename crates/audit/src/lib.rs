#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # hypernel-audit
//!
//! A static whole-system invariant auditor for the [Hypernel (DAC
//! 2018)][paper] reproduction, plus the seeding half of the
//! guest-memory ownership sanitizer.
//!
//! Hypersec verifies page-table updates *incrementally* — one
//! hypercall, one trapped register write at a time. A bug in that
//! verifier admits exactly the attacks Hypernel exists to stop, and no
//! amount of incremental checking can catch it. This crate is the
//! independent cross-check: from a **paused** machine it re-derives the
//! complete stage-1 mapping graph from first principles (every table
//! reachable from the live `TTBR0_EL1`/`TTBR1_EL1`, the kernel's own
//! bookkeeping, and Hypersec's verified root set), statically checks
//! every security invariant over the whole graph at once, and then
//! *differentially* compares its verdict against Hypersec's runtime
//! audit — any disagreement is a verifier bug (or an auditor gap) by
//! construction.
//!
//! Static invariants checked over the mapping graph:
//!
//! - **secure-reachable** — no stage-1 path maps the secure region;
//! - **wx-mapping** — no leaf is writable *and* executable;
//! - **linear-identity** — kernel-half leaves are identity mappings
//!   (double maps and ATRA-style aliases surface here);
//! - **text-writable** — kernel text is nowhere writable;
//! - **table-writable** — no live table page is writable (only while
//!   Hypersec is locked: an unprotected native kernel edits its own
//!   tables by design);
//! - **unverified-table** — every table reachable from Hypersec's roots
//!   is in its verified pool (locked only);
//! - **rogue-root** — the active `TTBR` roots are in the trusted root
//!   set;
//! - **watch-coverage** — every word of every registered monitored
//!   region has its MBM watch bit set and a non-cacheable kernel
//!   mapping;
//! - **malformed** — no table pointer sits at leaf level.
//!
//! The ownership sanitizer ([`sanitizer::seed_shadow`] +
//! [`hypernel_machine::shadow`]) is the dynamic complement: a shadow
//! tag per physical page, maintained by the kernel at allocation sites
//! and checked against a writer/tag policy on every store.
//!
//! All reads go through `Machine::debug_read_phys` — cache coherent,
//! zero simulated cycles, no architectural side effects — so auditing
//! never perturbs the simulation it inspects.
//!
//! [paper]: https://doi.org/10.1145/3195970.3196061

pub mod graph;
pub mod report;
pub mod sanitizer;

pub use graph::{chain_display, ChainLink, LeafRecord, MappingGraph, RootOrigin, RootSpec};
pub use report::{
    CheckKind, DifferentialReport, Finding, SanitizerReport, StaticAuditReport, AUDIT_SCHEMA,
    REPORT_KIND,
};
pub use sanitizer::seed_shadow;

use std::collections::HashSet;

use hypernel_hypersec::Hypersec;
use hypernel_kernel::{layout, Kernel};
use hypernel_machine::addr::PhysAddr;
use hypernel_machine::machine::Machine;
use hypernel_machine::regs::SysReg;

/// Runs the complete static audit pass over a paused system.
///
/// `kernel` supplies the kernel-known ground truth (its root, the
/// per-task user roots); `hypersec`, when present **and locked**, adds
/// the verified root/table pools, enables the strict table checks, and
/// arms the differential comparison against [`Hypersec::audit`]. The
/// ownership-sanitizer section is filled in when shadow tags are
/// enabled on the machine.
pub fn audit_system(
    m: &mut Machine,
    kernel: &Kernel,
    hypersec: Option<&Hypersec>,
) -> StaticAuditReport {
    let mut report = StaticAuditReport::default();
    let strict = hypersec.is_some_and(Hypersec::is_locked);

    let roots = collect_roots(m, kernel, hypersec);
    check_rogue_roots(&roots, kernel, hypersec, strict, &mut report);

    let graph = MappingGraph::walk(m, &roots);
    report.roots_walked = graph.roots.len() as u64;
    report.tables_walked = graph.tables.len() as u64;
    report.leaves_checked = graph.leaves.len() as u64;

    for (detail, chain) in &graph.malformed {
        report.finding(CheckKind::Malformed, detail.clone(), chain.clone());
    }
    check_leaves(&graph, &mut report);
    if strict {
        check_tables_ro(&graph, hypersec, &mut report);
        check_verified_pool(m, hypersec.expect("strict implies hypersec"), &mut report);
    }
    if let Some(hyp) = hypersec {
        check_watch_coverage(m, hyp, &graph, &mut report);
    }
    if strict {
        run_differential(m, hypersec.expect("strict implies hypersec"), &mut report);
    }
    if let Some(shadow) = m.shadow_tags() {
        report.sanitizer = Some(SanitizerReport {
            stats: shadow.stats(),
            violations: shadow.violations().to_vec(),
        });
    }
    report
}

/// Gathers every translation root the system knows about, deduplicated
/// with accumulated provenance. Order is deterministic: kernel-known
/// kernel root, active `TTBR1`, Hypersec's kernel root, kernel-known
/// user roots, active `TTBR0`, Hypersec's verified roots.
fn collect_roots(m: &Machine, kernel: &Kernel, hypersec: Option<&Hypersec>) -> Vec<RootSpec> {
    fn push(roots: &mut Vec<RootSpec>, pa: PhysAddr, kernel_space: bool, origin: RootOrigin) {
        if pa.raw() == 0 {
            return; // an unset TTBR, not a root
        }
        match roots.iter_mut().find(|r| r.pa == pa) {
            Some(existing) => {
                if !existing.origins.contains(&origin) {
                    existing.origins.push(origin);
                }
            }
            None => roots.push(RootSpec {
                pa,
                kernel_space,
                origins: vec![origin],
            }),
        }
    }

    let mut roots = Vec::new();
    push(
        &mut roots,
        kernel.kernel_root(),
        true,
        RootOrigin::KernelKnown,
    );
    if m.regs().stage1_enabled() {
        push(
            &mut roots,
            graph::ttbr_base(m.regs().read(SysReg::TTBR1_EL1)),
            true,
            RootOrigin::ActiveTtbr1,
        );
    }
    if let Some(hyp) = hypersec {
        if let Some(root) = hyp.kernel_root() {
            push(&mut roots, root, true, RootOrigin::HypervisorVerified);
        }
    }
    for pa in kernel.user_roots() {
        push(&mut roots, pa, false, RootOrigin::KernelKnown);
    }
    if m.regs().stage1_enabled() {
        push(
            &mut roots,
            graph::ttbr_base(m.regs().read(SysReg::TTBR0_EL1)),
            false,
            RootOrigin::ActiveTtbr0,
        );
    }
    for pa in hypersec.map(Hypersec::verified_roots).unwrap_or_default() {
        push(&mut roots, pa, false, RootOrigin::HypervisorVerified);
    }
    roots
}

/// The active `TTBR` roots must come from the trusted set: Hypersec's
/// verified roots once locked, otherwise the kernel's own bookkeeping.
/// (Kernel-known user roots are *not* checked against Hypersec's pool —
/// a freshly spawned task's root may legitimately await its first
/// verified switch.)
fn check_rogue_roots(
    roots: &[RootSpec],
    kernel: &Kernel,
    hypersec: Option<&Hypersec>,
    strict: bool,
    report: &mut StaticAuditReport,
) {
    let trusted: HashSet<u64> = if strict {
        let hyp = hypersec.expect("strict implies hypersec");
        hyp.kernel_root()
            .into_iter()
            .chain(hyp.verified_roots())
            .map(|r| r.raw())
            .collect()
    } else {
        std::iter::once(kernel.kernel_root())
            .chain(kernel.user_roots())
            .map(|r| r.raw())
            .collect()
    };
    for root in roots {
        let active = root
            .origins
            .iter()
            .any(|o| matches!(o, RootOrigin::ActiveTtbr0 | RootOrigin::ActiveTtbr1));
        if active && !trusted.contains(&root.pa.raw()) {
            let origins: Vec<&str> = root.origins.iter().map(|o| o.name()).collect();
            report.finding(
                CheckKind::RogueRoot,
                format!(
                    "active root {} ({}) is not in the trusted root set",
                    root.pa,
                    origins.join(", ")
                ),
                Vec::new(),
            );
        }
    }
}

/// The per-leaf invariants: secure unreachability, W^X, kernel linear
/// identity, kernel text never writable.
fn check_leaves(graph: &MappingGraph, report: &mut StaticAuditReport) {
    let image_end = layout::KERNEL_IMAGE_BASE + layout::KERNEL_IMAGE_SIZE;
    for leaf in &graph.leaves {
        if leaf.out.raw() + leaf.span > layout::SECURE_BASE {
            report.finding(
                CheckKind::SecureReachable,
                format!(
                    "leaf at va {:#x} maps secure memory ({})",
                    leaf.va, leaf.out
                ),
                leaf.chain.clone(),
            );
        }
        if leaf.perms.write && leaf.perms.exec {
            report.finding(
                CheckKind::WxMapping,
                format!(
                    "writable+executable leaf at va {:#x} -> {}",
                    leaf.va, leaf.out
                ),
                leaf.chain.clone(),
            );
        }
        if leaf.kernel_space && leaf.va != leaf.out.raw() {
            report.finding(
                CheckKind::LinearIdentity,
                format!(
                    "kernel linear leaf not identity: va {:#x} -> {}",
                    leaf.va, leaf.out
                ),
                leaf.chain.clone(),
            );
        }
        if leaf.perms.write
            && leaf.out.raw() < image_end
            && leaf.out.raw() + leaf.span > layout::KERNEL_IMAGE_BASE
        {
            report.finding(
                CheckKind::TextWritable,
                format!("kernel text writable at va {:#x} -> {}", leaf.va, leaf.out),
                leaf.chain.clone(),
            );
        }
    }
}

/// No writable leaf may cover a live table page (the union of the
/// graph's reachable tables and Hypersec's verified pool). Only
/// meaningful under a locked Hypersec — a native kernel writes its own
/// tables through its linear map by design.
fn check_tables_ro(
    graph: &MappingGraph,
    hypersec: Option<&Hypersec>,
    report: &mut StaticAuditReport,
) {
    let mut tables: Vec<u64> = graph.tables.iter().map(|t| t.raw()).collect();
    if let Some(hyp) = hypersec {
        tables.extend(hyp.verified_tables().iter().map(|t| t.raw()));
    }
    tables.sort_unstable();
    tables.dedup();
    for leaf in graph.leaves.iter().filter(|l| l.perms.write) {
        let start = tables.partition_point(|&t| t < leaf.out.raw());
        for &table in tables[start..]
            .iter()
            .take_while(|&&t| t < leaf.out.raw() + leaf.span)
        {
            report.finding(
                CheckKind::TableWritable,
                format!(
                    "table page {} is writable via va {:#x}",
                    PhysAddr::new(table),
                    leaf.va + (table - leaf.out.raw())
                ),
                leaf.chain.clone(),
            );
        }
    }
}

/// Every table reachable from Hypersec's registered roots must be in
/// its verified pool — the exact invariant the incremental runtime
/// audit re-checks, so both sides flag the same tables.
fn check_verified_pool(m: &mut Machine, hyp: &Hypersec, report: &mut StaticAuditReport) {
    let mut roots = Vec::new();
    if let Some(root) = hyp.kernel_root() {
        roots.push(RootSpec {
            pa: root,
            kernel_space: true,
            origins: vec![RootOrigin::HypervisorVerified],
        });
    }
    for pa in hyp.verified_roots() {
        roots.push(RootSpec {
            pa,
            kernel_space: false,
            origins: vec![RootOrigin::HypervisorVerified],
        });
    }
    let reachable = MappingGraph::walk(m, &roots);
    let verified: HashSet<u64> = hyp.verified_tables().iter().map(|t| t.raw()).collect();
    for table in &reachable.tables {
        if !verified.contains(&table.raw()) {
            report.finding(
                CheckKind::UnverifiedTable,
                format!("reachable table {table} is not in the verified pool"),
                Vec::new(),
            );
        }
    }
}

/// Every word of every registered monitored region must have its watch
/// bit set, and the region's kernel mapping must exist and be
/// non-cacheable (a cacheable mapping hides writes from the bus, and
/// therefore from the MBM).
fn check_watch_coverage(
    m: &mut Machine,
    hyp: &Hypersec,
    graph: &MappingGraph,
    report: &mut StaticAuditReport,
) {
    for region in hyp.regions() {
        report.regions_checked += 1;
        let covering: Vec<&LeafRecord> = graph
            .leaves_over(region.pa.raw(), region.len)
            .filter(|l| l.kernel_space)
            .collect();
        if covering.is_empty() {
            report.finding(
                CheckKind::WatchCoverage,
                format!(
                    "monitored region sid {} at {} has no kernel mapping",
                    region.sid, region.base_va
                ),
                Vec::new(),
            );
        }
        for leaf in covering {
            if leaf.perms.cacheable {
                report.finding(
                    CheckKind::WatchCoverage,
                    format!(
                        "monitored region sid {} at {} is mapped cacheable (va {:#x})",
                        region.sid, region.base_va, leaf.va
                    ),
                    leaf.chain.clone(),
                );
            }
        }
        let coverage = hyp
            .config()
            .bitmap
            .coverage(region.pa, region.len, |pa| m.debug_read_phys(pa));
        if !coverage.is_full() {
            let mut detail = format!(
                "monitored region sid {} at {}: {}/{} words watched",
                region.sid, region.base_va, coverage.watched, coverage.words
            );
            if let Some(first) = coverage.unwatched.first() {
                detail.push_str(&format!(", first unwatched {first}"));
            }
            if let Some(first) = coverage.outside_window.first() {
                detail.push_str(&format!(", first outside window {first}"));
            }
            report.finding(CheckKind::WatchCoverage, detail, Vec::new());
        }
    }
}

/// Runs Hypersec's incremental runtime audit and compares verdicts.
/// The comparison is on the *verdict*, not the phrasing: both analyses
/// must agree on whether the system is dirty. A static-only finding
/// means the incremental verifier admitted something it should not
/// have (a verifier bug); an incremental-only violation means the
/// static pass has a gap.
fn run_differential(m: &mut Machine, hyp: &Hypersec, report: &mut StaticAuditReport) {
    let incremental = hyp.audit(m);
    let mut diff = DifferentialReport {
        static_findings: report.findings.len() as u64,
        incremental_violations: incremental.violations.clone(),
        disagreements: Vec::new(),
    };
    let static_dirty = !report.findings.is_empty();
    let incremental_dirty = !incremental.violations.is_empty();
    if static_dirty && !incremental_dirty {
        for finding in &report.findings {
            diff.disagreements.push(format!("static-only: {finding}"));
        }
    } else if incremental_dirty && !static_dirty {
        for violation in &incremental.violations {
            diff.disagreements
                .push(format!("incremental-only: {violation}"));
        }
    }
    report.differential = Some(diff);
}
