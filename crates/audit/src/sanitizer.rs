//! Seeding the guest-memory ownership sanitizer.
//!
//! The shadow-tag store itself lives in `hypernel-machine`
//! ([`hypernel_machine::shadow`]) so the physical-access chokepoint can
//! consult it with zero simulated cost. *Classifying* every DRAM page,
//! however, needs whole-system knowledge — the platform layout, the
//! kernel's frame allocator, its live page tables and the MBM geometry
//! — none of which the machine crate may depend on. This module owns
//! that classification: [`seed_shadow`] builds a fully-tagged
//! [`ShadowTags`] from a paused system, after which the kernel keeps
//! the tags current at its allocation and mapping sites.

use hypernel_kernel::{layout, Kernel};
use hypernel_machine::addr::{PhysAddr, PAGE_SIZE};
use hypernel_machine::machine::Machine;
use hypernel_machine::shadow::{PageTag, ShadowTags, TagPolicy};
use hypernel_mbm::monitor::MbmConfig;

use crate::graph::{MappingGraph, RootOrigin, RootSpec};

/// Classifies every DRAM page of a paused system and returns the
/// seeded shadow-tag store, ready for
/// [`Machine::set_shadow_tags`](hypernel_machine::machine::Machine).
///
/// Classification order (later rules override earlier ones):
///
/// 1. everything starts `Free`;
/// 2. the kernel image is `KernelText`;
/// 3. the secure region (Hypersec private heap included) is
///    `SecureRegion`;
/// 4. the MBM's bitmap storage and event ring are `Mmio` (they sit
///    inside the secure region but are written by the device, not
///    Hypersec);
/// 5. live translation tables reachable from the kernel-known roots are
///    `PageTable`, and frames mapped by user-half leaves are
///    `UserData`;
/// 6. every other frame-pool page below the allocator's bump watermark
///    has been handed out at least once and is kernel heap
///    (`KernelData`) — slabs, stacks, page cache, file data;
/// 7. frames sitting on the allocator's free list are `Free` again.
pub fn seed_shadow(
    m: &mut Machine,
    kernel: &Kernel,
    policy: TagPolicy,
    mbm: Option<&MbmConfig>,
) -> Box<ShadowTags> {
    let dram = m.dram_size();
    let mut tags = Box::new(ShadowTags::new(dram, policy));
    tags.tag_range(
        PhysAddr::new(layout::KERNEL_IMAGE_BASE),
        layout::KERNEL_IMAGE_SIZE,
        PageTag::KernelText,
    );
    if dram > layout::SECURE_BASE {
        tags.tag_range(
            PhysAddr::new(layout::SECURE_BASE),
            dram - layout::SECURE_BASE,
            PageTag::SecureRegion,
        );
    }
    if let Some(cfg) = mbm {
        tags.tag_range(
            cfg.bitmap.bitmap_base(),
            cfg.bitmap.bitmap_bytes(),
            PageTag::Mmio,
        );
        tags.tag_range(cfg.ring.base(), cfg.ring.bytes(), PageTag::Mmio);
    }

    let mut roots = vec![RootSpec {
        pa: kernel.kernel_root(),
        kernel_space: true,
        origins: vec![RootOrigin::KernelKnown],
    }];
    for pa in kernel.user_roots() {
        roots.push(RootSpec {
            pa,
            kernel_space: false,
            origins: vec![RootOrigin::KernelKnown],
        });
    }
    let graph = MappingGraph::walk(m, &roots);
    for table in &graph.tables {
        tags.tag_page(*table, PageTag::PageTable);
    }
    for leaf in graph.leaves.iter().filter(|l| !l.kernel_space) {
        tags.tag_range(leaf.out, leaf.span, PageTag::UserData);
    }

    // The kernel linear map covers the whole frame pool, so kernel-half
    // leaves say nothing about ownership; the bump watermark does —
    // every page below it was handed out by the frame allocator at
    // least once.
    let watermark = kernel.frames_watermark().raw().min(layout::FRAME_POOL_END);
    let mut pa = PhysAddr::new(layout::FRAME_POOL_BASE);
    while pa.raw() < watermark {
        if tags.tag_of(pa) == PageTag::Free {
            tags.tag_page(pa, PageTag::KernelData);
        }
        pa = pa.add(PAGE_SIZE);
    }
    for frame in kernel.free_frames() {
        tags.tag_page(*frame, PageTag::Free);
    }
    tags
}
