//! The snapshot walker: from a paused machine, rebuild the full
//! stage-1 mapping graph reachable from a set of translation roots.
//!
//! The walker reads descriptors with `Machine::debug_read_phys` (cache
//! coherent, zero simulated cycles, no architectural effect), records
//! the *descriptor chain* that reaches every leaf — `(table, index)`
//! links from the root down — and is cycle-safe: a table revisited
//! along one root's walk is not descended into again, so a maliciously
//! self-referencing table terminates instead of recursing forever.

use std::collections::HashSet;

use hypernel_machine::addr::PhysAddr;
use hypernel_machine::machine::Machine;
use hypernel_machine::pagetable::{desc, Descriptor, PagePerms, ENTRIES_PER_TABLE};

/// How a root entered the walk — provenance shown in findings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RootOrigin {
    /// The live `TTBR1_EL1` value (kernel half).
    ActiveTtbr1,
    /// The live `TTBR0_EL1` value (user half, ASID stripped).
    ActiveTtbr0,
    /// A root the kernel's own bookkeeping knows about.
    KernelKnown,
    /// A root in Hypersec's verified set.
    HypervisorVerified,
}

impl RootOrigin {
    /// Stable lower-case name for diagnostics and JSON.
    pub fn name(self) -> &'static str {
        match self {
            RootOrigin::ActiveTtbr1 => "active-ttbr1",
            RootOrigin::ActiveTtbr0 => "active-ttbr0",
            RootOrigin::KernelKnown => "kernel-known",
            RootOrigin::HypervisorVerified => "hypervisor-verified",
        }
    }
}

/// One translation root fed to the walker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RootSpec {
    /// Physical address of the level-0 table.
    pub pa: PhysAddr,
    /// `true` for the kernel half (linear-identity rules apply).
    pub kernel_space: bool,
    /// Every provenance this root was seen with (deduplicated).
    pub origins: Vec<RootOrigin>,
}

/// One `(table, index)` step of a descriptor chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChainLink {
    /// Physical address of the table page holding the descriptor.
    pub table: PhysAddr,
    /// Entry index within the table (0..512).
    pub index: u64,
}

impl std::fmt::Display for ChainLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}]", self.table, self.index)
    }
}

/// Renders a descriptor chain as `root[i] -> table[j] -> ...`.
pub fn chain_display(chain: &[ChainLink]) -> String {
    chain
        .iter()
        .map(ChainLink::to_string)
        .collect::<Vec<_>>()
        .join(" -> ")
}

/// One reachable leaf mapping with its full provenance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeafRecord {
    /// The root this leaf was reached from.
    pub root: PhysAddr,
    /// Whether that root is a kernel-half root.
    pub kernel_space: bool,
    /// Virtual address the leaf maps.
    pub va: u64,
    /// Output physical address.
    pub out: PhysAddr,
    /// Bytes covered (4 KiB page or a 2 MiB / 1 GiB block).
    pub span: u64,
    /// Decoded permissions.
    pub perms: PagePerms,
    /// Descriptor chain from the root to this leaf.
    pub chain: Vec<ChainLink>,
}

/// The reconstructed mapping graph of a paused machine.
#[derive(Clone, Debug, Default)]
pub struct MappingGraph {
    /// The roots that were walked, in walk order.
    pub roots: Vec<RootSpec>,
    /// Every table page visited, sorted and deduplicated.
    pub tables: Vec<PhysAddr>,
    /// Every reachable leaf, in deterministic walk order.
    pub leaves: Vec<LeafRecord>,
    /// Structurally malformed descriptors (table pointer at leaf
    /// level), each with the offending chain.
    pub malformed: Vec<(String, Vec<ChainLink>)>,
}

impl MappingGraph {
    /// Walks every root and returns the graph. Deterministic: roots are
    /// walked in the order given, entries in index order.
    pub fn walk(m: &mut Machine, roots: &[RootSpec]) -> Self {
        let mut graph = MappingGraph {
            roots: roots.to_vec(),
            ..MappingGraph::default()
        };
        let mut tables: HashSet<u64> = HashSet::new();
        for root in roots {
            let mut visited: HashSet<u64> = HashSet::new();
            walk_table(
                m,
                root,
                root.pa,
                0,
                0,
                &mut Vec::new(),
                &mut visited,
                &mut tables,
                &mut graph,
            );
        }
        let mut sorted: Vec<PhysAddr> = tables.into_iter().map(PhysAddr::new).collect();
        sorted.sort();
        graph.tables = sorted;
        graph
    }

    /// Leaves whose span overlaps `[base, base + len)`.
    pub fn leaves_over(&self, base: u64, len: u64) -> impl Iterator<Item = &LeafRecord> {
        self.leaves
            .iter()
            .filter(move |l| l.out.raw() < base + len && l.out.raw() + l.span > base)
    }
}

fn level_shift(level: u32) -> u32 {
    12 + 9 * (3 - level)
}

#[allow(clippy::too_many_arguments)] // internal recursion carries the whole walk state
fn walk_table(
    m: &mut Machine,
    root: &RootSpec,
    table: PhysAddr,
    level: u32,
    va_base: u64,
    chain: &mut Vec<ChainLink>,
    visited: &mut HashSet<u64>,
    tables: &mut HashSet<u64>,
    graph: &mut MappingGraph,
) {
    if !visited.insert(table.raw()) {
        return; // cycle (or diamond) — already walked under this root
    }
    tables.insert(table.raw());
    for i in 0..ENTRIES_PER_TABLE as u64 {
        let raw = m.debug_read_phys(table.add(i * 8));
        let va = va_base | i << level_shift(level);
        chain.push(ChainLink { table, index: i });
        match Descriptor::decode(raw, level) {
            Descriptor::Invalid => {}
            Descriptor::Table { next } => {
                if level >= 3 {
                    graph.malformed.push((
                        format!("table pointer at leaf level, va {va:#x}"),
                        chain.clone(),
                    ));
                } else {
                    walk_table(m, root, next, level + 1, va, chain, visited, tables, graph);
                }
            }
            Descriptor::Leaf { out, perms } => {
                graph.leaves.push(LeafRecord {
                    root: root.pa,
                    kernel_space: root.kernel_space,
                    va,
                    out,
                    span: 1u64 << level_shift(level),
                    perms,
                    chain: chain.clone(),
                });
            }
        }
        chain.pop();
    }
}

/// Strips the ASID field from a raw `TTBRn_EL1` value, leaving the
/// table base.
pub fn ttbr_base(raw: u64) -> PhysAddr {
    PhysAddr::new(raw & desc::ADDR_MASK)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypernel_machine::machine::MachineConfig;
    use hypernel_machine::pagetable::desc as d;

    fn machine() -> Machine {
        Machine::new(MachineConfig {
            dram_size: 8 << 20,
            ..MachineConfig::default()
        })
    }

    fn table_desc(next: u64) -> u64 {
        next | d::VALID | d::TABLE
    }

    #[test]
    fn walks_chain_and_records_leaf() {
        let mut m = machine();
        // root(0x1000) -> l1(0x2000) -> l2(0x3000) -> l3(0x4000) -> page 0x5000
        for t in [0x1000u64, 0x2000, 0x3000, 0x4000] {
            m.debug_zero_page(PhysAddr::new(t));
        }
        m.debug_write_phys(PhysAddr::new(0x1000), table_desc(0x2000));
        m.debug_write_phys(PhysAddr::new(0x2000), table_desc(0x3000));
        m.debug_write_phys(PhysAddr::new(0x3000), table_desc(0x4000));
        let leaf = Descriptor::Leaf {
            out: PhysAddr::new(0x5000),
            perms: PagePerms::KERNEL_DATA,
        }
        .encode();
        m.debug_write_phys(PhysAddr::new(0x4000 + 7 * 8), leaf);
        let roots = [RootSpec {
            pa: PhysAddr::new(0x1000),
            kernel_space: true,
            origins: vec![RootOrigin::ActiveTtbr1],
        }];
        let g = MappingGraph::walk(&mut m, &roots);
        assert_eq!(g.tables.len(), 4);
        assert_eq!(g.leaves.len(), 1);
        let l = &g.leaves[0];
        assert_eq!(l.out, PhysAddr::new(0x5000));
        assert_eq!(l.va, 7 << 12);
        assert_eq!(l.span, 4096);
        assert_eq!(l.chain.len(), 4);
        assert_eq!(l.chain[3].index, 7);
        assert!(chain_display(&l.chain).contains("[7]"));
    }

    #[test]
    fn self_referencing_table_terminates() {
        let mut m = machine();
        m.debug_zero_page(PhysAddr::new(0x1000));
        // Entry 0 points back at the table itself.
        m.debug_write_phys(PhysAddr::new(0x1000), table_desc(0x1000));
        let roots = [RootSpec {
            pa: PhysAddr::new(0x1000),
            kernel_space: false,
            origins: vec![RootOrigin::ActiveTtbr0],
        }];
        let g = MappingGraph::walk(&mut m, &roots);
        assert_eq!(g.tables.len(), 1);
        assert!(g.leaves.is_empty());
    }

    #[test]
    fn ttbr_base_strips_asid() {
        assert_eq!(ttbr_base(0x0005_0000_0000_3000), PhysAddr::new(0x3000),);
    }
}
