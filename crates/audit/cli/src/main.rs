//! `hypernel-audit` — static whole-system invariant auditor.
//!
//! ```text
//! hypernel-audit corpus <dir> [--seed N] [--sanitize]
//! hypernel-audit scenario <file> [--mode native|kvm|hypernel] [--seed N]
//!                                [--sanitize] [--json <file>]
//! ```
//!
//! Both commands run a campaign scenario to completion and then audit
//! the *final* state from scratch: every stage-1 table reachable from
//! the active and hypervisor-known roots is walked and the protected
//! invariants are checked statically, independent of the incremental
//! verdict Hypersec accumulated during the run (the two are compared —
//! any disagreement is a verifier bug and always fails).

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use hypernel::audit::StaticAuditReport;
use hypernel::Mode;
use hypernel_campaign::engine::{boot_system, run_one_full, EngineError};
use hypernel_campaign::scenario::Scenario;

const USAGE: &str = "\
hypernel-audit — static whole-system invariant auditor for Hypernel

USAGE:
  hypernel-audit corpus <dir> [--seed N] [--sanitize]
      Runs every scenario in <dir> to completion and statically audits
      its final state. Under Hypernel any finding (or a differential
      disagreement with the incremental verifier, in any mode) fails;
      under native/kvm findings are reported as the attack's footprint.
      Exits 2 on failure.
  hypernel-audit scenario <file> [--mode native|kvm|hypernel] [--seed N]
                                 [--sanitize] [--json <file>]
      Runs one scenario (optionally forcing the mode) and prints the
      full audit report as JSON. Exits 2 when the report is not clean.

  --sanitize  Enable the guest-memory ownership sanitizer before the
              run; its per-write verdicts land in the report.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "corpus" => cmd_corpus(&args[1..]),
        "scenario" => cmd_scenario(&args[1..]),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("hypernel-audit: {message}");
            ExitCode::FAILURE
        }
    }
}

struct Options {
    positional: Vec<String>,
    seed: u64,
    sanitize: bool,
    mode: Option<Mode>,
    json: Option<String>,
}

fn parse_options(rest: &[String]) -> Result<Options, String> {
    let mut options = Options {
        positional: Vec::new(),
        seed: 0,
        sanitize: false,
        mode: None,
        json: None,
    };
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--sanitize" => options.sanitize = true,
            "--seed" => {
                let value = iter.next().ok_or("`--seed` needs a value")?;
                options.seed = value
                    .parse()
                    .map_err(|_| format!("`--seed`: invalid number `{value}`"))?;
            }
            "--mode" => {
                let value = iter.next().ok_or("`--mode` needs a value")?;
                options.mode = Some(match value.as_str() {
                    "native" => Mode::Native,
                    "kvm" => Mode::KvmGuest,
                    "hypernel" => Mode::Hypernel,
                    other => {
                        return Err(format!(
                            "`--mode`: unknown mode `{other}` (native | kvm | hypernel)"
                        ))
                    }
                });
            }
            "--json" => {
                let value = iter.next().ok_or("`--json` needs a value")?;
                options.json = Some(value.clone());
            }
            flag if flag.starts_with("--") => return Err(format!("unknown option `{flag}`")),
            positional => options.positional.push(positional.to_string()),
        }
    }
    Ok(options)
}

/// Runs `scenario` to completion and statically audits the final state.
fn audit_scenario(
    scenario: &Scenario,
    seed: u64,
    sanitize: bool,
) -> Result<StaticAuditReport, EngineError> {
    let mut sys = boot_system(scenario)?;
    if sanitize {
        sys.enable_sanitizer();
    }
    let (_record, _faults, mut sys) = run_one_full(sys, scenario, seed)?;
    Ok(sys.audit_static())
}

/// The gate: what fails a corpus audit. Under Hypernel the invariants
/// must hold outright; in the baseline modes findings are the expected
/// footprint of a successful attack, but a static-vs-incremental
/// disagreement is a verifier bug in any mode.
fn gate_failure(mode: Mode, report: &StaticAuditReport) -> Option<String> {
    if let Some(diff) = &report.differential {
        if !diff.agrees() {
            return Some(format!(
                "static/incremental disagreement: {}",
                diff.disagreements.join("; ")
            ));
        }
    }
    if mode == Mode::Hypernel && !report.is_clean() {
        let first = report
            .findings
            .first()
            .map(ToString::to_string)
            .unwrap_or_else(|| "sanitizer denial".to_string());
        return Some(format!(
            "{} finding(s) under Hypernel; first: {first}",
            report.findings.len()
        ));
    }
    None
}

fn load_corpus(dir: &str) -> Result<Vec<Scenario>, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read corpus dir `{dir}`: {e}"))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no `*.toml` scenarios in `{dir}`"));
    }
    let mut scenarios = Vec::with_capacity(paths.len());
    for path in &paths {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
        let scenario =
            Scenario::from_toml(&text).map_err(|e| format!("`{}`: {e}", path.display()))?;
        scenarios.push(scenario);
    }
    Ok(scenarios)
}

fn summary_line(scenario: &Scenario, report: &StaticAuditReport) -> String {
    let differential = match &report.differential {
        Some(d) if d.agrees() => "  differential agrees",
        Some(_) => "  differential DISAGREES",
        None => "",
    };
    format!(
        "{:<28} {:<10} roots {:>2}  tables {:>3}  leaves {:>5}  findings {:>2}{differential}",
        scenario.name,
        scenario.mode.to_string(),
        report.roots_walked,
        report.tables_walked,
        report.leaves_checked,
        report.findings.len(),
    )
}

fn cmd_corpus(rest: &[String]) -> Result<ExitCode, String> {
    let options = parse_options(rest)?;
    let [dir] = options.positional.as_slice() else {
        return Err("`corpus` needs exactly one directory argument".to_string());
    };
    if options.mode.is_some() || options.json.is_some() {
        return Err("`--mode` and `--json` only apply to `scenario`".to_string());
    }
    let scenarios = load_corpus(dir)?;
    let mut failures = 0usize;
    for scenario in &scenarios {
        let report = match audit_scenario(scenario, options.seed, options.sanitize) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("{:<28} ERROR: {e}", scenario.name);
                failures += 1;
                continue;
            }
        };
        eprintln!("{}", summary_line(scenario, &report));
        if let Some(why) = gate_failure(scenario.mode, &report) {
            eprintln!("{:<28} FAILED: {why}", scenario.name);
            for finding in &report.findings {
                eprintln!("  {finding}");
            }
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!(
            "audit FAILED: {failures} of {} scenario(s)",
            scenarios.len()
        );
        return Ok(ExitCode::from(2));
    }
    eprintln!(
        "audit passed: {} scenario(s), seed {}",
        scenarios.len(),
        options.seed
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_scenario(rest: &[String]) -> Result<ExitCode, String> {
    let options = parse_options(rest)?;
    let [file] = options.positional.as_slice() else {
        return Err("`scenario` needs exactly one file argument".to_string());
    };
    let text = std::fs::read_to_string(file).map_err(|e| format!("cannot read `{file}`: {e}"))?;
    let mut scenario = Scenario::from_toml(&text).map_err(|e| format!("`{file}`: {e}"))?;
    if let Some(mode) = options.mode {
        scenario.mode = mode;
    }
    let report = audit_scenario(&scenario, options.seed, options.sanitize)
        .map_err(|e| format!("`{}`: {e}", scenario.name))?;
    eprintln!("{}", summary_line(&scenario, &report));
    for finding in &report.findings {
        eprintln!("  {finding}");
    }
    let json = format!("{}\n", report.to_json());
    match &options.json {
        Some(path) => {
            if let Some(parent) = Path::new(path).parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent)
                        .map_err(|e| format!("cannot create `{}`: {e}", parent.display()))?;
                }
            }
            std::fs::write(path, &json).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            eprintln!("wrote audit report to {path}");
        }
        None => print!("{json}"),
    }
    if report.is_clean() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::from(2))
    }
}
