//! The declarative system-description model.
//!
//! A [`ComposeDoc`] is the parsed form of the `[compose]` /
//! `[[domain]]` / `[[channel]]` / `[[region]]` sections of a
//! description file (either standalone or embedded in a campaign
//! scenario). Parsing follows the campaign loader's discipline: it is
//! *lenient* about unknown keys (the linter flags them) but *strict*
//! about the values of known keys, and [`ComposeDoc::to_toml`] is the
//! exact inverse of [`ComposeDoc::from_doc`] so descriptions round-trip
//! byte-for-byte through the model.

use std::fmt;

use hypernel_kernel::compose::MAX_CHANNELS;
use hypernel_kernel::DomainRole;
use hypernel_machine::addr::PAGE_SIZE;

use crate::toml::{TomlTable, TomlValue};

/// One declared protection domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainDecl {
    /// Unique domain name (referenced by channels and regions).
    pub name: String,
    /// Passive server or client task.
    pub role: DomainRole,
    /// Scheduling priority metadata.
    pub priority: u64,
    /// Number of kernel tasks backing the domain (≥ 1).
    pub tasks: u64,
}

/// One declared channel between two domains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelDecl {
    /// Unique channel name.
    pub name: String,
    /// Sending domain.
    pub from: String,
    /// Receiving domain.
    pub to: String,
    /// Declared queue capacity metadata (≥ 1).
    pub capacity: u64,
}

/// One declared shared memory region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionDecl {
    /// Unique region name.
    pub name: String,
    /// Owning domain (maps the region writable-owned).
    pub owner: String,
    /// Domains the region is shared into (besides the owner).
    pub share: Vec<String>,
    /// Region size in pages (≥ 1).
    pub pages: u64,
    /// Whether the derived watch set covers the region.
    pub protect: bool,
    /// Explicit base virtual address, or `None` for automatic
    /// assignment from the compose window.
    pub va: Option<u64>,
}

/// A complete system description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComposeDoc {
    /// Whether lowering arms the derived watch set (`[compose] watch`,
    /// default `true`; registration still requires the mode to have
    /// monitor hooks).
    pub watch: bool,
    /// Declared domains, in file order.
    pub domains: Vec<DomainDecl>,
    /// Declared channels, in file order.
    pub channels: Vec<ChannelDecl>,
    /// Declared regions, in file order.
    pub regions: Vec<RegionDecl>,
}

impl Default for ComposeDoc {
    fn default() -> Self {
        Self {
            watch: true,
            domains: Vec::new(),
            channels: Vec::new(),
            regions: Vec::new(),
        }
    }
}

/// A description parsing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComposeError {
    /// Human-readable cause, innermost first.
    pub message: String,
}

impl ComposeError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    fn context(self, outer: impl fmt::Display) -> Self {
        Self {
            message: format!("{outer}: {}", self.message),
        }
    }
}

impl fmt::Display for ComposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ComposeError {}

fn require_str(t: &TomlTable, key: &str) -> Result<String, ComposeError> {
    t.get_str(key)
        .map(str::to_string)
        .ok_or_else(|| ComposeError::new(format!("missing `{key}`")))
}

impl ComposeDoc {
    /// Extracts the compose sections from a parsed document, or `None`
    /// when the document declares nothing compose-related.
    ///
    /// # Errors
    ///
    /// Returns a [`ComposeError`] for missing required fields or
    /// unknown enum values. Structural problems (dangling references,
    /// overlaps) are left to [`ComposeDoc::validate`] so lenient
    /// loading matches the campaign loader's discipline.
    pub fn from_doc(doc: &TomlTable) -> Result<Option<Self>, ComposeError> {
        let present = doc.table("compose").is_some()
            || !doc.array("domain").is_empty()
            || !doc.array("channel").is_empty()
            || !doc.array("region").is_empty();
        if !present {
            return Ok(None);
        }
        let mut out = Self::default();
        if let Some(t) = doc.table("compose") {
            out.watch = t.get_bool("watch").unwrap_or(true);
        }
        for (i, t) in doc.array("domain").iter().enumerate() {
            let decl = parse_domain(t).map_err(|e| e.context(format!("domain {}", i + 1)))?;
            out.domains.push(decl);
        }
        for (i, t) in doc.array("channel").iter().enumerate() {
            let decl = parse_channel(t).map_err(|e| e.context(format!("channel {}", i + 1)))?;
            out.channels.push(decl);
        }
        for (i, t) in doc.array("region").iter().enumerate() {
            let decl = parse_region(t).map_err(|e| e.context(format!("region {}", i + 1)))?;
            out.regions.push(decl);
        }
        Ok(Some(out))
    }

    /// Parses a standalone description file (which must declare at
    /// least one compose section).
    ///
    /// # Errors
    ///
    /// Returns a [`ComposeError`] for syntax errors, missing compose
    /// sections, or field errors.
    pub fn from_toml(input: &str) -> Result<Self, ComposeError> {
        let doc = crate::toml::parse(input).map_err(|e| ComposeError::new(e.to_string()))?;
        Self::from_doc(&doc)?
            .ok_or_else(|| ComposeError::new("no compose sections ([compose] / [[domain]] / ...)"))
    }

    /// Serializes the description back into its TOML form, emitting
    /// only keys the linter knows and only non-default values. Exact
    /// inverse of [`ComposeDoc::from_doc`], and a fixpoint:
    /// re-emitting a parsed emission reproduces it byte-for-byte.
    pub fn to_toml(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "[compose]");
        let _ = writeln!(out, "watch = {}", self.watch);
        for d in &self.domains {
            let _ = writeln!(out, "\n[[domain]]");
            let _ = writeln!(out, "name = {}", toml_str(&d.name));
            let _ = writeln!(out, "role = \"{}\"", d.role.name());
            if d.priority != 0 {
                let _ = writeln!(out, "priority = {}", d.priority);
            }
            if d.tasks != 1 {
                let _ = writeln!(out, "tasks = {}", d.tasks);
            }
        }
        for c in &self.channels {
            let _ = writeln!(out, "\n[[channel]]");
            let _ = writeln!(out, "name = {}", toml_str(&c.name));
            let _ = writeln!(out, "from = {}", toml_str(&c.from));
            let _ = writeln!(out, "to = {}", toml_str(&c.to));
            if c.capacity != 16 {
                let _ = writeln!(out, "capacity = {}", c.capacity);
            }
        }
        for r in &self.regions {
            let _ = writeln!(out, "\n[[region]]");
            let _ = writeln!(out, "name = {}", toml_str(&r.name));
            let _ = writeln!(out, "owner = {}", toml_str(&r.owner));
            if !r.share.is_empty() {
                let items: Vec<String> = r.share.iter().map(|s| toml_str(s)).collect();
                let _ = writeln!(out, "share = [{}]", items.join(", "));
            }
            if r.pages != 1 {
                let _ = writeln!(out, "pages = {}", r.pages);
            }
            if r.protect {
                let _ = writeln!(out, "protect = true");
            }
            if let Some(va) = r.va {
                let _ = writeln!(out, "va = 0x{va:X}");
            }
        }
        out
    }

    /// Structural validation: every problem found, in a stable order.
    /// An empty result means the description lowers cleanly on any
    /// booted kernel with enough frames.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.domains.is_empty() {
            problems.push("compose: declares no domains".to_string());
        }
        check_duplicates(
            &mut problems,
            "domain",
            self.domains.iter().map(|d| &d.name),
        );
        check_duplicates(
            &mut problems,
            "channel",
            self.channels.iter().map(|c| &c.name),
        );
        check_duplicates(
            &mut problems,
            "region",
            self.regions.iter().map(|r| &r.name),
        );
        let known = |name: &str| self.domains.iter().any(|d| d.name == name);
        for d in &self.domains {
            if d.tasks == 0 {
                problems.push(format!("domain `{}`: `tasks` must be ≥ 1", d.name));
            }
        }
        if self.channels.len() > MAX_CHANNELS {
            problems.push(format!(
                "compose: {} channels exceed the {MAX_CHANNELS}-channel table",
                self.channels.len()
            ));
        }
        for c in &self.channels {
            for (end, domain) in [("from", &c.from), ("to", &c.to)] {
                if !known(domain) {
                    problems.push(format!(
                        "channel `{}`: `{end}` references unknown domain `{domain}`",
                        c.name
                    ));
                }
            }
            if c.capacity == 0 {
                problems.push(format!("channel `{}`: `capacity` must be ≥ 1", c.name));
            }
        }
        // Assign every region its VA interval (explicit, or automatic
        // from the compose window in declaration order — mirroring the
        // lowering exactly) and reject overlaps.
        let mut intervals: Vec<(u64, u64, &str)> = Vec::new();
        let mut next_auto = hypernel_kernel::compose::REGION_VA_BASE;
        for r in &self.regions {
            if !known(&r.owner) {
                problems.push(format!(
                    "region `{}`: `owner` references unknown domain `{}`",
                    r.name, r.owner
                ));
            }
            for s in &r.share {
                if !known(s) {
                    problems.push(format!(
                        "region `{}`: `share` references unknown domain `{s}`",
                        r.name
                    ));
                }
                if *s == r.owner {
                    problems.push(format!(
                        "region `{}`: `share` repeats the owner `{s}`",
                        r.name
                    ));
                }
            }
            if r.pages == 0 {
                problems.push(format!("region `{}`: `pages` must be ≥ 1", r.name));
                continue;
            }
            let base = match r.va {
                Some(va) => {
                    if va % PAGE_SIZE != 0 {
                        problems.push(format!(
                            "region `{}`: `va` 0x{va:X} is not page-aligned",
                            r.name
                        ));
                        continue;
                    }
                    if va == 0 {
                        problems.push(format!("region `{}`: `va` must be nonzero", r.name));
                        continue;
                    }
                    va
                }
                None => {
                    let va = next_auto;
                    next_auto += r.pages * PAGE_SIZE;
                    va
                }
            };
            let end = base + r.pages * PAGE_SIZE;
            for (other_base, other_end, other_name) in &intervals {
                if base < *other_end && *other_base < end {
                    problems.push(format!(
                        "region `{}`: overlaps region `{other_name}` at 0x{:X}",
                        r.name,
                        base.max(*other_base)
                    ));
                }
            }
            intervals.push((base, end, &r.name));
        }
        problems
    }
}

/// Quotes a TOML basic string (the subset has no escapes; embedded
/// quotes are replaced, matching the scenario serializer).
fn toml_str(s: &str) -> String {
    format!("\"{}\"", s.replace('"', "'"))
}

fn check_duplicates<'a>(
    problems: &mut Vec<String>,
    kind: &str,
    names: impl Iterator<Item = &'a String>,
) {
    let mut seen: Vec<&str> = Vec::new();
    for name in names {
        if seen.contains(&name.as_str()) {
            problems.push(format!("{kind} `{name}`: duplicate name"));
        } else {
            seen.push(name);
        }
    }
}

fn parse_domain(t: &TomlTable) -> Result<DomainDecl, ComposeError> {
    let role = match t.get_str("role").unwrap_or("client") {
        "server" => DomainRole::Server,
        "client" => DomainRole::Client,
        other => {
            return Err(ComposeError::new(format!(
                "unknown role `{other}` (server | client)"
            )))
        }
    };
    Ok(DomainDecl {
        name: require_str(t, "name")?,
        role,
        priority: t.get_u64("priority").unwrap_or(0),
        tasks: t.get_u64("tasks").unwrap_or(1),
    })
}

fn parse_channel(t: &TomlTable) -> Result<ChannelDecl, ComposeError> {
    Ok(ChannelDecl {
        name: require_str(t, "name")?,
        from: require_str(t, "from")?,
        to: require_str(t, "to")?,
        capacity: t.get_u64("capacity").unwrap_or(16),
    })
}

fn parse_region(t: &TomlTable) -> Result<RegionDecl, ComposeError> {
    let share = match t.get("share") {
        None => Vec::new(),
        Some(TomlValue::Array(items)) => items
            .iter()
            .map(|item| {
                item.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| ComposeError::new("`share` must be an array of strings"))
            })
            .collect::<Result<Vec<_>, _>>()?,
        Some(_) => return Err(ComposeError::new("`share` must be an array of strings")),
    };
    Ok(RegionDecl {
        name: require_str(t, "name")?,
        owner: require_str(t, "owner")?,
        share,
        pages: t.get_u64("pages").unwrap_or(1),
        protect: t.get_bool("protect").unwrap_or(false),
        va: t.get_u64("va"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> ComposeDoc {
        ComposeDoc {
            watch: true,
            domains: vec![
                DomainDecl {
                    name: "fs".into(),
                    role: DomainRole::Server,
                    priority: 10,
                    tasks: 1,
                },
                DomainDecl {
                    name: "net".into(),
                    role: DomainRole::Server,
                    priority: 9,
                    tasks: 2,
                },
                DomainDecl {
                    name: "app".into(),
                    role: DomainRole::Client,
                    priority: 0,
                    tasks: 1,
                },
            ],
            channels: vec![
                ChannelDecl {
                    name: "app-fs".into(),
                    from: "app".into(),
                    to: "fs".into(),
                    capacity: 16,
                },
                ChannelDecl {
                    name: "app-net".into(),
                    from: "app".into(),
                    to: "net".into(),
                    capacity: 8,
                },
            ],
            regions: vec![RegionDecl {
                name: "shared".into(),
                owner: "fs".into(),
                share: vec!["app".into()],
                pages: 2,
                protect: true,
                va: None,
            }],
        }
    }

    #[test]
    fn to_toml_round_trips_exactly() {
        let doc = demo();
        let text = doc.to_toml();
        let reparsed = ComposeDoc::from_toml(&text).expect("parses");
        assert_eq!(reparsed, doc);
        assert_eq!(reparsed.to_toml(), text, "emission is a fixpoint");
    }

    #[test]
    fn validate_accepts_the_demo_and_catches_structural_problems() {
        assert_eq!(demo().validate(), Vec::<String>::new());
        let mut bad = demo();
        bad.channels[0].to = "ghost".into();
        bad.regions.push(RegionDecl {
            name: "shared".into(),
            owner: "app".into(),
            share: vec!["app".into()],
            pages: 1,
            va: Some(hypernel_kernel::compose::REGION_VA_BASE + PAGE_SIZE),
            protect: false,
        });
        let problems = bad.validate();
        assert!(problems
            .iter()
            .any(|p| p.contains("unknown domain `ghost`")));
        assert!(problems.iter().any(|p| p.contains("duplicate name")));
        assert!(problems.iter().any(|p| p.contains("repeats the owner")));
        assert!(problems.iter().any(|p| p.contains("overlaps region")));
    }

    #[test]
    fn absent_sections_mean_no_doc() {
        let doc = crate::toml::parse("name = \"x\"").expect("parses");
        assert_eq!(ComposeDoc::from_doc(&doc).expect("ok"), None);
    }

    #[test]
    fn defaults_match_the_schema() {
        let doc = ComposeDoc::from_toml("[compose]\n[[domain]]\nname = \"a\"").expect("parses");
        assert!(doc.watch);
        let d = &doc.domains[0];
        assert_eq!(
            (d.role, d.priority, d.tasks),
            (DomainRole::Client, 0, 1),
            "domain defaults"
        );
    }
}
