//! `hypernel-compose` — compile and lint declarative system
//! descriptions.
//!
//! ```text
//! hypernel-compose compile <file.toml>
//! hypernel-compose lint <file.toml | dir>
//! ```
//!
//! `compile` parses a description, validates it, and prints the
//! deterministic lowering plan (what `apply` executes on a booted
//! kernel, including the derived watch set). `lint` validates one file
//! or every `*.toml` in a directory and exits nonzero when anything is
//! flagged — the `just compose-smoke` gate keys on that.

use std::path::PathBuf;
use std::process::ExitCode;

use hypernel_compose::{lower, ComposeDoc};

const USAGE: &str = "\
hypernel-compose — declarative multi-domain system composition

USAGE:
  hypernel-compose compile <file.toml>
      Parses and validates a system description, then prints the
      deterministic lowering plan: domains spawned, channel slots,
      region mappings, and the automatically derived watch set.
  hypernel-compose lint <file.toml | dir>
      Validates one description, or every `*.toml` in a directory.
      Prints each problem and exits 1 when anything is flagged.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("compile") => cmd_compile(&args[1..]),
        Some("lint") => cmd_lint(&args[1..]),
        Some("help") | Some("--help") | Some("-h") => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(format!("unknown command `{other}`\n\n{USAGE}")),
        None => Err(USAGE.to_string()),
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("hypernel-compose: {message}");
            ExitCode::FAILURE
        }
    }
}

fn load(path: &str) -> Result<ComposeDoc, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    ComposeDoc::from_toml(&text).map_err(|e| format!("`{path}`: {e}"))
}

fn cmd_compile(rest: &[String]) -> Result<ExitCode, String> {
    let [path] = rest else {
        return Err("`compile` takes exactly one <file.toml>".to_string());
    };
    let doc = load(path)?;
    let problems = doc.validate();
    for p in &problems {
        eprintln!("{path}: {p}");
    }
    if !problems.is_empty() {
        return Ok(ExitCode::FAILURE);
    }
    println!(
        "{path}: {} domains, {} channels, {} regions (watch {})",
        doc.domains.len(),
        doc.channels.len(),
        doc.regions.len(),
        if doc.watch { "on" } else { "off" },
    );
    for (i, step) in lower::plan(&doc).iter().enumerate() {
        println!("  {}. {step}", i + 1);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_lint(rest: &[String]) -> Result<ExitCode, String> {
    let [target] = rest else {
        return Err("`lint` takes exactly one <file.toml | dir>".to_string());
    };
    let mut paths: Vec<PathBuf> = if std::fs::metadata(target)
        .map_err(|e| format!("cannot stat `{target}`: {e}"))?
        .is_dir()
    {
        std::fs::read_dir(target)
            .map_err(|e| format!("cannot read `{target}`: {e}"))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
            .collect()
    } else {
        vec![PathBuf::from(target)]
    };
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no `*.toml` descriptions in `{target}`"));
    }
    let mut flagged = 0usize;
    for path in &paths {
        let shown = path.display();
        match load(&path.to_string_lossy()) {
            Err(message) => {
                eprintln!("{message}");
                flagged += 1;
            }
            Ok(doc) => {
                for p in doc.validate() {
                    eprintln!("{shown}: {p}");
                    flagged += 1;
                }
            }
        }
    }
    if flagged > 0 {
        eprintln!(
            "hypernel-compose lint: {flagged} problem{} in {} file{}",
            if flagged == 1 { "" } else { "s" },
            paths.len(),
            if paths.len() == 1 { "" } else { "s" },
        );
        return Ok(ExitCode::FAILURE);
    }
    println!(
        "hypernel-compose lint: {} description{} clean",
        paths.len(),
        if paths.len() == 1 { "" } else { "s" },
    );
    Ok(ExitCode::SUCCESS)
}
