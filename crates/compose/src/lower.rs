//! The compose compiler: lowering a [`ComposeDoc`] into kernel state.
//!
//! Lowering is deterministic and happens in four fixed phases, each in
//! declaration order: spawn every domain's tasks, create every
//! channel (plus a bootstrap message through its unwatched data path),
//! allocate and map every shared region (the owner stamps
//! each page before anything watches it), and finally derive and arm
//! the watch set in one batch ([`Kernel::compose_arm_watch`]). The
//! derived set — every channel header plus every page of every
//! `protect = true` region — is the *only* source of compose Hypersec
//! registrations; nothing else in the pipeline maintains a watch list.
//!
//! [`plan`] produces the same phases as a pure description (what the
//! `hypernel-compose compile` CLI prints); [`apply`] executes them.

use std::fmt;

use hypernel_kernel::compose::{compose_stamp, CHANNEL_HEADER_BYTES, REGION_VA_BASE};
use hypernel_kernel::{Kernel, KernelError};
use hypernel_machine::addr::PAGE_SIZE;
use hypernel_machine::machine::{Hyp, Machine};

use crate::doc::ComposeDoc;

/// One step of the lowering plan, in execution order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerStep {
    /// Spawn `tasks` kernel tasks backing the named domain.
    SpawnDomain {
        /// Domain name.
        name: String,
        /// `"server"` or `"client"`.
        role: &'static str,
        /// Declared priority.
        priority: u64,
        /// Task count.
        tasks: u64,
    },
    /// Claim a channel-table slot and write its header.
    CreateChannel {
        /// Channel name.
        name: String,
        /// Sender domain.
        from: String,
        /// Receiver domain.
        to: String,
        /// Table slot index the channel lands in.
        slot: usize,
    },
    /// Allocate `pages` frames and map them into owner + sharers.
    MapRegion {
        /// Region name.
        name: String,
        /// Owner domain.
        owner: String,
        /// Number of user mappings installed (owner + sharers, per page).
        mappings: u64,
        /// Base virtual address of the mapping.
        va: u64,
        /// Whether the watch set covers the region.
        protected: bool,
    },
    /// Derive the watch set and issue the batched registrations.
    ArmWatch {
        /// Spans before coalescing (channel headers + protected pages).
        spans: u64,
        /// Watched bytes across all spans.
        bytes: u64,
    },
}

impl fmt::Display for LowerStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::SpawnDomain {
                name,
                role,
                priority,
                tasks,
            } => write!(
                f,
                "spawn domain `{name}` ({role}, priority {priority}, {tasks} task{})",
                if *tasks == 1 { "" } else { "s" }
            ),
            Self::CreateChannel {
                name,
                from,
                to,
                slot,
            } => write!(f, "create channel `{name}` {from} -> {to} (slot {slot})"),
            Self::MapRegion {
                name,
                owner,
                mappings,
                va,
                protected,
            } => write!(
                f,
                "map region `{name}` at 0x{va:X} (owner {owner}, {mappings} mappings{})",
                if *protected { ", protected" } else { "" }
            ),
            Self::ArmWatch { spans, bytes } => {
                write!(f, "arm derived watch set ({spans} spans, {bytes} bytes)")
            }
        }
    }
}

/// The deterministic lowering plan for a description — exactly the
/// steps [`apply`] will execute, without touching a kernel.
pub fn plan(doc: &ComposeDoc) -> Vec<LowerStep> {
    let mut steps = Vec::new();
    for d in &doc.domains {
        steps.push(LowerStep::SpawnDomain {
            name: d.name.clone(),
            role: d.role.name(),
            priority: d.priority,
            tasks: d.tasks.max(1),
        });
    }
    for (slot, c) in doc.channels.iter().enumerate() {
        steps.push(LowerStep::CreateChannel {
            name: c.name.clone(),
            from: c.from.clone(),
            to: c.to.clone(),
            slot,
        });
    }
    let mut next_auto = REGION_VA_BASE;
    for r in &doc.regions {
        let pages = r.pages.max(1);
        let va = match r.va {
            Some(va) => va,
            None => {
                let va = next_auto;
                next_auto += pages * PAGE_SIZE;
                va
            }
        };
        steps.push(LowerStep::MapRegion {
            name: r.name.clone(),
            owner: r.owner.clone(),
            mappings: (1 + r.share.len() as u64) * pages,
            va,
            protected: r.protect,
        });
    }
    if doc.watch {
        let channel_bytes = doc.channels.len() as u64 * CHANNEL_HEADER_BYTES;
        let region_pages: u64 = doc
            .regions
            .iter()
            .filter(|r| r.protect)
            .map(|r| r.pages.max(1))
            .sum();
        steps.push(LowerStep::ArmWatch {
            spans: doc.channels.len() as u64 + region_pages,
            bytes: channel_bytes + region_pages * PAGE_SIZE,
        });
    }
    steps
}

/// Lowers a description onto a booted kernel: spawns domains, creates
/// channels, maps regions, and (when `doc.watch`) arms the derived
/// watch set. Runs identically in every protection mode — under
/// native/KVM the watch derivation still happens but registers nothing,
/// so the composed system itself is byte-identical across modes.
///
/// # Errors
///
/// Propagates the first [`KernelError`] (frame exhaustion, dangling
/// names, hypercall denials). Run [`ComposeDoc::validate`] first for a
/// complete structural report.
pub fn apply(
    doc: &ComposeDoc,
    kernel: &mut Kernel,
    m: &mut Machine,
    hyp: &mut dyn Hyp,
) -> Result<(), KernelError> {
    for d in &doc.domains {
        kernel.compose_spawn_domain(m, hyp, &d.name, d.role, d.priority, d.tasks)?;
    }
    for (slot, c) in doc.channels.iter().enumerate() {
        kernel.compose_create_channel(m, hyp, &c.name, &c.from, &c.to, c.capacity)?;
        // Bootstrap message: proves the slot's data path works before
        // anything watches. Message data lives outside every derived
        // span, so this (and later sends) never trips the monitor.
        kernel.compose_channel_send(m, hyp, &c.name, compose_stamp(&c.name, slot as u64))?;
    }
    for r in &doc.regions {
        kernel.compose_map_region(
            m, hyp, &r.name, &r.owner, &r.share, r.pages, r.protect, r.va,
        )?;
    }
    if doc.watch {
        kernel.compose_arm_watch(m, hyp)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc::{ChannelDecl, DomainDecl, RegionDecl};
    use hypernel_kernel::DomainRole;

    #[test]
    fn plan_mirrors_the_description_in_order() {
        let doc = ComposeDoc {
            watch: true,
            domains: vec![
                DomainDecl {
                    name: "srv".into(),
                    role: DomainRole::Server,
                    priority: 5,
                    tasks: 1,
                },
                DomainDecl {
                    name: "cli".into(),
                    role: DomainRole::Client,
                    priority: 0,
                    tasks: 1,
                },
            ],
            channels: vec![ChannelDecl {
                name: "req".into(),
                from: "cli".into(),
                to: "srv".into(),
                capacity: 16,
            }],
            regions: vec![RegionDecl {
                name: "buf".into(),
                owner: "srv".into(),
                share: vec!["cli".into()],
                pages: 2,
                protect: true,
                va: None,
            }],
        };
        let steps = plan(&doc);
        assert_eq!(steps.len(), 5);
        assert_eq!(
            steps[3],
            LowerStep::MapRegion {
                name: "buf".into(),
                owner: "srv".into(),
                mappings: 4,
                va: REGION_VA_BASE,
                protected: true,
            }
        );
        assert_eq!(
            steps[4],
            LowerStep::ArmWatch {
                spans: 3,
                bytes: CHANNEL_HEADER_BYTES + 2 * PAGE_SIZE,
            }
        );
        // Turning the watch off drops exactly the arming step.
        let unwatched = ComposeDoc {
            watch: false,
            ..doc
        };
        assert_eq!(plan(&unwatched).len(), 4);
    }
}
