#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # hypernel-compose
//!
//! Declarative multi-domain system composition for the Hypernel
//! reproduction, in the spirit of seL4 microkit system descriptions: a
//! TOML file declares protection domains (passive servers and client
//! tasks with priorities), channels between them, and shared memory
//! regions, and a deterministic compiler lowers the description into
//! concrete kernel state — tasks, a channel table, shared mappings —
//! **plus the matching MBM watch set and Hypersec registrations,
//! derived entirely from the description**. No hand-maintained watch
//! list exists anywhere in the pipeline.
//!
//! - [`toml`] — the dependency-free TOML-subset parser shared with the
//!   campaign scenario loader.
//! - [`doc`] — the [`ComposeDoc`] description model: parse, validate,
//!   exact `to_toml` round-trip.
//! - [`lower`] — the compiler: a pure [`lower::plan`] describing the
//!   lowering, and [`lower::apply`] which executes it against a booted
//!   kernel.
//!
//! See `docs/COMPOSE.md` for the schema and the derived-watch-set
//! guarantees.

pub mod doc;
pub mod lower;
pub mod toml;

pub use doc::{ChannelDecl, ComposeDoc, DomainDecl, RegionDecl};
pub use lower::{apply, plan, LowerStep};
