//! A dependency-free parser for the TOML subset compose descriptions
//! and campaign scenario files use.
//!
//! Supported: top-level `key = value` pairs, `[table]` sections,
//! `[[array-of-tables]]` sections, `#` comments, and the value forms
//! strings (`"..."`), integers (decimal, `0x` hex, `_` separators,
//! negative), booleans, and flat arrays. That is the whole schema of
//! both formats (see `docs/COMPOSE.md` and `docs/CAMPAIGN.md`);
//! anything fancier is a parse error, not silently misread.

use std::fmt;

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum TomlValue {
    /// `"..."`.
    Str(String),
    /// Decimal or `0x` hex integer (underscore separators allowed).
    Int(i64),
    /// `true` / `false`.
    Bool(bool),
    /// `[v, v, ...]` of the scalar forms above.
    Array(Vec<TomlValue>),
}

impl TomlValue {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Self::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The integer payload as `u64`, if non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_int().and_then(|i| u64::try_from(i).ok())
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Self::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A table: scalar entries plus named sub-tables and arrays-of-tables,
/// in file order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TomlTable {
    /// `key = value` pairs.
    pub values: Vec<(String, TomlValue)>,
    /// `[name]` sub-tables.
    pub tables: Vec<(String, TomlTable)>,
    /// `[[name]]` arrays of tables.
    pub arrays: Vec<(String, Vec<TomlTable>)>,
}

impl TomlTable {
    /// Scalar value for `key`.
    pub fn get(&self, key: &str) -> Option<&TomlValue> {
        self.values.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// String value for `key`.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(TomlValue::as_str)
    }

    /// Non-negative integer value for `key`.
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(TomlValue::as_u64)
    }

    /// Boolean value for `key`.
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        self.get(key).and_then(TomlValue::as_bool)
    }

    /// Sub-table `[name]`.
    pub fn table(&self, name: &str) -> Option<&TomlTable> {
        self.tables.iter().find(|(k, _)| k == name).map(|(_, t)| t)
    }

    /// Array-of-tables `[[name]]` (empty slice if absent).
    pub fn array(&self, name: &str) -> &[TomlTable] {
        self.arrays
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, a)| a.as_slice())
            .unwrap_or(&[])
    }
}

/// A parse failure, with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TomlError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TomlError {}

fn err(line: usize, message: impl Into<String>) -> TomlError {
    TomlError {
        line,
        message: message.into(),
    }
}

/// Strips a trailing comment that is not inside a string literal.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_int(text: &str, line: usize) -> Result<i64, TomlError> {
    let cleaned: String = text.chars().filter(|c| *c != '_').collect();
    let (negative, digits) = match cleaned.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, cleaned.as_str()),
    };
    let value = if let Some(hex) = digits
        .strip_prefix("0x")
        .or_else(|| digits.strip_prefix("0X"))
    {
        i64::from_str_radix(hex, 16)
    } else {
        digits.parse::<i64>()
    }
    .map_err(|_| err(line, format!("invalid integer `{text}`")))?;
    Ok(if negative { -value } else { value })
}

fn parse_scalar(text: &str, line: usize) -> Result<TomlValue, TomlError> {
    let text = text.trim();
    if let Some(rest) = text.strip_prefix('"') {
        let Some(inner) = rest.strip_suffix('"') else {
            return Err(err(line, "unterminated string"));
        };
        if inner.contains('"') {
            return Err(err(line, "escapes and embedded quotes are not supported"));
        }
        return Ok(TomlValue::Str(inner.to_string()));
    }
    match text {
        "true" => return Ok(TomlValue::Bool(true)),
        "false" => return Ok(TomlValue::Bool(false)),
        _ => {}
    }
    parse_int(text, line).map(TomlValue::Int)
}

fn parse_value(text: &str, line: usize) -> Result<TomlValue, TomlError> {
    let text = text.trim();
    if let Some(rest) = text.strip_prefix('[') {
        let Some(inner) = rest.strip_suffix(']') else {
            return Err(err(line, "unterminated array"));
        };
        let inner = inner.trim();
        if inner.is_empty() {
            return Ok(TomlValue::Array(Vec::new()));
        }
        let items = inner
            .split(',')
            .map(|item| parse_scalar(item, line))
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(TomlValue::Array(items));
    }
    parse_scalar(text, line)
}

fn valid_key(key: &str) -> bool {
    !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
}

/// Parses a scenario document.
///
/// # Errors
///
/// Returns a [`TomlError`] naming the offending line for any construct
/// outside the supported subset.
pub fn parse(input: &str) -> Result<TomlTable, TomlError> {
    let mut root = TomlTable::default();
    // Where new `key = value` pairs go: the root, a `[table]`, or the
    // latest element of a `[[array]]`.
    enum Cursor {
        Root,
        Table(usize),
        Array(usize),
    }
    let mut cursor = Cursor::Root;

    for (idx, raw) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let Some(name) = rest.strip_suffix("]]") else {
                return Err(err(lineno, "malformed [[header]]"));
            };
            let name = name.trim();
            if !valid_key(name) {
                return Err(err(lineno, format!("invalid table name `{name}`")));
            }
            let pos = match root.arrays.iter().position(|(k, _)| k == name) {
                Some(pos) => pos,
                None => {
                    root.arrays.push((name.to_string(), Vec::new()));
                    root.arrays.len() - 1
                }
            };
            root.arrays[pos].1.push(TomlTable::default());
            cursor = Cursor::Array(pos);
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return Err(err(lineno, "malformed [header]"));
            };
            let name = name.trim();
            if !valid_key(name) {
                return Err(err(lineno, format!("invalid table name `{name}`")));
            }
            if root.tables.iter().any(|(k, _)| k == name) {
                return Err(err(lineno, format!("duplicate table `{name}`")));
            }
            root.tables.push((name.to_string(), TomlTable::default()));
            cursor = Cursor::Table(root.tables.len() - 1);
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err(err(lineno, format!("expected `key = value`, got `{line}`")));
        };
        let key = line[..eq].trim();
        if !valid_key(key) {
            return Err(err(lineno, format!("invalid key `{key}`")));
        }
        let value = parse_value(&line[eq + 1..], lineno)?;
        let target = match cursor {
            Cursor::Root => &mut root,
            Cursor::Table(pos) => &mut root.tables[pos].1,
            Cursor::Array(pos) => root.arrays[pos]
                .1
                .last_mut()
                .expect("array cursor points at a pushed element"),
        };
        if target.values.iter().any(|(k, _)| k == key) {
            return Err(err(lineno, format!("duplicate key `{key}`")));
        }
        target.values.push((key.to_string(), value));
    }
    Ok(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scenario_shape() {
        let doc = parse(
            r#"
            # a scenario
            name = "drop-irq"
            seeds = 64            # trailing comment
            enabled = true
            bits = [1, 2, 0x10]

            [limits]
            latency-bound = 200_000

            [[step]]
            kind = "cred-escalation"
            pid = 1

            [[step]]
            kind = "text-patch"

            [[fault]]
            kind = "drop-irq"
            at = 1
            count = 1
            "#,
        )
        .expect("parses");
        assert_eq!(doc.get_str("name"), Some("drop-irq"));
        assert_eq!(doc.get_u64("seeds"), Some(64));
        assert_eq!(doc.get_bool("enabled"), Some(true));
        assert_eq!(
            doc.get("bits"),
            Some(&TomlValue::Array(vec![
                TomlValue::Int(1),
                TomlValue::Int(2),
                TomlValue::Int(16)
            ]))
        );
        assert_eq!(
            doc.table("limits").unwrap().get_u64("latency-bound"),
            Some(200_000)
        );
        let steps = doc.array("step");
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0].get_str("kind"), Some("cred-escalation"));
        assert_eq!(steps[0].get_u64("pid"), Some(1));
        assert_eq!(steps[1].get_str("kind"), Some("text-patch"));
        assert_eq!(doc.array("fault").len(), 1);
        assert_eq!(doc.array("missing").len(), 0);
    }

    #[test]
    fn hex_and_negative_integers() {
        let doc = parse("a = 0xFF\nb = -3\nc = 1_000").expect("parses");
        assert_eq!(doc.get("a"), Some(&TomlValue::Int(255)));
        assert_eq!(doc.get("b"), Some(&TomlValue::Int(-3)));
        assert_eq!(doc.get("c"), Some(&TomlValue::Int(1000)));
        assert_eq!(doc.get_u64("b"), None, "negative is not a u64");
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let doc = parse(r##"path = "/tmp/#x""##).expect("parses");
        assert_eq!(doc.get_str("path"), Some("/tmp/#x"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("ok = 1\nnope").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(parse("x = \"unterminated").is_err());
        assert!(parse("x = zzz").is_err());
        assert!(parse("[t]\n[t]").unwrap_err().message.contains("duplicate"));
        assert!(parse("x = 1\nx = 2").is_err());
    }
}
