//! `hypernel-sim` — command-line driver for the Hypernel full-system
//! simulation.
//!
//! ```text
//! hypernel-sim run --mode hypernel --op fork+exit --iters 100
//! hypernel-sim run --mode kvm --app untar
//! hypernel-sim compare --op 'pipe lat'
//! hypernel-sim monitor --app iozone --granularity word
//! hypernel-sim replay --script workload.hsim --mode hypernel
//! hypernel-sim audit
//! hypernel-sim --help
//! ```

use std::process::ExitCode;

use hypernel::kernel::kernel::{MonitorHooks, MonitorMode};
use hypernel::metrics::metric_samples;
use hypernel::telemetry::export;
use hypernel::telemetry::{MetricsConfig, MetricsRecorder};
use hypernel::workloads::{apps, lmbench, AppBenchmark, LmbenchOp};
use hypernel::{Mode, RunReport, System, SystemBuilder, DEFAULT_TELEMETRY_CAPACITY};

/// Modeled core clock: 1.15 GHz, i.e. cycles per trace microsecond.
const CYCLES_PER_US: f64 = 1150.0;

const HELP: &str = "\
hypernel-sim — drive the Hypernel (DAC 2018) full-system simulation

USAGE:
    hypernel-sim <COMMAND> [OPTIONS]

COMMANDS:
    run        run one workload on one configuration, print a report
    compare    run one workload on all three configurations
    monitor    run an app benchmark with kernel-object monitoring armed
    replay     replay a workload script (see hypernel_workloads::replay)
    audit      boot Hypernel, run a stress mix, audit every invariant
    help       print this message

OPTIONS:
    --mode <native|kvm|hypernel>   configuration (default: hypernel)
    --op <name>                    LMbench op: 'syscall stat', 'pipe lat',
                                   'fork+exit', 'fork+execv', 'page fault',
                                   'mmap', 'signal install', 'signal ovh',
                                   'socket lat'
    --app <name>                   app benchmark: whetstone, dhrystone,
                                   untar, iozone, apache
    --iters <N>                    LMbench iterations (default: 100)
    --granularity <word|object>    monitoring policy (default: word)
    --script <path>                replay script file
    --markdown                     print the machine report as markdown
    --trace-out <path>             write the telemetry event stream to a file
    --trace-format <jsonl|chrome>  trace file format (default: chrome; the
                                   chrome format loads in Perfetto and
                                   chrome://tracing)
    --histograms                   print span latency histograms
                                   (p50/p95/p99/max, in cycles)
    --report-json <path>           write the full run report as JSON
    --metrics <path>               write windowed time-series metrics
                                   (metrics.jsonl); --op runs sample per
                                   iteration chunk, other runs at the
                                   start and end
    --forensics                    reconstruct and print the causal
                                   timeline of every MBM incident
                                   (watched write -> FIFO -> drain ->
                                   IRQ -> service) with detection latency
    --audit                        statically audit the final state: walk
                                   every stage-1 table reachable from the
                                   active/hypervisor roots, check the
                                   protected invariants, and (under
                                   Hypernel) differentially compare with
                                   the incremental verifier
    --audit=<N>                    like --audit, but also audit every N
                                   LMbench iterations (--op runs only)
    --sanitize                     enable the guest-memory ownership
                                   sanitizer: every store is checked
                                   against the per-page tag policy, with
                                   verdicts in the audit report
    --strict-telemetry             fail (exit nonzero) if the telemetry
                                   ring dropped any event, instead of
                                   only warning; implies telemetry is
                                   enabled
";

fn parse_mode(s: &str) -> Result<Mode, String> {
    match s {
        "native" => Ok(Mode::Native),
        "kvm" | "kvm-guest" => Ok(Mode::KvmGuest),
        "hypernel" => Ok(Mode::Hypernel),
        other => Err(format!("unknown mode '{other}' (native|kvm|hypernel)")),
    }
}

fn parse_op(s: &str) -> Result<LmbenchOp, String> {
    LmbenchOp::ALL
        .iter()
        .copied()
        .find(|op| op.label() == s)
        .ok_or_else(|| format!("unknown op '{s}'"))
}

fn parse_app(s: &str) -> Result<AppBenchmark, String> {
    AppBenchmark::ALL
        .iter()
        .copied()
        .find(|b| b.label() == s)
        .ok_or_else(|| format!("unknown app '{s}'"))
}

#[derive(Debug, Default)]
struct Options {
    mode: Option<String>,
    op: Option<String>,
    app: Option<String>,
    iters: Option<u64>,
    granularity: Option<String>,
    script: Option<String>,
    markdown: bool,
    trace_out: Option<String>,
    trace_format: Option<String>,
    histograms: bool,
    report_json: Option<String>,
    metrics: Option<String>,
    forensics: bool,
    audit: bool,
    audit_every: Option<u64>,
    sanitize: bool,
    strict_telemetry: bool,
}

impl Options {
    /// Whether any flag needs the telemetry pipeline installed.
    fn wants_telemetry(&self) -> bool {
        self.trace_out.is_some()
            || self.histograms
            || self.report_json.is_some()
            || self.forensics
            || self.strict_telemetry
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} expects a value"))
        };
        match arg.as_str() {
            "--mode" => opts.mode = Some(take("--mode")?),
            "--op" => opts.op = Some(take("--op")?),
            "--app" => opts.app = Some(take("--app")?),
            "--iters" => {
                opts.iters = Some(
                    take("--iters")?
                        .parse()
                        .map_err(|e| format!("--iters: {e}"))?,
                )
            }
            "--granularity" => opts.granularity = Some(take("--granularity")?),
            "--script" => opts.script = Some(take("--script")?),
            "--markdown" => opts.markdown = true,
            "--trace-out" => opts.trace_out = Some(take("--trace-out")?),
            "--trace-format" => opts.trace_format = Some(take("--trace-format")?),
            "--histograms" => opts.histograms = true,
            "--report-json" => opts.report_json = Some(take("--report-json")?),
            "--metrics" => opts.metrics = Some(take("--metrics")?),
            "--forensics" => opts.forensics = true,
            "--audit" => opts.audit = true,
            "--sanitize" => opts.sanitize = true,
            "--strict-telemetry" => opts.strict_telemetry = true,
            other if other.starts_with("--audit=") => {
                let n: u64 = other["--audit=".len()..]
                    .parse()
                    .map_err(|e| format!("--audit=<N>: {e}"))?;
                if n == 0 {
                    return Err("--audit=<N>: N must be positive".into());
                }
                opts.audit = true;
                opts.audit_every = Some(n);
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(opts)
}

fn run_workload(
    sys: &mut System,
    opts: &Options,
    mut recorder: Option<&mut MetricsRecorder>,
) -> Result<f64, String> {
    let iters = opts.iters.unwrap_or(100);
    if let Some(op) = &opts.op {
        let op = parse_op(op)?;
        // `--audit=<N>` and `--metrics` both break the run into
        // iteration chunks: the former re-audits the whole system
        // between chunks (pinning an invariant break to the chunk that
        // introduced it), the latter samples the windowed series.
        // `--audit=<N>` picks the chunk size; metrics alone samples
        // every iters/64 iterations.
        if opts.audit_every.is_some() || recorder.is_some() {
            let every = opts.audit_every.unwrap_or_else(|| (iters / 64).max(1));
            let mut done = 0;
            let mut cycles = 0.0;
            while done < iters {
                let chunk = every.min(iters - done);
                let m = {
                    let (kernel, machine, hyp) = sys.parts();
                    lmbench::run_op(kernel, machine, hyp, op, chunk).map_err(|e| e.to_string())?
                };
                cycles += m.cycles_per_iter() * chunk as f64;
                done += chunk;
                if let Some(rec) = recorder.as_deref_mut() {
                    rec.sample(sys.cycles(), &metric_samples(sys));
                }
                if opts.audit_every.is_some() {
                    let report = sys.audit_static();
                    if !report.is_clean() {
                        report_static_audit(&report);
                        return Err(format!(
                            "static audit failed after {done}/{iters} iterations"
                        ));
                    }
                }
            }
            let audited = opts
                .audit_every
                .map(|every| format!(", audited every {every}"))
                .unwrap_or_default();
            println!(
                "{op}: {:.2} us/iter ({:.0} cycles, {iters} iters{audited})",
                cycles / iters as f64 / CYCLES_PER_US,
                cycles / iters as f64,
            );
            return Ok(cycles / iters as f64);
        }
        let (kernel, machine, hyp) = sys.parts();
        let m = lmbench::run_op(kernel, machine, hyp, op, iters).map_err(|e| e.to_string())?;
        println!(
            "{op}: {:.2} us/iter ({:.0} cycles, {} iters)",
            m.micros_per_iter(),
            m.cycles_per_iter(),
            m.iterations
        );
        Ok(m.cycles_per_iter())
    } else if let Some(app) = &opts.app {
        let app = parse_app(app)?;
        let (kernel, machine, hyp) = sys.parts();
        apps::prepare(kernel, machine, hyp, app).map_err(|e| e.to_string())?;
        let m = apps::run(kernel, machine, hyp, app, 1, 42).map_err(|e| e.to_string())?;
        println!(
            "{app}: {:.2} Mcycles ({:.2} ms modeled)",
            m.total_cycles as f64 / 1e6,
            m.total_cycles as f64 / 1.15e9 * 1e3
        );
        Ok(m.total_cycles as f64)
    } else {
        Err("provide --op or --app".into())
    }
}

/// Starts a windowed-metrics recorder (with a baseline sample) when
/// `--metrics` asks for one.
fn new_recorder(sys: &System, opts: &Options) -> Option<MetricsRecorder> {
    opts.metrics.as_ref().map(|_| {
        let mut rec = MetricsRecorder::new(&MetricsConfig::default());
        rec.sample(sys.cycles(), &metric_samples(sys));
        rec
    })
}

/// Takes the final sample and writes the `--metrics` artifact.
fn write_metrics(
    sys: &System,
    opts: &Options,
    recorder: Option<MetricsRecorder>,
    mode: Mode,
) -> Result<(), String> {
    let (Some(path), Some(mut rec)) = (opts.metrics.as_ref(), recorder) else {
        return Ok(());
    };
    rec.sample(sys.cycles(), &metric_samples(sys));
    let doc = rec.finish(None, None, Some(&mode.to_string()));
    std::fs::write(path, doc.to_jsonl()).map_err(|e| format!("{path}: {e}"))?;
    println!("metrics: {} window(s) -> {path}", doc.windows());
    Ok(())
}

/// Boots `mode`, with telemetry installed when any output flag needs it
/// and the ownership sanitizer armed when `--sanitize` asks for it.
fn boot(mode: Mode, opts: &Options) -> Result<System, String> {
    let mut builder = SystemBuilder::new(mode);
    if opts.wants_telemetry() {
        builder = builder.telemetry(DEFAULT_TELEMETRY_CAPACITY);
    }
    let mut sys = builder.build().map_err(|e| e.to_string())?;
    if opts.sanitize {
        sys.enable_sanitizer();
    }
    Ok(sys)
}

/// Prints a static-audit report in the sim's human format.
fn report_static_audit(report: &hypernel::audit::StaticAuditReport) {
    println!(
        "static audit: {} roots, {} tables, {} leaves, {} regions checked",
        report.roots_walked, report.tables_walked, report.leaves_checked, report.regions_checked
    );
    for finding in &report.findings {
        println!("FINDING: {finding}");
    }
    if let Some(diff) = &report.differential {
        if diff.agrees() {
            println!("differential: static and incremental verdicts agree");
        } else {
            for d in &diff.disagreements {
                println!("DISAGREEMENT: {d}");
            }
        }
    }
    if let Some(san) = &report.sanitizer {
        println!(
            "sanitizer: {} writes checked, {} denied",
            san.stats.checked, san.stats.denied
        );
        for v in &san.violations {
            println!(
                "DENIED: {} wrote {:#x} (page tagged {})",
                v.writer.name(),
                v.pa.raw(),
                v.tag.name()
            );
        }
    }
}

/// Runs the final `--audit` pass; an unclean report (or any
/// differential disagreement) is an error.
fn final_static_audit(sys: &mut System) -> Result<(), String> {
    let report = sys.audit_static();
    report_static_audit(&report);
    if report.is_clean() {
        println!("static audit: all invariants hold");
        Ok(())
    } else {
        Err(format!(
            "static audit failed: {} finding(s)",
            report.findings.len()
        ))
    }
}

/// Writes the trace/histogram/report artifacts requested by `opts`.
fn export_telemetry(sys: &System, opts: &Options) -> Result<(), String> {
    // Truncation warning up front: a full ring silently understates
    // every trace-derived view, so say so once, for all of them.
    let dropped = sys.telemetry_dropped().unwrap_or(0);
    if dropped > 0 && opts.wants_telemetry() {
        if opts.strict_telemetry {
            return Err(format!(
                "strict telemetry: ring full, {dropped} event(s) dropped; \
                 traces and reports would understate the run"
            ));
        }
        eprintln!(
            "warning: telemetry ring full, {dropped} oldest event(s) dropped; \
             traces and reports understate the run"
        );
    }
    if let Some(path) = &opts.trace_out {
        let events = sys.telemetry_events().ok_or("telemetry is not enabled")?;
        let text = match opts.trace_format.as_deref().unwrap_or("chrome") {
            "jsonl" => export::write_jsonl(&events),
            "chrome" => export::write_chrome_trace(&events, CYCLES_PER_US),
            other => return Err(format!("unknown trace format '{other}' (jsonl|chrome)")),
        };
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
        println!("trace: {} events -> {path}", events.len());
    }
    if opts.histograms {
        let snap = sys.telemetry_snapshot().ok_or("telemetry is not enabled")?;
        println!("\nspan latencies (cycles):");
        println!(
            "  {:<18} {:<5} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "span", "track", "count", "p50", "p95", "p99", "max"
        );
        for ((track, span), s) in &snap.spans {
            println!(
                "  {:<18} {:<5} {:>8} {:>8} {:>8} {:>8} {:>8}",
                span.name(),
                track.name(),
                s.count,
                s.p50,
                s.p95,
                s.p99,
                s.max
            );
        }
        if snap.open_spans > 0 {
            println!("  ({} span(s) still open)", snap.open_spans);
        }
    }
    if let Some(path) = &opts.report_json {
        let report = RunReport::capture(sys);
        std::fs::write(path, format!("{}\n", report.to_json()))
            .map_err(|e| format!("{path}: {e}"))?;
        println!("report: {path}");
    }
    if opts.forensics {
        let events = sys.telemetry_events().ok_or("telemetry is not enabled")?;
        let incidents = hypernel_analyze::reconstruct_incidents(&events);
        println!("\n{}", hypernel_analyze::forensics::render_text(&incidents));
    }
    Ok(())
}

fn cmd_run(opts: &Options) -> Result<(), String> {
    let mode = parse_mode(opts.mode.as_deref().unwrap_or("hypernel"))?;
    let mut sys = boot(mode, opts)?;
    println!("booted: {mode}");
    let mut recorder = new_recorder(&sys, opts);
    run_workload(&mut sys, opts, recorder.as_mut())?;
    sys.service_interrupts().map_err(|e| e.to_string())?;
    if opts.audit {
        final_static_audit(&mut sys)?;
    }
    if opts.markdown {
        println!("\n{}", RunReport::capture(&sys).to_markdown());
    }
    write_metrics(&sys, opts, recorder, mode)?;
    export_telemetry(&sys, opts)
}

fn cmd_compare(opts: &Options) -> Result<(), String> {
    let mut results = Vec::new();
    for mode in [Mode::Native, Mode::KvmGuest, Mode::Hypernel] {
        let mut sys = System::boot(mode).map_err(|e| e.to_string())?;
        print!("{mode:<12} ");
        results.push((mode, run_workload(&mut sys, opts, None)?));
    }
    let native = results[0].1;
    println!("\noverheads vs native:");
    for (mode, cost) in &results[1..] {
        println!("  {mode}: {:+.1}%", (cost / native - 1.0) * 100.0);
    }
    Ok(())
}

fn cmd_monitor(opts: &Options) -> Result<(), String> {
    let mode = match opts.granularity.as_deref().unwrap_or("word") {
        "word" => MonitorMode::SensitiveFields,
        "object" | "page" => MonitorMode::WholeObject,
        other => return Err(format!("unknown granularity '{other}' (word|object)")),
    };
    let mut sys = boot(Mode::Hypernel, opts)?;
    {
        let (kernel, machine, hyp) = sys.parts();
        kernel
            .arm_monitor_hooks(machine, hyp, MonitorHooks { mode })
            .map_err(|e| e.to_string())?;
    }
    sys.reset_mbm_stats();
    let mut recorder = new_recorder(&sys, opts);
    run_workload(&mut sys, opts, recorder.as_mut())?;
    sys.service_interrupts().map_err(|e| e.to_string())?;
    if opts.audit {
        final_static_audit(&mut sys)?;
    }
    let stats = sys.mbm_stats().expect("mbm attached");
    let hs = sys.hypersec().expect("hypersec");
    println!("\nmonitoring ({mode:?}):");
    println!("  MBM events matched:   {}", stats.events_matched);
    println!("  events dispatched:    {}", hs.stats().events_dispatched);
    println!("  detections:           {}", hs.detections().len());
    for d in hs.detections() {
        println!("    [sid {}] {}", d.sid, d.reason);
    }
    write_metrics(&sys, opts, recorder, Mode::Hypernel)?;
    export_telemetry(&sys, opts)
}

fn cmd_replay(opts: &Options) -> Result<(), String> {
    use hypernel::workloads::replay;
    let path = opts
        .script
        .as_deref()
        .ok_or("replay needs --script <path>")?;
    let script = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let statements = replay::parse(&script).map_err(|e| format!("{path}: {e}"))?;
    let mode = parse_mode(opts.mode.as_deref().unwrap_or("hypernel"))?;
    let mut sys = boot(mode, opts)?;
    let recorder = new_recorder(&sys, opts);
    let m = {
        let (kernel, machine, hyp) = sys.parts();
        replay::replay(kernel, machine, hyp, &statements, 42).map_err(|e| e.to_string())?
    };
    println!(
        "{mode}: {} statements, {} cycles ({:.2} us modeled)",
        statements.len(),
        m.total_cycles,
        m.total_cycles as f64 / CYCLES_PER_US
    );
    if opts.markdown {
        println!("\n{}", RunReport::capture(&sys).to_markdown());
    }
    write_metrics(&sys, opts, recorder, mode)?;
    export_telemetry(&sys, opts)
}

fn cmd_audit() -> Result<(), String> {
    let mut sys = System::boot(Mode::Hypernel).map_err(|e| e.to_string())?;
    sys.enable_sanitizer();
    {
        let (kernel, machine, hyp) = sys.parts();
        kernel
            .arm_monitor_hooks(
                machine,
                hyp,
                MonitorHooks {
                    mode: MonitorMode::SensitiveFields,
                },
            )
            .map_err(|e| e.to_string())?;
        for i in 0..8 {
            let child = kernel.sys_fork(machine, hyp).map_err(|e| e.to_string())?;
            kernel
                .switch_to(machine, hyp, child)
                .map_err(|e| e.to_string())?;
            kernel
                .sys_execve(machine, hyp, "/bin/sh")
                .map_err(|e| e.to_string())?;
            let p = format!("/tmp/audit{i}");
            kernel
                .sys_create(machine, hyp, &p)
                .map_err(|e| e.to_string())?;
            kernel
                .sys_exit(machine, hyp, child, hypernel::kernel::task::Pid(1))
                .map_err(|e| e.to_string())?;
            kernel.poll_irqs(machine, hyp).map_err(|e| e.to_string())?;
        }
    }
    let report = sys.audit_hypersec().expect("hypernel mode");
    println!(
        "incremental audit: {} tables, {} leaves, {} regions checked",
        report.tables_checked, report.leaves_checked, report.regions_checked
    );
    for v in &report.violations {
        println!("VIOLATION: {v}");
    }
    // The independent static pass re-derives the same invariants from
    // the raw page tables and cross-checks the incremental verdict.
    let outcome = final_static_audit(&mut sys);
    if report.is_clean() && outcome.is_ok() {
        println!("all invariants hold (incremental and static passes agree)");
        Ok(())
    } else {
        outcome.and(Err(format!(
            "{} incremental violation(s)",
            report.violations.len()
        )))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => {
            eprint!("{HELP}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command {
        "help" | "--help" | "-h" => {
            print!("{HELP}");
            Ok(())
        }
        "run" | "compare" | "monitor" | "replay" => match parse_options(rest) {
            Ok(opts) => match command {
                "run" => cmd_run(&opts),
                "compare" => cmd_compare(&opts),
                "replay" => cmd_replay(&opts),
                _ => cmd_monitor(&opts),
            },
            Err(e) => Err(e),
        },
        "audit" => cmd_audit(),
        other => Err(format!("unknown command '{other}' (try 'help')")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
