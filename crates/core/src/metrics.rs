//! Sampling the standard metric catalog from a live [`System`].
//!
//! The windowed-metrics recorder (`hypernel_telemetry::MetricsRecorder`)
//! is driver-agnostic: it just buckets `(name, value)` samples into
//! cycle windows. This module is the system-side half — it reads every
//! standard metric's current cumulative value (or instantaneous level)
//! off a [`System`], so drivers can poll with one call:
//!
//! ```
//! use hypernel::{metrics::metric_samples, Mode, System};
//! use hypernel::telemetry::{MetricsConfig, MetricsRecorder};
//!
//! let sys = System::boot(Mode::Hypernel)?;
//! let mut rec = MetricsRecorder::new(&MetricsConfig::default());
//! rec.sample(sys.cycles(), &metric_samples(&sys));
//! # Ok::<(), hypernel_kernel::kernel::KernelError>(())
//! ```
//!
//! Everything sampled here is a *simulated* quantity: host fast-path
//! counters (L0 micro-TLB, MBM watch-page filter) never appear, so the
//! resulting artifacts are byte-identical under `HYPERNEL_NO_FASTPATH`.

use hypernel_mbm::Mbm;

use crate::system::System;

/// Reads the current value of every standard metric the system can
/// provide. Counters are cumulative; gauges are instantaneous. MBM
/// series are only present in Hypernel mode. `detection-latency-max`
/// is event-driven and never polled — drivers feed it via
/// `MetricsRecorder::observe`.
pub fn metric_samples(sys: &System) -> Vec<(&'static str, u64)> {
    let machine = sys.machine().stats();
    let tlb = sys.machine().tlb().stats();
    let mut out = vec![
        ("hypercalls", machine.hypercalls),
        ("sysreg-traps", machine.sysreg_traps),
        ("irqs-delivered", machine.irqs_delivered),
        ("tlb-hits", tlb.hits),
        ("tlb-misses", tlb.misses),
    ];
    if let Some(mbm) = sys.machine().bus().snooper::<Mbm>() {
        let stats = mbm.stats();
        out.push(("mbm-bus-writes", stats.bus_writes_seen));
        out.push(("mbm-captured", stats.captured));
        out.push(("mbm-watch-hits", stats.events_matched));
        out.push(("mbm-irqs-raised", stats.irqs_raised));
        out.push(("mbm-fifo-dropped", stats.fifo_dropped));
        out.push(("mbm-fifo-depth", mbm.fifo_len() as u64));
        out.push(("mbm-fifo-high-water", mbm.fifo_high_watermark() as u64));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::Mode;
    use hypernel_telemetry::metrics::metric;

    #[test]
    fn every_sampled_name_is_in_the_catalog() {
        for mode in [Mode::Native, Mode::Hypernel] {
            let sys = System::boot(mode).expect("boot");
            for (name, _) in metric_samples(&sys) {
                assert!(metric(name).is_some(), "unknown metric {name}");
            }
        }
    }

    #[test]
    fn hypernel_mode_samples_the_mbm_series() {
        let sys = System::boot(Mode::Hypernel).expect("boot");
        let names: Vec<&str> = metric_samples(&sys).iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"mbm-fifo-depth"));
        assert!(names.contains(&"mbm-fifo-high-water"));
        let native = System::boot(Mode::Native).expect("boot");
        let native_names: Vec<&str> = metric_samples(&native).iter().map(|(n, _)| *n).collect();
        assert!(!native_names.contains(&"mbm-fifo-depth"));
    }

    #[test]
    fn sampling_twice_reads_monotone_counters() {
        let mut sys = System::boot(Mode::Hypernel).expect("boot");
        let before = metric_samples(&sys);
        {
            let (kernel, machine, hyp) = sys.parts();
            let child = kernel.sys_fork(machine, hyp).expect("fork");
            kernel.switch_to(machine, hyp, child).expect("switch");
            kernel
                .sys_exit(machine, hyp, child, hypernel_kernel::task::Pid(1))
                .expect("exit");
        }
        let after = metric_samples(&sys);
        let get =
            |v: &[(&str, u64)], n: &str| v.iter().find(|(name, _)| *name == n).map(|(_, v)| *v);
        assert!(get(&after, "hypercalls") > get(&before, "hypercalls"));
        assert!(get(&after, "tlb-hits") >= get(&before, "tlb-hits"));
    }
}
