//! Run reports: consolidated statistics snapshots, latency summaries
//! and machine-readable (JSON) run artifacts.

use hypernel_kernel::kernel::KernelStats;
use hypernel_machine::cache::CacheStats;
use hypernel_machine::cost::CostModel;
use hypernel_machine::fault::FaultStats;
use hypernel_machine::machine::MachineStats;
use hypernel_machine::tlb::TlbStats;
use hypernel_mbm::MbmStats;
use hypernel_telemetry::json::Json;
use hypernel_telemetry::{HistogramSummary, Snapshot};

use crate::system::{Mode, System};

/// Schema version stamped into every JSON run artifact. Bump when a
/// field is renamed or its meaning changes; additions are
/// backwards-compatible and do not bump it. `hypernel-analyze compare`
/// warns when two reports disagree on this.
pub const REPORT_SCHEMA: u64 = 1;

/// `kind` tag stamped into every JSON run artifact, so downstream
/// tooling can tell a run report from a bench summary or trajectory.
pub const REPORT_KIND: &str = "hypernel-run-report";

/// A consolidated statistics snapshot of a [`System`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Which configuration produced it.
    pub mode: Mode,
    /// Elapsed cycles at snapshot time.
    pub cycles: u64,
    /// Machine event counters.
    pub machine: MachineStats,
    /// Kernel event counters.
    pub kernel: KernelStats,
    /// Main-TLB statistics.
    pub tlb: TlbStats,
    /// Data-cache statistics.
    pub cache: CacheStats,
    /// MBM statistics (Hypernel mode only).
    pub mbm: Option<MbmStats>,
    /// Injected-fault counters (only when the system was built with a
    /// [`crate::system::SystemBuilder::fault_plan`]).
    pub faults: Option<FaultStats>,
    /// Telemetry aggregates (only when the system has telemetry
    /// enabled): latency histograms per span and point-event counters.
    pub telemetry: Option<Snapshot>,
    /// Events the bounded telemetry trace ring had to drop (only when
    /// telemetry is enabled). Deterministic — the ring records
    /// simulated events — so it belongs in the artifact: a nonzero
    /// value means the trace understates what happened.
    pub trace_dropped: Option<u64>,
}

impl RunReport {
    /// Captures the current state of `system`.
    pub fn capture(system: &System) -> Self {
        Self {
            mode: system.mode(),
            cycles: system.cycles(),
            machine: system.machine().stats(),
            kernel: system.kernel().stats(),
            tlb: system.machine().tlb().stats(),
            cache: system.machine().data_cache().stats(),
            mbm: system.mbm_stats(),
            faults: system.fault_stats(),
            telemetry: system.telemetry_snapshot(),
            trace_dropped: system.telemetry_dropped(),
        }
    }

    /// Elapsed microseconds at the modeled clock.
    pub fn micros(&self) -> f64 {
        CostModel::cycles_to_us(self.cycles)
    }

    /// Renders the report as a GitHub-flavored markdown table, ready to
    /// paste into an experiment log.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "### {} — {} cycles ({:.1} µs)

",
            self.mode,
            self.cycles,
            self.micros()
        ));
        out.push_str(
            "| counter | value |
|---|---|
",
        );
        let rows: &[(&str, u64)] = &[
            ("memory reads", self.machine.reads),
            ("memory writes", self.machine.writes),
            ("uncached accesses", self.machine.uncached_accesses),
            ("hypercalls", self.machine.hypercalls),
            ("sysreg traps", self.machine.sysreg_traps),
            ("stage-2 faults", self.machine.stage2_faults),
            ("EL1 aborts", self.machine.el1_aborts),
            ("IRQs delivered", self.machine.irqs_delivered),
            ("syscalls", self.kernel.syscalls),
            ("forks / execs / exits", self.kernel.forks),
            ("context switches", self.kernel.context_switches),
            ("page faults", self.kernel.page_faults),
            ("TLB hits", self.tlb.hits),
            ("TLB misses", self.tlb.misses),
            ("cache hits", self.cache.hits),
            ("cache misses", self.cache.misses),
        ];
        for (name, value) in rows {
            out.push_str(&format!(
                "| {name} | {value} |
"
            ));
        }
        if let Some(mbm) = self.mbm {
            out.push_str(&format!(
                "| MBM events matched | {} |
",
                mbm.events_matched
            ));
            out.push_str(&format!(
                "| MBM IRQs raised | {} |
",
                mbm.irqs_raised
            ));
        }
        if let Some(dropped) = self.trace_dropped {
            out.push_str(&format!(
                "| trace records dropped | {dropped} |
"
            ));
        }
        if let Some(snap) = &self.telemetry {
            if !snap.spans.is_empty() {
                out.push_str(
                    "
#### Span latencies (cycles)

| span | track | count | p50 | p95 | p99 | max |
|---|---|---|---|---|---|---|
",
                );
                for ((track, span), s) in &snap.spans {
                    out.push_str(&format!(
                        "| {} | {} | {} | {} | {} | {} | {} |
",
                        span.name(),
                        track.name(),
                        s.count,
                        s.p50,
                        s.p95,
                        s.p99,
                        s.max
                    ));
                }
            }
            if snap.open_spans > 0 || snap.unmatched_ends > 0 {
                out.push_str(&format!(
                    "
{} span(s) still open, {} unmatched end(s).
",
                    snap.open_spans, snap.unmatched_ends
                ));
            }
        }
        out
    }

    /// Serializes the full report as a JSON object — the machine-readable
    /// run artifact. Counters mirror [`RunReport::to_markdown`]; when
    /// telemetry is enabled, a `latencies` array carries per-span
    /// summaries (count/min/max/mean/p50/p95/p99 in cycles) and a
    /// `points` array the point-event counts.
    pub fn to_json(&self) -> Json {
        fn summary(track: &str, span: &str, s: &HistogramSummary) -> Json {
            Json::obj(vec![
                ("span", Json::str(span)),
                ("track", Json::str(track)),
                ("count", Json::UInt(s.count)),
                ("min", Json::UInt(s.min)),
                ("max", Json::UInt(s.max)),
                ("mean", Json::UInt(s.mean)),
                ("p50", Json::UInt(s.p50)),
                ("p95", Json::UInt(s.p95)),
                ("p99", Json::UInt(s.p99)),
            ])
        }
        let mut fields = vec![
            ("schema", Json::UInt(REPORT_SCHEMA)),
            ("kind", Json::str(REPORT_KIND)),
            ("mode", Json::str(&self.mode.to_string())),
            ("cycles", Json::UInt(self.cycles)),
            ("micros", Json::Float(self.micros())),
            (
                "counters",
                Json::obj(vec![
                    ("memory_reads", Json::UInt(self.machine.reads)),
                    ("memory_writes", Json::UInt(self.machine.writes)),
                    (
                        "uncached_accesses",
                        Json::UInt(self.machine.uncached_accesses),
                    ),
                    ("hypercalls", Json::UInt(self.machine.hypercalls)),
                    ("sysreg_traps", Json::UInt(self.machine.sysreg_traps)),
                    ("stage2_faults", Json::UInt(self.machine.stage2_faults)),
                    ("el1_aborts", Json::UInt(self.machine.el1_aborts)),
                    ("irqs_delivered", Json::UInt(self.machine.irqs_delivered)),
                    ("syscalls", Json::UInt(self.kernel.syscalls)),
                    ("forks", Json::UInt(self.kernel.forks)),
                    ("context_switches", Json::UInt(self.kernel.context_switches)),
                    ("page_faults", Json::UInt(self.kernel.page_faults)),
                    ("tlb_hits", Json::UInt(self.tlb.hits)),
                    ("tlb_misses", Json::UInt(self.tlb.misses)),
                    ("cache_hits", Json::UInt(self.cache.hits)),
                    ("cache_misses", Json::UInt(self.cache.misses)),
                ]),
            ),
        ];
        if let Some(mbm) = self.mbm {
            let mut mbm_fields = vec![
                ("events_matched", Json::UInt(mbm.events_matched)),
                ("irqs_raised", Json::UInt(mbm.irqs_raised)),
                ("fifo_dropped", Json::UInt(mbm.fifo_dropped)),
            ];
            if let Some(addr) = mbm.first_dropped_addr {
                mbm_fields.push(("first_dropped_addr", Json::UInt(addr.raw())));
            }
            fields.push(("mbm", Json::obj(mbm_fields)));
        }
        if let Some(dropped) = self.trace_dropped {
            fields.push(("trace_dropped", Json::UInt(dropped)));
        }
        if let Some(f) = self.faults {
            fields.push((
                "faults",
                Json::obj(vec![
                    ("irqs_dropped", Json::UInt(f.irqs_dropped)),
                    ("irqs_delayed", Json::UInt(f.irqs_delayed)),
                    ("translator_stalls", Json::UInt(f.translator_stalls)),
                    ("snoop_addr_flips", Json::UInt(f.snoop_addr_flips)),
                    ("hypercalls_lost", Json::UInt(f.hypercalls_lost)),
                    ("bitmap_desyncs", Json::UInt(f.bitmap_desyncs)),
                    ("total", Json::UInt(f.total())),
                ]),
            ));
        }
        if let Some(snap) = &self.telemetry {
            let latencies: Vec<Json> = snap
                .spans
                .iter()
                .map(|((track, span), s)| summary(track.name(), span.name(), s))
                .collect();
            let points: Vec<Json> = snap
                .counters
                .iter()
                .map(|((track, point), n)| {
                    Json::obj(vec![
                        ("point", Json::str(point.name())),
                        ("track", Json::str(track.name())),
                        ("count", Json::UInt(*n)),
                    ])
                })
                .collect();
            fields.push((
                "telemetry",
                Json::obj(vec![
                    ("latencies", Json::Array(latencies)),
                    ("points", Json::Array(points)),
                    ("open_spans", Json::UInt(snap.open_spans)),
                    ("unmatched_ends", Json::UInt(snap.unmatched_ends)),
                ]),
            ));
        }
        Json::obj(fields)
    }

    /// Host-side fast-path telemetry: L0 micro-TLB and MBM watch-page
    /// filter counters, rendered as markdown.
    ///
    /// These counters are *deliberately excluded* from
    /// [`RunReport::to_json`] and [`RunReport::to_markdown`]: they
    /// describe how fast the simulator ran (and legitimately differ
    /// under `HYPERNEL_NO_FASTPATH`), not what the simulated machine
    /// did — and the deterministic run artifacts must stay
    /// byte-identical with the fast paths on or off.
    pub fn host_fastpath_markdown(&self) -> String {
        let mut out = String::from("#### Host fast paths (not part of the run artifact)\n\n");
        out.push_str("| counter | value |\n|---|---|\n");
        out.push_str(&format!("| L0 micro-TLB hits | {} |\n", self.tlb.l0_hits));
        out.push_str(&format!(
            "| L0 micro-TLB fall-throughs | {} |\n",
            self.tlb.l0_misses
        ));
        if let Some(rate) = self.tlb.l0_hit_rate() {
            out.push_str(&format!(
                "| L0 share of all lookups | {:.1}% |\n",
                rate * 100.0
            ));
        }
        if let Some(mbm) = self.mbm {
            out.push_str(&format!(
                "| MBM watch-page filter skips | {} |\n",
                mbm.page_filter_skips
            ));
        }
        out
    }

    /// Deltas of the headline counters versus an earlier snapshot of the
    /// same system (for before/after experiment phases).
    ///
    /// # Panics
    ///
    /// Panics if the snapshots come from different modes or `earlier`
    /// is not actually earlier.
    pub fn since(&self, earlier: &RunReport) -> RunDelta {
        assert_eq!(self.mode, earlier.mode, "snapshots from different systems");
        assert!(self.cycles >= earlier.cycles, "snapshots out of order");
        RunDelta {
            cycles: self.cycles - earlier.cycles,
            hypercalls: self.machine.hypercalls - earlier.machine.hypercalls,
            sysreg_traps: self.machine.sysreg_traps - earlier.machine.sysreg_traps,
            stage2_faults: self.machine.stage2_faults - earlier.machine.stage2_faults,
            mbm_events: match (self.mbm, earlier.mbm) {
                (Some(a), Some(b)) => a.events_matched - b.events_matched,
                _ => 0,
            },
        }
    }
}

/// Headline counter deltas between two [`RunReport`] snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunDelta {
    /// Cycles elapsed between the snapshots.
    pub cycles: u64,
    /// Hypercalls taken.
    pub hypercalls: u64,
    /// VM-register traps.
    pub sysreg_traps: u64,
    /// Stage-2 faults.
    pub stage2_faults: u64,
    /// MBM events matched.
    pub mbm_events: u64,
}

/// A measured latency: cycles for `iterations` repetitions of an
/// operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latency {
    /// Total cycles across all iterations.
    pub total_cycles: u64,
    /// Number of iterations measured.
    pub iterations: u64,
}

impl Latency {
    /// Mean cycles per iteration.
    pub fn cycles_per_iter(&self) -> f64 {
        self.total_cycles as f64 / self.iterations.max(1) as f64
    }

    /// Mean microseconds per iteration at the modeled clock.
    pub fn micros_per_iter(&self) -> f64 {
        CostModel::cycles_to_us(self.total_cycles) / self.iterations.max(1) as f64
    }

    /// Overhead of `self` relative to `baseline`, as a fraction
    /// (`0.05` = 5 % slower).
    pub fn overhead_vs(&self, baseline: &Latency) -> f64 {
        self.cycles_per_iter() / baseline.cycles_per_iter() - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_math() {
        let base = Latency {
            total_cycles: 1000,
            iterations: 10,
        };
        let slower = Latency {
            total_cycles: 1150,
            iterations: 10,
        };
        assert_eq!(base.cycles_per_iter(), 100.0);
        assert!((slower.overhead_vs(&base) - 0.15).abs() < 1e-12);
        // 100 cycles at 1.15 GHz ≈ 0.087 µs.
        assert!((base.micros_per_iter() - 100.0 / 1150.0).abs() < 1e-9);
    }

    #[test]
    fn capture_snapshot() {
        let sys = System::boot(Mode::Native).expect("boot");
        let report = RunReport::capture(&sys);
        assert_eq!(report.mode, Mode::Native);
        assert!(report.mbm.is_none());
        assert!(report.micros() >= 0.0);
    }

    #[test]
    fn markdown_rendering_contains_the_counters() {
        let mut sys = System::boot(Mode::Hypernel).expect("boot");
        {
            let (kernel, machine, hyp) = sys.parts();
            let child = kernel.sys_fork(machine, hyp).expect("fork");
            kernel.switch_to(machine, hyp, child).expect("switch");
            kernel
                .sys_exit(machine, hyp, child, hypernel_kernel::task::Pid(1))
                .expect("exit");
        }
        let md = RunReport::capture(&sys).to_markdown();
        assert!(md.contains("### Hypernel"));
        assert!(md.contains("| hypercalls |"));
        assert!(md.contains("| MBM events matched |"));
        assert!(md.starts_with("###"));
    }

    #[test]
    fn json_report_includes_span_percentiles() {
        use crate::system::SystemBuilder;
        let mut sys = SystemBuilder::new(Mode::Hypernel)
            .telemetry(1 << 14)
            .build()
            .expect("boot");
        {
            let (kernel, machine, hyp) = sys.parts();
            let child = kernel.sys_fork(machine, hyp).expect("fork");
            kernel.switch_to(machine, hyp, child).expect("switch");
            kernel
                .sys_exit(machine, hyp, child, hypernel_kernel::task::Pid(1))
                .expect("exit");
        }
        let report = RunReport::capture(&sys);
        let text = report.to_json().to_string();
        // The artifact must survive a parse round-trip…
        let doc = Json::parse(&text).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(Json::as_u64),
            Some(REPORT_SCHEMA)
        );
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some(REPORT_KIND));
        assert_eq!(doc.get("mode").and_then(Json::as_str), Some("Hypernel"));
        let counters = doc.get("counters").expect("counters");
        assert!(counters.get("hypercalls").and_then(Json::as_u64).unwrap() > 0);
        // …and carry p50/p95/p99 for the headline spans.
        let latencies = doc
            .get("telemetry")
            .and_then(|t| t.get("latencies"))
            .and_then(Json::as_array)
            .expect("latencies");
        let find = |name: &str| {
            latencies
                .iter()
                .find(|l| l.get("span").and_then(Json::as_str) == Some(name))
                .unwrap_or_else(|| panic!("no {name} summary"))
        };
        for span in ["hypercall-verify", "stage2-check", "sysreg-verify"] {
            let s = find(span);
            let p50 = s.get("p50").and_then(Json::as_u64).expect("p50");
            let p95 = s.get("p95").and_then(Json::as_u64).expect("p95");
            let p99 = s.get("p99").and_then(Json::as_u64).expect("p99");
            assert!(p50 <= p95 && p95 <= p99, "{span} quantiles out of order");
            assert!(s.get("count").and_then(Json::as_u64).unwrap() > 0);
        }
        // Markdown mirrors the latency table.
        let md = report.to_markdown();
        assert!(md.contains("#### Span latencies"));
        assert!(md.contains("| hypercall-verify |"));
    }

    #[test]
    fn json_report_without_telemetry_omits_it() {
        let sys = System::boot(Mode::Native).expect("boot");
        let doc = Json::parse(&RunReport::capture(&sys).to_json().to_string()).unwrap();
        assert!(doc.get("telemetry").is_none());
        assert!(doc.get("mbm").is_none());
    }

    #[test]
    fn host_fastpath_counters_stay_out_of_the_artifact() {
        let mut sys = System::boot(Mode::Hypernel).expect("boot");
        {
            let (kernel, machine, hyp) = sys.parts();
            let child = kernel.sys_fork(machine, hyp).expect("fork");
            kernel.switch_to(machine, hyp, child).expect("switch");
            kernel
                .sys_exit(machine, hyp, child, hypernel_kernel::task::Pid(1))
                .expect("exit");
        }
        let report = RunReport::capture(&sys);

        // The host-side surface exposes the L0 and MBM filter counters…
        let host = report.host_fastpath_markdown();
        assert!(host.contains("| L0 micro-TLB hits |"));
        assert!(host.contains("| L0 micro-TLB fall-throughs |"));
        assert!(host.contains("| MBM watch-page filter skips |"));

        // …but the deterministic artifacts must not mention them: they
        // differ under HYPERNEL_NO_FASTPATH, and the run artifact is
        // required to be byte-identical with fast paths on or off.
        let json = report.to_json().to_string();
        assert!(!json.contains("l0_"), "l0 counters leaked into JSON");
        assert!(
            !json.contains("page_filter_skips"),
            "filter counter leaked into JSON"
        );
        let md = report.to_markdown();
        assert!(!md.contains("L0"), "l0 counters leaked into markdown");
        assert!(
            !md.contains("filter skips"),
            "filter counter leaked into markdown"
        );
    }

    #[test]
    fn dropped_trace_events_are_surfaced_in_the_artifact() {
        use crate::system::SystemBuilder;
        // A 4-event ring overflows immediately under a real workload…
        let mut sys = SystemBuilder::new(Mode::Hypernel)
            .telemetry(4)
            .build()
            .expect("boot");
        {
            let (kernel, machine, hyp) = sys.parts();
            let child = kernel.sys_fork(machine, hyp).expect("fork");
            kernel.switch_to(machine, hyp, child).expect("switch");
            kernel
                .sys_exit(machine, hyp, child, hypernel_kernel::task::Pid(1))
                .expect("exit");
        }
        let report = RunReport::capture(&sys);
        let dropped = report.trace_dropped.expect("telemetry is on");
        assert!(dropped > 0, "tiny ring must drop");
        let doc = Json::parse(&report.to_json().to_string()).unwrap();
        assert_eq!(
            doc.get("trace_dropped").and_then(Json::as_u64),
            Some(dropped)
        );
        assert!(report.to_markdown().contains("| trace records dropped |"));

        // …and a run without telemetry reports nothing rather than 0.
        let silent = RunReport::capture(&System::boot(Mode::Native).expect("boot"));
        assert!(silent.trace_dropped.is_none());
        assert!(Json::parse(&silent.to_json().to_string())
            .unwrap()
            .get("trace_dropped")
            .is_none());
    }

    #[test]
    fn delta_between_snapshots() {
        let mut sys = System::boot(Mode::Hypernel).expect("boot");
        let before = RunReport::capture(&sys);
        {
            let (kernel, machine, hyp) = sys.parts();
            let child = kernel.sys_fork(machine, hyp).expect("fork");
            kernel.switch_to(machine, hyp, child).expect("switch");
            kernel
                .sys_exit(machine, hyp, child, hypernel_kernel::task::Pid(1))
                .expect("exit");
        }
        let delta = RunReport::capture(&sys).since(&before);
        assert!(delta.cycles > 0);
        assert!(delta.hypercalls > 10, "fork routes through hypercalls");
        assert!(delta.sysreg_traps >= 2);
        assert_eq!(delta.stage2_faults, 0);
    }
}
