#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # hypernel
//!
//! A full-system reproduction of **"Hypernel: A Hardware-Assisted
//! Framework for Kernel Protection without Nested Paging"** (Kwon et al.,
//! DAC 2018), built on a simulated AArch64-like machine.
//!
//! The paper's hardware prototype (ARM Juno r1 + an FPGA memory bus
//! monitor + patched Linux 3.10) is replaced by faithful software models:
//!
//! | Component | Crate |
//! |---|---|
//! | CPU/MMU/TLB/cache/bus machine model | [`hypernel_machine`] |
//! | Memory Bus Monitor (MBM) hardware   | [`hypernel_mbm`] |
//! | Mini monolithic kernel              | [`hypernel_kernel`] |
//! | Hypersec (EL2 secure software)      | [`hypernel_hypersec`] |
//! | KVM-style nested-paging baseline    | [`hypernel_hypervisor`] |
//! | LMbench + application workloads     | [`hypernel_workloads`] |
//!
//! This crate assembles them into the paper's three evaluation
//! configurations — [`Mode::Native`], [`Mode::KvmGuest`] and
//! [`Mode::Hypernel`] — behind one [`System`] type.
//!
//! ## Quickstart
//!
//! ```
//! use hypernel::{Mode, System};
//!
//! // Boot the kernel under Hypernel protection.
//! let mut system = System::boot(Mode::Hypernel)?;
//!
//! // Run a kernel operation; page-table updates go through verified
//! // hypercalls instead of nested paging.
//! let (kernel, machine, hyp) = system.parts();
//! let child = kernel.sys_fork(machine, hyp)?;
//! kernel.switch_to(machine, hyp, child)?;
//! kernel.sys_exit(machine, hyp, child, hypernel_kernel::task::Pid(1))?;
//!
//! assert!(system.machine().stats().hypercalls > 0);
//! assert!(!system.machine().regs().stage2_enabled()); // no nested paging
//! # Ok::<(), hypernel_kernel::kernel::KernelError>(())
//! ```

pub mod metrics;
pub mod report;
pub mod system;

pub use report::{Latency, RunDelta, RunReport, REPORT_KIND, REPORT_SCHEMA};
pub use system::{Mode, System, SystemBuilder, DEFAULT_TELEMETRY_CAPACITY};

// Re-export the component crates so downstream users need only one
// dependency.
pub use hypernel_analyze as analyze;
pub use hypernel_audit as audit;
pub use hypernel_hypersec as hypersec;
pub use hypernel_hypervisor as hypervisor;
pub use hypernel_kernel as kernel;
pub use hypernel_machine as machine;
pub use hypernel_mbm as mbm;
pub use hypernel_telemetry as telemetry;
pub use hypernel_workloads as workloads;
