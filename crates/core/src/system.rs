//! Whole-system assembly: machine + EL2 software + kernel (+ MBM).
//!
//! [`System`] wires up one of the paper's three evaluation configurations
//! (§7.1):
//!
//! * [`Mode::Native`] — the base kernel on bare metal.
//! * [`Mode::KvmGuest`] — the kernel inside a KVM-style VM with nested
//!   paging and lazy stage-2 population.
//! * [`Mode::Hypernel`] — the kernel under Hypersec (no nested paging)
//!   with the memory bus monitor attached.

use hypernel_hypersec::{
    ComposeMonitor, CredMonitor, DentryMonitor, Hypersec, HypersecConfig, SecurityApp,
};
use hypernel_hypervisor::{KvmConfig, KvmHypervisor};
use hypernel_kernel::kernel::{Kernel, KernelConfig, KernelError, MonitorHooks};
use hypernel_kernel::layout;
use hypernel_machine::addr::PhysAddr;
use hypernel_machine::fault::{self, FaultHit, FaultPlan, FaultStats};
use hypernel_machine::machine::{Hyp, Machine, MachineConfig, NullHyp};
use hypernel_machine::shadow::TagPolicy;
use hypernel_mbm::{Mbm, MbmConfig, MbmStats};
use hypernel_telemetry::{Event, FanoutSink, RingSink, SharedSink, Snapshot, Telemetry};
use std::cell::RefCell;
use std::rc::Rc;

/// Default event-ring capacity used by [`SystemBuilder::telemetry`] and
/// [`System::enable_telemetry`] callers that have no better number:
/// large enough to hold a full lmbench table run without eviction.
pub const DEFAULT_TELEMETRY_CAPACITY: usize = 1 << 16;

/// The shared sinks behind an enabled telemetry pipeline: one ring
/// buffer keeping the raw event stream for export, one [`Telemetry`]
/// registry aggregating latencies and counters, and the fan-out that
/// feeds them both.
struct TelemetryHandles {
    ring: Rc<RefCell<RingSink>>,
    registry: Rc<RefCell<Telemetry>>,
    fanout: SharedSink,
}

impl TelemetryHandles {
    fn new(ring_capacity: usize) -> Self {
        let ring = Rc::new(RefCell::new(RingSink::new(ring_capacity)));
        let registry = Rc::new(RefCell::new(Telemetry::new()));
        let ring_dyn: SharedSink = ring.clone();
        let registry_dyn: SharedSink = registry.clone();
        let fanout: SharedSink = Rc::new(RefCell::new(
            FanoutSink::new().with(ring_dyn).with(registry_dyn),
        ));
        Self {
            ring,
            registry,
            fanout,
        }
    }

    /// Installs the fan-out into the machine and (if attached) the MBM,
    /// so CPU-side and bus-side events land in the same stream.
    fn install(&self, machine: &mut Machine) {
        machine.set_telemetry_sink(Some(self.fanout.clone()));
        if let Some(mbm) = machine.bus_mut().snooper_mut::<Mbm>() {
            mbm.set_telemetry_sink(Some(self.fanout.clone()));
        }
    }
}

/// The three evaluated system configurations (paper §7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Base kernel, no hypervisor-level software.
    Native,
    /// Kernel in a KVM-style VM (nested paging).
    KvmGuest,
    /// Kernel protected by Hypernel (Hypersec + MBM, no nested paging).
    Hypernel,
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Native => write!(f, "Native"),
            Self::KvmGuest => write!(f, "KVM-guest"),
            Self::Hypernel => write!(f, "Hypernel"),
        }
    }
}

/// The EL2 software installed on the machine.
#[allow(clippy::large_enum_variant)] // one instance per system; boxing buys nothing
#[derive(Clone)]
enum El2Software {
    Native(NullHyp),
    Kvm(KvmHypervisor),
    Hypersec(Hypersec),
}

impl El2Software {
    fn as_hyp(&mut self) -> &mut dyn Hyp {
        match self {
            Self::Native(h) => h,
            Self::Kvm(h) => h,
            Self::Hypersec(h) => h,
        }
    }
}

/// Builder for a [`System`].
///
/// ```
/// use hypernel::system::{Mode, SystemBuilder};
///
/// let system = SystemBuilder::new(Mode::Native).build()?;
/// assert_eq!(system.mode(), Mode::Native);
/// # Ok::<(), hypernel_kernel::kernel::KernelError>(())
/// ```
pub struct SystemBuilder {
    mode: Mode,
    machine_config: MachineConfig,
    monitor_hooks: Option<MonitorHooks>,
    extra_apps: Vec<Box<dyn SecurityApp>>,
    section_linear_map: bool,
    mbm_config: Option<MbmConfig>,
    telemetry_capacity: Option<usize>,
    fault_plan: Option<FaultPlan>,
}

impl std::fmt::Debug for SystemBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemBuilder")
            .field("mode", &self.mode)
            .field("monitor_hooks", &self.monitor_hooks)
            .field("section_linear_map", &self.section_linear_map)
            .finish_non_exhaustive()
    }
}

impl SystemBuilder {
    /// Starts a builder for the given mode.
    pub fn new(mode: Mode) -> Self {
        Self {
            mode,
            machine_config: MachineConfig {
                dram_size: layout::DRAM_SIZE,
                ..MachineConfig::default()
            },
            monitor_hooks: None,
            extra_apps: Vec::new(),
            section_linear_map: false,
            mbm_config: None,
            telemetry_capacity: None,
            fault_plan: None,
        }
    }

    /// Overrides the machine configuration (DRAM is always forced to the
    /// platform layout's size).
    pub fn machine_config(mut self, mut config: MachineConfig) -> Self {
        config.dram_size = layout::DRAM_SIZE;
        self.machine_config = config;
        self
    }

    /// Enables the kernel's security hooks from boot (usually enabled
    /// later, per experiment, via [`Kernel::set_monitor_hooks`]).
    pub fn monitor_hooks(mut self, hooks: MonitorHooks) -> Self {
        self.monitor_hooks = Some(hooks);
        self
    }

    /// Hosts an additional security application (Hypernel mode only; the
    /// cred and dentry monitors are always installed).
    pub fn app(mut self, app: Box<dyn SecurityApp>) -> Self {
        self.extra_apps.push(app);
        self
    }

    /// Uses the vanilla 2 MiB-section linear map instead of the
    /// instrumented 4 KiB-page map (the §6.2 ablation).
    pub fn section_linear_map(mut self, yes: bool) -> Self {
        self.section_linear_map = yes;
        self
    }

    /// Overrides the MBM configuration (Hypernel mode only).
    pub fn mbm_config(mut self, config: MbmConfig) -> Self {
        self.mbm_config = Some(config);
        self
    }

    /// Enables telemetry from the very first boot cycle, buffering up to
    /// `ring_capacity` raw events (see [`DEFAULT_TELEMETRY_CAPACITY`]).
    /// Use [`System::enable_telemetry`] instead to skip boot noise.
    pub fn telemetry(mut self, ring_capacity: usize) -> Self {
        self.telemetry_capacity = Some(ring_capacity);
        self
    }

    /// Injects faults at the machine/MBM boundary during the run:
    /// dropped or delayed MBM interrupts, translator stalls (FIFO
    /// pressure), bit-flipped snoop addresses, lost hypercalls, and
    /// watch-bitmap desyncs. The injector is installed *after* boot, so
    /// spec occurrence counts start at the first post-boot event — a
    /// scenario's `at = 1` means "the first IRQ the workload raises",
    /// not whatever boot happened to do.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Assembles and boots the system.
    ///
    /// # Errors
    ///
    /// Propagates kernel boot failures (including Hypersec denials, which
    /// indicate a misconfiguration).
    pub fn build(self) -> Result<System, KernelError> {
        let mut machine = Machine::new(self.machine_config);
        let mut kernel_config = match self.mode {
            Mode::Native | Mode::KvmGuest => KernelConfig::native(),
            Mode::Hypernel => KernelConfig::hypernel(),
        };
        kernel_config.monitor_hooks = self.monitor_hooks;
        if self.section_linear_map {
            kernel_config.linear_map = hypernel_kernel::pgtable::LinearMapMode::Sections;
        }

        let mut el2 = match self.mode {
            Mode::Native => El2Software::Native(NullHyp),
            Mode::KvmGuest => {
                let mut kvm = KvmHypervisor::new(KvmConfig::standard(
                    PhysAddr::new(layout::SECURE_BASE),
                    layout::SECURE_SIZE,
                    layout::SECURE_BASE,
                ));
                kvm.install(&mut machine);
                El2Software::Kvm(kvm)
            }
            Mode::Hypernel => {
                let mbm_config = self.mbm_config.unwrap_or_else(|| {
                    MbmConfig::standard(
                        PhysAddr::new(layout::MBM_WINDOW_BASE),
                        layout::MBM_WINDOW_LEN,
                        PhysAddr::new(layout::MBM_BITMAP_BASE),
                        PhysAddr::new(layout::MBM_RING_BASE),
                        layout::MBM_RING_ENTRIES,
                    )
                    // §8 extension: alarm on any bus (DMA) write into
                    // Hypersec's private memory — the CPU never writes it
                    // through the bus, so bus writes there are tampering.
                    .with_secure_guard(
                        PhysAddr::new(layout::HYPERSEC_PRIVATE_BASE),
                        layout::HYPERSEC_PRIVATE_SIZE,
                    )
                });
                machine.bus_mut().attach(Box::new(Mbm::new(mbm_config)));
                let mut hypersec = Hypersec::install(&mut machine, HypersecConfig::standard());
                hypersec.install_app(Box::new(CredMonitor::new()));
                hypersec.install_app(Box::new(DentryMonitor::new()));
                hypersec.install_app(Box::new(ComposeMonitor::new()));
                for app in self.extra_apps {
                    hypersec.install_app(app);
                }
                El2Software::Hypersec(hypersec)
            }
        };

        // Install telemetry before boot (and after the MBM is attached)
        // so the event stream covers the kernel's own bring-up.
        let telemetry = self.telemetry_capacity.map(TelemetryHandles::new);
        if let Some(handles) = &telemetry {
            handles.install(&mut machine);
        }

        let kernel = Kernel::boot(&mut machine, el2.as_hyp(), kernel_config)?;

        // KVM warms stage 2 for boot-time memory so only post-boot
        // allocations fault lazily.
        if let El2Software::Kvm(kvm) = &mut el2 {
            let watermark = kernel.frames_watermark();
            kvm.prefault(&mut machine, watermark);
        }

        // Faults arm only after boot completes (see `fault_plan`).
        if let Some(plan) = self.fault_plan {
            let injector = fault::share(plan);
            machine.set_fault_injector(Some(injector.clone()));
            if let Some(mbm) = machine.bus_mut().snooper_mut::<Mbm>() {
                mbm.set_fault_injector(Some(injector));
            }
        }

        Ok(System {
            mode: self.mode,
            machine,
            kernel,
            el2,
            telemetry,
        })
    }
}

/// A booted system in one of the three configurations.
pub struct System {
    mode: Mode,
    machine: Machine,
    kernel: Kernel,
    el2: El2Software,
    telemetry: Option<TelemetryHandles>,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("mode", &self.mode)
            .field("cycles", &self.machine.cycles())
            .finish_non_exhaustive()
    }
}

impl System {
    /// Boots a system with default settings for `mode`.
    ///
    /// # Errors
    ///
    /// See [`SystemBuilder::build`].
    pub fn boot(mode: Mode) -> Result<Self, KernelError> {
        SystemBuilder::new(mode).build()
    }

    /// The configuration this system was built in.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The machine (read-only).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The machine, mutable — for debug inspection (cache-coherent
    /// physical reads need `&mut`) and direct device access in tests.
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// The kernel (read-only).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Splits the system into the `(kernel, machine, el2)` triple that
    /// kernel operations and workloads take.
    pub fn parts(&mut self) -> (&mut Kernel, &mut Machine, &mut dyn Hyp) {
        (&mut self.kernel, &mut self.machine, self.el2.as_hyp())
    }

    /// Elapsed cycles.
    pub fn cycles(&self) -> u64 {
        self.machine.cycles()
    }

    /// MBM statistics (Hypernel mode only).
    pub fn mbm_stats(&self) -> Option<MbmStats> {
        self.machine.bus().snooper::<Mbm>().map(Mbm::stats)
    }

    /// Resets the MBM statistics (between experiment phases).
    pub fn reset_mbm_stats(&mut self) {
        if let Some(mbm) = self.machine.bus_mut().snooper_mut::<Mbm>() {
            mbm.reset_stats();
        }
    }

    /// Per-kind counters of injected faults, if a
    /// [`SystemBuilder::fault_plan`] was installed.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.machine.fault_stats()
    }

    /// Chronological log of every fault that fired, if an injector is
    /// installed.
    pub fn fault_log(&self) -> Option<Vec<FaultHit>> {
        self.machine
            .fault_injector()
            .map(|f| f.borrow().log().to_vec())
    }

    /// The Hypersec runtime (Hypernel mode only).
    pub fn hypersec(&self) -> Option<&Hypersec> {
        match &self.el2 {
            El2Software::Hypersec(h) => Some(h),
            _ => None,
        }
    }

    /// Mutable Hypersec runtime (Hypernel mode only).
    pub fn hypersec_mut(&mut self) -> Option<&mut Hypersec> {
        match &mut self.el2 {
            El2Software::Hypersec(h) => Some(h),
            _ => None,
        }
    }

    /// The KVM hypervisor (KVM-guest mode only).
    pub fn kvm(&self) -> Option<&KvmHypervisor> {
        match &self.el2 {
            El2Software::Kvm(h) => Some(h),
            _ => None,
        }
    }

    /// Mutable KVM hypervisor (KVM-guest mode only).
    pub fn kvm_mut(&mut self) -> Option<&mut KvmHypervisor> {
        match &mut self.el2 {
            El2Software::Kvm(h) => Some(h),
            _ => None,
        }
    }

    /// Turns telemetry on mid-run (a no-op if already enabled), keeping
    /// up to `ring_capacity` raw events for export. All events from this
    /// point on — CPU-side and MBM-side — feed both the ring and the
    /// aggregating registry.
    pub fn enable_telemetry(&mut self, ring_capacity: usize) {
        if self.telemetry.is_some() {
            return;
        }
        let handles = TelemetryHandles::new(ring_capacity);
        handles.install(&mut self.machine);
        self.telemetry = Some(handles);
    }

    /// Detaches the sinks: subsequent events are no longer recorded and
    /// the emit helpers reduce to a single branch again.
    pub fn disable_telemetry(&mut self) {
        self.machine.set_telemetry_sink(None);
        if let Some(mbm) = self.machine.bus_mut().snooper_mut::<Mbm>() {
            mbm.set_telemetry_sink(None);
        }
        self.telemetry = None;
    }

    /// Whether a telemetry pipeline is installed.
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.is_some()
    }

    /// Freezes the current aggregates (histograms + counters), if
    /// telemetry is enabled.
    pub fn telemetry_snapshot(&self) -> Option<Snapshot> {
        self.telemetry
            .as_ref()
            .map(|t| t.registry.borrow().snapshot())
    }

    /// Copies out the buffered raw events, oldest first, if telemetry is
    /// enabled. Pair with [`System::telemetry_dropped`] to report
    /// truncation honestly.
    pub fn telemetry_events(&self) -> Option<Vec<Event>> {
        self.telemetry.as_ref().map(|t| t.ring.borrow().to_vec())
    }

    /// Raw events evicted from the ring because it was full.
    pub fn telemetry_dropped(&self) -> Option<u64> {
        self.telemetry.as_ref().map(|t| t.ring.borrow().dropped())
    }

    /// Forks this booted system into an independent copy (warm-boot
    /// reuse): all architectural and software state — memory, TLB,
    /// cache, registers, bus devices, kernel tables, EL2 software — is
    /// deep-copied, and the two host-side shared attachments are
    /// re-wired so the copy never aliases the original:
    ///
    /// * the fault injector (machine, bus and MBM handles) is replaced
    ///   by a fresh `Rc` around a copy of its current state, so the
    ///   fork's occurrence counters advance independently;
    /// * telemetry sinks are detached on the copy (enable telemetry on
    ///   the fork afterwards if the experiment needs it).
    ///
    /// A fork taken immediately after boot is observationally identical
    /// to a fresh [`SystemBuilder::build`] with the same settings: the
    /// campaign engine relies on this to boot each scenario once and
    /// fork per seed.
    pub fn fork(&self) -> System {
        let mut machine = self.machine.clone();
        // The clone shares the original's telemetry fan-out (an `Rc`);
        // detach it so the fork cannot feed the original's ring.
        machine.set_telemetry_sink(None);
        if let Some(mbm) = machine.bus_mut().snooper_mut::<Mbm>() {
            mbm.set_telemetry_sink(None);
        }
        // Same for the fault injector: give the fork its own copy of the
        // injector state behind a fresh handle, wired to machine, bus
        // and MBM alike.
        if let Some(shared) = machine.fault_injector() {
            let fresh: fault::SharedFaults = Rc::new(RefCell::new(shared.borrow().clone()));
            machine.set_fault_injector(Some(fresh.clone()));
            if let Some(mbm) = machine.bus_mut().snooper_mut::<Mbm>() {
                mbm.set_fault_injector(Some(fresh));
            }
        }
        System {
            mode: self.mode,
            machine,
            kernel: self.kernel.clone(),
            el2: self.el2.clone(),
            telemetry: None,
        }
    }

    /// Runs Hypersec's invariant auditor against the live machine state
    /// (Hypernel mode only). See [`Hypersec::audit`].
    pub fn audit_hypersec(&mut self) -> Option<hypernel_hypersec::AuditReport> {
        match &self.el2 {
            El2Software::Hypersec(hs) => Some(hs.audit(&mut self.machine)),
            _ => None,
        }
    }

    /// Runs the whole-system static audit pass (`hypernel-audit`): the
    /// full mapping-graph walk, every static invariant, the
    /// differential comparison against Hypersec's incremental verdict
    /// (Hypernel mode, post-LOCK) and the ownership-sanitizer section
    /// (when enabled). Works in every mode; costs zero simulated
    /// cycles. See [`hypernel_audit::audit_system`].
    pub fn audit_static(&mut self) -> hypernel_audit::StaticAuditReport {
        let hypersec = match &self.el2 {
            El2Software::Hypersec(h) => Some(h),
            _ => None,
        };
        hypernel_audit::audit_system(&mut self.machine, &self.kernel, hypersec)
    }

    /// Turns on the guest-memory ownership sanitizer: seeds a shadow
    /// tag for every DRAM page from the current system state and
    /// installs the mode-appropriate write policy (strict for
    /// [`Mode::Hypernel`] — the kernel never writes page tables — and
    /// the relaxed native matrix otherwise). Idempotent; zero simulated
    /// cycles; never changes simulated results.
    pub fn enable_sanitizer(&mut self) {
        if self.machine.shadow_tags().is_some() {
            return;
        }
        let policy = match self.mode {
            Mode::Hypernel => TagPolicy::hypernel(),
            Mode::Native | Mode::KvmGuest => TagPolicy::native(),
        };
        let mbm_config = self.machine.bus().snooper::<Mbm>().map(|mbm| *mbm.config());
        let tags = hypernel_audit::seed_shadow(
            &mut self.machine,
            &self.kernel,
            policy,
            mbm_config.as_ref(),
        );
        self.machine.set_shadow_tags(Some(tags));
    }

    /// Whether the ownership sanitizer is installed.
    pub fn sanitizer_enabled(&self) -> bool {
        self.machine.shadow_tags().is_some()
    }

    /// Services pending interrupts (forwarding MBM events to Hypersec in
    /// Hypernel mode) — call between workload phases.
    ///
    /// # Errors
    ///
    /// Propagates hypercall denials.
    pub fn service_interrupts(&mut self) -> Result<u64, KernelError> {
        let (kernel, machine, hyp) = (&mut self.kernel, &mut self.machine, self.el2.as_hyp_raw());
        // SAFETY of the split: fields are disjoint.
        kernel.poll_irqs(machine, hyp)
    }
}

impl El2Software {
    fn as_hyp_raw(&mut self) -> &mut dyn Hyp {
        self.as_hyp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_boots() {
        let sys = System::boot(Mode::Native).expect("native boot");
        assert_eq!(sys.mode(), Mode::Native);
        assert!(sys.mbm_stats().is_none());
        assert!(sys.hypersec().is_none());
        assert!(sys.kvm().is_none());
    }

    #[test]
    fn kvm_guest_boots_with_stage2() {
        let sys = System::boot(Mode::KvmGuest).expect("kvm boot");
        assert!(sys.machine().regs().stage2_enabled());
        assert!(sys.kvm().is_some());
        assert!(sys.kvm().unwrap().stats().pages_mapped > 0);
    }

    #[test]
    fn hypernel_boots_locked_without_stage2() {
        let sys = System::boot(Mode::Hypernel).expect("hypernel boot");
        assert!(!sys.machine().regs().stage2_enabled(), "no nested paging");
        assert!(sys.machine().regs().tvm_enabled(), "TVM armed");
        let hs = sys.hypersec().expect("hypersec installed");
        assert!(hs.is_locked());
        assert!(hs.stats().tables_registered > 0);
        assert!(sys.mbm_stats().is_some());
    }

    #[test]
    fn hypernel_kernel_ops_route_through_hypercalls() {
        let mut sys = System::boot(Mode::Hypernel).expect("boot");
        let hypercalls_before = sys.machine().stats().hypercalls;
        let (kernel, machine, hyp) = sys.parts();
        let child = kernel.sys_fork(machine, hyp).expect("fork");
        kernel.switch_to(machine, hyp, child).expect("switch");
        kernel
            .sys_exit(machine, hyp, child, hypernel_kernel::task::Pid(1))
            .expect("exit");
        assert!(
            sys.machine().stats().hypercalls > hypercalls_before + 20,
            "fork under Hypernel must issue many PT hypercalls"
        );
        assert!(
            sys.machine().stats().sysreg_traps >= 2,
            "TTBR switches trap"
        );
    }

    #[test]
    fn telemetry_captures_cross_el_spans_under_hypernel() {
        use hypernel_telemetry::{SpanKind, Track};
        let mut sys = SystemBuilder::new(Mode::Hypernel)
            .telemetry(DEFAULT_TELEMETRY_CAPACITY)
            .build()
            .expect("boot");
        assert!(sys.telemetry_enabled());
        {
            let (kernel, machine, hyp) = sys.parts();
            let child = kernel.sys_fork(machine, hyp).expect("fork");
            kernel.switch_to(machine, hyp, child).expect("switch");
            kernel
                .sys_exit(machine, hyp, child, hypernel_kernel::task::Pid(1))
                .expect("exit");
        }
        let snap = sys.telemetry_snapshot().expect("snapshot");
        // Fork under Hypernel routes PT updates through verified
        // hypercalls: both the EL2 verification span and its inner
        // stage-2-equivalent check must have fired.
        let verify = &snap.spans[&(Track::El2, SpanKind::HypercallVerify)];
        assert!(verify.count > 20, "fork issues many PT hypercalls");
        assert!(verify.p50 > 0 && verify.p99 >= verify.p50);
        let check = &snap.spans[&(Track::El2, SpanKind::Stage2Check)];
        assert!(check.count > 0 && check.count <= verify.count);
        // TTBR switches trap and are verified at EL2.
        assert!(snap.spans[&(Track::El2, SpanKind::SysregVerify)].count >= 2);
        assert!(!sys.telemetry_events().unwrap().is_empty());
        assert_eq!(sys.telemetry_dropped(), Some(0));
    }

    #[test]
    fn telemetry_disabled_records_nothing() {
        let mut sys = System::boot(Mode::Hypernel).expect("boot");
        assert!(!sys.telemetry_enabled());
        assert!(sys.telemetry_snapshot().is_none());
        // Enable, run work, then disable: the stream must stop.
        sys.enable_telemetry(1024);
        {
            let (kernel, machine, _hyp) = sys.parts();
            kernel.sys_getpid(machine);
        }
        let n = sys.telemetry_events().unwrap().len();
        assert!(n > 0, "enabled telemetry records syscall spans");
        sys.disable_telemetry();
        assert!(sys.telemetry_snapshot().is_none());
    }

    #[test]
    fn fork_after_boot_matches_fresh_boot() {
        for mode in [Mode::Native, Mode::KvmGuest, Mode::Hypernel] {
            let template = System::boot(mode).expect("boot template");
            let mut forked = template.fork();
            let mut fresh = System::boot(mode).expect("boot fresh");
            for sys in [&mut forked, &mut fresh] {
                let (kernel, machine, hyp) = sys.parts();
                let child = kernel.sys_fork(machine, hyp).expect("fork");
                kernel.switch_to(machine, hyp, child).expect("switch");
                kernel
                    .sys_exit(machine, hyp, child, hypernel_kernel::task::Pid(1))
                    .expect("exit");
            }
            assert_eq!(forked.cycles(), fresh.cycles(), "cycles diverge ({mode})");
            assert_eq!(forked.mbm_stats(), fresh.mbm_stats(), "mbm ({mode})");
            assert_eq!(
                forked.machine().stats().hypercalls,
                fresh.machine().stats().hypercalls,
                "hypercalls ({mode})"
            );
            // Work on the fork must not leak back into the template.
            assert_eq!(template.cycles(), System::boot(mode).unwrap().cycles());
        }
    }

    #[test]
    fn fork_rewires_fault_injector() {
        use hypernel_machine::fault::FaultSpec;
        let template = SystemBuilder::new(Mode::Hypernel)
            .fault_plan(FaultPlan::new().with(FaultSpec::drop_irq(1, 1)))
            .build()
            .expect("boot");
        let mut forked = template.fork();
        // The fork carries its own injector handle (same plan state, no
        // sharing): driving one must never advance the other's counters.
        let original = template.machine().fault_injector().expect("installed");
        let copy = forked.machine().fault_injector().expect("rewired");
        assert!(!Rc::ptr_eq(&original, &copy), "injector must not alias");
        copy.borrow_mut().on_irq_raise(0xDEAD);
        assert_eq!(template.fault_stats().map(|s| s.total()), Some(0));
        assert_eq!(forked.fault_stats().map(|s| s.total()), Some(1));
        // And the MBM inside the forked bus sees the fork's handle, not
        // the template's.
        let mbm_handle = forked
            .machine_mut()
            .bus_mut()
            .snooper_mut::<Mbm>()
            .and_then(|m| m.fault_injector())
            .expect("mbm handle");
        assert!(Rc::ptr_eq(&mbm_handle, &copy), "mbm shares fork handle");
    }

    #[test]
    fn static_audit_is_clean_after_boot_in_every_mode() {
        for mode in [Mode::Native, Mode::KvmGuest, Mode::Hypernel] {
            let mut sys = System::boot(mode).expect("boot");
            let report = sys.audit_static();
            assert!(
                report.is_clean(),
                "{mode:?} boot not clean: {:?}",
                report.findings
            );
            assert!(report.roots_walked >= 1);
            assert!(report.leaves_checked > 0);
            assert_eq!(
                report.differential.is_some(),
                mode == Mode::Hypernel,
                "differential runs exactly when Hypersec is locked"
            );
        }
    }

    #[test]
    fn static_audit_stays_clean_across_syscalls() {
        for mode in [Mode::Native, Mode::Hypernel] {
            let mut sys = System::boot(mode).expect("boot");
            {
                let (kernel, machine, hyp) = sys.parts();
                let child = kernel.sys_fork(machine, hyp).expect("fork");
                kernel.switch_to(machine, hyp, child).expect("switch");
                kernel
                    .sys_exit(machine, hyp, child, hypernel_kernel::task::Pid(1))
                    .expect("exit");
            }
            let report = sys.audit_static();
            assert!(
                report.is_clean(),
                "{mode:?} post-syscall not clean: {:?}",
                report.findings
            );
        }
    }

    #[test]
    fn sanitizer_is_free_and_quiet_on_benign_work() {
        for mode in [Mode::Native, Mode::Hypernel] {
            let mut plain = System::boot(mode).expect("boot");
            let mut tagged = System::boot(mode).expect("boot");
            tagged.enable_sanitizer();
            assert!(tagged.sanitizer_enabled() && !plain.sanitizer_enabled());
            for sys in [&mut plain, &mut tagged] {
                let (kernel, machine, hyp) = sys.parts();
                let child = kernel.sys_fork(machine, hyp).expect("fork");
                kernel.switch_to(machine, hyp, child).expect("switch");
                kernel
                    .sys_exit(machine, hyp, child, hypernel_kernel::task::Pid(1))
                    .expect("exit");
            }
            // Zero simulated cost: cycle-for-cycle identical runs.
            assert_eq!(plain.cycles(), tagged.cycles(), "sanitizer costs cycles");
            let report = tagged.audit_static();
            let san = report.sanitizer.as_ref().expect("sanitizer section");
            assert!(san.stats.checked > 0, "stores were checked");
            assert_eq!(
                san.stats.denied, 0,
                "benign run denied: {:?}",
                san.violations
            );
        }
    }

    #[test]
    fn same_workload_costs_most_under_kvm_for_fork() {
        let mut costs = Vec::new();
        for mode in [Mode::Native, Mode::KvmGuest, Mode::Hypernel] {
            let mut sys = System::boot(mode).expect("boot");
            let (kernel, machine, hyp) = sys.parts();
            let c0 = machine.cycles();
            for _ in 0..3 {
                let child = kernel.sys_fork(machine, hyp).expect("fork");
                kernel.switch_to(machine, hyp, child).expect("switch");
                kernel
                    .sys_exit(machine, hyp, child, hypernel_kernel::task::Pid(1))
                    .expect("exit");
            }
            costs.push((mode, machine.cycles() - c0));
        }
        let native = costs[0].1 as f64;
        let kvm = costs[1].1 as f64;
        let hypernel = costs[2].1 as f64;
        assert!(kvm > native, "KVM fork slower than native: {costs:?}");
        assert!(
            hypernel > native,
            "Hypernel fork slower than native: {costs:?}"
        );
    }
}
