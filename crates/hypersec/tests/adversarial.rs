//! Adversarial property testing of the Hypersec verification surface:
//! an attacker who fully controls the hypercall arguments (and the
//! trapped register values) fires arbitrary sequences at Hypersec. Some
//! calls are denied, some are accepted — but **no sequence may leave the
//! machine in a state that violates the security invariants**, as
//! checked by re-walking the real machine state with `Hypersec::audit`.
//!
//! This is the testable stand-in for the formal verification the paper's
//! §8 proposes for Hypersec's small code base.

use hypernel_hypersec::{CredMonitor, DentryMonitor, Hypersec, HypersecConfig};
use hypernel_kernel::abi::call;
use hypernel_kernel::kernel::{Kernel, KernelConfig};
use hypernel_kernel::layout;
use hypernel_machine::addr::{PhysAddr, PAGE_SIZE};
use hypernel_machine::machine::{Machine, MachineConfig};
use hypernel_machine::pagetable::{desc, Descriptor, PagePerms};
use hypernel_machine::regs::SysReg;
use proptest::prelude::*;

/// An attacker-chosen EL2 entry.
#[derive(Debug, Clone)]
enum Hostile {
    /// Raw hypercall with semi-structured arguments.
    Hvc {
        nr_idx: u8,
        a0: u64,
        a1: u64,
        a2: u64,
    },
    /// A crafted page-table write against a known table.
    PtWrite {
        table_sel: u8,
        index: u16,
        desc_kind: u8,
        out_page: u32,
    },
    /// Register a page as a table (possibly garbage).
    Register { page: u32, root: bool },
    /// Trapped TTBR/SCTLR write.
    Sysreg { reg_sel: u8, value: u64 },
}

fn arb_hostile() -> impl Strategy<Value = Hostile> {
    prop_oneof![
        (any::<u8>(), any::<u64>(), any::<u64>(), any::<u64>())
            .prop_map(|(nr_idx, a0, a1, a2)| Hostile::Hvc { nr_idx, a0, a1, a2 }),
        (any::<u8>(), any::<u16>(), any::<u8>(), any::<u32>()).prop_map(
            |(table_sel, index, desc_kind, out_page)| Hostile::PtWrite {
                table_sel,
                index,
                desc_kind,
                out_page,
            }
        ),
        (any::<u32>(), any::<bool>()).prop_map(|(page, root)| Hostile::Register { page, root }),
        (any::<u8>(), any::<u64>()).prop_map(|(reg_sel, value)| Hostile::Sysreg { reg_sel, value }),
    ]
}

const CALL_NUMBERS: [u64; 9] = [
    call::PT_WRITE,
    call::PT_REGISTER_TABLE,
    call::PT_UNREGISTER_TABLE,
    call::LOCK,
    call::MONITOR_REGISTER,
    call::MONITOR_UNREGISTER,
    call::IRQ_NOTIFY,
    call::EMULATE_WRITE,
    0xDEAD, // unknown
];

fn boot() -> (Machine, Hypersec, Kernel) {
    let mut m = Machine::new(MachineConfig {
        dram_size: layout::DRAM_SIZE,
        ..MachineConfig::default()
    });
    let mbm_config = hypernel_mbm::MbmConfig::standard(
        PhysAddr::new(layout::MBM_WINDOW_BASE),
        layout::MBM_WINDOW_LEN,
        PhysAddr::new(layout::MBM_BITMAP_BASE),
        PhysAddr::new(layout::MBM_RING_BASE),
        layout::MBM_RING_ENTRIES,
    );
    m.bus_mut()
        .attach(Box::new(hypernel_mbm::Mbm::new(mbm_config)));
    let mut hs = Hypersec::install(&mut m, HypersecConfig::standard());
    hs.install_app(Box::new(CredMonitor::new()));
    hs.install_app(Box::new(DentryMonitor::new()));
    let k = Kernel::boot(&mut m, &mut hs, KernelConfig::hypernel()).expect("boot");
    (m, hs, k)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn no_hostile_sequence_breaks_the_invariants(
        ops in prop::collection::vec(arb_hostile(), 1..40),
    ) {
        let (mut m, mut hs, mut k) = boot();
        // Give the attacker a few real handles to aim with: a registered
        // root, a scratch frame pool, the init task's root.
        let init_root = k.task(hypernel_kernel::task::Pid(1)).expect("init").user_root;
        let mut scratch: Vec<PhysAddr> = Vec::new();
        for _ in 0..8 {
            let f = k.alloc_raw_frame().expect("frame");
            m.debug_zero_page(f);
            scratch.push(f);
        }

        for op in &ops {
            // Every call may be denied; denials are fine. Panics or
            // accepted-but-invariant-breaking calls are not.
            let _ = match op {
                Hostile::Hvc { nr_idx, a0, a1, a2 } => {
                    let nr = CALL_NUMBERS[*nr_idx as usize % CALL_NUMBERS.len()];
                    m.hvc(nr, [*a0, *a1, *a2, 0], &mut hs)
                }
                Hostile::PtWrite { table_sel, index, desc_kind, out_page } => {
                    let table = match table_sel % 3 {
                        0 => init_root,
                        1 => scratch[*table_sel as usize % scratch.len()],
                        _ => k.kernel_root(),
                    };
                    let out = PhysAddr::new(
                        ((*out_page as u64 * PAGE_SIZE) % layout::DRAM_SIZE) & !(PAGE_SIZE - 1),
                    );
                    let value = match desc_kind % 4 {
                        0 => 0,
                        1 => Descriptor::Table { next: out }.encode(),
                        2 => Descriptor::Leaf { out, perms: PagePerms::USER_DATA }.encode(),
                        _ => out.raw() | desc::VALID, // raw block, full perms
                    };
                    m.hvc(
                        call::PT_WRITE,
                        [table.raw(), *index as u64 % 512, value, 0],
                        &mut hs,
                    )
                }
                Hostile::Register { page, root } => {
                    let table = PhysAddr::new(
                        ((*page as u64 * PAGE_SIZE) % layout::DRAM_SIZE) & !(PAGE_SIZE - 1),
                    );
                    m.hvc(
                        call::PT_REGISTER_TABLE,
                        [table.raw(), *root as u64, 0, 0],
                        &mut hs,
                    )
                }
                Hostile::Sysreg { reg_sel, value } => {
                    let reg = match reg_sel % 3 {
                        0 => SysReg::TTBR0_EL1,
                        1 => SysReg::TTBR1_EL1,
                        _ => SysReg::SCTLR_EL1,
                    };
                    m.write_sysreg(reg, *value, &mut hs).map(|_| 0)
                }
            };
        }

        // The MMU is still on and the roots are still sane.
        prop_assert!(m.regs().stage1_enabled(), "MMU must stay enabled");
        let ttbr1 = m.read_sysreg(SysReg::TTBR1_EL1) & desc::ADDR_MASK;
        prop_assert_eq!(PhysAddr::new(ttbr1), k.kernel_root(), "TTBR1 pinned");
        // Every security invariant holds on the live machine state.
        let report = hs.audit(&mut m);
        prop_assert!(
            report.is_clean(),
            "hostile sequence {:?} broke invariants: {:?}",
            ops,
            report.violations
        );
        // And the kernel still works afterwards.
        k.sys_stat(&mut m, &mut hs, "/bin/sh").expect("kernel functional");
    }
}
