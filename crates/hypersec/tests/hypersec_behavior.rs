//! Behavioral tests for the Hypersec runtime against a real booted
//! kernel: lifecycle phases, handler edge cases, and the invariant
//! auditor (including deliberate state corruption it must catch).

use hypernel_hypersec::{codes, CredMonitor, DentryMonitor, Hypersec, HypersecConfig};
use hypernel_kernel::abi::Hypercall;
use hypernel_kernel::kernel::{Kernel, KernelConfig};
use hypernel_kernel::layout;
use hypernel_kernel::task::Pid;
use hypernel_machine::addr::{PhysAddr, VirtAddr};
use hypernel_machine::machine::{Exception, Machine, MachineConfig};
use hypernel_machine::pagetable::{Descriptor, PagePerms};
use hypernel_machine::regs::SysReg;

fn boot() -> (Machine, Hypersec, Kernel) {
    let mut m = Machine::new(MachineConfig {
        dram_size: layout::DRAM_SIZE,
        ..MachineConfig::default()
    });
    // Attach the MBM hardware so the monitoring pipeline is live.
    let mbm_config = hypernel_mbm::MbmConfig::standard(
        PhysAddr::new(layout::MBM_WINDOW_BASE),
        layout::MBM_WINDOW_LEN,
        PhysAddr::new(layout::MBM_BITMAP_BASE),
        PhysAddr::new(layout::MBM_RING_BASE),
        layout::MBM_RING_ENTRIES,
    );
    m.bus_mut()
        .attach(Box::new(hypernel_mbm::Mbm::new(mbm_config)));
    let mut hs = Hypersec::install(&mut m, HypersecConfig::standard());
    hs.install_app(Box::new(CredMonitor::new()));
    hs.install_app(Box::new(DentryMonitor::new()));
    let k = Kernel::boot(&mut m, &mut hs, KernelConfig::hypernel()).expect("boot");
    (m, hs, k)
}

#[test]
fn install_configures_el2_without_nested_paging() {
    let mut m = Machine::new(MachineConfig {
        dram_size: layout::DRAM_SIZE,
        ..MachineConfig::default()
    });
    let hs = Hypersec::install(&mut m, HypersecConfig::standard());
    assert!(!hs.is_locked());
    assert!(m.regs().tvm_enabled(), "TVM armed at init (paper §6.1)");
    assert!(!m.regs().stage2_enabled(), "no nested paging, ever");
    assert_ne!(m.read_sysreg(SysReg::TTBR0_EL2), 0, "EL2 table installed");
    assert_ne!(m.read_sysreg(SysReg::SP_EL2), 0, "EL2 stack installed");
}

#[test]
fn boot_locks_and_adopts_the_kernel_tables() {
    let (_m, hs, k) = boot();
    assert!(hs.is_locked());
    let _ = &k;
    assert!(
        hs.stats().tables_registered > 0,
        "LOCK adopted the boot tables"
    );
    assert!(hs.stats().sysreg_allowed > 0, "boot-phase traps allowed");
    assert_eq!(hs.stats().sysreg_denied, 0);
}

#[test]
fn audit_is_clean_after_boot_and_heavy_use() {
    let (mut m, mut hs, mut k) = boot();
    let report = hs.audit(&mut m);
    assert!(
        report.is_clean(),
        "boot violations: {:?}",
        report.violations
    );
    assert!(report.tables_checked > 2);
    assert!(
        report.leaves_checked > 1000,
        "the whole linear map is walked"
    );

    // Heavy churn: processes, exec, files, monitoring.
    {
        use hypernel_kernel::kernel::{MonitorHooks, MonitorMode};
        k.arm_monitor_hooks(
            &mut m,
            &mut hs,
            MonitorHooks {
                mode: MonitorMode::SensitiveFields,
            },
        )
        .expect("arm");
        for i in 0..5 {
            let child = k.sys_fork(&mut m, &mut hs).expect("fork");
            k.switch_to(&mut m, &mut hs, child).expect("switch");
            k.sys_execve(&mut m, &mut hs, "/bin/sh").expect("exec");
            let p = format!("/tmp/audit{i}");
            k.sys_create(&mut m, &mut hs, &p).expect("create");
            k.sys_write_file(&mut m, &mut hs, &p, 2048).expect("write");
            k.sys_exit(&mut m, &mut hs, child, Pid(1)).expect("exit");
            k.poll_irqs(&mut m, &mut hs).expect("irqs");
        }
    }
    let report = hs.audit(&mut m);
    assert!(
        report.is_clean(),
        "post-churn violations: {:?}",
        report.violations
    );
    assert!(report.regions_checked > 0, "monitored regions audited");
}

#[test]
fn audit_catches_smuggled_secure_mapping() {
    // Simulate a hypothetical Hypersec bug/bypass: a leaf pointing into
    // the secure region appears behind Hypersec's back (debug write).
    let (mut m, hs, k) = boot();
    let root = k.task(Pid(1)).expect("init").user_root;
    let evil = Descriptor::Leaf {
        out: PhysAddr::new(layout::SECURE_BASE),
        perms: PagePerms::KERNEL_DATA,
    }
    .encode();
    // Forge directly into the root's entry 7 (bypassing verification).
    m.debug_write_phys(root.add(7 * 8), evil);
    let report = hs.audit(&mut m);
    assert!(!report.is_clean());
    assert!(report
        .violations
        .iter()
        .any(|v| v.contains("secure") || v.contains("not registered")));
}

#[test]
fn audit_catches_rewritable_table_page() {
    let (mut m, hs, k) = boot();
    // Flip the kernel linear-map leaf for the kernel root back to RW,
    // behind Hypersec's back.
    let kernel_root = k.kernel_root();
    let kva = layout::kva(kernel_root);
    let write = {
        let mut view = m.pt_view();
        hypernel_machine::pagetable::plan_protect(
            &mut view,
            kernel_root,
            kva.raw(),
            PagePerms::KERNEL_DATA,
        )
    }
    .expect("mapped");
    m.debug_write_phys(write.addr(), write.value);
    let report = hs.audit(&mut m);
    assert!(report
        .violations
        .iter()
        .any(|v| v.contains("writable in the kernel view")));
}

#[test]
fn audit_catches_disarmed_watch_bits() {
    use hypernel_kernel::kernel::{MonitorHooks, MonitorMode};
    let (mut m, mut hs, mut k) = boot();
    k.arm_monitor_hooks(
        &mut m,
        &mut hs,
        MonitorHooks {
            mode: MonitorMode::SensitiveFields,
        },
    )
    .expect("arm");
    assert!(hs.audit(&mut m).is_clean());
    // Clear the whole bitmap behind Hypersec's back (what a DMA-capable
    // attacker would try — paper §8).
    let region = hs.regions()[0];
    let config = HypersecConfig::standard();
    for u in config.bitmap.plan_update(region.pa, region.len, false) {
        let v = u.apply_to(m.debug_read_phys(u.word));
        m.debug_write_phys(u.word, v);
    }
    let report = hs.audit(&mut m);
    assert!(report
        .violations
        .iter()
        .any(|v| v.contains("watch bit missing")));
}

#[test]
fn pt_register_rejects_garbage() {
    let (mut m, mut hs, mut k) = boot();
    // Non-aligned.
    let (nr, args) = Hypercall::PtRegisterTable {
        table: PhysAddr::new(0x40_0008),
        root: false,
    }
    .encode();
    assert!(
        matches!(m.hvc(nr, args, &mut hs), Err(Exception::Denied(v)) if v.code == codes::BAD_TABLE_REGISTRATION)
    );
    // In the secure region.
    let (nr, args) = Hypercall::PtRegisterTable {
        table: PhysAddr::new(layout::SECURE_BASE + 0x1000),
        root: false,
    }
    .encode();
    assert!(
        matches!(m.hvc(nr, args, &mut hs), Err(Exception::Denied(v)) if v.code == codes::BAD_TABLE_REGISTRATION)
    );
    // Not zeroed.
    let dirty = k.alloc_raw_frame().expect("frame");
    m.debug_write_phys(dirty.add(64), 0xFF);
    let (nr, args) = Hypercall::PtRegisterTable {
        table: dirty,
        root: false,
    }
    .encode();
    assert!(
        matches!(m.hvc(nr, args, &mut hs), Err(Exception::Denied(v)) if v.code == codes::BAD_TABLE_REGISTRATION)
    );
    // Double registration.
    let fresh = k.alloc_raw_frame().expect("frame");
    m.debug_zero_page(fresh);
    let (nr, args) = Hypercall::PtRegisterTable {
        table: fresh,
        root: true,
    }
    .encode();
    m.hvc(nr, args, &mut hs).expect("first registration");
    assert!(
        matches!(m.hvc(nr, args, &mut hs), Err(Exception::Denied(v)) if v.code == codes::BAD_TABLE_REGISTRATION)
    );
}

#[test]
fn pt_write_polices_wxorx() {
    let (mut m, mut hs, mut k) = boot();
    // Build a root -> L1 chain, then attempt a writable+executable 1 GiB
    // block leaf at L1 (small enough not to trip the secure-region check
    // first, so the W^X verdict is isolated).
    let root = k.alloc_raw_frame().expect("frame");
    let l1 = k.alloc_raw_frame().expect("frame");
    m.debug_zero_page(root);
    m.debug_zero_page(l1);
    let (nr, args) = Hypercall::PtRegisterTable {
        table: root,
        root: true,
    }
    .encode();
    m.hvc(nr, args, &mut hs).expect("register root");
    let (nr, args) = Hypercall::PtRegisterTable {
        table: l1,
        root: false,
    }
    .encode();
    m.hvc(nr, args, &mut hs).expect("register l1");
    let (nr, args) = Hypercall::PtWrite {
        table: root,
        index: 0,
        value: Descriptor::Table { next: l1 }.encode(),
    }
    .encode();
    m.hvc(nr, args, &mut hs).expect("link l1");
    let wx = Descriptor::Leaf {
        out: PhysAddr::new(0),
        perms: PagePerms {
            write: true,
            exec: true,
            user: true,
            cacheable: true,
        },
    }
    .encode();
    let (nr, args) = Hypercall::PtWrite {
        table: l1,
        index: 0,
        value: wx,
    }
    .encode();
    let err = m.hvc(nr, args, &mut hs).expect_err("W^X must be denied");
    assert!(matches!(err, Exception::Denied(v) if v.code == codes::WXORX));
}

#[test]
fn kernel_root_cannot_be_retired() {
    let (mut m, mut hs, k) = boot();
    let (nr, args) = Hypercall::PtUnregisterTable {
        table: k.kernel_root(),
    }
    .encode();
    let err = m
        .hvc(nr, args, &mut hs)
        .expect_err("kernel root is permanent");
    assert!(matches!(err, Exception::Denied(v) if v.code == codes::BAD_TABLE_REGISTRATION));
}

#[test]
fn monitor_register_requires_mapped_kernel_va() {
    let (mut m, mut hs, _k) = boot();
    // A kernel VA that is not mapped (beyond the linear map).
    let (nr, args) = Hypercall::MonitorRegister {
        sid: hypernel_kernel::abi::sid::CRED_MONITOR,
        base: VirtAddr::new(layout::LINEAR_BASE + layout::SECURE_BASE + 0x1000),
        len: 8,
    }
    .encode();
    let err = m.hvc(nr, args, &mut hs).expect_err("unmapped region");
    assert!(matches!(err, Exception::Denied(v) if v.code == codes::BAD_MONITOR_REQUEST));
}

#[test]
fn irq_notify_on_empty_ring_is_harmless() {
    let (mut m, mut hs, _k) = boot();
    let (nr, args) = Hypercall::IrqNotify.encode();
    let drained = m.hvc(nr, args, &mut hs).expect("empty drain");
    assert_eq!(drained, 0);
}

#[test]
fn detections_can_be_drained() {
    use hypernel_kernel::kernel::{MonitorHooks, MonitorMode};
    let (mut m, mut hs, mut k) = boot();
    k.arm_monitor_hooks(
        &mut m,
        &mut hs,
        MonitorHooks {
            mode: MonitorMode::SensitiveFields,
        },
    )
    .expect("arm");
    k.attack_cred_escalation(&mut m, &mut hs, Pid(1))
        .expect("attack");
    k.poll_irqs(&mut m, &mut hs).expect("irqs");
    assert!(!hs.detections().is_empty());
    let taken = hs.take_detections();
    assert!(!taken.is_empty());
    assert!(hs.detections().is_empty());
}
