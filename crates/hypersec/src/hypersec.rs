//! Hypersec: the secure-space software of the Hypernel framework.
//!
//! Hypersec runs at EL2 — above the kernel it does not trust — and
//! provides the isolated execution environment of paper §5.2 **without
//! nested paging**:
//!
//! * it owns an **EL2 page table** (linear, `va == pa`) covering all of
//!   DRAM, with the secure region mapped non-cacheable so its writes to
//!   the MBM's bitmap and its reads of the ring buffer are bus-coherent;
//! * it **verifies every kernel page-table write** submitted by hypercall
//!   (W⊕X, linear-map identity, secure-region unmappability, page-table
//!   pages read-only) — §5.2.1;
//! * it **validates trapped writes to the VM control registers**
//!   (`HCR_EL2.TVM`) so the kernel can neither point `TTBR` at a rogue
//!   table nor switch the MMU off — §5.2.2;
//! * it manages **monitored regions** on behalf of security applications:
//!   VA→PA translation, word-granularity bitmap programming, cache
//!   maintenance + non-cacheable remapping of monitored pages, and MBM
//!   event dispatch — §5.3, Fig. 4.

use std::collections::{BTreeMap, HashMap};

use hypernel_kernel::abi::Hypercall;
use hypernel_kernel::layout;
use hypernel_machine::addr::{IntermAddr, PhysAddr, VirtAddr, PAGE_SIZE, SECTION_SIZE};
use hypernel_machine::machine::{AccessKind, Hyp, Machine, PolicyViolation, Stage2Outcome};
use hypernel_machine::pagetable::{self, Descriptor, PagePerms};
use hypernel_machine::regs::{hcr, sctlr, ExceptionLevel, SysReg};
use hypernel_mbm::bitmap::BitmapLayout;
use hypernel_mbm::ring::RingLayout;
use hypernel_telemetry::SpanKind;

use crate::secapp::{MonitorEvent, Region, SecurityApp, Verdict};

/// Violation codes reported by Hypersec.
pub mod codes {
    /// Hypercall number unknown.
    pub const UNKNOWN_HYPERCALL: u32 = 0x5001;
    /// The target page is not a registered page table.
    pub const NOT_A_TABLE: u32 = 0x5002;
    /// Attempt to map the secure region.
    pub const SECURE_MAPPING: u32 = 0x5003;
    /// W⊕X violation.
    pub const WXORX: u32 = 0x5004;
    /// Kernel linear mapping must stay identity.
    pub const LINEAR_IDENTITY: u32 = 0x5005;
    /// Writable mapping of a page-table page.
    pub const WRITABLE_TABLE: u32 = 0x5006;
    /// Table registration rejected (non-zero content, double
    /// registration, secure address…).
    pub const BAD_TABLE_REGISTRATION: u32 = 0x5007;
    /// `TTBR` pointed at an unregistered root.
    pub const ROGUE_ROOT: u32 = 0x5008;
    /// Attempt to disable the MMU or rewrite frozen translation config.
    pub const FROZEN_SYSREG: u32 = 0x5009;
    /// Monitored region request rejected.
    pub const BAD_MONITOR_REQUEST: u32 = 0x500A;
    /// Emulated write rejected (targets a protected object).
    pub const BAD_EMULATED_WRITE: u32 = 0x500B;
    /// A monitored page must stay non-cacheable.
    pub const MONITORED_CACHEABLE: u32 = 0x500C;
    /// Operation requires the post-LOCK state (or must precede it).
    pub const BAD_PHASE: u32 = 0x500D;
    /// Stage-2 faults cannot happen: Hypernel does not use nested paging.
    pub const NO_STAGE2: u32 = 0x500E;
    /// The kernel image (text) is immutable after LOCK.
    pub const TEXT_IMMUTABLE: u32 = 0x500F;

    /// Every violation code, in numeric order — the rule universe for
    /// coverage accounting.
    pub const ALL: &[u32] = &[
        UNKNOWN_HYPERCALL,
        NOT_A_TABLE,
        SECURE_MAPPING,
        WXORX,
        LINEAR_IDENTITY,
        WRITABLE_TABLE,
        BAD_TABLE_REGISTRATION,
        ROGUE_ROOT,
        FROZEN_SYSREG,
        BAD_MONITOR_REQUEST,
        BAD_EMULATED_WRITE,
        MONITORED_CACHEABLE,
        BAD_PHASE,
        NO_STAGE2,
        TEXT_IMMUTABLE,
    ];

    /// Stable kebab-case name of a violation code, used as the
    /// `hypersec/rule/<name>` coverage key and in reports.
    pub fn name(code: u32) -> &'static str {
        match code {
            UNKNOWN_HYPERCALL => "unknown-hypercall",
            NOT_A_TABLE => "not-a-table",
            SECURE_MAPPING => "secure-mapping",
            WXORX => "wxorx",
            LINEAR_IDENTITY => "linear-identity",
            WRITABLE_TABLE => "writable-table",
            BAD_TABLE_REGISTRATION => "bad-table-registration",
            ROGUE_ROOT => "rogue-root",
            FROZEN_SYSREG => "frozen-sysreg",
            BAD_MONITOR_REQUEST => "bad-monitor-request",
            BAD_EMULATED_WRITE => "bad-emulated-write",
            MONITORED_CACHEABLE => "monitored-cacheable",
            BAD_PHASE => "bad-phase",
            NO_STAGE2 => "no-stage2",
            TEXT_IMMUTABLE => "text-immutable",
            _ => "unknown-code",
        }
    }
}

/// Which translation root family a table belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Space {
    /// Reached from `TTBR1` (kernel linear map).
    Kernel,
    /// Reached from a registered `TTBR0` root.
    User,
}

#[derive(Debug, Clone, Copy)]
struct TableInfo {
    level: u32,
    va_base: u64,
    space: Space,
}

/// One detected integrity violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Detection {
    /// Security application that raised it.
    pub sid: u32,
    /// The offending write.
    pub event: MonitorEvent,
    /// The application's reason.
    pub reason: String,
}

/// Result of a [`Hypersec::audit`] pass over live machine state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Table pages visited.
    pub tables_checked: u64,
    /// Leaf descriptors inspected.
    pub leaves_checked: u64,
    /// Monitored regions verified.
    pub regions_checked: u64,
    /// Invariant violations found (empty on a healthy system).
    pub violations: Vec<String>,
}

impl AuditReport {
    /// Returns `true` if every invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    fn violation(&mut self, message: String) {
        self.violations.push(message);
    }
}

/// Cycle-cost knobs for Hypersec's handlers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HypersecCosts {
    /// Verification work per page-table write.
    pub pt_verify: u64,
    /// Verification work per table registration.
    pub table_register: u64,
    /// Work per trapped system-register write.
    pub sysreg_verify: u64,
    /// Work per monitor (un)registration, excluding memory traffic.
    pub monitor_register: u64,
    /// Work per drained MBM event, excluding memory traffic.
    pub event_dispatch: u64,
    /// Work per emulated data write.
    pub emulate_write: u64,
}

impl Default for HypersecCosts {
    fn default() -> Self {
        Self {
            pt_verify: 90,
            table_register: 260,
            sysreg_verify: 60,
            monitor_register: 420,
            event_dispatch: 300,
            emulate_write: 110,
        }
    }
}

/// Hypersec configuration.
#[derive(Debug, Clone, Copy)]
pub struct HypersecConfig {
    /// Cursor region for EL2 page tables (inside the secure region).
    pub el2_table_base: PhysAddr,
    /// Bytes reserved for EL2 tables.
    pub el2_table_len: u64,
    /// MBM bitmap geometry (must match the attached MBM device).
    pub bitmap: BitmapLayout,
    /// MBM ring geometry (must match the attached MBM device).
    pub ring: RingLayout,
    /// Handler costs.
    pub costs: HypersecCosts,
}

impl HypersecConfig {
    /// The standard configuration for the simulated platform layout,
    /// consistent with [`hypernel_kernel::layout`].
    pub fn standard() -> Self {
        Self {
            el2_table_base: PhysAddr::new(layout::HYPERSEC_PRIVATE_BASE),
            el2_table_len: layout::HYPERSEC_PRIVATE_SIZE,
            bitmap: BitmapLayout::new(
                PhysAddr::new(layout::MBM_WINDOW_BASE),
                layout::MBM_WINDOW_LEN,
                PhysAddr::new(layout::MBM_BITMAP_BASE),
            ),
            ring: RingLayout::new(
                PhysAddr::new(layout::MBM_RING_BASE),
                layout::MBM_RING_ENTRIES,
            ),
            costs: HypersecCosts::default(),
        }
    }
}

/// Hypersec statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HypersecStats {
    /// Hypercalls handled.
    pub hypercalls: u64,
    /// Page-table writes verified and applied.
    pub pt_writes: u64,
    /// Page-table writes denied.
    pub pt_denials: u64,
    /// Table pages registered.
    pub tables_registered: u64,
    /// Trapped system-register writes allowed.
    pub sysreg_allowed: u64,
    /// Trapped system-register writes denied.
    pub sysreg_denied: u64,
    /// Monitored regions currently live.
    pub regions_live: u64,
    /// MBM events dispatched to applications.
    pub events_dispatched: u64,
    /// Events with no owning region (stale bitmap bits).
    pub stray_events: u64,
    /// Malicious verdicts raised.
    pub detections: u64,
    /// Data writes emulated for the kernel.
    pub emulated_writes: u64,
}

/// The Hypersec EL2 runtime. Implements [`Hyp`]; create with
/// [`Hypersec::install`] on a machine still in its EL2 boot state.
///
/// `Clone` deep-copies the whole EL2 state — table shadows, regions,
/// security apps (via [`SecurityApp::clone_box`]), detections and stats —
/// supporting warm-boot forking of a booted system.
#[derive(Clone)]
pub struct Hypersec {
    config: HypersecConfig,
    tables: HashMap<u64, TableInfo>,
    pending_tables: HashMap<u64, ()>,
    roots: HashMap<u64, ()>,
    kernel_root: Option<PhysAddr>,
    locked: bool,
    regions: Vec<Region>,
    nc_refcount: HashMap<u64, u32>,
    apps: Vec<Box<dyn SecurityApp>>,
    detections: Vec<Detection>,
    stats: HypersecStats,
    /// Per-rule denial counters, keyed by violation code: how many
    /// times each policy rule fired at an EL2 boundary (hypercall,
    /// trapped sysreg, stage-2 stub). Model-visible — feeds the
    /// campaign coverage atlas.
    rule_hits: BTreeMap<u32, u64>,
    /// Test-only miswire switch: skips the W⊕X clause in both the
    /// incremental verifier and the runtime auditor, emulating a
    /// verifier bug the *static* auditor must still catch (the
    /// differential check in `hypernel-audit` exists for exactly this).
    wx_check_disabled: bool,
}

impl std::fmt::Debug for Hypersec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hypersec")
            .field("locked", &self.locked)
            .field("tables", &self.tables.len())
            .field("regions", &self.regions.len())
            .field("apps", &self.apps.len())
            .field("stats", &self.stats)
            .finish()
    }
}

fn level_shift(level: u32) -> u32 {
    12 + 9 * (3 - level)
}

impl Hypersec {
    /// Installs Hypersec on a machine in its EL2 boot state: builds the
    /// EL2 linear page table (secure region non-cacheable), programs
    /// `TTBR0_EL2`/`SP_EL2`/`VBAR_EL2`, and arms `HCR_EL2.TVM` (paper
    /// §6.1). Nested paging stays **off**.
    ///
    /// # Panics
    ///
    /// Panics if the machine is not at EL2 or the table region is too
    /// small.
    pub fn install(m: &mut Machine, config: HypersecConfig) -> Self {
        assert_eq!(m.el(), ExceptionLevel::El2, "install requires EL2 (boot)");
        let root = config.el2_table_base;
        let end = config.el2_table_base.raw() + config.el2_table_len;
        let mut next = root.raw() + PAGE_SIZE;
        m.debug_zero_page(root);
        let dram = layout::DRAM_SIZE;
        let mut pa = 0u64;
        while pa < dram {
            let perms = if pa >= layout::SECURE_BASE {
                PagePerms::KERNEL_DATA_NC
            } else {
                PagePerms::KERNEL_DATA
            };
            let mut fresh = Vec::new();
            let plan = {
                let mut view = m.pt_view();
                pagetable::plan_map(
                    &mut view,
                    root,
                    pa,
                    PhysAddr::new(pa),
                    perms,
                    2,
                    &mut || {
                        if next + PAGE_SIZE > end {
                            return None;
                        }
                        let t = PhysAddr::new(next);
                        next += PAGE_SIZE;
                        fresh.push(t);
                        Some(t)
                    },
                )
            }
            .expect("EL2 table region too small");
            for t in &fresh {
                m.debug_zero_page(*t);
            }
            for w in &plan.writes {
                let mut view = m.pt_view();
                pagetable::apply_entry_write(&mut view, *w);
            }
            pa += SECTION_SIZE;
        }
        m.el2_write_sysreg(SysReg::TTBR0_EL2, root.raw());
        m.el2_write_sysreg(SysReg::SP_EL2, layout::HYPERSEC_PRIVATE_BASE + (1 << 20));
        m.el2_write_sysreg(SysReg::VBAR_EL2, layout::HYPERSEC_PRIVATE_BASE);
        m.el2_write_sysreg(SysReg::HCR_EL2, hcr::TVM);
        Self {
            config,
            tables: HashMap::new(),
            pending_tables: HashMap::new(),
            roots: HashMap::new(),
            kernel_root: None,
            locked: false,
            regions: Vec::new(),
            nc_refcount: HashMap::new(),
            apps: Vec::new(),
            detections: Vec::new(),
            stats: HypersecStats::default(),
            rule_hits: BTreeMap::new(),
            wx_check_disabled: false,
        }
    }

    /// Hosts a security application in the secure space.
    pub fn install_app(&mut self, app: Box<dyn SecurityApp>) {
        self.apps.push(app);
    }

    /// Statistics.
    pub fn stats(&self) -> HypersecStats {
        self.stats
    }

    /// Whether boot has been finalized by `LOCK`.
    pub fn is_locked(&self) -> bool {
        self.locked
    }

    /// Per-rule denial counts as `(code, hits)` pairs in code order:
    /// which policy rules have fired since install. Codes that never
    /// fired are absent.
    pub fn rule_hits(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.rule_hits.iter().map(|(code, n)| (*code, *n))
    }

    fn note_rule(&mut self, code: u32) {
        *self.rule_hits.entry(code).or_insert(0) += 1;
    }

    /// Detections raised so far.
    pub fn detections(&self) -> &[Detection] {
        &self.detections
    }

    /// Drains the detection log.
    pub fn take_detections(&mut self) -> Vec<Detection> {
        std::mem::take(&mut self.detections)
    }

    /// Live monitored regions.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// The installed configuration (table region, bitmap/ring geometry).
    pub fn config(&self) -> &HypersecConfig {
        &self.config
    }

    /// Physical addresses of every verified (registered) table page,
    /// sorted — the Hypersec-verified pool a static auditor compares
    /// reachable tables against.
    pub fn verified_tables(&self) -> Vec<PhysAddr> {
        let mut tables: Vec<PhysAddr> = self.tables.keys().map(|t| PhysAddr::new(*t)).collect();
        tables.sort();
        tables
    }

    /// Physical addresses of tables registered but not yet adopted into
    /// the verified pool (pre-LOCK or mid-construction), sorted.
    pub fn pending_tables(&self) -> Vec<PhysAddr> {
        let mut tables: Vec<PhysAddr> = self
            .pending_tables
            .keys()
            .map(|t| PhysAddr::new(*t))
            .collect();
        tables.sort();
        tables
    }

    /// Physical addresses of every verified user address-space root,
    /// sorted (the kernel root is separate; see
    /// [`Hypersec::kernel_root`]).
    pub fn verified_roots(&self) -> Vec<PhysAddr> {
        let mut roots: Vec<PhysAddr> = self.roots.keys().map(|r| PhysAddr::new(*r)).collect();
        roots.sort();
        roots
    }

    /// The adopted kernel root, once `LOCK` has run.
    pub fn kernel_root(&self) -> Option<PhysAddr> {
        self.kernel_root
    }

    /// Disables the W⊕X clause in both the incremental verifier and
    /// the runtime auditor — an intentionally-miswired verifier for
    /// differential-audit tests. Never call outside tests.
    #[doc(hidden)]
    pub fn testonly_disable_wx_check(&mut self) {
        self.wx_check_disabled = true;
    }

    /// Audits every security invariant Hypersec is responsible for, by
    /// re-walking the actual machine state (not Hypersec's bookkeeping):
    ///
    /// 1. every page reachable as a table from a registered root is
    ///    itself registered;
    /// 2. no reachable leaf maps the secure region;
    /// 3. no reachable leaf is writable+executable (W⊕X);
    /// 4. kernel linear leaves are identity;
    /// 5. every registered table page is read-only in the kernel's view;
    /// 6. every monitored region's page is non-cacheable in the kernel's
    ///    view and its watch bits are set in the bitmap.
    ///
    /// The paper's §8 argues Hypersec's ~1.5 KLoC is small enough to
    /// verify formally; this runtime auditor is the testable stand-in —
    /// integration tests run it after every adversarial scenario.
    ///
    /// # Panics
    ///
    /// Panics if called before `LOCK` (there is nothing to audit).
    pub fn audit(&self, m: &mut Machine) -> AuditReport {
        let kernel_root = self.kernel_root.expect("audit requires the locked state");
        let mut report = AuditReport::default();
        let mut roots: Vec<PhysAddr> = self.roots.keys().map(|r| PhysAddr::new(*r)).collect();
        roots.sort();
        roots.insert(0, kernel_root);
        for (i, root) in roots.iter().enumerate() {
            let kernel_space = i == 0;
            self.audit_tree(m, *root, 0, 0, kernel_space, &mut report);
        }
        // Invariant 5: registered tables are read-only to the kernel.
        for table in self.tables.keys() {
            let table = PhysAddr::new(*table);
            let walked = {
                let mut view = m.pt_view();
                pagetable::walk(&mut view, kernel_root, layout::kva(table).raw())
            };
            match walked {
                Ok(res) if res.perms.write => {
                    report.violation(format!("table page {table} is writable in the kernel view"))
                }
                Ok(_) => {}
                Err(_) => report.violation(format!("table page {table} has no kernel mapping")),
            }
        }
        // Invariant 6: monitored regions are non-cacheable and armed.
        for region in &self.regions {
            let walked = {
                let mut view = m.pt_view();
                pagetable::walk(&mut view, kernel_root, region.base_va.raw())
            };
            match walked {
                Ok(res) if res.perms.cacheable => report.violation(format!(
                    "monitored region at {} is cacheable - writes can hide from the MBM",
                    region.base_va
                )),
                Ok(_) => {}
                Err(_) => report.violation(format!(
                    "monitored region at {} is unmapped",
                    region.base_va
                )),
            }
            let mut addr = region.pa;
            let end = region.pa.add(region.len);
            while addr < end {
                if let Some((word, mask)) = self.config.bitmap.locate(addr) {
                    if m.debug_read_phys(word) & mask == 0 {
                        report.violation(format!("watch bit missing for {addr}"));
                    }
                }
                addr = addr.add(8);
            }
            report.regions_checked += 1;
        }
        report
    }

    fn audit_tree(
        &self,
        m: &mut Machine,
        table: PhysAddr,
        level: u32,
        va_base: u64,
        kernel_space: bool,
        report: &mut AuditReport,
    ) {
        report.tables_checked += 1;
        if !self.tables.contains_key(&table.raw()) {
            report.violation(format!("reachable table {table} is not registered"));
        }
        for i in 0..pagetable::ENTRIES_PER_TABLE as u64 {
            let raw = m.debug_read_phys(table.add(i * 8));
            let va = va_base | i << level_shift(level);
            match Descriptor::decode(raw, level) {
                Descriptor::Invalid => {}
                Descriptor::Table { next } => {
                    if level >= 3 {
                        report.violation(format!("table pointer at leaf level in {table}"));
                    } else {
                        self.audit_tree(m, next, level + 1, va, kernel_space, report);
                    }
                }
                Descriptor::Leaf { out, perms } => {
                    report.leaves_checked += 1;
                    let span = 1u64 << level_shift(level);
                    if out.raw() + span > layout::SECURE_BASE {
                        report.violation(format!("leaf at va {va:#x} maps secure memory ({out})"));
                    }
                    if perms.write && perms.exec && !self.wx_check_disabled {
                        report.violation(format!("W^X violation at va {va:#x}"));
                    }
                    if kernel_space && va != out.raw() {
                        report.violation(format!(
                            "kernel linear leaf not identity: va {va:#x} -> {out}"
                        ));
                    }
                    let image_end = layout::KERNEL_IMAGE_BASE + layout::KERNEL_IMAGE_SIZE;
                    if kernel_space
                        && out.raw() < image_end
                        && out.raw() + span > layout::KERNEL_IMAGE_BASE
                        && perms.write
                    {
                        report.violation(format!("kernel text writable at va {va:#x}"));
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    fn deny(code: u32, message: impl Into<String>) -> PolicyViolation {
        PolicyViolation::new(code, message)
    }

    /// Leaf policy shared by the LOCK walk and PT_WRITE verification.
    ///
    /// `adopting` is true during the LOCK walk: at that point the linear
    /// map still (writably) covers the very table pages being adopted —
    /// the write-protect pass that immediately follows adoption is what
    /// establishes the invariant, so the writable-table check is deferred.
    fn check_leaf(
        &self,
        space: Space,
        va: u64,
        out: PhysAddr,
        perms: PagePerms,
        level: u32,
        adopting: bool,
    ) -> Result<(), PolicyViolation> {
        let span = 1u64 << level_shift(level);
        if out.raw() + span > layout::SECURE_BASE {
            return Err(Self::deny(
                codes::SECURE_MAPPING,
                format!("mapping reaches the secure region: {out}"),
            ));
        }
        if perms.write && perms.exec && !self.wx_check_disabled {
            return Err(Self::deny(
                codes::WXORX,
                format!("writable+executable mapping at va {va:#x}"),
            ));
        }
        match space {
            Space::Kernel => {
                // The kernel image is immutable: no writable mapping of
                // text may ever appear (inline-hook rootkits patch the
                // image through exactly such a downgrade).
                let image_end = layout::KERNEL_IMAGE_BASE + layout::KERNEL_IMAGE_SIZE;
                let overlaps_image =
                    out.raw() < image_end && out.raw() + span > layout::KERNEL_IMAGE_BASE;
                if overlaps_image && perms.write {
                    return Err(Self::deny(
                        codes::TEXT_IMMUTABLE,
                        format!("writable mapping of kernel text at va {va:#x}"),
                    ));
                }
                // Kernel half: linear identity only.
                if va != out.raw() {
                    return Err(Self::deny(
                        codes::LINEAR_IDENTITY,
                        format!("kernel linear mapping must be identity: va {va:#x} -> {out}"),
                    ));
                }
                // Monitored pages must stay non-cacheable.
                for off in (0..span).step_by(PAGE_SIZE as usize) {
                    let page = PhysAddr::new(out.raw() + off);
                    if self
                        .nc_refcount
                        .get(&page.page_index())
                        .copied()
                        .unwrap_or(0)
                        > 0
                        && perms.cacheable
                    {
                        return Err(Self::deny(
                            codes::MONITORED_CACHEABLE,
                            format!("monitored page {page} must remain non-cacheable"),
                        ));
                    }
                }
            }
            Space::User => {
                if !perms.user {
                    // Kernel-only data reachable from a user root is
                    // suspicious but not an isolation break; allow.
                }
            }
        }
        // No writable view of any page-table page, from either space.
        if perms.write && !adopting {
            for off in (0..span).step_by(PAGE_SIZE as usize) {
                let page = out.raw() + off;
                if self.tables.contains_key(&page) || self.pending_tables.contains_key(&page) {
                    return Err(Self::deny(
                        codes::WRITABLE_TABLE,
                        format!("writable mapping of page-table page {page:#x}"),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Write-protects (or restores) the kernel linear mapping of a
    /// page-table page. In the 2 MiB-section linear map this over-protects
    /// the whole section — the protection-granularity gap of §6.2.
    fn set_linear_perms(
        &mut self,
        m: &mut Machine,
        page: PhysAddr,
        perms: PagePerms,
    ) -> Result<(), PolicyViolation> {
        let Some(kernel_root) = self.kernel_root else {
            return Ok(()); // pre-LOCK: nothing to protect against yet
        };
        let kva = layout::kva(page);
        let write = {
            let mut view = m.pt_view();
            pagetable::plan_protect(&mut view, kernel_root, kva.raw(), perms)
        };
        if let Some(w) = write {
            m.el2_write_u64(VirtAddr::new(w.addr().raw()), w.value)
                .map_err(|e| {
                    Self::deny(codes::BAD_PHASE, format!("linear map edit failed: {e}"))
                })?;
            m.tlbi_va(kva);
        }
        Ok(())
    }

    fn linear_leaf_level(&self, m: &mut Machine, page: PhysAddr) -> Option<u32> {
        let kernel_root = self.kernel_root?;
        let mut view = m.pt_view();
        pagetable::walk(&mut view, kernel_root, layout::kva(page).raw())
            .ok()
            .map(|r| r.level)
    }

    // ------------------------------------------------------------------
    // Hypercall handlers
    // ------------------------------------------------------------------

    fn handle_pt_register(
        &mut self,
        m: &mut Machine,
        table: PhysAddr,
        root: bool,
    ) -> Result<u64, PolicyViolation> {
        m.charge(self.config.costs.table_register);
        if !table.is_page_aligned() || layout::is_secure(table) {
            return Err(Self::deny(
                codes::BAD_TABLE_REGISTRATION,
                format!("bad table address {table}"),
            ));
        }
        if self.tables.contains_key(&table.raw()) || self.pending_tables.contains_key(&table.raw())
        {
            return Err(Self::deny(
                codes::BAD_TABLE_REGISTRATION,
                format!("table {table} already registered"),
            ));
        }
        // The page must be zeroed: no pre-seeded descriptors.
        for i in 0..pagetable::ENTRIES_PER_TABLE as u64 {
            if m.debug_read_phys(table.add(i * 8)) != 0 {
                return Err(Self::deny(
                    codes::BAD_TABLE_REGISTRATION,
                    format!("table {table} is not zeroed"),
                ));
            }
        }
        if root {
            self.tables.insert(
                table.raw(),
                TableInfo {
                    level: 0,
                    va_base: 0,
                    space: Space::User,
                },
            );
            self.roots.insert(table.raw(), ());
        } else {
            self.pending_tables.insert(table.raw(), ());
        }
        self.stats.tables_registered += 1;
        self.set_linear_perms(m, table, PagePerms::KERNEL_RO)?;
        Ok(0)
    }

    /// The stage-2-equivalent check of a single descriptor write: the
    /// pure verification (and table-linking bookkeeping) with no machine
    /// side effects, so [`Hypersec::handle_pt_write`] can time it as one
    /// span regardless of which branch rejects.
    fn verify_pt_write(
        &mut self,
        table: PhysAddr,
        index: usize,
        value: u64,
    ) -> Result<(), PolicyViolation> {
        if index >= pagetable::ENTRIES_PER_TABLE {
            return Err(Self::deny(codes::NOT_A_TABLE, "entry index out of range"));
        }
        let info = *self.tables.get(&table.raw()).ok_or_else(|| {
            Self::deny(
                codes::NOT_A_TABLE,
                format!("{table} is not a linked page-table page"),
            )
        })?;
        let va = info.va_base | (index as u64) << level_shift(info.level);
        match Descriptor::decode(value, info.level) {
            Descriptor::Invalid => {} // unmapping is always allowed
            Descriptor::Table { next } => {
                if info.level >= 3 {
                    return Err(Self::deny(
                        codes::NOT_A_TABLE,
                        "table pointer at leaf level",
                    ));
                }
                if self.tables.contains_key(&next.raw()) {
                    return Err(Self::deny(
                        codes::BAD_TABLE_REGISTRATION,
                        format!("table {next} already linked (aliasing)"),
                    ));
                }
                if self.pending_tables.remove(&next.raw()).is_none() {
                    return Err(Self::deny(
                        codes::NOT_A_TABLE,
                        format!("descriptor points at unregistered table {next}"),
                    ));
                }
                self.tables.insert(
                    next.raw(),
                    TableInfo {
                        level: info.level + 1,
                        va_base: va,
                        space: info.space,
                    },
                );
            }
            Descriptor::Leaf { out, perms } => {
                self.check_leaf(info.space, va, out, perms, info.level, false)?;
            }
        }
        Ok(())
    }

    fn handle_pt_write(
        &mut self,
        m: &mut Machine,
        table: PhysAddr,
        index: usize,
        value: u64,
    ) -> Result<u64, PolicyViolation> {
        m.emit_begin(SpanKind::Stage2Check, table.raw());
        m.charge(self.config.costs.pt_verify);
        let verdict = self.verify_pt_write(table, index, value);
        m.emit_end(SpanKind::Stage2Check, u64::from(verdict.is_err()));
        verdict?;
        // Apply through the EL2 view (the kernel's own mapping is RO).
        m.el2_write_u64(VirtAddr::new(table.add(index as u64 * 8).raw()), value)
            .map_err(|e| Self::deny(codes::BAD_PHASE, format!("descriptor store failed: {e}")))?;
        self.stats.pt_writes += 1;
        Ok(0)
    }

    fn unregister_tree(&mut self, m: &mut Machine, table: PhysAddr) {
        let Some(info) = self.tables.remove(&table.raw()) else {
            return;
        };
        self.roots.remove(&table.raw());
        if info.level < 3 {
            for i in 0..pagetable::ENTRIES_PER_TABLE as u64 {
                let raw = m.debug_read_phys(table.add(i * 8));
                if let Descriptor::Table { next } = Descriptor::decode(raw, info.level) {
                    self.unregister_tree(m, next);
                }
            }
        }
        let _ = self.set_linear_perms(m, table, PagePerms::KERNEL_DATA);
    }

    fn handle_pt_unregister(
        &mut self,
        m: &mut Machine,
        table: PhysAddr,
    ) -> Result<u64, PolicyViolation> {
        m.charge(self.config.costs.table_register);
        if Some(table) == self.kernel_root {
            return Err(Self::deny(
                codes::BAD_TABLE_REGISTRATION,
                "the kernel root cannot be retired",
            ));
        }
        if self.pending_tables.remove(&table.raw()).is_some() {
            let _ = self.set_linear_perms(m, table, PagePerms::KERNEL_DATA);
            return Ok(0);
        }
        match self.tables.get(&table.raw()) {
            Some(info) if info.space == Space::Kernel => Err(Self::deny(
                codes::BAD_TABLE_REGISTRATION,
                "kernel-space tables cannot be retired",
            )),
            Some(_) if !self.roots.contains_key(&table.raw()) => Err(Self::deny(
                codes::BAD_TABLE_REGISTRATION,
                "only translation roots can be retired",
            )),
            Some(_) => {
                self.unregister_tree(m, table);
                Ok(0)
            }
            None => Err(Self::deny(
                codes::NOT_A_TABLE,
                format!("{table} is not registered"),
            )),
        }
    }

    /// The LOCK walk: adopt and verify an existing (boot-built) table
    /// tree, registering every table page.
    fn adopt_tree(
        &mut self,
        m: &mut Machine,
        table: PhysAddr,
        level: u32,
        va_base: u64,
        space: Space,
    ) -> Result<Vec<PhysAddr>, PolicyViolation> {
        let mut pages = vec![table];
        self.tables.insert(
            table.raw(),
            TableInfo {
                level,
                va_base,
                space,
            },
        );
        for i in 0..pagetable::ENTRIES_PER_TABLE as u64 {
            let raw = m.debug_read_phys(table.add(i * 8));
            let va = va_base | i << level_shift(level);
            match Descriptor::decode(raw, level) {
                Descriptor::Invalid => {}
                Descriptor::Table { next } => {
                    if layout::is_secure(next) {
                        return Err(Self::deny(
                            codes::SECURE_MAPPING,
                            format!("table pointer into secure region: {next}"),
                        ));
                    }
                    pages.extend(self.adopt_tree(m, next, level + 1, va, space)?);
                }
                Descriptor::Leaf { out, perms } => {
                    self.check_leaf(space, va, out, perms, level, true)?;
                }
            }
        }
        Ok(pages)
    }

    fn handle_lock(
        &mut self,
        m: &mut Machine,
        kernel_root: PhysAddr,
        user_root: PhysAddr,
    ) -> Result<u64, PolicyViolation> {
        if self.locked {
            return Err(Self::deny(codes::BAD_PHASE, "already locked"));
        }
        // Verify + adopt both trees. Charge a boot-time verification cost
        // proportional to the table count.
        let mut pages = self.adopt_tree(m, kernel_root, 0, 0, Space::Kernel)?;
        pages.extend(self.adopt_tree(m, user_root, 0, 0, Space::User)?);
        m.charge(self.config.costs.table_register * pages.len() as u64);
        self.stats.tables_registered += pages.len() as u64;
        self.kernel_root = Some(kernel_root);
        self.roots.insert(user_root.raw(), ());
        self.locked = true;
        // Write-protect every adopted table page in the kernel's view.
        for page in pages {
            self.set_linear_perms(m, page, PagePerms::KERNEL_RO)?;
        }
        m.tlbi_all();
        Ok(0)
    }

    fn translate_kernel_va(
        &self,
        m: &mut Machine,
        va: VirtAddr,
    ) -> Result<PhysAddr, PolicyViolation> {
        let root = self
            .kernel_root
            .ok_or_else(|| Self::deny(codes::BAD_PHASE, "not locked yet"))?;
        let mut view = m.pt_view();
        pagetable::walk(&mut view, root, va.raw())
            .map(|r| r.out)
            .map_err(|e| {
                Self::deny(
                    codes::BAD_MONITOR_REQUEST,
                    format!("translation failed: {e}"),
                )
            })
    }

    fn program_bitmap(
        &mut self,
        m: &mut Machine,
        pa: PhysAddr,
        len: u64,
        watch: bool,
    ) -> Result<(), PolicyViolation> {
        for update in self.config.bitmap.plan_update(pa, len, watch) {
            let va = VirtAddr::new(update.word.raw());
            let cur = m
                .el2_read_u64(va)
                .map_err(|e| Self::deny(codes::BAD_MONITOR_REQUEST, format!("bitmap read: {e}")))?;
            m.el2_write_u64(va, update.apply_to(cur)).map_err(|e| {
                Self::deny(codes::BAD_MONITOR_REQUEST, format!("bitmap write: {e}"))
            })?;
        }
        Ok(())
    }

    fn handle_monitor_register(
        &mut self,
        m: &mut Machine,
        sid: u32,
        base: VirtAddr,
        len: u64,
    ) -> Result<u64, PolicyViolation> {
        m.charge(self.config.costs.monitor_register);
        if len == 0 || !len.is_multiple_of(8) || !base.is_word_aligned() {
            return Err(Self::deny(
                codes::BAD_MONITOR_REQUEST,
                "region must be word-aligned",
            ));
        }
        if !self.apps.iter().any(|a| a.sid() == sid) {
            return Err(Self::deny(
                codes::BAD_MONITOR_REQUEST,
                format!("no security application with sid {sid}"),
            ));
        }
        let pa = self.translate_kernel_va(m, base)?;
        if pa.page_base() != PhysAddr::new(pa.raw() + len - 1).page_base() {
            return Err(Self::deny(
                codes::BAD_MONITOR_REQUEST,
                "monitored regions must not straddle pages (slab objects never do)",
            ));
        }
        if layout::is_secure(pa) {
            return Err(Self::deny(
                codes::SECURE_MAPPING,
                "cannot monitor secure memory",
            ));
        }
        let region = Region {
            sid,
            base_va: base,
            pa,
            len,
        };
        if self
            .regions
            .iter()
            .any(|r| r.sid == sid && r.base_va == base && r.len == len)
        {
            return Err(Self::deny(
                codes::BAD_MONITOR_REQUEST,
                "region already registered",
            ));
        }
        // 1. Push dirty lines of the page to DRAM *before* arming the
        //    bitmap, so stale write-backs cannot raise events.
        // 2. Make the page non-cacheable so every future write is
        //    bus-visible to the MBM (paper §5.3).
        let page = pa.page_base();
        let refs = self
            .nc_refcount
            .get(&page.page_index())
            .copied()
            .unwrap_or(0);
        if refs == 0 {
            m.cache_clean_invalidate_page(page);
            self.set_linear_perms(m, page, PagePerms::KERNEL_DATA_NC)?;
        }
        self.nc_refcount.insert(page.page_index(), refs + 1);
        // 3. Arm the watch bits.
        self.program_bitmap(m, pa, len, true)?;
        self.regions.push(region);
        self.stats.regions_live += 1;
        for app in &mut self.apps {
            if app.sid() == sid {
                app.on_region_registered(m, &region);
            }
        }
        Ok(0)
    }

    fn handle_monitor_unregister(
        &mut self,
        m: &mut Machine,
        sid: u32,
        base: VirtAddr,
        len: u64,
    ) -> Result<u64, PolicyViolation> {
        m.charge(self.config.costs.monitor_register);
        let pos = self
            .regions
            .iter()
            .position(|r| r.sid == sid && r.base_va == base && r.len == len)
            .ok_or_else(|| Self::deny(codes::BAD_MONITOR_REQUEST, "region not registered"))?;
        let region = self.regions.remove(pos);
        self.stats.regions_live -= 1;
        self.program_bitmap(m, region.pa, region.len, false)?;
        let page = region.pa.page_base();
        if let Some(refs) = self.nc_refcount.get_mut(&page.page_index()) {
            *refs -= 1;
            if *refs == 0 {
                self.nc_refcount.remove(&page.page_index());
                // Restore cacheability only when the linear map can
                // express a per-page change (4 KiB leaves).
                if self.linear_leaf_level(m, page) == Some(3) {
                    self.set_linear_perms(m, page, PagePerms::KERNEL_DATA)?;
                }
            }
        }
        for app in &mut self.apps {
            if app.sid() == sid {
                app.on_region_unregistered(&region);
            }
        }
        Ok(0)
    }

    fn handle_irq_notify(&mut self, m: &mut Machine) -> Result<u64, PolicyViolation> {
        // Drain the ring buffer through the non-cacheable EL2 mapping.
        let ring = self.config.ring;
        let head_va = VirtAddr::new(ring.head_addr().raw());
        let tail_va = VirtAddr::new(ring.tail_addr().raw());
        let mut drained = 0u64;
        loop {
            let head = m
                .el2_read_u64(head_va)
                .map_err(|e| Self::deny(codes::BAD_PHASE, format!("ring head read: {e}")))?;
            let tail = m
                .el2_read_u64(tail_va)
                .map_err(|e| Self::deny(codes::BAD_PHASE, format!("ring tail read: {e}")))?;
            if head == tail {
                break;
            }
            let at = ring.entry_addr(head);
            let pa = PhysAddr::new(
                m.el2_read_u64(VirtAddr::new(at.raw()))
                    .map_err(|e| Self::deny(codes::BAD_PHASE, format!("ring read: {e}")))?,
            );
            let value = m
                .el2_read_u64(VirtAddr::new(at.add(8).raw()))
                .map_err(|e| Self::deny(codes::BAD_PHASE, format!("ring read: {e}")))?;
            m.el2_write_u64(head_va, head.wrapping_add(1))
                .map_err(|e| Self::deny(codes::BAD_PHASE, format!("ring head write: {e}")))?;
            drained += 1;
            m.charge(self.config.costs.event_dispatch);
            let Some(region) = self.regions.iter().find(|r| r.covers(pa)).copied() else {
                self.stats.stray_events += 1;
                continue;
            };
            let event = MonitorEvent { pa, value, region };
            self.stats.events_dispatched += 1;
            for app in &mut self.apps {
                if app.sid() == region.sid {
                    if let Verdict::Malicious { reason } = app.on_event(&event) {
                        self.stats.detections += 1;
                        self.detections.push(Detection {
                            sid: region.sid,
                            event,
                            reason,
                        });
                    }
                }
            }
        }
        Ok(drained)
    }

    fn handle_emulate_write(
        &mut self,
        m: &mut Machine,
        va: VirtAddr,
        value: u64,
    ) -> Result<u64, PolicyViolation> {
        m.charge(self.config.costs.emulate_write);
        // Emulation exists solely for *over-protection*: a data word that
        // became read-only because it shares a 2 MiB section with a
        // protected page. A read-only 4 KiB leaf is protected exactly, on
        // purpose (page-table page, kernel text) — writes there are
        // attacks, not collateral.
        {
            let root = self
                .kernel_root
                .ok_or_else(|| Self::deny(codes::BAD_PHASE, "not locked yet"))?;
            let walk = {
                let mut view = m.pt_view();
                pagetable::walk(&mut view, root, va.raw())
            };
            match walk {
                Ok(res) if res.level == 3 && !res.perms.write => {
                    return Err(Self::deny(
                        codes::BAD_EMULATED_WRITE,
                        format!("{va} is deliberately read-only, not over-protected"),
                    ));
                }
                Ok(_) => {}
                Err(e) => {
                    return Err(Self::deny(
                        codes::BAD_EMULATED_WRITE,
                        format!("translation failed: {e}"),
                    ))
                }
            }
        }
        let pa = self.translate_kernel_va(m, va)?;
        if layout::is_secure(pa) {
            return Err(Self::deny(
                codes::SECURE_MAPPING,
                "emulated write into secure region",
            ));
        }
        if self.tables.contains_key(&pa.page_base().raw())
            || self.pending_tables.contains_key(&pa.page_base().raw())
        {
            return Err(Self::deny(
                codes::BAD_EMULATED_WRITE,
                format!("emulated write targets page-table page {pa}"),
            ));
        }
        self.stats.emulated_writes += 1;
        if self.nc_refcount.get(&pa.page_index()).copied().unwrap_or(0) > 0 {
            // Monitored page: write through an uncached alias so the MBM
            // observes it.
            m.dma_write_u64(pa, value);
        } else {
            m.el2_write_u64(VirtAddr::new(pa.raw()), value)
                .map_err(|e| Self::deny(codes::BAD_PHASE, format!("emulated store failed: {e}")))?;
        }
        Ok(0)
    }
}

impl Hyp for Hypersec {
    fn on_hypercall(
        &mut self,
        machine: &mut Machine,
        call: u64,
        args: [u64; 4],
    ) -> Result<u64, PolicyViolation> {
        self.stats.hypercalls += 1;
        let request = match Hypercall::decode(call, args) {
            Ok(request) => request,
            Err(e) => {
                self.note_rule(codes::UNKNOWN_HYPERCALL);
                return Err(Self::deny(codes::UNKNOWN_HYPERCALL, e.to_string()));
            }
        };
        let result = match request {
            Hypercall::PtWrite {
                table,
                index,
                value,
            } => self.handle_pt_write(machine, table, index, value),
            Hypercall::PtRegisterTable { table, root } => {
                self.handle_pt_register(machine, table, root)
            }
            Hypercall::PtUnregisterTable { table } => self.handle_pt_unregister(machine, table),
            Hypercall::Lock {
                kernel_root,
                user_root,
            } => self.handle_lock(machine, kernel_root, user_root),
            Hypercall::MonitorRegister { sid, base, len } => {
                self.handle_monitor_register(machine, sid, base, len)
            }
            Hypercall::MonitorUnregister { sid, base, len } => {
                self.handle_monitor_unregister(machine, sid, base, len)
            }
            Hypercall::IrqNotify => self.handle_irq_notify(machine),
            Hypercall::EmulateWrite { va, value } => self.handle_emulate_write(machine, va, value),
        };
        if let Err(v) = &result {
            self.note_rule(v.code);
            if matches!(request, Hypercall::PtWrite { .. }) {
                self.stats.pt_denials += 1;
            }
        }
        result
    }

    fn on_sysreg_trap(
        &mut self,
        machine: &mut Machine,
        reg: SysReg,
        value: u64,
    ) -> Result<(), PolicyViolation> {
        machine.charge(self.config.costs.sysreg_verify);
        if !self.locked {
            // Boot phase: trusted (secure boot, paper §4).
            machine.el2_write_sysreg(reg, value);
            self.stats.sysreg_allowed += 1;
            return Ok(());
        }
        let verdict = match reg {
            SysReg::TTBR0_EL1 => {
                let root = value & pagetable::desc::ADDR_MASK;
                if self.roots.contains_key(&root) {
                    Ok(())
                } else {
                    Err(Self::deny(
                        codes::ROGUE_ROOT,
                        format!("TTBR0 points at unregistered root {root:#x}"),
                    ))
                }
            }
            SysReg::TTBR1_EL1 => {
                if Some(PhysAddr::new(value & pagetable::desc::ADDR_MASK)) == self.kernel_root {
                    Ok(())
                } else {
                    Err(Self::deny(
                        codes::ROGUE_ROOT,
                        format!("TTBR1 may only hold the verified kernel root, not {value:#x}"),
                    ))
                }
            }
            SysReg::SCTLR_EL1 => {
                if value & sctlr::M != 0 {
                    Ok(())
                } else {
                    Err(Self::deny(
                        codes::FROZEN_SYSREG,
                        "the MMU must stay enabled",
                    ))
                }
            }
            SysReg::TCR_EL1 | SysReg::MAIR_EL1 => Err(Self::deny(
                codes::FROZEN_SYSREG,
                format!("{reg} is frozen after LOCK"),
            )),
            other => Err(Self::deny(
                codes::FROZEN_SYSREG,
                format!("unexpected trap on {other}"),
            )),
        };
        match verdict {
            Ok(()) => {
                machine.el2_write_sysreg(reg, value);
                self.stats.sysreg_allowed += 1;
                Ok(())
            }
            Err(v) => {
                self.stats.sysreg_denied += 1;
                self.note_rule(v.code);
                Err(v)
            }
        }
    }

    fn on_stage2_fault(
        &mut self,
        _machine: &mut Machine,
        ipa: IntermAddr,
        kind: AccessKind,
        _value: Option<u64>,
    ) -> Result<Stage2Outcome, PolicyViolation> {
        // Hypernel's whole point: stage 2 is never enabled.
        self.note_rule(codes::NO_STAGE2);
        Err(Self::deny(
            codes::NO_STAGE2,
            format!("impossible stage-2 {kind} fault at {ipa}"),
        ))
    }
}
