//! Security applications hosted in the secure space.
//!
//! The paper's evaluation runs "a security solution which monitors
//! sensitive kernel data on Hypernel … the sensitive fields of the target
//! kernel data objects (cred, dentry) and verifies the integrity of these
//! fields" (§7.2). [`SecurityApp`] is the interface Hypersec offers such
//! solutions; [`CredMonitor`] and [`DentryMonitor`] implement the paper's
//! two targets.
//!
//! Verification model: a monitored object's sensitive fields are written
//! exactly once after registration (`commit_creds` / `d_instantiate`);
//! any later mutation arrives outside an authorized update window and is
//! flagged. Linux `cred` objects really are copy-on-write-immutable after
//! commit, so this matches the invariant the paper's solution checks.

use std::collections::HashMap;

use hypernel_kernel::abi::sid;
use hypernel_kernel::kobj::{CredField, DentryField, ObjectKind};
use hypernel_machine::addr::{PhysAddr, VirtAddr};
use hypernel_machine::machine::Machine;

/// A monitored region as tracked by Hypersec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// Owning security application.
    pub sid: u32,
    /// Kernel virtual base the kernel registered.
    pub base_va: VirtAddr,
    /// Physical base after Hypersec's translation.
    pub pa: PhysAddr,
    /// Length in bytes.
    pub len: u64,
}

impl Region {
    /// Returns `true` if the physical address lies inside the region.
    pub fn covers(&self, pa: PhysAddr) -> bool {
        pa >= self.pa && pa.raw() < self.pa.raw() + self.len
    }
}

/// A monitored-write event delivered to a security application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorEvent {
    /// Physical address of the written word.
    pub pa: PhysAddr,
    /// The value written.
    pub value: u64,
    /// The region the write landed in.
    pub region: Region,
}

/// A security application's judgement of an event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Expected behaviour.
    Benign,
    /// Integrity violation.
    Malicious {
        /// Human-readable explanation.
        reason: String,
    },
}

impl Verdict {
    /// Returns `true` for [`Verdict::Malicious`].
    pub fn is_malicious(&self) -> bool {
        matches!(self, Self::Malicious { .. })
    }
}

/// A security solution hosted by Hypersec.
pub trait SecurityApp {
    /// The application id used in `MONITOR_REGISTER` hypercalls.
    fn sid(&self) -> u32;

    /// Human-readable name.
    fn name(&self) -> &str;

    /// Called when a region is registered on this app's behalf.
    fn on_region_registered(&mut self, machine: &mut Machine, region: &Region) {
        let _ = (machine, region);
    }

    /// Called when a region is unregistered.
    fn on_region_unregistered(&mut self, region: &Region) {
        let _ = region;
    }

    /// Judges one monitored write.
    fn on_event(&mut self, event: &MonitorEvent) -> Verdict;

    /// Deep-copies the app (including any accumulated per-object state),
    /// so a whole [`crate::hypersec::Hypersec`] instance — and with it a
    /// booted system — can be snapshotted and forked for warm-boot reuse.
    fn clone_box(&self) -> Box<dyn SecurityApp>;
}

impl Clone for Box<dyn SecurityApp> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Tracks per-word write counts to implement the write-once invariant.
#[derive(Debug, Clone, Default)]
struct WriteOnce {
    writes: HashMap<u64, u32>,
}

impl WriteOnce {
    /// Records a write; returns the count including this one.
    fn record(&mut self, pa: PhysAddr) -> u32 {
        let c = self.writes.entry(pa.raw()).or_insert(0);
        *c += 1;
        *c
    }

    fn forget_region(&mut self, region: &Region) {
        self.writes
            .retain(|&pa, _| !region.covers(PhysAddr::new(pa)));
    }

    /// Seeds state for a region registered over an *already initialized*
    /// object (the arming sweep): every word currently holding a nonzero
    /// value has had its one legitimate commit write — any further
    /// mutation is flagged.
    fn preconsume(&mut self, machine: &mut Machine, region: &Region) {
        let mut pa = region.pa;
        let end = region.pa.add(region.len);
        while pa < end {
            let value = machine.el2_read_u64(VirtAddr::new(pa.raw())).unwrap_or(0);
            if value != 0 {
                self.writes.insert(pa.raw(), 1);
            }
            pa = pa.add(8);
        }
    }
}

/// Resolves which field of a monitored object an event hit, given the
/// region's shape (sensitive run vs whole object).
fn field_offset_words(kind: ObjectKind, event: &MonitorEvent) -> u64 {
    let region_off_words = if event.region.len == kind.bytes() {
        // Whole-object region starts at the object base.
        0
    } else {
        // Sensitive-run region: recover the run's start offset by length
        // match against the layout.
        kind.sensitive_ranges()
            .into_iter()
            .find(|(_, words)| *words * 8 == event.region.len)
            .map(|(off, _)| off)
            .unwrap_or(0)
    };
    region_off_words + event.pa.offset_from(event.region.pa) / 8
}

/// The cred-integrity monitor: watches user/group ids, capabilities and
/// secure bits; flags any mutation after the commit write.
#[derive(Debug, Clone, Default)]
pub struct CredMonitor {
    state: WriteOnce,
    events_seen: u64,
}

impl CredMonitor {
    /// Creates the monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total events this app has judged.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }
}

impl SecurityApp for CredMonitor {
    fn clone_box(&self) -> Box<dyn SecurityApp> {
        Box::new(self.clone())
    }

    fn on_region_registered(&mut self, machine: &mut Machine, region: &Region) {
        self.state.preconsume(machine, region);
    }

    fn sid(&self) -> u32 {
        sid::CRED_MONITOR
    }

    fn name(&self) -> &str {
        "cred-integrity"
    }

    fn on_region_unregistered(&mut self, region: &Region) {
        self.state.forget_region(region);
    }

    fn on_event(&mut self, event: &MonitorEvent) -> Verdict {
        self.events_seen += 1;
        let off = field_offset_words(ObjectKind::Cred, event);
        let sensitive = CredField::ALL
            .iter()
            .any(|f| f.offset() == off && f.is_sensitive());
        if !sensitive {
            return Verdict::Benign;
        }
        if self.state.record(event.pa) > 1 {
            Verdict::Malicious {
                reason: format!(
                    "cred word {off} rewritten to {:#x} after commit (classic \
                     privilege-escalation signature)",
                    event.value
                ),
            }
        } else {
            Verdict::Benign
        }
    }
}

/// The dentry-integrity monitor: watches identity/redirection fields
/// (`d_inode`, `d_parent`, `d_op`, name hash, flags).
#[derive(Debug, Clone, Default)]
pub struct DentryMonitor {
    state: WriteOnce,
    events_seen: u64,
}

impl DentryMonitor {
    /// Creates the monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total events this app has judged.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }
}

impl SecurityApp for DentryMonitor {
    fn clone_box(&self) -> Box<dyn SecurityApp> {
        Box::new(self.clone())
    }

    fn on_region_registered(&mut self, machine: &mut Machine, region: &Region) {
        self.state.preconsume(machine, region);
    }

    fn sid(&self) -> u32 {
        sid::DENTRY_MONITOR
    }

    fn name(&self) -> &str {
        "dentry-integrity"
    }

    fn on_region_unregistered(&mut self, region: &Region) {
        self.state.forget_region(region);
    }

    fn on_event(&mut self, event: &MonitorEvent) -> Verdict {
        self.events_seen += 1;
        let off = field_offset_words(ObjectKind::Dentry, event);
        let sensitive = DentryField::ALL
            .iter()
            .any(|f| f.offset() == off && f.is_sensitive());
        if !sensitive {
            return Verdict::Benign;
        }
        if self.state.record(event.pa) > 1 {
            Verdict::Malicious {
                reason: format!(
                    "dentry word {off} rewritten to {:#x} outside an \
                     authorized update window (VFS hijack signature)",
                    event.value
                ),
            }
        } else {
            Verdict::Benign
        }
    }
}

/// The composed-system guard: watches the regions `hypernel-compose`
/// derives — channel headers and protected shared pages. Every watched
/// word is write-once: the lowering populates headers and stamps
/// region pages *before* registration, so any post-registration write
/// inside a derived span (cross-domain theft, TOCTOU rewrite, channel
/// spoofing) is a rewrite and flags. The app needs no field map — what
/// is sensitive was already decided by the derivation.
#[derive(Debug, Clone, Default)]
pub struct ComposeMonitor {
    state: WriteOnce,
    events_seen: u64,
}

impl ComposeMonitor {
    /// Creates the monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total events this app has judged.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }
}

impl SecurityApp for ComposeMonitor {
    fn clone_box(&self) -> Box<dyn SecurityApp> {
        Box::new(self.clone())
    }

    fn on_region_registered(&mut self, machine: &mut Machine, region: &Region) {
        self.state.preconsume(machine, region);
    }

    fn sid(&self) -> u32 {
        sid::COMPOSE_MONITOR
    }

    fn name(&self) -> &str {
        "compose-guard"
    }

    fn on_region_unregistered(&mut self, region: &Region) {
        self.state.forget_region(region);
    }

    fn on_event(&mut self, event: &MonitorEvent) -> Verdict {
        self.events_seen += 1;
        if self.state.record(event.pa) > 1 {
            Verdict::Malicious {
                reason: format!(
                    "composed-system word at {:#x} rewritten to {:#x} after \
                     lowering (cross-domain tampering signature)",
                    event.pa.raw(),
                    event.value
                ),
            }
        } else {
            Verdict::Benign
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cred_region(pa: u64) -> Region {
        // Sensitive run of cred: words 1..=13, 104 bytes.
        Region {
            sid: sid::CRED_MONITOR,
            base_va: VirtAddr::new(0xFFFF_0000_0000_1000),
            pa: PhysAddr::new(pa),
            len: 104,
        }
    }

    fn event(region: Region, pa: u64, value: u64) -> MonitorEvent {
        MonitorEvent {
            pa: PhysAddr::new(pa),
            value,
            region,
        }
    }

    #[test]
    fn cred_first_write_is_commit_second_is_attack() {
        let mut app = CredMonitor::new();
        let r = cred_region(0x8008); // object base 0x8000, run starts at word 1
                                     // Euid is word 5 → pa 0x8028.
        assert_eq!(app.on_event(&event(r, 0x8028, 1000)), Verdict::Benign);
        let v = app.on_event(&event(r, 0x8028, 0));
        assert!(v.is_malicious());
        assert_eq!(app.events_seen(), 2);
    }

    #[test]
    fn cred_whole_object_mode_ignores_refcount_churn() {
        let mut app = CredMonitor::new();
        let r = Region {
            sid: sid::CRED_MONITOR,
            base_va: VirtAddr::new(0xFFFF_0000_0000_1000),
            pa: PhysAddr::new(0x8000),
            len: ObjectKind::Cred.bytes(),
        };
        // Usage (word 0) churns — always benign.
        for i in 0..10 {
            assert_eq!(app.on_event(&event(r, 0x8000, i)), Verdict::Benign);
        }
        // Euid (word 5) is still protected.
        app.on_event(&event(r, 0x8028, 1000));
        assert!(app.on_event(&event(r, 0x8028, 0)).is_malicious());
    }

    #[test]
    fn unregister_resets_write_once_state() {
        let mut app = CredMonitor::new();
        let r = cred_region(0x8008);
        app.on_event(&event(r, 0x8028, 1000));
        app.on_region_unregistered(&r);
        // A recycled slot is a fresh object: first write benign again.
        assert_eq!(app.on_event(&event(r, 0x8028, 1001)), Verdict::Benign);
    }

    #[test]
    fn dentry_inode_rewrite_is_flagged() {
        let mut app = DentryMonitor::new();
        // Sensitive run (6,3) covers Parent/Inode/Op: 24 bytes at word 6.
        let r = Region {
            sid: sid::DENTRY_MONITOR,
            base_va: VirtAddr::new(0xFFFF_0000_0000_2000),
            pa: PhysAddr::new(0x9030),
            len: 24,
        };
        // Inode is word 7 → pa 0x9038.
        assert_eq!(app.on_event(&event(r, 0x9038, 0xAAA)), Verdict::Benign);
        let v = app.on_event(&event(r, 0x9038, 0xEE1));
        assert!(v.is_malicious());
    }

    #[test]
    fn region_covers() {
        let r = cred_region(0x8008);
        assert!(r.covers(PhysAddr::new(0x8008)));
        assert!(r.covers(PhysAddr::new(0x806F)));
        assert!(!r.covers(PhysAddr::new(0x8070)));
        assert!(!r.covers(PhysAddr::new(0x8000)));
    }
}

/// A KI-Mon-style value-verifying monitor (Lee et al., USENIX Sec'13,
/// the paper's reference 17): instead of the write-once invariant it
/// checks every write against a whitelist of allowed values. The classic
/// use is function-pointer fields (`d_op` vtables): only pointers into
/// known vtable sets are legitimate, and a single forged write is caught
/// on its *first* occurrence — even during an object's construction.
#[derive(Debug, Clone)]
pub struct ValueWhitelistMonitor {
    sid: u32,
    name: String,
    /// Word offsets (within the monitored region) this monitor judges.
    watched_offsets: Vec<u64>,
    /// Values allowed at those offsets.
    allowed: std::collections::HashSet<u64>,
    events_seen: u64,
}

impl ValueWhitelistMonitor {
    /// Creates a whitelist monitor for application id `sid`.
    pub fn new(
        sid: u32,
        name: impl Into<String>,
        watched_offsets: impl IntoIterator<Item = u64>,
        allowed: impl IntoIterator<Item = u64>,
    ) -> Self {
        Self {
            sid,
            name: name.into(),
            watched_offsets: watched_offsets.into_iter().collect(),
            allowed: allowed.into_iter().collect(),
            events_seen: 0,
        }
    }

    /// Total events judged.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }
}

impl SecurityApp for ValueWhitelistMonitor {
    fn clone_box(&self) -> Box<dyn SecurityApp> {
        Box::new(self.clone())
    }

    fn sid(&self) -> u32 {
        self.sid
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn on_event(&mut self, event: &MonitorEvent) -> Verdict {
        self.events_seen += 1;
        let offset = event.pa.offset_from(event.region.pa) / 8;
        if !self.watched_offsets.contains(&offset) {
            return Verdict::Benign;
        }
        if self.allowed.contains(&event.value) {
            Verdict::Benign
        } else {
            Verdict::Malicious {
                reason: format!(
                    "value {:#x} at region offset {offset} is not in the whitelist                      (forged pointer signature)",
                    event.value
                ),
            }
        }
    }
}

#[cfg(test)]
mod whitelist_tests {
    use super::*;

    fn region() -> Region {
        Region {
            sid: 7,
            base_va: VirtAddr::new(0xFFFF_0000_0000_3000),
            pa: PhysAddr::new(0xA000),
            len: 64,
        }
    }

    fn event(pa: u64, value: u64) -> MonitorEvent {
        MonitorEvent {
            pa: PhysAddr::new(pa),
            value,
            region: region(),
        }
    }

    #[test]
    fn whitelisted_values_pass_forever() {
        let mut app = ValueWhitelistMonitor::new(7, "vtable-guard", [2], [0xD0, 0xD1]);
        for _ in 0..5 {
            assert_eq!(app.on_event(&event(0xA010, 0xD0)), Verdict::Benign);
            assert_eq!(app.on_event(&event(0xA010, 0xD1)), Verdict::Benign);
        }
        assert_eq!(app.events_seen(), 10);
    }

    #[test]
    fn first_forged_value_is_flagged() {
        let mut app = ValueWhitelistMonitor::new(7, "vtable-guard", [2], [0xD0]);
        let v = app.on_event(&event(0xA010, 0xBAD));
        assert!(v.is_malicious());
        assert!(matches!(v, Verdict::Malicious { reason } if reason.contains("0xbad")));
    }

    #[test]
    fn unwatched_offsets_are_ignored() {
        let mut app = ValueWhitelistMonitor::new(7, "vtable-guard", [2], [0xD0]);
        // Offset 0 of the region is not watched.
        assert_eq!(app.on_event(&event(0xA000, 0xBAD)), Verdict::Benign);
    }

    #[test]
    fn identity() {
        let app = ValueWhitelistMonitor::new(9, "guard", [0], [1]);
        assert_eq!(app.sid(), 9);
        assert_eq!(app.name(), "guard");
    }
}
