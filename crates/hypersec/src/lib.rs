#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # hypernel-hypersec
//!
//! **Hypersec**, the secure-space software of the [Hypernel (DAC 2018)][paper]
//! framework. It runs at EL2 with the ARM virtualization
//! extension but **without nested paging**: instead of a stage-2 table it
//! verifies every kernel page-table update submitted by hypercall,
//! validates trapped `TVM` register writes, and — together with the
//! memory bus monitor (`hypernel-mbm`) — gives security applications
//! word-granularity write monitoring over kernel objects.
//!
//! See [`hypersec::Hypersec`] for the runtime and [`secapp`] for the
//! hosted security applications (the paper's cred/dentry integrity
//! solution).
//!
//! ## Example
//!
//! ```
//! use hypernel_machine::machine::{Machine, MachineConfig};
//! use hypernel_kernel::layout;
//! use hypernel_hypersec::{CredMonitor, Hypersec, HypersecConfig};
//!
//! let mut machine = Machine::new(MachineConfig {
//!     dram_size: layout::DRAM_SIZE,
//!     ..MachineConfig::default()
//! });
//! let mut hypersec = Hypersec::install(&mut machine, HypersecConfig::standard());
//! hypersec.install_app(Box::new(CredMonitor::new()));
//! assert!(!hypersec.is_locked());
//! assert!(machine.regs().tvm_enabled());
//! assert!(!machine.regs().stage2_enabled()); // no nested paging!
//! ```
//!
//! [paper]: https://doi.org/10.1145/3195970.3196061

pub mod hypersec;
pub mod secapp;

pub use hypersec::{
    codes, AuditReport, Detection, Hypersec, HypersecConfig, HypersecCosts, HypersecStats,
};
pub use secapp::{
    ComposeMonitor, CredMonitor, DentryMonitor, MonitorEvent, Region, SecurityApp,
    ValueWhitelistMonitor, Verdict,
};
