//! Dependency-free JSON writer and parser.
//!
//! The build environment has no registry access, so the exporters cannot
//! use `serde`. This module provides the small JSON subset they need:
//! objects, arrays, strings, booleans, null, and numbers. Unsigned
//! integers are kept exact through write/parse round-trips (no `f64`
//! detour), which matters for cycle counters and 64-bit payloads.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer, kept exact up to `u64::MAX`.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved when writing.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for an object from key/value pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Shorthand for a string value.
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_string())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            Json::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(n) => Some(*n as f64),
            Json::Int(n) => Some(*n as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as `bool`, if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `&str`, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data"));
        }
        Ok(value)
    }
}

/// Serializes to a compact JSON string (via `.to_string()`).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped runs wholesale; strings are valid UTF-8 by
            // construction (`input` is &str).
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf8"));
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by our exporters.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf8");
        if text.is_empty() || text == "-" {
            return Err(self.err("expected a number"));
        }
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<u64>() {
                    if n == 0 {
                        return Ok(Json::UInt(0));
                    }
                    if let Ok(i) = text.parse::<i64>() {
                        return Ok(Json::Int(i));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "17", "-5", "3.5"] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_string(), text);
        }
    }

    #[test]
    fn u64_max_survives_round_trip() {
        let v = Json::UInt(u64::MAX);
        let parsed = Json::parse(&v.to_string()).unwrap();
        assert_eq!(parsed.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn nested_structures_round_trip() {
        let doc = Json::obj(vec![
            ("name", Json::str("trace \"quoted\"\n")),
            (
                "items",
                Json::Array(vec![Json::UInt(1), Json::Null, Json::Bool(true)]),
            ),
            ("nested", Json::obj(vec![("k", Json::Int(-9))])),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"a": 4, "b": "x", "c": [1, 2]}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(4));
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(
            doc.get("c").and_then(Json::as_array).map(|a| a.len()),
            Some(2)
        );
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for text in ["", "{", "[1,", "\"open", "{\"a\" 1}", "12x", "nulll"] {
            assert!(Json::parse(text).is_err(), "accepted {text:?}");
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let doc = Json::parse(" {\n\t\"a\" : [ 1 , 2 ] }\r\n").unwrap();
        assert_eq!(
            doc.get("a").and_then(Json::as_array).map(|a| a.len()),
            Some(2)
        );
    }
}
