//! Fixed-bucket log2 latency histograms.
//!
//! Values are bucketed by bit width: bucket 0 holds exactly 0, bucket
//! `i` (1..=64) holds values in `[2^(i-1), 2^i)`. That covers the whole
//! `u64` domain in 65 counters, so recording is O(1) and merge is
//! bucket-wise addition. Quantiles are estimated from bucket upper
//! bounds clamped to the observed min/max, which keeps them monotone in
//! the requested rank.

/// Number of buckets: one for zero plus one per bit width.
pub const BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a value: 0 for 0, otherwise its bit width.
fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Largest value a bucket can hold (`u64::MAX` for the last one).
fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean sample, if any.
    pub fn mean(&self) -> Option<u64> {
        (self.count > 0).then(|| (self.sum / self.count as u128) as u64)
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`): the upper bound of the
    /// bucket containing the rank-`ceil(q*count)` sample, clamped to the
    /// observed `[min, max]`. Returns `None` on an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_upper_bound(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Adds every sample of `other` into `self` (bucket-wise; exact for
    /// counts/sum/min/max, so merge order never matters).
    pub fn merge(&mut self, other: &Histogram) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Condenses the histogram into the fixed summary used by reports.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            min: self.min().unwrap_or(0),
            max: self.max().unwrap_or(0),
            mean: self.mean().unwrap_or(0),
            p50: self.quantile(0.50).unwrap_or(0),
            p95: self.quantile(0.95).unwrap_or(0),
            p99: self.quantile(0.99).unwrap_or(0),
        }
    }
}

/// Fixed-size digest of a [`Histogram`], embedded in run reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Mean sample (0 when empty).
    pub mean: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 95th percentile.
    pub p95: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn extreme_values_round_trip() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(u64::MAX));
    }

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn quantiles_are_monotone_in_rank() {
        let mut h = Histogram::new();
        let mut x = 1u64;
        for i in 0..1000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
            h.record(x >> (x % 40));
        }
        let qs: Vec<u64> = (0..=20)
            .map(|i| h.quantile(i as f64 / 20.0).unwrap())
            .collect();
        for pair in qs.windows(2) {
            assert!(pair[0] <= pair[1], "quantiles not monotone: {qs:?}");
        }
        assert!(qs[0] >= h.min().unwrap());
        assert_eq!(*qs.last().unwrap(), h.max().unwrap());
    }

    #[test]
    fn quantile_bounds_respect_observed_range() {
        let mut h = Histogram::new();
        h.record(100);
        h.record(120);
        // Bucket upper bound would be 127, but max observed is 120.
        assert_eq!(h.quantile(0.99), Some(120));
        // Lower clamp: bucket 0's bound (0) can never be below min.
        assert!(h.quantile(0.01).unwrap() >= 100);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let samples: [&[u64]; 3] = [&[0, 1, 2, 3], &[u64::MAX, 17, 17], &[1 << 40, 5]];
        let hist = |vals: &[u64]| {
            let mut h = Histogram::new();
            vals.iter().for_each(|&v| h.record(v));
            h
        };
        let (a, b, c) = (hist(samples[0]), hist(samples[1]), hist(samples[2]));

        // (a + b) + c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a + (b + c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);

        // c + b + a
        let mut rev = c.clone();
        rev.merge(&b);
        rev.merge(&a);
        assert_eq!(left, rev);

        // And equal to recording everything into one histogram.
        let mut all = Histogram::new();
        for s in samples {
            s.iter().for_each(|&v| all.record(v));
        }
        assert_eq!(left, all);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = Histogram::new();
        h.record(42);
        let before = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h, before);

        let mut empty = Histogram::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn merge_empty_into_empty_stays_empty() {
        let mut a = Histogram::new();
        a.merge(&Histogram::new());
        assert_eq!(a, Histogram::new());
        assert_eq!(a.count(), 0);
        assert_eq!(a.min(), None);
        assert_eq!(a.quantile(0.5), None);
    }

    #[test]
    fn merge_of_disjoint_ranges_widens_min_and_max() {
        let mut low = Histogram::new();
        low.record(3);
        low.record(5);
        let mut high = Histogram::new();
        high.record(1 << 30);

        let mut merged = low.clone();
        merged.merge(&high);
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.min(), Some(3));
        assert_eq!(merged.max(), Some(1 << 30));
        assert_eq!(merged.sum(), 3 + 5 + (1u128 << 30));
        // And merging the other way agrees.
        let mut other = high.clone();
        other.merge(&low);
        assert_eq!(merged, other);
    }

    #[test]
    fn single_bucket_histogram_pins_every_quantile() {
        // All samples share one bucket (and one value): every quantile,
        // including the endpoints, must be that value.
        let mut h = Histogram::new();
        for _ in 0..7 {
            h.record(37);
        }
        for q in [0.0, 0.25, 0.5, 0.75, 0.95, 1.0] {
            assert_eq!(h.quantile(q), Some(37), "q={q}");
        }
        let s = h.summary();
        assert_eq!((s.min, s.max, s.mean, s.p50, s.p99), (37, 37, 37, 37, 37));
    }

    #[test]
    fn endpoint_quantiles_clamp_to_observed_extremes() {
        let mut h = Histogram::new();
        h.record(1);
        h.record(1000);
        h.record(40);
        // q=0 clamps the rank to the first sample → min's bucket → min.
        assert_eq!(h.quantile(0.0), Some(1));
        // q=1 is the last bucket's bound (1023) clamped to the max.
        assert_eq!(h.quantile(1.0), Some(1000));
        // Out-of-range requests clamp instead of panicking.
        assert_eq!(h.quantile(-3.0), Some(1));
        assert_eq!(h.quantile(7.5), Some(1000));
    }

    #[test]
    fn one_sample_histogram_summary() {
        let mut h = Histogram::new();
        h.record(0);
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!((s.min, s.max, s.p50, s.p95, s.p99), (0, 0, 0, 0, 0));
    }

    #[test]
    fn summary_matches_direct_queries() {
        let mut h = Histogram::new();
        for v in 1..=1024u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 1024);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1024);
        assert_eq!(s.p50, h.quantile(0.50).unwrap());
        assert_eq!(s.p95, h.quantile(0.95).unwrap());
        assert_eq!(s.p99, h.quantile(0.99).unwrap());
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
    }
}
