//! Columnar windowed time series and their JSONL artifact.
//!
//! A [`MetricsDoc`] is the on-disk `metrics.jsonl` shape: one header
//! line naming the series and the window width, then one line per
//! window carrying the column values for that window. Everything is
//! keyed to *simulated* cycles, so a document is a pure function of
//! `(scenario, seed)` — byte-identical at any worker count and with
//! the host fast paths on or off.

use crate::json::Json;

/// Schema version stamped into the `metrics.jsonl` header line. Bump
/// when a field is renamed or its meaning changes; additions do not.
pub const METRICS_SCHEMA: u64 = 1;

/// `kind` tag in the header line, so downstream tooling can tell a
/// metrics document from a trace or a campaign artifact.
pub const METRICS_KIND: &str = "hypernel-metrics";

/// How a series aggregates samples inside one window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SeriesKind {
    /// Per-window delta of a monotonically increasing counter (events
    /// that happened *during* the window).
    Counter,
    /// Per-window maximum of an instantaneous level (FIFO depth,
    /// detection latency).
    Gauge,
}

impl SeriesKind {
    /// Stable serialization name.
    pub fn name(self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
        }
    }

    /// Inverse of [`SeriesKind::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "counter" => Some(SeriesKind::Counter),
            "gauge" => Some(SeriesKind::Gauge),
            _ => None,
        }
    }
}

/// One named column: a value per window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Series {
    /// Metric name (see [`crate::metrics::STANDARD_METRICS`]).
    pub name: String,
    /// Aggregation the values were produced with.
    pub kind: SeriesKind,
    /// One value per window, window 0 first.
    pub values: Vec<u64>,
}

impl Series {
    /// Sum across all windows (saturating).
    pub fn total(&self) -> u64 {
        self.values.iter().fold(0u64, |a, v| a.saturating_add(*v))
    }

    /// Maximum single-window value (0 when empty).
    pub fn max(&self) -> u64 {
        self.values.iter().copied().max().unwrap_or(0)
    }
}

/// A complete windowed-metrics document: the in-memory form of
/// `metrics.jsonl`.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsDoc {
    /// Window width in simulated cycles.
    pub window_cycles: u64,
    /// Scenario name, when the run came from a campaign.
    pub scenario: Option<String>,
    /// Seed, when the run came from a campaign.
    pub seed: Option<u64>,
    /// System mode label ("Native" / "KVM-guest" / "Hypernel").
    pub mode: Option<String>,
    /// The columns; all have the same number of windows.
    pub series: Vec<Series>,
}

impl MetricsDoc {
    /// Number of windows (rows).
    pub fn windows(&self) -> usize {
        self.series.first().map_or(0, |s| s.values.len())
    }

    /// Looks up a column by name.
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    fn header_json(&self) -> Json {
        let mut fields = vec![
            ("schema", Json::UInt(METRICS_SCHEMA)),
            ("kind", Json::str(METRICS_KIND)),
            ("window_cycles", Json::UInt(self.window_cycles)),
            ("windows", Json::UInt(self.windows() as u64)),
        ];
        if let Some(s) = &self.scenario {
            fields.push(("scenario", Json::str(s)));
        }
        if let Some(seed) = self.seed {
            fields.push(("seed", Json::UInt(seed)));
        }
        if let Some(m) = &self.mode {
            fields.push(("mode", Json::str(m)));
        }
        fields.push((
            "series",
            Json::Array(
                self.series
                    .iter()
                    .map(|s| {
                        Json::obj(vec![
                            ("name", Json::str(&s.name)),
                            ("kind", Json::str(s.kind.name())),
                        ])
                    })
                    .collect(),
            ),
        ));
        Json::obj(fields)
    }

    /// Serializes the document as JSONL: header line, then one line per
    /// window. The output is deterministic byte-for-byte.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header_json().to_string());
        out.push('\n');
        for w in 0..self.windows() {
            let row = Json::obj(vec![
                ("window", Json::UInt(w as u64)),
                (
                    "start",
                    Json::UInt((w as u64).saturating_mul(self.window_cycles)),
                ),
                (
                    "values",
                    Json::Array(
                        self.series
                            .iter()
                            .map(|s| Json::UInt(s.values[w]))
                            .collect(),
                    ),
                ),
            ]);
            out.push_str(&row.to_string());
            out.push('\n');
        }
        out
    }

    /// Parses a `metrics.jsonl` document (the inverse of
    /// [`MetricsDoc::to_jsonl`]). Unlike trace ingestion this is strict:
    /// a metrics artifact is machine-written, so a malformed line means
    /// the file is not a metrics document.
    pub fn parse_jsonl(input: &str) -> Result<MetricsDoc, String> {
        let mut lines = input
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let (_, header_line) = lines.next().ok_or("empty metrics document")?;
        let header = Json::parse(header_line).map_err(|e| format!("line 1: bad header: {e}"))?;
        if header.get("kind").and_then(Json::as_str) != Some(METRICS_KIND) {
            return Err(format!("line 1: not a {METRICS_KIND} document"));
        }
        match header.get("schema").and_then(Json::as_u64) {
            Some(METRICS_SCHEMA) => {}
            Some(v) => return Err(format!("line 1: unsupported schema {v}")),
            None => return Err("line 1: header has no schema".to_string()),
        }
        let window_cycles = header
            .get("window_cycles")
            .and_then(Json::as_u64)
            .ok_or("line 1: header has no window_cycles")?;
        let declared_windows = header
            .get("windows")
            .and_then(Json::as_u64)
            .ok_or("line 1: header has no windows count")?;
        let mut series: Vec<Series> = header
            .get("series")
            .and_then(Json::as_array)
            .ok_or("line 1: header has no series list")?
            .iter()
            .map(|s| {
                let name = s
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("line 1: series entry without a name")?
                    .to_string();
                let kind = s
                    .get("kind")
                    .and_then(Json::as_str)
                    .and_then(SeriesKind::from_name)
                    .ok_or("line 1: series entry with a bad kind")?;
                Ok(Series {
                    name,
                    kind,
                    values: Vec::new(),
                })
            })
            .collect::<Result<_, String>>()?;
        let mut rows = 0u64;
        for (idx, line) in lines {
            let lineno = idx + 1;
            let row = Json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
            let window = row
                .get("window")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("line {lineno}: row without a window index"))?;
            if window != rows {
                return Err(format!(
                    "line {lineno}: window {window} out of order (expected {rows})"
                ));
            }
            let values = row
                .get("values")
                .and_then(Json::as_array)
                .ok_or_else(|| format!("line {lineno}: row without values"))?;
            if values.len() != series.len() {
                return Err(format!(
                    "line {lineno}: {} values for {} series",
                    values.len(),
                    series.len()
                ));
            }
            for (col, value) in series.iter_mut().zip(values) {
                col.values.push(
                    value
                        .as_u64()
                        .ok_or_else(|| format!("line {lineno}: non-integer value"))?,
                );
            }
            rows += 1;
        }
        if rows != declared_windows {
            return Err(format!(
                "header declares {declared_windows} windows, found {rows}"
            ));
        }
        Ok(MetricsDoc {
            window_cycles,
            scenario: header
                .get("scenario")
                .and_then(Json::as_str)
                .map(str::to_string),
            seed: header.get("seed").and_then(Json::as_u64),
            mode: header
                .get("mode")
                .and_then(Json::as_str)
                .map(str::to_string),
            series,
        })
    }

    /// A bounded per-run summary (window count plus per-series total and
    /// single-window max) — the shape stamped into campaign run records,
    /// where embedding every window would bloat the artifact.
    pub fn summary_json(&self) -> Json {
        Json::obj(vec![
            ("window_cycles", Json::UInt(self.window_cycles)),
            ("windows", Json::UInt(self.windows() as u64)),
            (
                "series",
                Json::Array(
                    self.series
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("name", Json::str(&s.name)),
                                ("kind", Json::str(s.kind.name())),
                                ("total", Json::UInt(s.total())),
                                ("max", Json::UInt(s.max())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> MetricsDoc {
        MetricsDoc {
            window_cycles: 1000,
            scenario: Some("demo".to_string()),
            seed: Some(7),
            mode: Some("Hypernel".to_string()),
            series: vec![
                Series {
                    name: "hypercalls".to_string(),
                    kind: SeriesKind::Counter,
                    values: vec![3, 0, 9],
                },
                Series {
                    name: "mbm-fifo-depth".to_string(),
                    kind: SeriesKind::Gauge,
                    values: vec![1, 4, 2],
                },
            ],
        }
    }

    #[test]
    fn jsonl_round_trips() {
        let d = doc();
        let text = d.to_jsonl();
        assert_eq!(text.lines().count(), 4, "header + 3 windows");
        let parsed = MetricsDoc::parse_jsonl(&text).expect("parse");
        assert_eq!(parsed, d);
        // Re-serializing is byte-identical.
        assert_eq!(parsed.to_jsonl(), text);
    }

    #[test]
    fn summary_is_bounded_totals_and_maxima() {
        let s = doc().summary_json();
        assert_eq!(s.get("windows").and_then(Json::as_u64), Some(3));
        let series = s.get("series").and_then(Json::as_array).unwrap();
        assert_eq!(series[0].get("total").and_then(Json::as_u64), Some(12));
        assert_eq!(series[1].get("max").and_then(Json::as_u64), Some(4));
    }

    #[test]
    fn parse_rejects_foreign_and_corrupt_documents() {
        assert!(MetricsDoc::parse_jsonl("").is_err());
        assert!(MetricsDoc::parse_jsonl("{\"kind\":\"other\"}\n").is_err());
        let mut text = doc().to_jsonl();
        text.push_str("{\"window\":9,\"start\":0,\"values\":[1,2]}\n");
        assert!(MetricsDoc::parse_jsonl(&text).is_err(), "row out of order");
        let truncated: String = doc()
            .to_jsonl()
            .lines()
            .take(2)
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(
            MetricsDoc::parse_jsonl(&truncated).is_err(),
            "window count mismatch"
        );
    }

    #[test]
    fn empty_document_round_trips() {
        let d = MetricsDoc {
            window_cycles: 500,
            scenario: None,
            seed: None,
            mode: None,
            series: vec![Series {
                name: "hypercalls".to_string(),
                kind: SeriesKind::Counter,
                values: Vec::new(),
            }],
        };
        let parsed = MetricsDoc::parse_jsonl(&d.to_jsonl()).expect("parse");
        assert_eq!(parsed.windows(), 0);
        assert_eq!(parsed, d);
    }
}
