//! The standard metric catalog and recording configuration.
//!
//! Every series that may appear in a `metrics.jsonl` artifact is
//! declared here, with its aggregation kind. All standard metrics are
//! *simulated* quantities — host-side fast-path counters (the L0
//! micro-TLB, the MBM watch-page filter) are deliberately absent,
//! because the artifact must be byte-identical with the fast paths on
//! or off (`HYPERNEL_NO_FASTPATH`). Host counters stay on the
//! host-only reporting surface (`RunReport::host_fastpath_markdown`).

use crate::series::SeriesKind;

/// Default window width in simulated cycles (~43 µs at the modeled
/// 1.15 GHz clock): fine enough to see FIFO spikes inside one attack
/// step, coarse enough that a corpus run stays a few dozen rows.
pub const DEFAULT_WINDOW_CYCLES: u64 = 50_000;

/// One metric in the standard catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricDef {
    /// Stable artifact name.
    pub name: &'static str,
    /// Aggregation within a window.
    pub kind: SeriesKind,
    /// One-line description for docs and `timeline` rendering.
    pub help: &'static str,
}

/// Every metric a recorder may emit, in artifact column order. The
/// order is part of the artifact contract: a subset selection keeps
/// this order regardless of how the scenario lists it.
pub const STANDARD_METRICS: &[MetricDef] = &[
    MetricDef {
        name: "hypercalls",
        kind: SeriesKind::Counter,
        help: "EL1->EL2 hypercalls retired in the window",
    },
    MetricDef {
        name: "sysreg-traps",
        kind: SeriesKind::Counter,
        help: "VM-register writes trapped to EL2 in the window",
    },
    MetricDef {
        name: "irqs-delivered",
        kind: SeriesKind::Counter,
        help: "interrupts delivered to EL1 in the window",
    },
    MetricDef {
        name: "tlb-hits",
        kind: SeriesKind::Counter,
        help: "main-TLB hits in the window",
    },
    MetricDef {
        name: "tlb-misses",
        kind: SeriesKind::Counter,
        help: "main-TLB misses (page-table walks) in the window",
    },
    MetricDef {
        name: "mbm-bus-writes",
        kind: SeriesKind::Counter,
        help: "bus write transactions the MBM snooped in the window",
    },
    MetricDef {
        name: "mbm-captured",
        kind: SeriesKind::Counter,
        help: "snooped writes captured into the MBM FIFO in the window",
    },
    MetricDef {
        name: "mbm-watch-hits",
        kind: SeriesKind::Counter,
        help: "captured writes that matched the watch bitmap in the window",
    },
    MetricDef {
        name: "mbm-irqs-raised",
        kind: SeriesKind::Counter,
        help: "MBM interrupts raised toward Hypersec in the window",
    },
    MetricDef {
        name: "mbm-fifo-dropped",
        kind: SeriesKind::Counter,
        help: "snooped writes lost to a full MBM FIFO in the window",
    },
    MetricDef {
        name: "mbm-fifo-depth",
        kind: SeriesKind::Gauge,
        help: "MBM FIFO depth at sample points (window max)",
    },
    MetricDef {
        name: "mbm-fifo-high-water",
        kind: SeriesKind::Gauge,
        help: "cumulative MBM FIFO high-water mark (window max)",
    },
    MetricDef {
        name: "detection-latency-max",
        kind: SeriesKind::Gauge,
        help: "worst write->detection latency serviced in the window, cycles",
    },
];

/// Looks up a standard metric by name.
pub fn metric(name: &str) -> Option<&'static MetricDef> {
    STANDARD_METRICS.iter().find(|m| m.name == name)
}

/// The standard metric names, in artifact column order.
pub fn metric_names() -> impl Iterator<Item = &'static str> {
    STANDARD_METRICS.iter().map(|m| m.name)
}

/// What a recorder should record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsConfig {
    /// Window width in simulated cycles (must be non-zero).
    pub window_cycles: u64,
    /// Series to record, or `None` for the full standard catalog.
    /// Unknown names are ignored (`hypernel-campaign lint` flags them);
    /// column order always follows [`STANDARD_METRICS`].
    pub enabled: Option<Vec<String>>,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        Self {
            window_cycles: DEFAULT_WINDOW_CYCLES,
            enabled: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique() {
        let mut names: Vec<_> = metric_names().collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate metric name in catalog");
    }

    #[test]
    fn lookup_finds_every_catalog_entry() {
        for def in STANDARD_METRICS {
            let found = metric(def.name).expect("catalog entry resolves");
            assert_eq!(found.name, def.name);
            assert_eq!(found.kind, def.kind);
        }
        assert!(metric("no-such-metric").is_none());
    }
}
