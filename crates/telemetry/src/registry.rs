//! The [`Telemetry`] registry: a sink that turns the raw event stream
//! into aggregate measurements.
//!
//! Begin/end pairs are matched per `(track, span kind)` with a stack, so
//! nested spans of the same kind on one track pair innermost-first. The
//! resulting latencies feed per-span [`Histogram`]s; point events feed
//! counters. [`Telemetry::snapshot`] freezes everything into a
//! [`Snapshot`], and [`Snapshot::since`] diffs two snapshots to isolate
//! one phase of a run.

use crate::event::{Event, EventKind, PointKind, SpanKind, Track};
use crate::histogram::{Histogram, HistogramSummary};
use crate::sink::TelemetrySink;
use std::collections::BTreeMap;

/// Aggregating sink: span latency histograms plus point-event counters.
#[derive(Debug, Default)]
pub struct Telemetry {
    histograms: BTreeMap<(Track, SpanKind), Histogram>,
    open_spans: BTreeMap<(Track, SpanKind), Vec<u64>>,
    counters: BTreeMap<(Track, PointKind), u64>,
    /// `End` events that arrived with no matching `Begin`.
    unmatched_ends: u64,
}

impl Telemetry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The latency histogram for one span kind on one track, if any
    /// spans completed there.
    pub fn histogram(&self, track: Track, span: SpanKind) -> Option<&Histogram> {
        self.histograms.get(&(track, span))
    }

    /// The latency histogram for a span kind merged across all tracks.
    pub fn merged_histogram(&self, span: SpanKind) -> Histogram {
        let mut merged = Histogram::new();
        for ((_, s), h) in &self.histograms {
            if *s == span {
                merged.merge(h);
            }
        }
        merged
    }

    /// The count of one point event on one track.
    pub fn counter(&self, track: Track, point: PointKind) -> u64 {
        self.counters.get(&(track, point)).copied().unwrap_or(0)
    }

    /// The count of one point event summed across tracks.
    pub fn total(&self, point: PointKind) -> u64 {
        self.counters
            .iter()
            .filter(|((_, p), _)| *p == point)
            .map(|(_, n)| n)
            .sum()
    }

    /// Spans currently open (begun but not yet ended).
    pub fn open_span_count(&self) -> usize {
        self.open_spans.values().map(Vec::len).sum()
    }

    /// `End` events that had no matching `Begin`.
    pub fn unmatched_ends(&self) -> u64 {
        self.unmatched_ends
    }

    /// Freezes the current aggregates.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            spans: self
                .histograms
                .iter()
                .map(|(k, h)| (*k, h.summary()))
                .collect(),
            counters: self.counters.clone(),
            open_spans: self.open_span_count() as u64,
            unmatched_ends: self.unmatched_ends,
        }
    }
}

impl TelemetrySink for Telemetry {
    fn record(&mut self, event: &Event) {
        match event.kind {
            EventKind::Begin(span, _) => {
                self.open_spans
                    .entry((event.track, span))
                    .or_default()
                    .push(event.cycles);
            }
            EventKind::End(span, _) => {
                let stack = self.open_spans.entry((event.track, span)).or_default();
                match stack.pop() {
                    Some(begin) => {
                        let latency = event.cycles.saturating_sub(begin);
                        self.histograms
                            .entry((event.track, span))
                            .or_default()
                            .record(latency);
                    }
                    None => self.unmatched_ends += 1,
                }
            }
            EventKind::Mark(point, _, _) => {
                *self.counters.entry((event.track, point)).or_insert(0) += 1;
            }
        }
    }
}

/// A frozen view of a [`Telemetry`] registry.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Latency summaries per `(track, span kind)`.
    pub spans: BTreeMap<(Track, SpanKind), HistogramSummary>,
    /// Point-event counts per `(track, point kind)`.
    pub counters: BTreeMap<(Track, PointKind), u64>,
    /// Spans still open at snapshot time.
    pub open_spans: u64,
    /// `End` events with no matching `Begin`.
    pub unmatched_ends: u64,
}

impl Snapshot {
    /// Counter and span-count deltas since `earlier` (histogram
    /// percentiles are not diffable; the delta reports counts and total
    /// span activity instead).
    pub fn since(&self, earlier: &Snapshot) -> SnapshotDelta {
        let mut counters = BTreeMap::new();
        for (key, now) in &self.counters {
            let before = earlier.counters.get(key).copied().unwrap_or(0);
            if *now != before {
                counters.insert(*key, now.saturating_sub(before));
            }
        }
        let mut span_counts = BTreeMap::new();
        for (key, now) in &self.spans {
            let before = earlier.spans.get(key).map(|s| s.count).unwrap_or(0);
            if now.count != before {
                span_counts.insert(*key, now.count.saturating_sub(before));
            }
        }
        SnapshotDelta {
            counters,
            span_counts,
        }
    }
}

/// What changed between two [`Snapshot`]s; zero-delta entries are omitted.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SnapshotDelta {
    /// Point-event count increases.
    pub counters: BTreeMap<(Track, PointKind), u64>,
    /// Completed-span count increases.
    pub span_counts: BTreeMap<(Track, SpanKind), u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_pair_into_latencies() {
        let mut t = Telemetry::new();
        t.record(&Event::begin(100, Track::El2, SpanKind::HypercallVerify, 1));
        t.record(&Event::end(150, Track::El2, SpanKind::HypercallVerify, 0));
        t.record(&Event::begin(200, Track::El2, SpanKind::HypercallVerify, 2));
        t.record(&Event::end(280, Track::El2, SpanKind::HypercallVerify, 0));
        let h = t.histogram(Track::El2, SpanKind::HypercallVerify).unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Some(50));
        assert_eq!(h.max(), Some(80));
        assert_eq!(t.open_span_count(), 0);
    }

    #[test]
    fn nested_same_kind_spans_pair_innermost_first() {
        let mut t = Telemetry::new();
        t.record(&Event::begin(0, Track::El1, SpanKind::Syscall, 0));
        t.record(&Event::begin(10, Track::El1, SpanKind::Syscall, 1));
        t.record(&Event::end(15, Track::El1, SpanKind::Syscall, 0)); // inner: 5
        t.record(&Event::end(100, Track::El1, SpanKind::Syscall, 0)); // outer: 100
        let h = t.histogram(Track::El1, SpanKind::Syscall).unwrap();
        assert_eq!(h.min(), Some(5));
        assert_eq!(h.max(), Some(100));
    }

    #[test]
    fn tracks_are_independent() {
        let mut t = Telemetry::new();
        t.record(&Event::begin(0, Track::El1, SpanKind::MbmIrqService, 0));
        t.record(&Event::begin(5, Track::El2, SpanKind::MbmIrqService, 0));
        t.record(&Event::end(30, Track::El2, SpanKind::MbmIrqService, 0));
        assert_eq!(t.open_span_count(), 1);
        assert!(t.histogram(Track::El1, SpanKind::MbmIrqService).is_none());
        let merged = t.merged_histogram(SpanKind::MbmIrqService);
        assert_eq!(merged.count(), 1);
        assert_eq!(merged.max(), Some(25));
    }

    #[test]
    fn unmatched_end_is_counted_not_paired() {
        let mut t = Telemetry::new();
        t.record(&Event::end(9, Track::El2, SpanKind::Stage2Check, 0));
        assert_eq!(t.unmatched_ends(), 1);
        assert!(t.histogram(Track::El2, SpanKind::Stage2Check).is_none());
    }

    #[test]
    fn marks_count_per_track_and_in_total() {
        let mut t = Telemetry::new();
        t.record(&Event::mark(1, Track::Mbm, PointKind::MbmFifoPush, 0x40, 7));
        t.record(&Event::mark(2, Track::Mbm, PointKind::MbmFifoPush, 0x48, 8));
        t.record(&Event::mark(3, Track::El1, PointKind::TlbMaintenance, 4, 0));
        assert_eq!(t.counter(Track::Mbm, PointKind::MbmFifoPush), 2);
        assert_eq!(t.counter(Track::El1, PointKind::MbmFifoPush), 0);
        assert_eq!(t.total(PointKind::MbmFifoPush), 2);
        assert_eq!(t.total(PointKind::TlbMaintenance), 1);
    }

    #[test]
    fn snapshot_diff_isolates_a_phase() {
        let mut t = Telemetry::new();
        t.record(&Event::mark(1, Track::El1, PointKind::Hypercall, 1, 0));
        t.record(&Event::begin(0, Track::El2, SpanKind::HypercallVerify, 1));
        t.record(&Event::end(40, Track::El2, SpanKind::HypercallVerify, 0));
        let before = t.snapshot();

        t.record(&Event::mark(50, Track::El1, PointKind::Hypercall, 2, 0));
        t.record(&Event::mark(51, Track::El1, PointKind::Hypercall, 3, 0));
        t.record(&Event::begin(60, Track::El2, SpanKind::HypercallVerify, 2));
        t.record(&Event::end(90, Track::El2, SpanKind::HypercallVerify, 0));
        let after = t.snapshot();

        let delta = after.since(&before);
        assert_eq!(delta.counters[&(Track::El1, PointKind::Hypercall)], 2);
        assert_eq!(
            delta.span_counts[&(Track::El2, SpanKind::HypercallVerify)],
            1
        );
        // Unchanged keys are omitted entirely.
        assert_eq!(delta.counters.len(), 1);
        assert_eq!(delta.span_counts.len(), 1);
    }
}
