//! Unified telemetry for the Hypernel simulation.
//!
//! The paper's evaluation is built from counting privilege-boundary
//! events (hypercalls, TVM sysreg traps, MBM interrupts) and attributing
//! cycle overhead to them. This crate makes those events first-class:
//!
//! * [`event`] — cycle-stamped structured events spanning EL0/EL1/EL2 and
//!   the MBM, with span-style begin/end pairing.
//! * [`sink`] — the zero-cost-when-disabled [`TelemetrySink`] trait plus
//!   simple sinks (ring buffer, fan-out).
//! * [`histogram`] — fixed-bucket log2 latency histograms with
//!   p50/p95/p99/max summaries.
//! * [`registry`] — the [`Telemetry`] registry: a sink that pairs spans
//!   into latency histograms and counts point events, with a
//!   snapshot/diff API.
//! * [`export`] — JSONL and Chrome `trace_event` exporters (the latter
//!   loads directly into `chrome://tracing` / Perfetto).
//! * [`json`] — the dependency-free JSON writer/parser the exporters and
//!   round-trip tests build on.
//! * [`metrics`] / [`series`] / [`recorder`] — windowed time series: a
//!   catalog of always-simulated counters and gauges, a columnar
//!   per-cycle-window document (`metrics.jsonl`), and the polling
//!   recorder that buckets cumulative samples into windows.
//! * [`reader`] — the analysis-side entry point: lossy JSONL ingestion
//!   (skip-and-count, never abort) and the [`reader::SpanTree`] builder
//!   that reconstructs cross-EL span nesting from the flat stream.

#![forbid(unsafe_code)]

pub mod event;
pub mod export;
pub mod histogram;
pub mod json;
pub mod metrics;
pub mod reader;
pub mod recorder;
pub mod registry;
pub mod series;
pub mod sink;

pub use event::{Event, EventKind, PointKind, SpanKind, Track};
pub use histogram::{Histogram, HistogramSummary};
pub use metrics::{MetricDef, MetricsConfig, DEFAULT_WINDOW_CYCLES, STANDARD_METRICS};
pub use reader::{read_jsonl_lossy, LossyTrace, Mark, SpanNode, SpanTree};
pub use recorder::MetricsRecorder;
pub use registry::{Snapshot, Telemetry};
pub use series::{MetricsDoc, Series, SeriesKind, METRICS_KIND, METRICS_SCHEMA};
pub use sink::{shared, FanoutSink, RingSink, SharedSink, TelemetrySink};
