//! The windowed-metrics recorder.
//!
//! A [`MetricsRecorder`] is a *poller*, not a sink: the driver (the
//! campaign engine, `hypernel-sim`) feeds it cumulative counter values
//! and instantaneous gauge levels at natural boundaries (attack steps,
//! measurement iterations), stamped with simulated cycles. The recorder
//! buckets them into fixed-width cycle windows: counters become
//! per-window deltas, gauges per-window maxima. Because every input is
//! a simulated quantity keyed to simulated time, the finished
//! [`MetricsDoc`] is a pure function of the run.

use crate::metrics::{MetricDef, MetricsConfig, STANDARD_METRICS};
use crate::series::{MetricsDoc, Series, SeriesKind};

/// Accumulates windowed series from polled samples and explicit
/// observations.
#[derive(Debug, Clone)]
pub struct MetricsRecorder {
    window_cycles: u64,
    columns: Vec<&'static MetricDef>,
    /// `windows[w][col]` — grown on demand, padded at finish.
    windows: Vec<Vec<u64>>,
    /// Last cumulative value seen per counter column (`None` until the
    /// baseline sample); gauges keep `None`.
    last: Vec<Option<u64>>,
}

impl MetricsRecorder {
    /// A recorder for `config`. Unknown names in `config.enabled` are
    /// ignored; column order always follows
    /// [`STANDARD_METRICS`](crate::metrics::STANDARD_METRICS).
    pub fn new(config: &MetricsConfig) -> Self {
        let columns: Vec<&'static MetricDef> = match &config.enabled {
            None => STANDARD_METRICS.iter().collect(),
            Some(names) => STANDARD_METRICS
                .iter()
                .filter(|d| names.iter().any(|n| n == d.name))
                .collect(),
        };
        Self {
            window_cycles: config.window_cycles.max(1),
            last: vec![None; columns.len()],
            columns,
            windows: Vec::new(),
        }
    }

    /// Window width in simulated cycles.
    pub fn window_cycles(&self) -> u64 {
        self.window_cycles
    }

    fn window_index(&self, cycles: u64) -> usize {
        (cycles / self.window_cycles) as usize
    }

    fn touch(&mut self, w: usize) {
        while self.windows.len() <= w {
            self.windows.push(vec![0; self.columns.len()]);
        }
    }

    fn column(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|d| d.name == name)
    }

    /// Feeds one poll of cumulative counters and instantaneous gauges,
    /// taken at simulated time `cycles`. Counter values must be
    /// cumulative (the recorder takes deltas against the previous
    /// sample); the first sighting of a counter establishes its
    /// baseline and contributes no delta — poll once right after boot
    /// so boot-time activity is not attributed to the first window.
    /// Names that are not enabled columns are ignored.
    pub fn sample(&mut self, cycles: u64, values: &[(&str, u64)]) {
        let w = self.window_index(cycles);
        self.touch(w);
        for (name, value) in values {
            let Some(col) = self.column(name) else {
                continue;
            };
            match self.columns[col].kind {
                SeriesKind::Counter => {
                    if let Some(prev) = self.last[col] {
                        let delta = value.saturating_sub(prev);
                        self.windows[w][col] = self.windows[w][col].saturating_add(delta);
                    }
                    self.last[col] = Some(*value);
                }
                SeriesKind::Gauge => {
                    self.windows[w][col] = self.windows[w][col].max(*value);
                }
            }
        }
    }

    /// Records one event-driven observation at simulated time `cycles`:
    /// gauges take the window maximum, counters add `value` directly
    /// (no cumulative baseline involved). Ignored unless `name` is an
    /// enabled column.
    pub fn observe(&mut self, name: &str, cycles: u64, value: u64) {
        let Some(col) = self.column(name) else {
            return;
        };
        let w = self.window_index(cycles);
        self.touch(w);
        match self.columns[col].kind {
            SeriesKind::Counter => {
                self.windows[w][col] = self.windows[w][col].saturating_add(value);
            }
            SeriesKind::Gauge => {
                self.windows[w][col] = self.windows[w][col].max(value);
            }
        }
    }

    /// Consumes the recorder into a [`MetricsDoc`] with the given run
    /// labels.
    pub fn finish(
        self,
        scenario: Option<&str>,
        seed: Option<u64>,
        mode: Option<&str>,
    ) -> MetricsDoc {
        let series = self
            .columns
            .iter()
            .enumerate()
            .map(|(col, def)| Series {
                name: def.name.to_string(),
                kind: def.kind,
                values: self.windows.iter().map(|w| w[col]).collect(),
            })
            .collect();
        MetricsDoc {
            window_cycles: self.window_cycles,
            scenario: scenario.map(str::to_string),
            seed,
            mode: mode.map(str::to_string),
            series,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::metric;

    fn config(window: u64, enabled: Option<&[&str]>) -> MetricsConfig {
        MetricsConfig {
            window_cycles: window,
            enabled: enabled.map(|names| names.iter().map(|n| n.to_string()).collect()),
        }
    }

    #[test]
    fn counters_become_window_deltas_with_a_silent_baseline() {
        let mut rec = MetricsRecorder::new(&config(100, Some(&["hypercalls"])));
        rec.sample(0, &[("hypercalls", 40)]); // baseline: no delta
        rec.sample(50, &[("hypercalls", 45)]); // +5 into window 0
        rec.sample(250, &[("hypercalls", 52)]); // +7 into window 2
        let doc = rec.finish(None, None, None);
        assert_eq!(doc.series("hypercalls").unwrap().values, vec![5, 0, 7]);
    }

    #[test]
    fn gauges_take_the_window_maximum() {
        let mut rec = MetricsRecorder::new(&config(100, Some(&["mbm-fifo-depth"])));
        rec.sample(10, &[("mbm-fifo-depth", 3)]);
        rec.sample(20, &[("mbm-fifo-depth", 9)]);
        rec.sample(90, &[("mbm-fifo-depth", 1)]);
        rec.sample(150, &[("mbm-fifo-depth", 2)]);
        let doc = rec.finish(None, None, None);
        assert_eq!(doc.series("mbm-fifo-depth").unwrap().values, vec![9, 2]);
    }

    #[test]
    fn observe_feeds_event_driven_gauges() {
        let mut rec = MetricsRecorder::new(&config(1000, Some(&["detection-latency-max"])));
        rec.sample(0, &[]);
        rec.observe("detection-latency-max", 500, 120);
        rec.observe("detection-latency-max", 700, 80);
        rec.observe("detection-latency-max", 1500, 300);
        let doc = rec.finish(None, None, None);
        assert_eq!(
            doc.series("detection-latency-max").unwrap().values,
            vec![120, 300]
        );
    }

    #[test]
    fn subset_selection_keeps_catalog_order_and_pads_windows() {
        // Listed out of catalog order on purpose.
        let mut rec = MetricsRecorder::new(&config(10, Some(&["tlb-hits", "hypercalls"])));
        rec.sample(0, &[("hypercalls", 0), ("tlb-hits", 0)]);
        rec.sample(35, &[("hypercalls", 4), ("tlb-hits", 9)]);
        let doc = rec.finish(Some("s"), Some(3), Some("Hypernel"));
        let names: Vec<&str> = doc.series.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["hypercalls", "tlb-hits"], "catalog order");
        // Windows 0..=3 all exist, even though only 0 and 3 were touched.
        assert_eq!(doc.windows(), 4);
        assert_eq!(doc.series("hypercalls").unwrap().values, vec![0, 0, 0, 4]);
        assert_eq!(doc.seed, Some(3));
    }

    #[test]
    fn unknown_names_are_ignored() {
        let mut rec = MetricsRecorder::new(&config(10, None));
        rec.sample(0, &[("no-such-metric", 1)]);
        rec.observe("also-unknown", 5, 2);
        let doc = rec.finish(None, None, None);
        assert_eq!(doc.series.len(), STANDARD_METRICS.len());
        assert!(doc.series.iter().all(|s| s.total() == 0));
    }

    #[test]
    fn catalog_lookup_and_recorder_agree_on_kinds() {
        let rec = MetricsRecorder::new(&MetricsConfig::default());
        let doc = rec.finish(None, None, None);
        for s in &doc.series {
            assert_eq!(metric(&s.name).unwrap().kind, s.kind);
        }
    }
}
