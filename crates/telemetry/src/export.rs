//! Event-stream exporters: JSONL and Chrome `trace_event`.
//!
//! JSONL is the lossless interchange format — one event object per line,
//! integers kept exact, and [`parse_jsonl`] inverts [`write_jsonl`]
//! bit-for-bit. The Chrome format targets `chrome://tracing` / Perfetto:
//! each [`Track`] becomes a named thread, spans become `B`/`E` pairs and
//! marks become instant (`i`) events, with timestamps converted from
//! modeled cycles to microseconds.

use crate::event::{Event, EventKind, PointKind, SpanKind, Track};
use crate::json::{Json, ParseError};

/// Serializes one event as a JSON object.
pub fn event_to_json(event: &Event) -> Json {
    let mut fields = vec![
        ("cycles", Json::UInt(event.cycles)),
        ("track", Json::str(event.track.name())),
    ];
    match event.kind {
        EventKind::Begin(span, arg) => {
            fields.push(("type", Json::str("begin")));
            fields.push(("span", Json::str(span.name())));
            fields.push(("arg", Json::UInt(arg)));
        }
        EventKind::End(span, arg) => {
            fields.push(("type", Json::str("end")));
            fields.push(("span", Json::str(span.name())));
            fields.push(("arg", Json::UInt(arg)));
        }
        EventKind::Mark(point, a, b) => {
            fields.push(("type", Json::str("mark")));
            fields.push(("point", Json::str(point.name())));
            fields.push(("a", Json::UInt(a)));
            fields.push(("b", Json::UInt(b)));
        }
    }
    Json::obj(fields)
}

/// Reconstructs an event from [`event_to_json`] output.
pub fn event_from_json(value: &Json) -> Option<Event> {
    let cycles = value.get("cycles")?.as_u64()?;
    let track = Track::from_name(value.get("track")?.as_str()?)?;
    let kind = match value.get("type")?.as_str()? {
        "begin" => EventKind::Begin(
            SpanKind::from_name(value.get("span")?.as_str()?)?,
            value.get("arg")?.as_u64()?,
        ),
        "end" => EventKind::End(
            SpanKind::from_name(value.get("span")?.as_str()?)?,
            value.get("arg")?.as_u64()?,
        ),
        "mark" => EventKind::Mark(
            PointKind::from_name(value.get("point")?.as_str()?)?,
            value.get("a")?.as_u64()?,
            value.get("b")?.as_u64()?,
        ),
        _ => return None,
    };
    Some(Event {
        cycles,
        track,
        kind,
    })
}

/// Writes events as JSONL: one compact JSON object per line.
pub fn write_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&event_to_json(event).to_string());
        out.push('\n');
    }
    out
}

/// Parses JSONL back into events. Blank lines are skipped; a malformed
/// line or an unrecognized event shape is an error naming the line.
pub fn parse_jsonl(input: &str) -> Result<Vec<Event>, JsonlError> {
    let mut events = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = Json::parse(line).map_err(|cause| JsonlError {
            line: idx + 1,
            cause: Some(cause),
        })?;
        let event = event_from_json(&value).ok_or(JsonlError {
            line: idx + 1,
            cause: None,
        })?;
        events.push(event);
    }
    Ok(events)
}

/// A JSONL line that failed to parse back into an event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonlError {
    /// 1-based line number.
    pub line: usize,
    /// The JSON syntax error, or `None` if the JSON was well-formed but
    /// not a recognizable event.
    pub cause: Option<ParseError>,
}

impl std::fmt::Display for JsonlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.cause {
            Some(cause) => write!(f, "line {}: {cause}", self.line),
            None => write!(f, "line {}: not a telemetry event", self.line),
        }
    }
}

impl std::error::Error for JsonlError {}

fn track_tid(track: Track) -> u64 {
    match track {
        Track::El0 => 0,
        Track::El1 => 1,
        Track::El2 => 2,
        Track::Mbm => 3,
    }
}

/// Microseconds (as JSON) for a cycle stamp at `cycles_per_us`.
fn chrome_ts(cycles: u64, cycles_per_us: f64) -> Json {
    Json::Float(cycles as f64 / cycles_per_us)
}

/// Serializes events in Chrome `trace_event` JSON object format, loadable
/// in `chrome://tracing` and Perfetto. `cycles_per_us` converts the
/// modeled cycle counter to trace microseconds (e.g. 1150.0 for the
/// simulated 1.15 GHz core).
pub fn write_chrome_trace(events: &[Event], cycles_per_us: f64) -> String {
    assert!(cycles_per_us > 0.0, "cycles_per_us must be positive");
    let mut trace_events = Vec::new();

    // Metadata: name the process and one thread per track.
    trace_events.push(Json::obj(vec![
        ("name", Json::str("process_name")),
        ("ph", Json::str("M")),
        ("pid", Json::UInt(1)),
        ("tid", Json::UInt(0)),
        ("args", Json::obj(vec![("name", Json::str("hypernel-sim"))])),
    ]));
    for track in Track::ALL {
        trace_events.push(Json::obj(vec![
            ("name", Json::str("thread_name")),
            ("ph", Json::str("M")),
            ("pid", Json::UInt(1)),
            ("tid", Json::UInt(track_tid(track))),
            ("args", Json::obj(vec![("name", Json::str(track.name()))])),
        ]));
    }

    for event in events {
        let common = |name: &str, ph: &str| {
            vec![
                ("name", Json::str(name)),
                ("cat", Json::str(event.track.name())),
                ("ph", Json::str(ph)),
                ("ts", chrome_ts(event.cycles, cycles_per_us)),
                ("pid", Json::UInt(1)),
                ("tid", Json::UInt(track_tid(event.track))),
            ]
        };
        let entry = match event.kind {
            EventKind::Begin(span, arg) => {
                let mut fields = common(span.name(), "B");
                fields.push(("args", Json::obj(vec![("arg", Json::UInt(arg))])));
                Json::obj(fields)
            }
            EventKind::End(span, arg) => {
                let mut fields = common(span.name(), "E");
                fields.push(("args", Json::obj(vec![("arg", Json::UInt(arg))])));
                Json::obj(fields)
            }
            EventKind::Mark(point, a, b) => {
                let mut fields = common(point.name(), "i");
                // Thread-scoped instant.
                fields.push(("s", Json::str("t")));
                fields.push((
                    "args",
                    Json::obj(vec![("a", Json::UInt(a)), ("b", Json::UInt(b))]),
                ));
                Json::obj(fields)
            }
        };
        trace_events.push(entry);
    }

    Json::obj(vec![
        ("traceEvents", Json::Array(trace_events)),
        ("displayTimeUnit", Json::str("ms")),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::mark(10, Track::El1, PointKind::Hypercall, 3, 0),
            Event::begin(12, Track::El2, SpanKind::HypercallVerify, 3),
            Event::begin(14, Track::El2, SpanKind::Stage2Check, 0),
            Event::end(20, Track::El2, SpanKind::Stage2Check, 1),
            Event::end(25, Track::El2, SpanKind::HypercallVerify, 0),
            Event::mark(30, Track::Mbm, PointKind::MbmFifoPush, 0x4000, u64::MAX),
            Event::begin(40, Track::El1, SpanKind::MbmIrqService, 5),
            Event::end(90, Track::El1, SpanKind::MbmIrqService, 0),
        ]
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let events = sample_events();
        let text = write_jsonl(&events);
        assert_eq!(text.lines().count(), events.len());
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn jsonl_round_trips_every_kind_and_track() {
        let mut events = Vec::new();
        let mut cycles = 0;
        for track in Track::ALL {
            for span in SpanKind::ALL {
                events.push(Event::begin(cycles, track, span, cycles));
                events.push(Event::end(cycles + 1, track, span, u64::MAX));
                cycles += 2;
            }
            for point in PointKind::ALL {
                events.push(Event::mark(cycles, track, point, u64::MAX, 0));
                cycles += 1;
            }
        }
        let parsed = parse_jsonl(&write_jsonl(&events)).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn jsonl_errors_name_the_line() {
        let err = parse_jsonl("{\"cycles\":1}\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.cause.is_none());
        let err = parse_jsonl("\n{bad\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.cause.is_some());
    }

    #[test]
    fn chrome_trace_is_valid_and_paired() {
        let events = sample_events();
        let doc = Json::parse(&write_chrome_trace(&events, 1150.0)).unwrap();
        let entries = doc.get("traceEvents").and_then(Json::as_array).unwrap();

        // 1 process + 4 thread metadata entries precede the events.
        let (meta, rest) = entries.split_at(5);
        assert!(meta
            .iter()
            .all(|e| e.get("ph").and_then(Json::as_str) == Some("M")));
        assert_eq!(rest.len(), events.len());

        // Begin/end pairing per (tid, name): every E closes the most
        // recent open B of the same name, and nothing stays open.
        let mut open: HashMap<(u64, String), u64> = HashMap::new();
        for entry in rest {
            let ph = entry.get("ph").and_then(Json::as_str).unwrap();
            let tid = entry.get("tid").and_then(Json::as_u64).unwrap();
            let name = entry
                .get("name")
                .and_then(Json::as_str)
                .unwrap()
                .to_string();
            match ph {
                "B" => *open.entry((tid, name)).or_insert(0) += 1,
                "E" => {
                    let n = open.get_mut(&(tid, name)).expect("E without B");
                    assert!(*n > 0, "E without open B");
                    *n -= 1;
                }
                "i" => assert_eq!(entry.get("s").and_then(Json::as_str), Some("t")),
                other => panic!("unexpected phase {other}"),
            }
        }
        assert!(open.values().all(|&n| n == 0), "unclosed spans: {open:?}");
    }

    #[test]
    fn chrome_timestamps_are_monotonic_and_scaled() {
        let events = sample_events();
        let doc = Json::parse(&write_chrome_trace(&events, 2.0)).unwrap();
        let entries = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        let ts: Vec<f64> = entries
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) != Some("M"))
            .map(|e| e.get("ts").and_then(Json::as_f64).unwrap())
            .collect();
        for pair in ts.windows(2) {
            assert!(pair[0] <= pair[1], "timestamps went backwards: {ts:?}");
        }
        // cycles=10 at 2 cycles/us → 5 us.
        assert_eq!(ts[0], 5.0);
    }

    #[test]
    fn empty_trace_still_loads() {
        let doc = Json::parse(&write_chrome_trace(&[], 1150.0)).unwrap();
        let entries = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        assert_eq!(entries.len(), 5); // metadata only
        assert_eq!(
            doc.get("displayTimeUnit").and_then(Json::as_str),
            Some("ms")
        );
    }
}
