//! Cycle-stamped structured events.
//!
//! Every event carries the modeled cycle counter at emission time and the
//! [`Track`] (privilege level or hardware block) it belongs to. Durations
//! are expressed as [`EventKind::Begin`]/[`EventKind::End`] pairs of the
//! same [`SpanKind`] on the same track; instantaneous occurrences are
//! [`EventKind::Mark`]s of a [`PointKind`].

/// Where an event originated: a privilege level or the bus-level monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// User space (applications).
    El0,
    /// The guest kernel.
    El1,
    /// Hypersec / the hypervisor layer.
    El2,
    /// The Memory Bus Monitor hardware.
    Mbm,
}

impl Track {
    /// All tracks, in display order.
    pub const ALL: [Track; 4] = [Track::El0, Track::El1, Track::El2, Track::Mbm];

    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Track::El0 => "el0",
            Track::El1 => "el1",
            Track::El2 => "el2",
            Track::Mbm => "mbm",
        }
    }

    /// Inverse of [`Track::name`].
    pub fn from_name(name: &str) -> Option<Track> {
        Track::ALL.into_iter().find(|t| t.name() == name)
    }
}

/// A duration measured as a begin/end pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// One system call, prologue to return (EL1).
    Syscall,
    /// Hypersec verifying one hypercall (EL2).
    HypercallVerify,
    /// Hypersec verifying one trapped sysreg write (EL2).
    SysregVerify,
    /// One stage-2-equivalent leaf permission check (EL2).
    Stage2Check,
    /// Kernel/Hypersec servicing one MBM watch-hit interrupt.
    MbmIrqService,
    /// Draining the MBM event ring (EL2).
    MbmDrain,
}

impl SpanKind {
    /// All span kinds, in display order.
    pub const ALL: [SpanKind; 6] = [
        SpanKind::Syscall,
        SpanKind::HypercallVerify,
        SpanKind::SysregVerify,
        SpanKind::Stage2Check,
        SpanKind::MbmIrqService,
        SpanKind::MbmDrain,
    ];

    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Syscall => "syscall",
            SpanKind::HypercallVerify => "hypercall-verify",
            SpanKind::SysregVerify => "sysreg-verify",
            SpanKind::Stage2Check => "stage2-check",
            SpanKind::MbmIrqService => "mbm-irq-service",
            SpanKind::MbmDrain => "mbm-drain",
        }
    }

    /// Inverse of [`SpanKind::name`].
    pub fn from_name(name: &str) -> Option<SpanKind> {
        SpanKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// An instantaneous occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PointKind {
    /// An `HVC` issued by the kernel (arg: call number).
    Hypercall,
    /// A TVM-trapped system register write (args: register id, value).
    SysregTrap,
    /// A stage-2 translation fault (args: IPA, fault kind).
    Stage2Fault,
    /// A stage-1 data abort (args: VA, fault kind).
    DataAbort,
    /// An interrupt line asserted (arg: line number).
    IrqRaised,
    /// The MBM captured a write into its FIFO (args: address, value).
    MbmFifoPush,
    /// The MBM FIFO overflowed and dropped a write (args: address, value).
    MbmFifoDrop,
    /// A captured write hit a watched region (args: address, value).
    MbmWatchHit,
    /// A TLB maintenance operation (arg: flushed entry count).
    TlbMaintenance,
    /// A cache maintenance operation (arg: affected line count).
    CacheMaintenance,
    /// The core entered WFI.
    Wfi,
    /// A software-generated interrupt was sent (arg: line number).
    Sgi,
}

impl PointKind {
    /// All point kinds, in display order.
    pub const ALL: [PointKind; 12] = [
        PointKind::Hypercall,
        PointKind::SysregTrap,
        PointKind::Stage2Fault,
        PointKind::DataAbort,
        PointKind::IrqRaised,
        PointKind::MbmFifoPush,
        PointKind::MbmFifoDrop,
        PointKind::MbmWatchHit,
        PointKind::TlbMaintenance,
        PointKind::CacheMaintenance,
        PointKind::Wfi,
        PointKind::Sgi,
    ];

    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            PointKind::Hypercall => "hypercall",
            PointKind::SysregTrap => "sysreg-trap",
            PointKind::Stage2Fault => "stage2-fault",
            PointKind::DataAbort => "data-abort",
            PointKind::IrqRaised => "irq-raised",
            PointKind::MbmFifoPush => "mbm-fifo-push",
            PointKind::MbmFifoDrop => "mbm-fifo-drop",
            PointKind::MbmWatchHit => "mbm-watch-hit",
            PointKind::TlbMaintenance => "tlb-maintenance",
            PointKind::CacheMaintenance => "cache-maintenance",
            PointKind::Wfi => "wfi",
            PointKind::Sgi => "sgi",
        }
    }

    /// Inverse of [`PointKind::name`].
    pub fn from_name(name: &str) -> Option<PointKind> {
        PointKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// What happened, with up to two words of payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A span opened (payload meaning depends on the span kind, e.g. the
    /// hypercall number for [`SpanKind::HypercallVerify`]).
    Begin(SpanKind, u64),
    /// The matching span closed (payload: result/status word).
    End(SpanKind, u64),
    /// An instantaneous occurrence with two payload words.
    Mark(PointKind, u64, u64),
}

/// One telemetry event: a cycle stamp, an originating track, and a kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Event {
    /// Modeled cycle counter at emission time.
    pub cycles: u64,
    /// Privilege level / hardware block the event belongs to.
    pub track: Track,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Builds a span-begin event.
    pub fn begin(cycles: u64, track: Track, span: SpanKind, arg: u64) -> Self {
        Event {
            cycles,
            track,
            kind: EventKind::Begin(span, arg),
        }
    }

    /// Builds a span-end event.
    pub fn end(cycles: u64, track: Track, span: SpanKind, arg: u64) -> Self {
        Event {
            cycles,
            track,
            kind: EventKind::End(span, arg),
        }
    }

    /// Builds an instantaneous mark.
    pub fn mark(cycles: u64, track: Track, point: PointKind, a: u64, b: u64) -> Self {
        Event {
            cycles,
            track,
            kind: EventKind::Mark(point, a, b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for t in Track::ALL {
            assert_eq!(Track::from_name(t.name()), Some(t));
        }
        for s in SpanKind::ALL {
            assert_eq!(SpanKind::from_name(s.name()), Some(s));
        }
        for p in PointKind::ALL {
            assert_eq!(PointKind::from_name(p.name()), Some(p));
        }
        assert_eq!(Track::from_name("el9"), None);
        assert_eq!(SpanKind::from_name(""), None);
    }

    #[test]
    fn names_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for s in SpanKind::ALL {
            assert!(seen.insert(s.name()));
        }
        for p in PointKind::ALL {
            assert!(
                seen.insert(p.name()),
                "span/point name collision: {}",
                p.name()
            );
        }
    }
}
