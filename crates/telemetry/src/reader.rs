//! Trace reading and span-tree reconstruction.
//!
//! [`export::parse_jsonl`](crate::export::parse_jsonl) is strict: one bad
//! line aborts the parse, which is the right contract for round-trip
//! tests but the wrong one for analysis — a trace truncated by a crashed
//! run or a corrupted line in a multi-gigabyte capture should not make
//! the other 99.99 % of the evidence unreadable. [`read_jsonl_lossy`]
//! skips (and counts) malformed lines instead.
//!
//! [`SpanTree`] then rebuilds the nesting structure of the event stream.
//! The simulation is single-threaded with one global cycle counter, so
//! begin/end events of *all* tracks interleave as one properly nested
//! stack (an EL2 `hypercall-verify` sits textually inside the EL1
//! `syscall` that issued the `HVC`). The builder is tolerant of the two
//! ways real traces break that ideal:
//!
//! * syscalls that abort leave their span open by design — open spans at
//!   end-of-trace are kept, with [`SpanNode::end`] `None`;
//! * an `End` whose kind does not match the innermost open span closes
//!   the intervening spans implicitly (Chrome-trace semantics) and is
//!   counted, so one lost event cannot shear the whole tree.

use crate::event::{Event, EventKind, PointKind, SpanKind, Track};
use crate::export::event_from_json;
use crate::json::Json;

/// Result of a lossy JSONL read: every parseable event, plus an honest
/// account of what was skipped.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LossyTrace {
    /// Events recovered, in file order.
    pub events: Vec<Event>,
    /// Number of non-blank lines that failed to parse as events.
    pub skipped: u64,
    /// Up to [`MAX_SKIP_DETAILS`] `(line number, reason)` samples of the
    /// skipped lines, for diagnostics.
    pub skip_details: Vec<(usize, String)>,
}

/// How many skipped-line samples [`read_jsonl_lossy`] keeps.
pub const MAX_SKIP_DETAILS: usize = 8;

/// Parses JSONL, skipping malformed or truncated lines instead of
/// aborting. Blank lines are ignored silently; any other unparseable
/// line increments [`LossyTrace::skipped`].
pub fn read_jsonl_lossy(input: &str) -> LossyTrace {
    let mut trace = LossyTrace::default();
    for (idx, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let outcome = match Json::parse(line) {
            Ok(value) => match event_from_json(&value) {
                Some(event) => {
                    trace.events.push(event);
                    continue;
                }
                None => "not a telemetry event".to_string(),
            },
            Err(e) => e.to_string(),
        };
        trace.skipped += 1;
        if trace.skip_details.len() < MAX_SKIP_DETAILS {
            trace.skip_details.push((idx + 1, outcome));
        }
    }
    trace
}

/// One reconstructed span: a begin/end pair with everything that
/// happened inside it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Track the span ran on.
    pub track: Track,
    /// What the span measures.
    pub kind: SpanKind,
    /// Cycle stamp of the `Begin` event.
    pub begin: u64,
    /// Cycle stamp of the `End` event; `None` if the span never closed
    /// (aborted syscall, truncated trace) or was closed implicitly by a
    /// mismatched outer `End`.
    pub end: Option<u64>,
    /// Payload of the `Begin` event (e.g. the hypercall number).
    pub begin_arg: u64,
    /// Payload of the `End` event (status word; `1` = denied).
    pub end_arg: Option<u64>,
    /// Spans nested inside this one, in begin order.
    pub children: Vec<SpanNode>,
    /// Marks observed while this span was innermost, in stream order.
    pub marks: Vec<Mark>,
}

impl SpanNode {
    /// Total duration in cycles: `end - begin`. Open spans report the
    /// time up to `close_cycles` (the last stamp seen in the trace).
    pub fn total_cycles(&self, close_cycles: u64) -> u64 {
        self.end.unwrap_or(close_cycles).saturating_sub(self.begin)
    }

    /// Cycles spent in this span itself, excluding nested child spans.
    pub fn self_cycles(&self, close_cycles: u64) -> u64 {
        let nested: u64 = self
            .children
            .iter()
            .map(|c| c.total_cycles(close_cycles))
            .sum();
        self.total_cycles(close_cycles).saturating_sub(nested)
    }
}

/// An instantaneous mark, positioned inside the span tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mark {
    /// Cycle stamp.
    pub cycles: u64,
    /// Originating track.
    pub track: Track,
    /// What happened.
    pub kind: PointKind,
    /// First payload word (usually an address or line number).
    pub a: u64,
    /// Second payload word (usually a value).
    pub b: u64,
}

/// The reconstructed nesting structure of one event stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanTree {
    /// Top-level spans, in begin order.
    pub roots: Vec<SpanNode>,
    /// Marks that occurred outside any span.
    pub orphan_marks: Vec<Mark>,
    /// `End` events that matched no open span at all.
    pub unmatched_ends: u64,
    /// Spans closed implicitly because an outer span ended first.
    pub implicitly_closed: u64,
    /// Spans still open at end-of-trace (kept in the tree with
    /// `end: None`).
    pub left_open: u64,
    /// Cycle stamp of the last event in the stream (used to bound open
    /// spans in duration queries).
    pub last_cycles: u64,
}

impl SpanTree {
    /// Builds the tree from an event stream in emission order.
    pub fn build(events: &[Event]) -> SpanTree {
        let mut tree = SpanTree::default();
        // The open-span stack: each frame owns its completed children.
        let mut stack: Vec<SpanNode> = Vec::new();

        let close_into =
            |tree: &mut SpanTree, stack: &mut Vec<SpanNode>, node: SpanNode| match stack.last_mut()
            {
                Some(parent) => parent.children.push(node),
                None => tree.roots.push(node),
            };

        for event in events {
            tree.last_cycles = tree.last_cycles.max(event.cycles);
            match event.kind {
                EventKind::Begin(kind, arg) => stack.push(SpanNode {
                    track: event.track,
                    kind,
                    begin: event.cycles,
                    end: None,
                    begin_arg: arg,
                    end_arg: None,
                    children: Vec::new(),
                    marks: Vec::new(),
                }),
                EventKind::End(kind, arg) => {
                    let matches = |n: &SpanNode| n.track == event.track && n.kind == kind;
                    if !stack.iter().any(matches) {
                        tree.unmatched_ends += 1;
                        continue;
                    }
                    // Implicitly close everything above the matching
                    // frame (its `End` was lost or it aborted).
                    while !matches(stack.last().expect("checked non-empty")) {
                        let node = stack.pop().expect("checked non-empty");
                        tree.implicitly_closed += 1;
                        close_into(&mut tree, &mut stack, node);
                    }
                    let mut node = stack.pop().expect("matching frame");
                    node.end = Some(event.cycles);
                    node.end_arg = Some(arg);
                    close_into(&mut tree, &mut stack, node);
                }
                EventKind::Mark(kind, a, b) => {
                    let mark = Mark {
                        cycles: event.cycles,
                        track: event.track,
                        kind,
                        a,
                        b,
                    };
                    match stack.last_mut() {
                        Some(top) => top.marks.push(mark),
                        None => tree.orphan_marks.push(mark),
                    }
                }
            }
        }
        // Whatever is still on the stack stayed open to end-of-trace.
        while let Some(node) = stack.pop() {
            tree.left_open += 1;
            close_into(&mut tree, &mut stack, node);
        }
        tree
    }

    /// Depth-first walk over every span, parents before children.
    pub fn walk(&self, mut visit: impl FnMut(&SpanNode, usize)) {
        fn go(node: &SpanNode, depth: usize, visit: &mut impl FnMut(&SpanNode, usize)) {
            visit(node, depth);
            for child in &node.children {
                go(child, depth + 1, visit);
            }
        }
        for root in &self.roots {
            go(root, 0, &mut visit);
        }
    }

    /// Total number of spans in the tree.
    pub fn span_count(&self) -> usize {
        let mut n = 0;
        self.walk(|_, _| n += 1);
        n
    }

    /// All marks in the tree plus orphans, in no particular order.
    pub fn all_marks(&self) -> Vec<Mark> {
        let mut marks = self.orphan_marks.clone();
        self.walk(|node, _| marks.extend(node.marks.iter().copied()));
        marks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::write_jsonl;

    fn sample() -> Vec<Event> {
        vec![
            Event::begin(0, Track::El1, SpanKind::Syscall, 57),
            Event::mark(2, Track::El1, PointKind::Hypercall, 3, 0),
            Event::begin(4, Track::El2, SpanKind::HypercallVerify, 3),
            Event::begin(5, Track::El2, SpanKind::Stage2Check, 0),
            Event::end(9, Track::El2, SpanKind::Stage2Check, 0),
            Event::end(12, Track::El2, SpanKind::HypercallVerify, 0),
            Event::end(20, Track::El1, SpanKind::Syscall, 0),
        ]
    }

    #[test]
    fn lossy_read_recovers_good_lines() {
        let good = write_jsonl(&sample());
        let mut corrupted = String::new();
        for (i, line) in good.lines().enumerate() {
            if i == 2 {
                corrupted.push_str("{\"cycles\": 4, \"track\": \"el2\", \"ty"); // truncated
            } else if i == 4 {
                corrupted.push_str("not json at all");
            } else {
                corrupted.push_str(line);
            }
            corrupted.push('\n');
        }
        let trace = read_jsonl_lossy(&corrupted);
        assert_eq!(trace.events.len(), sample().len() - 2);
        assert_eq!(trace.skipped, 2);
        assert_eq!(trace.skip_details.len(), 2);
        assert_eq!(trace.skip_details[0].0, 3); // 1-based line numbers
        assert_eq!(trace.skip_details[1].0, 5);
    }

    #[test]
    fn lossy_read_of_clean_trace_skips_nothing() {
        let trace = read_jsonl_lossy(&write_jsonl(&sample()));
        assert_eq!(trace.events, sample());
        assert_eq!(trace.skipped, 0);
        assert!(trace.skip_details.is_empty());
    }

    #[test]
    fn tree_nests_across_tracks() {
        let tree = SpanTree::build(&sample());
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.unmatched_ends, 0);
        assert_eq!(tree.left_open, 0);
        let syscall = &tree.roots[0];
        assert_eq!(syscall.kind, SpanKind::Syscall);
        assert_eq!(syscall.marks.len(), 1);
        assert_eq!(syscall.children.len(), 1);
        let verify = &syscall.children[0];
        assert_eq!(verify.kind, SpanKind::HypercallVerify);
        assert_eq!(verify.children[0].kind, SpanKind::Stage2Check);
        // syscall total 20, verify total 8 → syscall self 12.
        assert_eq!(syscall.total_cycles(tree.last_cycles), 20);
        assert_eq!(syscall.self_cycles(tree.last_cycles), 12);
        // verify total 8, inner check 4 → verify self 4.
        assert_eq!(verify.self_cycles(tree.last_cycles), 4);
    }

    #[test]
    fn aborted_span_stays_open_without_shearing_the_tree() {
        let events = vec![
            Event::begin(0, Track::El1, SpanKind::Syscall, 1),
            // An EL2 check whose End was lost (truncated capture).
            Event::begin(5, Track::El2, SpanKind::HypercallVerify, 2),
            Event::end(30, Track::El1, SpanKind::Syscall, 0),
            Event::begin(40, Track::El1, SpanKind::Syscall, 3),
            Event::end(50, Track::El1, SpanKind::Syscall, 0),
        ];
        let tree = SpanTree::build(&events);
        assert_eq!(tree.roots.len(), 2);
        assert_eq!(tree.implicitly_closed, 1);
        assert_eq!(tree.left_open, 0);
        let first = &tree.roots[0];
        assert_eq!(first.end, Some(30));
        // The aborted inner span was folded into the outer one, open.
        assert_eq!(first.children.len(), 1);
        assert_eq!(first.children[0].end, None);
        assert_eq!(tree.roots[1].begin, 40);
    }

    #[test]
    fn nested_same_kind_spans_pair_innermost_first() {
        // Mirrors the registry's pairing semantics: with identical
        // (track, kind), an End always closes the innermost Begin.
        let events = vec![
            Event::begin(0, Track::El1, SpanKind::Syscall, 1),
            Event::begin(5, Track::El1, SpanKind::Syscall, 2),
            Event::end(30, Track::El1, SpanKind::Syscall, 0),
            Event::end(90, Track::El1, SpanKind::Syscall, 0),
        ];
        let tree = SpanTree::build(&events);
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.roots[0].end, Some(90));
        assert_eq!(tree.roots[0].children[0].end, Some(30));
        assert_eq!(tree.implicitly_closed, 0);
    }

    #[test]
    fn unmatched_end_and_trailing_open_are_counted() {
        let events = vec![
            Event::end(3, Track::El2, SpanKind::Stage2Check, 0),
            Event::begin(10, Track::El1, SpanKind::MbmIrqService, 5),
        ];
        let tree = SpanTree::build(&events);
        assert_eq!(tree.unmatched_ends, 1);
        assert_eq!(tree.left_open, 1);
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.roots[0].end, None);
        assert_eq!(tree.roots[0].total_cycles(tree.last_cycles), 0);
    }

    #[test]
    fn marks_outside_spans_are_orphans() {
        let events = vec![
            Event::mark(1, Track::Mbm, PointKind::MbmFifoPush, 0x40, 7),
            Event::begin(2, Track::El1, SpanKind::Syscall, 0),
            Event::mark(3, Track::Mbm, PointKind::MbmWatchHit, 0x40, 7),
            Event::end(4, Track::El1, SpanKind::Syscall, 0),
        ];
        let tree = SpanTree::build(&events);
        assert_eq!(tree.orphan_marks.len(), 1);
        assert_eq!(tree.roots[0].marks.len(), 1);
        assert_eq!(tree.all_marks().len(), 2);
        assert_eq!(tree.span_count(), 1);
    }
}
