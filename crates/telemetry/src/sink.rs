//! The [`TelemetrySink`] trait and basic sink implementations.
//!
//! The simulation is single-threaded, so sinks are shared as
//! `Rc<RefCell<dyn TelemetrySink>>` ([`SharedSink`]). Instrumented
//! components hold an `Option<SharedSink>`; with `None` the emit helpers
//! reduce to one branch, which is what makes telemetry zero-cost when
//! disabled.

use crate::event::Event;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Receiver of telemetry events.
pub trait TelemetrySink {
    /// Records one event. Called on hot paths; implementations should be
    /// cheap and must not re-enter the emitting component.
    fn record(&mut self, event: &Event);
}

/// A sink shared across the machine, kernel, Hypersec, and the MBM.
pub type SharedSink = Rc<RefCell<dyn TelemetrySink>>;

/// Wraps a sink for sharing between components.
pub fn shared<S: TelemetrySink + 'static>(sink: S) -> SharedSink {
    Rc::new(RefCell::new(sink))
}

/// A bounded in-memory event buffer. When full, the oldest events are
/// evicted; [`RingSink::dropped`] reports how many, so exporters can
/// say "truncated" instead of silently pretending full coverage.
#[derive(Debug, Clone)]
pub struct RingSink {
    events: VecDeque<Event>,
    capacity: usize,
    recorded_total: u64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            events: VecDeque::with_capacity(capacity),
            capacity,
            recorded_total: 0,
        }
    }

    /// Events currently buffered, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Copies the buffered events out, oldest first.
    pub fn to_vec(&self) -> Vec<Event> {
        self.events.iter().copied().collect()
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing has been buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever recorded, including evicted ones.
    pub fn recorded_total(&self) -> u64 {
        self.recorded_total
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.recorded_total - self.events.len() as u64
    }
}

impl TelemetrySink for RingSink {
    fn record(&mut self, event: &Event) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(*event);
        self.recorded_total += 1;
    }
}

/// Forwards each event to several sinks (e.g. a ring for export plus a
/// registry for histograms).
#[derive(Default)]
pub struct FanoutSink {
    sinks: Vec<SharedSink>,
}

impl FanoutSink {
    /// An empty fan-out.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a downstream sink and returns `self` for chaining.
    pub fn with(mut self, sink: SharedSink) -> Self {
        self.sinks.push(sink);
        self
    }
}

impl TelemetrySink for FanoutSink {
    fn record(&mut self, event: &Event) {
        for sink in &self.sinks {
            sink.borrow_mut().record(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{PointKind, Track};

    fn mark(cycles: u64) -> Event {
        Event::mark(cycles, Track::El1, PointKind::Wfi, 0, 0)
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut ring = RingSink::new(3);
        for i in 0..5 {
            ring.record(&mark(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.recorded_total(), 5);
        assert_eq!(ring.dropped(), 2);
        let cycles: Vec<u64> = ring.events().map(|e| e.cycles).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn ring_under_capacity_drops_nothing() {
        let mut ring = RingSink::new(8);
        ring.record(&mark(1));
        ring.record(&mark(2));
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.to_vec().len(), 2);
    }

    #[test]
    fn fanout_reaches_every_sink() {
        let a = Rc::new(RefCell::new(RingSink::new(4)));
        let b = Rc::new(RefCell::new(RingSink::new(4)));
        let a_dyn: SharedSink = a.clone();
        let b_dyn: SharedSink = b.clone();
        let mut fan = FanoutSink::new().with(a_dyn).with(b_dyn);
        fan.record(&mark(7));
        assert_eq!(a.borrow().len(), 1);
        assert_eq!(b.borrow().len(), 1);
    }
}
