//! Robustness of the analysis-side ingestion paths: corrupted trace
//! files must not abort a read, and ring-buffer eviction must stay
//! honest when it splits a begin/end pair.

use hypernel_telemetry::export::{parse_jsonl, write_jsonl};
use hypernel_telemetry::reader::read_jsonl_lossy;
use hypernel_telemetry::{
    Event, PointKind, RingSink, SpanKind, SpanTree, Telemetry, TelemetrySink, Track,
};

fn span_pair(base: u64) -> [Event; 2] {
    [
        Event::begin(base, Track::El2, SpanKind::HypercallVerify, 1),
        Event::end(base + 10, Track::El2, SpanKind::HypercallVerify, 0),
    ]
}

#[test]
fn corrupted_trace_file_reads_lossy_but_not_strict() {
    let mut events = Vec::new();
    for i in 0..50u64 {
        events.extend(span_pair(i * 100));
    }
    let clean = write_jsonl(&events);

    // Corrupt the file the way real captures break: a line truncated
    // mid-write (crashed run), a line of garbage, and a well-formed JSON
    // object that is not an event.
    let mut corrupted = String::new();
    for (i, line) in clean.lines().enumerate() {
        match i {
            10 => corrupted.push_str(&line[..line.len() / 2]),
            20 => corrupted.push_str("\u{0}\u{0}garbage\u{0}"),
            30 => corrupted.push_str("{\"cycles\": 1, \"unrelated\": true}"),
            _ => corrupted.push_str(line),
        }
        corrupted.push('\n');
    }

    let path = std::env::temp_dir().join("hypernel-telemetry-corrupted-trace.jsonl");
    std::fs::write(&path, &corrupted).expect("write temp trace");
    let read_back = std::fs::read_to_string(&path).expect("read temp trace");
    let _ = std::fs::remove_file(&path);

    // The strict parser (round-trip contract) refuses…
    assert!(parse_jsonl(&read_back).is_err());

    // …the lossy reader recovers everything else and counts the damage.
    let trace = read_jsonl_lossy(&read_back);
    assert_eq!(trace.events.len(), events.len() - 3);
    assert_eq!(trace.skipped, 3);
    assert_eq!(
        trace
            .skip_details
            .iter()
            .map(|(l, _)| *l)
            .collect::<Vec<_>>(),
        vec![11, 21, 31]
    );

    // The recovered stream is still analyzable: the three broken lines
    // split at most three begin/end pairs.
    let tree = SpanTree::build(&trace.events);
    assert!(tree.span_count() >= events.len() / 2 - 3);
    assert!(tree.unmatched_ends + tree.left_open <= 3);
}

#[test]
fn ring_overflow_mid_span_keeps_unmatched_ends_honest() {
    // Capacity 8: one span begin, then enough marks to evict it, then
    // the end. The exported window now contains an End with no Begin.
    let mut ring = RingSink::new(8);
    ring.record(&Event::begin(0, Track::El1, SpanKind::Syscall, 7));
    for i in 0..10u64 {
        ring.record(&Event::mark(1 + i, Track::El1, PointKind::Wfi, 0, 0));
    }
    ring.record(&Event::end(100, Track::El1, SpanKind::Syscall, 0));

    assert_eq!(ring.len(), 8);
    assert_eq!(ring.recorded_total(), 12);
    assert_eq!(ring.dropped(), 4);

    // Replaying the surviving window into an aggregator must report the
    // orphaned End rather than inventing a latency for it.
    let mut registry = Telemetry::new();
    for event in ring.to_vec() {
        registry.record(&event);
    }
    assert_eq!(registry.unmatched_ends(), 1);
    assert!(registry.histogram(Track::El1, SpanKind::Syscall).is_none());

    // The tree builder reaches the same verdict from the same window.
    let tree = SpanTree::build(&ring.to_vec());
    assert_eq!(tree.unmatched_ends, 1);
    assert_eq!(tree.span_count(), 0);
}

#[test]
fn ring_overflow_dropping_the_end_leaves_the_span_open() {
    // Mirror case: the Begin survives, the End was never recorded
    // because the run stopped. Nothing should pair.
    let mut ring = RingSink::new(4);
    ring.record(&Event::begin(0, Track::El2, SpanKind::MbmDrain, 3));
    ring.record(&Event::mark(1, Track::Mbm, PointKind::MbmFifoPush, 0x40, 1));
    let mut registry = Telemetry::new();
    for event in ring.to_vec() {
        registry.record(&event);
    }
    assert_eq!(registry.open_span_count(), 1);
    assert_eq!(registry.unmatched_ends(), 0);
    let tree = SpanTree::build(&ring.to_vec());
    assert_eq!(tree.left_open, 1);
}
