//! Property-based tests for the machine substrate: the page-table
//! walker against a reference model, TLB/translation consistency, cache
//! write-back correctness, and bus visibility rules.

use std::collections::HashMap;

use hypernel_machine::addr::{PhysAddr, VirtAddr, PAGE_SIZE};
use hypernel_machine::cache::{CachePlan, DataCache};
use hypernel_machine::machine::{Machine, MachineConfig, NullHyp};
use hypernel_machine::mem::PhysMemory;
use hypernel_machine::pagetable::{
    apply_entry_write, plan_map, plan_protect, plan_unmap, walk, PagePerms, WalkFault,
};
use hypernel_machine::regs::{sctlr, ExceptionLevel, SysReg};
use proptest::prelude::*;

const ROOT: u64 = 0x10_0000;
const TABLE_POOL: u64 = 0x20_0000;
const FRAME_POOL: u64 = 0x100_0000;

fn arb_perms() -> impl Strategy<Value = PagePerms> {
    (any::<bool>(), any::<bool>(), any::<bool>()).prop_map(|(write, user, cacheable)| PagePerms {
        write,
        // Keep W^X honest in generated mappings (exec only when !write).
        exec: !write,
        user,
        cacheable,
    })
}

/// A random sequence of map/unmap/protect operations against one table,
/// mirrored into a `HashMap` reference model, must agree with the walker
/// on every probed address.
#[derive(Debug, Clone)]
enum PtOp {
    Map {
        slot: u8,
        frame: u8,
        perms: PagePerms,
    },
    Unmap {
        slot: u8,
    },
    Protect {
        slot: u8,
        perms: PagePerms,
    },
}

fn arb_op() -> impl Strategy<Value = PtOp> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), arb_perms()).prop_map(|(slot, frame, perms)| PtOp::Map {
            slot,
            frame,
            perms
        }),
        any::<u8>().prop_map(|slot| PtOp::Unmap { slot }),
        (any::<u8>(), arb_perms()).prop_map(|(slot, perms)| PtOp::Protect { slot, perms }),
    ]
}

fn slot_va(slot: u8) -> u64 {
    // Spread slots across several L2/L3 tables so intermediate-table
    // allocation paths are exercised.
    (0x4000_0000 + (slot as u64) * 0x40_3000) & !(PAGE_SIZE - 1)
}

fn frame_pa(frame: u8) -> PhysAddr {
    PhysAddr::new(FRAME_POOL + frame as u64 * PAGE_SIZE)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn walker_matches_reference_model(ops in prop::collection::vec(arb_op(), 1..60)) {
        let mut mem = PhysMemory::new(64 << 20);
        let root = PhysAddr::new(ROOT);
        let mut next_table = TABLE_POOL;
        let mut model: HashMap<u64, (PhysAddr, PagePerms)> = HashMap::new();

        for op in &ops {
            match *op {
                PtOp::Map { slot, frame, perms } => {
                    let va = slot_va(slot);
                    let pa = frame_pa(frame);
                    let plan = plan_map(&mut mem, root, va, pa, perms, 3, &mut || {
                        let t = next_table;
                        next_table += PAGE_SIZE;
                        Some(PhysAddr::new(t))
                    }).expect("maps at level 3 never hit blocks here");
                    for w in &plan.writes {
                        apply_entry_write(&mut mem, *w);
                    }
                    model.insert(va, (pa, perms));
                }
                PtOp::Unmap { slot } => {
                    let va = slot_va(slot);
                    let write = plan_unmap(&mut mem, root, va);
                    prop_assert_eq!(write.is_some(), model.contains_key(&va));
                    if let Some(w) = write {
                        apply_entry_write(&mut mem, w);
                    }
                    model.remove(&va);
                }
                PtOp::Protect { slot, perms } => {
                    let va = slot_va(slot);
                    let write = plan_protect(&mut mem, root, va, perms);
                    prop_assert_eq!(write.is_some(), model.contains_key(&va));
                    if let Some(w) = write {
                        apply_entry_write(&mut mem, w);
                        let pa = model[&va].0;
                        model.insert(va, (pa, perms));
                    }
                }
            }
        }

        // Every model entry walks to the right output with the right
        // permissions; every non-entry faults.
        for slot in 0..=255u8 {
            let va = slot_va(slot);
            match (walk(&mut mem, root, va + 0x128), model.get(&va)) {
                (Ok(res), Some(&(pa, perms))) => {
                    prop_assert_eq!(res.out, pa.add(0x128));
                    prop_assert_eq!(res.perms, perms);
                    prop_assert_eq!(res.level, 3);
                    prop_assert_eq!(res.accesses.len(), 4);
                }
                (Err(WalkFault::Translation { .. }), None) => {}
                (got, want) => prop_assert!(false, "walk mismatch at {va:#x}: {got:?} vs {want:?}"),
            }
        }
    }

    /// Data written through translated stores is always read back
    /// identically (through the cache hierarchy, across random TLB and
    /// cache maintenance).
    #[test]
    fn translated_memory_is_coherent(
        writes in prop::collection::vec((0u8..32, any::<u64>()), 1..64),
        flush_points in prop::collection::vec(any::<bool>(), 64),
    ) {
        let mut m = Machine::new(MachineConfig {
            dram_size: 64 << 20,
            ..MachineConfig::default()
        });
        let root = PhysAddr::new(ROOT);
        let mut next_table = TABLE_POOL;
        for page in 0..32u64 {
            let plan = plan_map(
                m.mem_mut(),
                root,
                0x10_0000 + page * PAGE_SIZE,
                PhysAddr::new(FRAME_POOL + page * PAGE_SIZE),
                // Odd pages non-cacheable: both paths must stay coherent.
                if page % 2 == 0 { PagePerms::KERNEL_DATA } else { PagePerms::KERNEL_DATA_NC },
                3,
                &mut || {
                    let t = next_table;
                    next_table += PAGE_SIZE;
                    Some(PhysAddr::new(t))
                },
            ).expect("plan");
            for w in &plan.writes {
                apply_entry_write(m.mem_mut(), *w);
            }
        }
        m.el2_write_sysreg(SysReg::TTBR0_EL1, ROOT);
        m.el2_write_sysreg(SysReg::TTBR1_EL1, ROOT);
        m.el2_write_sysreg(SysReg::SCTLR_EL1, sctlr::M);
        m.set_el(ExceptionLevel::El1);
        let mut hyp = NullHyp;

        let mut model: HashMap<u64, u64> = HashMap::new();
        for (i, (page, value)) in writes.iter().enumerate() {
            let va = VirtAddr::new(0x10_0000 + *page as u64 * PAGE_SIZE + 0x18);
            m.write_u64(va, *value, &mut hyp).expect("write");
            model.insert(va.raw(), *value);
            if flush_points[i % flush_points.len()] {
                m.tlbi_all();
            }
            if i % 7 == 0 {
                m.cache_clean_invalidate_page(PhysAddr::new(FRAME_POOL + *page as u64 * PAGE_SIZE));
            }
        }
        for (va, value) in &model {
            prop_assert_eq!(
                m.read_u64(VirtAddr::new(*va), &mut hyp).expect("read"),
                *value
            );
            // The debug (cache-coherent physical) view agrees.
            let pa = PhysAddr::new(FRAME_POOL + (*va - 0x10_0000));
            prop_assert_eq!(m.debug_read_phys(pa), *value);
        }
    }

    /// The write-back cache never loses or corrupts data: random probe /
    /// install / write / maintenance sequences, checked against a model.
    #[test]
    fn cache_is_a_faithful_store(
        ops in prop::collection::vec((0u16..256, any::<u64>(), any::<bool>()), 1..200),
    ) {
        let mut cache = DataCache::new(8, 2);
        let mut backing: HashMap<u64, u64> = HashMap::new(); // "DRAM"
        let mut model: HashMap<u64, u64> = HashMap::new();   // truth

        for (word, value, maintain) in ops {
            let addr = PhysAddr::new(word as u64 * 8);
            if maintain {
                for ev in cache.clean_invalidate_page(addr) {
                    for (i, w) in ev.data.iter().enumerate() {
                        backing.insert(ev.addr.raw() + i as u64 * 8, *w);
                    }
                }
            } else {
                match cache.probe(addr) {
                    CachePlan::Hit => {}
                    CachePlan::Refill { line, evict } => {
                        if let Some(ev) = evict {
                            for (i, w) in ev.data.iter().enumerate() {
                                backing.insert(ev.addr.raw() + i as u64 * 8, *w);
                            }
                        }
                        let mut data = [0u64; 8];
                        for (i, slot) in data.iter_mut().enumerate() {
                            *slot = backing.get(&(line.raw() + i as u64 * 8)).copied().unwrap_or(0);
                        }
                        cache.install(line, data);
                    }
                }
                cache.write_word(addr, value);
                model.insert(addr.raw(), value);
            }
        }
        // Flush everything; DRAM must now equal the model.
        for ev in cache.clean_invalidate_all() {
            for (i, w) in ev.data.iter().enumerate() {
                backing.insert(ev.addr.raw() + i as u64 * 8, *w);
            }
        }
        for (addr, value) in &model {
            prop_assert_eq!(backing.get(addr).copied().unwrap_or(0), *value);
        }
    }

    /// Non-cacheable stores are always immediately bus-visible; cacheable
    /// stores never are (until eviction).
    #[test]
    fn bus_visibility_follows_cacheability(pages in prop::collection::vec(any::<bool>(), 1..40)) {
        let mut m = Machine::new(MachineConfig {
            dram_size: 64 << 20,
            ..MachineConfig::default()
        });
        let root = PhysAddr::new(ROOT);
        let mut next_table = TABLE_POOL;
        for (i, nc) in pages.iter().enumerate() {
            let plan = plan_map(
                m.mem_mut(),
                root,
                0x10_0000 + i as u64 * PAGE_SIZE,
                PhysAddr::new(FRAME_POOL + i as u64 * PAGE_SIZE),
                if *nc { PagePerms::KERNEL_DATA_NC } else { PagePerms::KERNEL_DATA },
                3,
                &mut || {
                    let t = next_table;
                    next_table += PAGE_SIZE;
                    Some(PhysAddr::new(t))
                },
            ).expect("plan");
            for w in &plan.writes {
                apply_entry_write(m.mem_mut(), *w);
            }
        }
        m.el2_write_sysreg(SysReg::TTBR0_EL1, ROOT);
        m.el2_write_sysreg(SysReg::TTBR1_EL1, ROOT);
        m.el2_write_sysreg(SysReg::SCTLR_EL1, sctlr::M);
        m.set_el(ExceptionLevel::El1);
        let mut hyp = NullHyp;

        for (i, nc) in pages.iter().enumerate() {
            let va = VirtAddr::new(0x10_0000 + i as u64 * PAGE_SIZE);
            // Warm the line so cacheable writes are pure hits.
            m.read_u64(va, &mut hyp).expect("warm");
            let writes_before = m.bus().writes();
            m.write_u64(va, 0xC0FFEE, &mut hyp).expect("write");
            let delta = m.bus().writes() - writes_before;
            if *nc {
                prop_assert_eq!(delta, 1, "NC store must hit the bus");
            } else {
                prop_assert_eq!(delta, 0, "cached store must stay silent");
            }
        }
    }
}
