//! Host-side fast-path switch.
//!
//! Several structures keep a *host* fast path in front of their model —
//! the L0 micro-TLB, the MBM watch-page filter, bulk block accesses,
//! warm-boot system cloning. All of them are contractually invisible to
//! the simulation: simulated cycles, statistics that serialize into
//! artifacts, and every model-visible side effect are byte-identical
//! with the fast paths on or off. `HYPERNEL_NO_FASTPATH=1` force-
//! disables all of them at once, which is how CI proves the contract
//! (`diff` of `campaign.jsonl` with the paths on vs off).
//!
//! The environment is read once per process; tests that need both
//! behaviors in one process use the per-structure setters instead
//! (e.g. [`crate::tlb::Tlb::set_l0_enabled`]).

use std::sync::OnceLock;

/// Whether host fast paths are enabled for this process (the default).
/// Set `HYPERNEL_NO_FASTPATH=1` to force every consumer onto its
/// reference path.
pub fn fastpath_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var("HYPERNEL_NO_FASTPATH") {
        Ok(v) => v.is_empty() || v == "0",
        Err(_) => true,
    })
}
