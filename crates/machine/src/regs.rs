//! System registers and exception levels.
//!
//! Only the registers the Hypernel design actually manipulates are
//! modeled (paper §3, §6.1): the EL1 translation-control group that
//! `HCR_EL2.TVM` traps, plus the EL2 configuration Hypersec initializes
//! during boot.

/// AArch64 exception levels (paper Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ExceptionLevel {
    /// User applications.
    El0,
    /// The OS kernel.
    El1,
    /// The hypervisor / Hypersec secure space.
    El2,
}

impl std::fmt::Display for ExceptionLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::El0 => write!(f, "EL0"),
            Self::El1 => write!(f, "EL1"),
            Self::El2 => write!(f, "EL2"),
        }
    }
}

/// System registers whose writes can be trapped or that configure
/// translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(non_camel_case_types)]
pub enum SysReg {
    /// Stage-1 table base for the lower (user) VA half.
    TTBR0_EL1,
    /// Stage-1 table base for the upper (kernel) VA half.
    TTBR1_EL1,
    /// EL1 system control (MMU enable bit, among others).
    SCTLR_EL1,
    /// EL1 translation control.
    TCR_EL1,
    /// EL1 memory attribute indirection.
    MAIR_EL1,
    /// EL1 exception vector base.
    VBAR_EL1,
    /// Hypervisor configuration (TVM bit etc.). EL2-only.
    HCR_EL2,
    /// Stage-2 table base. EL2-only.
    VTTBR_EL2,
    /// EL2 stage-1 (Hypersec's own) table base. EL2-only.
    TTBR0_EL2,
    /// EL2 exception vector base. EL2-only.
    VBAR_EL2,
    /// EL2 stack pointer. EL2-only.
    SP_EL2,
}

impl SysReg {
    /// Registers in the "virtual memory" group trapped by `HCR_EL2.TVM`
    /// (the paper's §5.2.2 / §6.1 mechanism).
    pub fn is_vm_group(self) -> bool {
        matches!(
            self,
            Self::TTBR0_EL1 | Self::TTBR1_EL1 | Self::SCTLR_EL1 | Self::TCR_EL1 | Self::MAIR_EL1
        )
    }

    /// Registers only writable from EL2.
    pub fn is_el2_only(self) -> bool {
        matches!(
            self,
            Self::HCR_EL2 | Self::VTTBR_EL2 | Self::TTBR0_EL2 | Self::VBAR_EL2 | Self::SP_EL2
        )
    }

    /// Registers whose value participates in address translation — a
    /// write to any of them invalidates the L0 micro-TLB (the
    /// architectural TLB is tagged and keyed, so it survives).
    pub fn affects_translation(self) -> bool {
        matches!(
            self,
            Self::TTBR0_EL1
                | Self::TTBR1_EL1
                | Self::SCTLR_EL1
                | Self::TCR_EL1
                | Self::MAIR_EL1
                | Self::HCR_EL2
                | Self::VTTBR_EL2
                | Self::TTBR0_EL2
        )
    }
}

impl std::fmt::Display for SysReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Bit definitions for [`SysReg::HCR_EL2`].
pub mod hcr {
    /// Trap writes to virtual-memory control registers to EL2.
    pub const TVM: u64 = 1 << 26;
    /// Enable stage-2 translation (nested paging).
    pub const VM: u64 = 1 << 0;
}

/// Bit definitions for [`SysReg::SCTLR_EL1`].
pub mod sctlr {
    /// Stage-1 MMU enable.
    pub const M: u64 = 1 << 0;
}

/// The architectural system-register file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SysRegs {
    ttbr0_el1: u64,
    ttbr1_el1: u64,
    sctlr_el1: u64,
    tcr_el1: u64,
    mair_el1: u64,
    vbar_el1: u64,
    hcr_el2: u64,
    vttbr_el2: u64,
    ttbr0_el2: u64,
    vbar_el2: u64,
    sp_el2: u64,
}

impl SysRegs {
    /// Creates a register file with everything zeroed (MMU off, no traps).
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a register's raw value.
    pub fn read(&self, reg: SysReg) -> u64 {
        match reg {
            SysReg::TTBR0_EL1 => self.ttbr0_el1,
            SysReg::TTBR1_EL1 => self.ttbr1_el1,
            SysReg::SCTLR_EL1 => self.sctlr_el1,
            SysReg::TCR_EL1 => self.tcr_el1,
            SysReg::MAIR_EL1 => self.mair_el1,
            SysReg::VBAR_EL1 => self.vbar_el1,
            SysReg::HCR_EL2 => self.hcr_el2,
            SysReg::VTTBR_EL2 => self.vttbr_el2,
            SysReg::TTBR0_EL2 => self.ttbr0_el2,
            SysReg::VBAR_EL2 => self.vbar_el2,
            SysReg::SP_EL2 => self.sp_el2,
        }
    }

    /// Writes a register's raw value. This is the *architectural* write —
    /// trap checking happens in the machine front-end before it reaches
    /// here.
    pub fn write(&mut self, reg: SysReg, value: u64) {
        match reg {
            SysReg::TTBR0_EL1 => self.ttbr0_el1 = value,
            SysReg::TTBR1_EL1 => self.ttbr1_el1 = value,
            SysReg::SCTLR_EL1 => self.sctlr_el1 = value,
            SysReg::TCR_EL1 => self.tcr_el1 = value,
            SysReg::MAIR_EL1 => self.mair_el1 = value,
            SysReg::VBAR_EL1 => self.vbar_el1 = value,
            SysReg::HCR_EL2 => self.hcr_el2 = value,
            SysReg::VTTBR_EL2 => self.vttbr_el2 = value,
            SysReg::TTBR0_EL2 => self.ttbr0_el2 = value,
            SysReg::VBAR_EL2 => self.vbar_el2 = value,
            SysReg::SP_EL2 => self.sp_el2 = value,
        }
    }

    /// Is the EL1 stage-1 MMU enabled?
    pub fn stage1_enabled(&self) -> bool {
        self.sctlr_el1 & sctlr::M != 0
    }

    /// Is stage-2 (nested paging) enabled?
    pub fn stage2_enabled(&self) -> bool {
        self.hcr_el2 & hcr::VM != 0
    }

    /// Are VM-register writes from EL1 trapped to EL2?
    pub fn tvm_enabled(&self) -> bool {
        self.hcr_el2 & hcr::TVM != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip_every_register() {
        let regs = [
            SysReg::TTBR0_EL1,
            SysReg::TTBR1_EL1,
            SysReg::SCTLR_EL1,
            SysReg::TCR_EL1,
            SysReg::MAIR_EL1,
            SysReg::VBAR_EL1,
            SysReg::HCR_EL2,
            SysReg::VTTBR_EL2,
            SysReg::TTBR0_EL2,
            SysReg::VBAR_EL2,
            SysReg::SP_EL2,
        ];
        let mut file = SysRegs::new();
        for (i, r) in regs.iter().enumerate() {
            file.write(*r, 0x1000 + i as u64);
        }
        for (i, r) in regs.iter().enumerate() {
            assert_eq!(file.read(*r), 0x1000 + i as u64, "register {r}");
        }
    }

    #[test]
    fn vm_group_membership() {
        assert!(SysReg::TTBR1_EL1.is_vm_group());
        assert!(SysReg::SCTLR_EL1.is_vm_group());
        assert!(!SysReg::VBAR_EL1.is_vm_group());
        assert!(!SysReg::HCR_EL2.is_vm_group());
    }

    #[test]
    fn el2_only_membership() {
        assert!(SysReg::HCR_EL2.is_el2_only());
        assert!(SysReg::SP_EL2.is_el2_only());
        assert!(!SysReg::TTBR0_EL1.is_el2_only());
    }

    #[test]
    fn feature_bits() {
        let mut file = SysRegs::new();
        assert!(!file.stage1_enabled());
        assert!(!file.stage2_enabled());
        assert!(!file.tvm_enabled());
        file.write(SysReg::SCTLR_EL1, sctlr::M);
        file.write(SysReg::HCR_EL2, hcr::VM | hcr::TVM);
        assert!(file.stage1_enabled());
        assert!(file.stage2_enabled());
        assert!(file.tvm_enabled());
    }

    #[test]
    fn exception_level_ordering() {
        assert!(ExceptionLevel::El0 < ExceptionLevel::El1);
        assert!(ExceptionLevel::El1 < ExceptionLevel::El2);
        assert_eq!(ExceptionLevel::El2.to_string(), "EL2");
    }
}
