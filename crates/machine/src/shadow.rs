//! Guest-memory ownership sanitizer: a shadow tag per physical page
//! with a writer/tag policy matrix checked on CPU and DMA stores.
//!
//! This is the KASAN-style half of `hypernel-audit` (the other half is
//! the static page-table walker in the `hypernel-audit` crate). Every
//! DRAM page carries one [`PageTag`] describing who *owns* it; the
//! kernel maintains the tags at its allocation/mapping sites and the
//! machine consults a [`TagPolicy`] on every store performed through
//! [`crate::Machine`]'s access chokepoint. A denied combination does
//! not abort the access — the simulated hardware has no such trap —
//! it records a typed [`TagViolation`] so silent corruption becomes a
//! diagnostic.
//!
//! Checks happen where the *writer identity* is still known: at the
//! CPU's physical-access chokepoint (`Machine::perform`) and at the
//! DMA entry point, not on raw bus transactions. Cache write-backs
//! carry no provenance (a line dirtied at EL1 may be evicted during an
//! EL2 access), so checking bus `WriteLine`/`WriteWord` traffic would
//! misattribute writers; see `docs/AUDIT.md` for the full rationale.
//!
//! The sanitizer is off by default, charges **zero simulated cycles**,
//! and never changes architectural state — enabling it leaves every
//! simulated result byte-identical.

use crate::addr::PhysAddr;
use crate::addr::PAGE_SIZE;

/// Ownership class of one physical page.
///
/// The lattice from the paper discussion plus `KernelData`, which the
/// issue's list folds into "everything else" but which we keep distinct
/// so the EL0 policy can separate kernel heap from user-mapped frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum PageTag {
    /// Unallocated (or freed) frame-pool memory.
    Free = 0,
    /// Kernel image text/rodata.
    KernelText = 1,
    /// Kernel heap: slabs, stacks, page cache, file data, pipe buffers.
    KernelData = 2,
    /// A live stage-1 translation table page.
    PageTable = 3,
    /// The Hypersec-owned secure region (private heap included).
    SecureRegion = 4,
    /// Device-owned storage (MBM bitmap + event ring).
    Mmio = 5,
    /// A frame currently mapped into some user address space.
    UserData = 6,
}

/// Number of distinct [`PageTag`] values (for policy matrices).
pub const TAG_COUNT: usize = 7;

impl PageTag {
    /// Stable lower-case name, used in diagnostics and JSON.
    pub fn name(self) -> &'static str {
        match self {
            PageTag::Free => "free",
            PageTag::KernelText => "kernel-text",
            PageTag::KernelData => "kernel-data",
            PageTag::PageTable => "page-table",
            PageTag::SecureRegion => "secure-region",
            PageTag::Mmio => "mmio",
            PageTag::UserData => "user-data",
        }
    }

    fn from_index(i: u8) -> Self {
        match i {
            1 => PageTag::KernelText,
            2 => PageTag::KernelData,
            3 => PageTag::PageTable,
            4 => PageTag::SecureRegion,
            5 => PageTag::Mmio,
            6 => PageTag::UserData,
            _ => PageTag::Free,
        }
    }
}

/// Who performed a store, as known at the access chokepoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Writer {
    /// A user-mode store (EL0).
    El0 = 0,
    /// A kernel-mode store (EL1).
    El1 = 1,
    /// A hypervisor store (EL2).
    El2 = 2,
    /// A device write that bypasses the MMU and caches.
    Dma = 3,
}

/// Number of distinct [`Writer`] values.
pub const WRITER_COUNT: usize = 4;

impl Writer {
    /// Stable lower-case name, used in diagnostics and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Writer::El0 => "el0",
            Writer::El1 => "el1",
            Writer::El2 => "el2",
            Writer::Dma => "dma",
        }
    }
}

/// Writer × tag allow-matrix.
#[derive(Clone, Debug)]
pub struct TagPolicy {
    allow: [[bool; TAG_COUNT]; WRITER_COUNT],
}

impl TagPolicy {
    /// The strict Hypernel policy: the kernel owns its heap and may
    /// copy to user frames, but never touches page tables (those are
    /// edited only by Hypersec at EL2), text, device storage, the
    /// secure region, or freed frames. EL0 writes only user frames.
    /// EL2 is trusted everywhere; DMA reaches only user/kernel data.
    pub fn hypernel() -> Self {
        let mut allow = [[false; TAG_COUNT]; WRITER_COUNT];
        allow[Writer::El0 as usize][PageTag::UserData as usize] = true;
        for tag in [PageTag::KernelData, PageTag::UserData] {
            allow[Writer::El1 as usize][tag as usize] = true;
            allow[Writer::Dma as usize][tag as usize] = true;
        }
        allow[Writer::El2 as usize] = [true; TAG_COUNT];
        Self { allow }
    }

    /// The native/KVM policy: identical to [`TagPolicy::hypernel`]
    /// except that EL1 may also write live page-table pages — an
    /// unprotected kernel edits its own stage-1 tables directly.
    pub fn native() -> Self {
        let mut policy = Self::hypernel();
        policy.allow[Writer::El1 as usize][PageTag::PageTable as usize] = true;
        policy
    }

    /// Whether `writer` may store to a page tagged `tag`.
    pub fn allows(&self, writer: Writer, tag: PageTag) -> bool {
        self.allow[writer as usize][tag as usize]
    }
}

/// One denied store, recorded with everything needed for a diagnosis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TagViolation {
    /// Who stored.
    pub writer: Writer,
    /// Where (word-aligned physical address).
    pub pa: PhysAddr,
    /// The value stored.
    pub value: u64,
    /// The ownership tag of the target page at the time of the store.
    pub tag: PageTag,
}

impl std::fmt::Display for TagViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} store of {:#x} to {} page at {}",
            self.writer.name(),
            self.value,
            self.tag.name(),
            self.pa
        )
    }
}

/// Cap on retained [`TagViolation`] records; further denials only
/// bump the counters (the log stays bounded under a write storm).
pub const MAX_VIOLATIONS: usize = 64;

/// Monotonic sanitizer counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShadowStats {
    /// Stores checked against the policy.
    pub checked: u64,
    /// Stores the policy denied (including those past the log cap).
    pub denied: u64,
    /// Pages (re)tagged by maintenance calls.
    pub retags: u64,
}

/// The shadow-tag store: one [`PageTag`] per DRAM page plus the
/// policy, a bounded violation log, and counters.
#[derive(Clone, Debug)]
pub struct ShadowTags {
    tags: Vec<u8>,
    policy: TagPolicy,
    violations: Vec<TagViolation>,
    stats: ShadowStats,
}

impl ShadowTags {
    /// Creates a store covering `dram_size` bytes, all pages `Free`.
    pub fn new(dram_size: u64, policy: TagPolicy) -> Self {
        let pages = (dram_size / PAGE_SIZE) as usize;
        Self {
            tags: vec![PageTag::Free as u8; pages],
            policy,
            violations: Vec::new(),
            stats: ShadowStats::default(),
        }
    }

    /// Tags the page containing `pa`.
    pub fn tag_page(&mut self, pa: PhysAddr, tag: PageTag) {
        let idx = pa.page_index() as usize;
        if let Some(slot) = self.tags.get_mut(idx) {
            *slot = tag as u8;
            self.stats.retags += 1;
        }
    }

    /// Tags every page of `[base, base + len)`.
    pub fn tag_range(&mut self, base: PhysAddr, len: u64, tag: PageTag) {
        let mut pa = base.page_base();
        let end = base.raw() + len;
        while pa.raw() < end {
            self.tag_page(pa, tag);
            pa = pa.add(PAGE_SIZE);
        }
    }

    /// The current tag of the page containing `pa` (`Free` if out of
    /// range).
    pub fn tag_of(&self, pa: PhysAddr) -> PageTag {
        self.tags
            .get(pa.page_index() as usize)
            .map_or(PageTag::Free, |&t| PageTag::from_index(t))
    }

    /// Checks one store against the policy, recording a violation on
    /// denial. Zero simulated cycles; never blocks the access.
    pub fn check_write(&mut self, writer: Writer, pa: PhysAddr, value: u64) {
        self.stats.checked += 1;
        let tag = self.tag_of(pa);
        if self.policy.allows(writer, tag) {
            return;
        }
        self.stats.denied += 1;
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(TagViolation {
                writer,
                pa,
                value,
                tag,
            });
        }
    }

    /// The recorded violations (bounded by [`MAX_VIOLATIONS`]).
    pub fn violations(&self) -> &[TagViolation] {
        &self.violations
    }

    /// Drains the violation log, leaving counters intact.
    pub fn take_violations(&mut self) -> Vec<TagViolation> {
        std::mem::take(&mut self.violations)
    }

    /// Sanitizer counters.
    pub fn stats(&self) -> ShadowStats {
        self.stats
    }

    /// The active policy.
    pub fn policy(&self) -> &TagPolicy {
        &self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypernel_policy_matrix() {
        let p = TagPolicy::hypernel();
        assert!(p.allows(Writer::El1, PageTag::KernelData));
        assert!(p.allows(Writer::El1, PageTag::UserData));
        assert!(!p.allows(Writer::El1, PageTag::PageTable));
        assert!(!p.allows(Writer::El1, PageTag::KernelText));
        assert!(!p.allows(Writer::El1, PageTag::SecureRegion));
        assert!(!p.allows(Writer::El1, PageTag::Free));
        assert!(!p.allows(Writer::El0, PageTag::KernelData));
        assert!(p.allows(Writer::El0, PageTag::UserData));
        assert!(p.allows(Writer::El2, PageTag::SecureRegion));
        assert!(!p.allows(Writer::Dma, PageTag::PageTable));
        assert!(p.allows(Writer::Dma, PageTag::UserData));
    }

    #[test]
    fn native_policy_allows_el1_pt_edits() {
        let p = TagPolicy::native();
        assert!(p.allows(Writer::El1, PageTag::PageTable));
        assert!(!p.allows(Writer::El1, PageTag::KernelText));
    }

    #[test]
    fn violations_are_recorded_and_capped() {
        let mut s = ShadowTags::new(1 << 20, TagPolicy::hypernel());
        let pa = PhysAddr::new(0x3000);
        s.tag_page(pa, PageTag::PageTable);
        assert_eq!(s.tag_of(pa), PageTag::PageTable);
        for i in 0..(MAX_VIOLATIONS as u64 + 8) {
            s.check_write(Writer::El1, pa.add(8 * (i % 16)), i);
        }
        assert_eq!(s.violations().len(), MAX_VIOLATIONS);
        assert_eq!(s.stats().denied, MAX_VIOLATIONS as u64 + 8);
        s.check_write(Writer::El1, pa, 7); // allowed? no — still denied
        assert_eq!(s.stats().checked, MAX_VIOLATIONS as u64 + 9);
        let drained = s.take_violations();
        assert_eq!(drained.len(), MAX_VIOLATIONS);
        assert!(s.violations().is_empty());
    }

    #[test]
    fn out_of_range_pages_read_as_free() {
        let s = ShadowTags::new(1 << 20, TagPolicy::hypernel());
        assert_eq!(s.tag_of(PhysAddr::new(1 << 30)), PageTag::Free);
    }
}
