//! Architectural event tracing.
//!
//! A bounded ring of recent privilege-boundary events (hypercalls,
//! traps, faults, interrupts, maintenance), cycle-stamped. Disabled by
//! default and free when off; enable it to answer "what did the machine
//! do between these two points?" — invaluable when a verification denial
//! or an unexpected overhead needs a post-mortem.

use crate::addr::{IntermAddr, VirtAddr};
use crate::irq::IrqLine;
use crate::machine::AccessKind;
use crate::regs::SysReg;

/// One traced architectural event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// `HVC` executed (call number recorded).
    Hypercall {
        /// The call number.
        call: u64,
    },
    /// A VM-register write trapped to EL2.
    SysregTrap {
        /// The register.
        reg: SysReg,
        /// The attempted value.
        value: u64,
    },
    /// A stage-2 fault was routed to the hypervisor.
    Stage2Fault {
        /// Faulting IPA.
        ipa: IntermAddr,
        /// Access kind.
        kind: AccessKind,
    },
    /// A stage-1 data abort was delivered to EL1.
    DataAbort {
        /// Faulting VA.
        va: VirtAddr,
        /// Access kind.
        kind: AccessKind,
        /// Permission (vs translation) fault.
        permission: bool,
    },
    /// An interrupt line was asserted.
    IrqRaised {
        /// The line.
        line: IrqLine,
    },
    /// `WFI` executed.
    Wfi,
    /// An SGI (IPI) was sent.
    Sgi,
    /// A TLB invalidation instruction executed.
    TlbMaintenance,
}

/// A cycle-stamped trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Cycle counter at the event.
    pub cycles: u64,
    /// The event.
    pub event: TraceEvent,
}

/// Bounded ring of trace records (oldest evicted first).
///
/// ```
/// use hypernel_machine::trace::{TraceBuffer, TraceEvent};
///
/// let mut buf = TraceBuffer::new(2);
/// buf.record(10, TraceEvent::Wfi);
/// buf.record(20, TraceEvent::Sgi);
/// buf.record(30, TraceEvent::TlbMaintenance);
/// let events: Vec<_> = buf.iter().map(|r| r.cycles).collect();
/// assert_eq!(events, vec![20, 30]); // oldest evicted
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    records: std::collections::VecDeque<TraceRecord>,
    capacity: usize,
    recorded_total: u64,
}

impl TraceBuffer {
    /// Creates a buffer holding at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be non-zero");
        Self {
            records: std::collections::VecDeque::with_capacity(capacity),
            capacity,
            recorded_total: 0,
        }
    }

    /// Appends a record, evicting the oldest when full.
    pub fn record(&mut self, cycles: u64, event: TraceEvent) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back(TraceRecord { cycles, event });
        self.recorded_total += 1;
    }

    /// Iterates records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if nothing has been recorded (or all evicted).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total events recorded over the buffer's lifetime, including the
    /// evicted ones.
    pub fn recorded_total(&self) -> u64 {
        self.recorded_total
    }

    /// Records lost to eviction: everything ever recorded minus what is
    /// still live. Exporters use this to report truncation honestly
    /// instead of presenting a partial window as the whole run.
    pub fn dropped(&self) -> u64 {
        self.recorded_total - self.records.len() as u64
    }

    /// Clears the buffer (not the lifetime counter).
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_semantics() {
        let mut buf = TraceBuffer::new(3);
        for i in 0..5 {
            buf.record(i, TraceEvent::Wfi);
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.recorded_total(), 5);
        let stamps: Vec<u64> = buf.iter().map(|r| r.cycles).collect();
        assert_eq!(stamps, vec![2, 3, 4]);
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.recorded_total(), 5);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        TraceBuffer::new(0);
    }

    #[test]
    fn dropped_counts_evictions_only() {
        let mut buf = TraceBuffer::new(2);
        assert_eq!(buf.dropped(), 0);
        buf.record(1, TraceEvent::Wfi);
        buf.record(2, TraceEvent::Sgi);
        // At capacity but nothing evicted yet.
        assert_eq!(buf.dropped(), 0);
        buf.record(3, TraceEvent::Wfi);
        buf.record(4, TraceEvent::Sgi);
        assert_eq!(buf.dropped(), 2);
        assert_eq!(buf.recorded_total(), 4);
        // Clearing discards live records; they count as dropped too.
        buf.clear();
        assert_eq!(buf.dropped(), 4);
    }
}
