//! Interrupt controller model.
//!
//! A minimal GIC-like controller: devices (the MBM, timers, …) assert
//! numbered lines; software polls and acknowledges them. Interrupt
//! *delivery* is cooperative — the kernel checks for pending interrupts at
//! operation boundaries, mirroring how the simulation serializes
//! asynchronous hardware events.

/// Interrupt line numbers used by the simulated platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IrqLine(pub u32);

impl IrqLine {
    /// The line wired to the memory bus monitor (paper Fig. 4, step 6).
    pub const MBM: IrqLine = IrqLine(48);
}

impl std::fmt::Display for IrqLine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "IRQ{}", self.0)
    }
}

/// A simple level-triggered interrupt controller.
///
/// ```
/// use hypernel_machine::irq::{IrqController, IrqLine};
///
/// let mut gic = IrqController::new();
/// gic.raise(IrqLine::MBM);
/// assert!(gic.is_pending(IrqLine::MBM));
/// assert_eq!(gic.ack_next(), Some(IrqLine::MBM));
/// assert!(gic.ack_next().is_none());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IrqController {
    pending: std::collections::BTreeSet<IrqLine>,
    raised_total: u64,
}

impl IrqController {
    /// Creates a controller with no pending interrupts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Asserts `line`. Idempotent while the line is already pending
    /// (level-triggered semantics), but every assertion is counted.
    pub fn raise(&mut self, line: IrqLine) {
        self.raised_total += 1;
        self.pending.insert(line);
    }

    /// Returns `true` if `line` is asserted and unacknowledged.
    pub fn is_pending(&self, line: IrqLine) -> bool {
        self.pending.contains(&line)
    }

    /// Returns `true` if any line is pending.
    pub fn any_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Acknowledges and returns the lowest-numbered pending line, if any.
    pub fn ack_next(&mut self) -> Option<IrqLine> {
        let line = self.pending.iter().next().copied()?;
        self.pending.remove(&line);
        Some(line)
    }

    /// Acknowledges a specific line. Returns `true` if it was pending.
    pub fn ack(&mut self, line: IrqLine) -> bool {
        self.pending.remove(&line)
    }

    /// Total number of `raise` calls since construction (including
    /// assertions coalesced by level-triggering).
    pub fn raised_total(&self) -> u64 {
        self.raised_total
    }

    /// The currently pending lines, lowest-numbered first (for state
    /// snapshots such as the campaign flight recorder).
    pub fn pending_lines(&self) -> Vec<IrqLine> {
        self.pending.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raise_ack_cycle() {
        let mut gic = IrqController::new();
        assert!(!gic.any_pending());
        gic.raise(IrqLine(3));
        gic.raise(IrqLine(1));
        assert!(gic.is_pending(IrqLine(1)));
        assert_eq!(gic.ack_next(), Some(IrqLine(1)));
        assert_eq!(gic.ack_next(), Some(IrqLine(3)));
        assert_eq!(gic.ack_next(), None);
    }

    #[test]
    fn level_triggered_coalescing() {
        let mut gic = IrqController::new();
        gic.raise(IrqLine::MBM);
        gic.raise(IrqLine::MBM);
        assert_eq!(gic.raised_total(), 2);
        assert_eq!(gic.ack_next(), Some(IrqLine::MBM));
        assert_eq!(gic.ack_next(), None);
    }

    #[test]
    fn targeted_ack() {
        let mut gic = IrqController::new();
        gic.raise(IrqLine(7));
        assert!(gic.ack(IrqLine(7)));
        assert!(!gic.ack(IrqLine(7)));
    }

    #[test]
    fn display() {
        assert_eq!(IrqLine::MBM.to_string(), "IRQ48");
    }
}
