#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # hypernel-machine
//!
//! The simulated hardware substrate for the [Hypernel (DAC 2018)][paper]
//! reproduction: an AArch64-like machine with exception levels, a
//! configurable MMU (stage-1, optional stage-2/nested paging, and a
//! separate EL2 regime), a finite TLB, a write-back data cache, and a
//! snoopable CPU↔DRAM memory bus — everything the paper's software
//! (Hypersec, a mini kernel, a KVM-style baseline) and hardware (the
//! memory bus monitor) plug into.
//!
//! The machine is *driven*, not self-executing: there is no instruction
//! decoder. Software is ordinary Rust code that calls [`machine::Machine`]
//! methods (translated loads/stores, system-register writes, hypercalls),
//! and the machine charges cycles from a calibrated [`cost::CostModel`]
//! and routes traps to the installed [`machine::Hyp`] implementation,
//! exactly as the architectural state machine would.
//!
//! ## Example
//!
//! ```
//! use hypernel_machine::machine::{Machine, MachineConfig, NullHyp};
//! use hypernel_machine::regs::{ExceptionLevel, SysReg};
//! use hypernel_machine::addr::VirtAddr;
//!
//! // A machine with the MMU off behaves like flat physical memory.
//! let mut machine = Machine::new(MachineConfig::default());
//! machine.set_el(ExceptionLevel::El1);
//! let mut hyp = NullHyp;
//! machine.write_u64(VirtAddr::new(0x1000), 42, &mut hyp)?;
//! assert_eq!(machine.read_u64(VirtAddr::new(0x1000), &mut hyp)?, 42);
//! # Ok::<(), hypernel_machine::machine::Exception>(())
//! ```
//!
//! [paper]: https://doi.org/10.1145/3195970.3196061

pub mod addr;
pub mod bus;
pub mod cache;
pub mod cost;
pub mod fastpath;
pub mod fault;
pub mod irq;
pub mod machine;
pub mod mem;
pub mod pagetable;
pub mod regs;
pub mod shadow;
pub mod tlb;
pub mod trace;

pub use addr::{IntermAddr, PhysAddr, VirtAddr};
pub use fastpath::fastpath_enabled;
pub use fault::{FaultHit, FaultKind, FaultPlan, FaultSpec, FaultStats, IrqFault, SharedFaults};
pub use machine::{
    AccessKind, BlockFault, Exception, Hyp, Machine, MachineConfig, NullHyp, PolicyViolation,
};
pub use regs::{ExceptionLevel, SysReg};
pub use shadow::{PageTag, ShadowStats, ShadowTags, TagPolicy, TagViolation, Writer};
