//! Translation lookaside buffer model.
//!
//! Two structures mirror a modern ARM core:
//!
//! * the **main TLB** caches *completed* translations — VA page → final PA
//!   page with combined stage-1 (and, under nested paging, stage-2)
//!   permissions. Entries are tagged by [`Regime`] and ASID so a context
//!   switch need not flush.
//! * the **stage-2 TLB** caches IPA page → PA page mappings used while
//!   nested walks resolve stage-1 table accesses. It only fills when a
//!   hypervisor enables stage-2 translation.
//!
//! Both are finite and FIFO-replaced; misses are what make nested paging
//! expensive, so the sizes matter for reproducing the paper's KVM numbers.

use std::collections::HashMap;
use std::collections::VecDeque;

use crate::addr::{PhysAddr, VirtAddr};
use crate::pagetable::PagePerms;

/// Translation regime a main-TLB entry belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Regime {
    /// EL0/EL1 stage-1 (plus stage-2 when nested paging is on).
    El1 {
        /// Address-space identifier of the owning process; `None` marks a
        /// global (kernel) mapping shared by all ASIDs.
        asid: Option<u16>,
    },
    /// The EL2 (Hypersec) translation regime.
    El2,
}

/// A cached translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Final physical page base.
    pub pa_page: PhysAddr,
    /// Combined effective permissions.
    pub perms: PagePerms,
    /// Number of stage-1 + stage-2 table accesses a walk for this entry
    /// cost when it was filled (replayed as the TLB-miss penalty).
    pub walk_accesses: u32,
}

/// Main-TLB statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries discarded by capacity replacement.
    pub evictions: u64,
    /// Entries discarded by explicit invalidation.
    pub flushes: u64,
}

impl TlbStats {
    /// Hit rate in `[0, 1]`; `None` before the first lookup.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    regime: Regime,
    va_page: u64,
}

/// Finite, FIFO-replaced TLB.
///
/// ```
/// use hypernel_machine::addr::{PhysAddr, VirtAddr};
/// use hypernel_machine::pagetable::PagePerms;
/// use hypernel_machine::tlb::{Regime, Tlb, TlbEntry};
///
/// let mut tlb = Tlb::new(64, 64);
/// let regime = Regime::El1 { asid: Some(1) };
/// let va = VirtAddr::new(0x1000);
/// assert!(tlb.lookup(regime, va).is_none());
/// tlb.insert(regime, va, TlbEntry {
///     pa_page: PhysAddr::new(0x8000),
///     perms: PagePerms::USER_DATA,
///     walk_accesses: 4,
/// });
/// assert!(tlb.lookup(regime, va).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    main: HashMap<Key, TlbEntry>,
    main_order: VecDeque<Key>,
    main_capacity: usize,
    stage2: HashMap<u64, TlbEntry>,
    stage2_order: VecDeque<u64>,
    stage2_capacity: usize,
    stats: TlbStats,
    s2_stats: TlbStats,
}

impl Tlb {
    /// Creates a TLB with the given main and stage-2 capacities (entries).
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero.
    pub fn new(main_capacity: usize, stage2_capacity: usize) -> Self {
        assert!(
            main_capacity > 0 && stage2_capacity > 0,
            "capacities must be non-zero"
        );
        Self {
            main: HashMap::new(),
            main_order: VecDeque::new(),
            main_capacity,
            stage2: HashMap::new(),
            stage2_order: VecDeque::new(),
            stage2_capacity,
            stats: TlbStats::default(),
            s2_stats: TlbStats::default(),
        }
    }

    /// Main-TLB statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Stage-2 TLB statistics.
    pub fn stage2_stats(&self) -> TlbStats {
        self.s2_stats
    }

    /// Resets statistics (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
        self.s2_stats = TlbStats::default();
    }

    /// Number of live main-TLB entries.
    pub fn len(&self) -> usize {
        self.main.len()
    }

    /// Returns `true` if the main TLB holds no entries.
    pub fn is_empty(&self) -> bool {
        self.main.is_empty()
    }

    /// Looks up `va` in `regime`, recording a hit or miss. Global (kernel)
    /// entries match any ASID of the same EL1 regime.
    pub fn lookup(&mut self, regime: Regime, va: VirtAddr) -> Option<TlbEntry> {
        let va_page = va.page_index();
        let direct = self.main.get(&Key { regime, va_page }).copied();
        let entry = direct.or_else(|| {
            // Global kernel entries are stored with asid: None and hit for
            // any EL1 ASID.
            if let Regime::El1 { asid: Some(_) } = regime {
                self.main
                    .get(&Key {
                        regime: Regime::El1 { asid: None },
                        va_page,
                    })
                    .copied()
            } else {
                None
            }
        });
        match entry {
            Some(e) => {
                self.stats.hits += 1;
                Some(e)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a completed translation, evicting the oldest entry if full.
    pub fn insert(&mut self, regime: Regime, va: VirtAddr, entry: TlbEntry) {
        let key = Key {
            regime,
            va_page: va.page_index(),
        };
        if self.main.insert(key, entry).is_none() {
            self.main_order.push_back(key);
            if self.main.len() > self.main_capacity {
                while let Some(old) = self.main_order.pop_front() {
                    if self.main.remove(&old).is_some() {
                        self.stats.evictions += 1;
                        break;
                    }
                }
            }
        }
    }

    /// Looks up an IPA page in the stage-2 TLB.
    pub fn lookup_stage2(&mut self, ipa_page: u64) -> Option<TlbEntry> {
        match self.stage2.get(&ipa_page).copied() {
            Some(e) => {
                self.s2_stats.hits += 1;
                Some(e)
            }
            None => {
                self.s2_stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a stage-2 translation.
    pub fn insert_stage2(&mut self, ipa_page: u64, entry: TlbEntry) {
        if self.stage2.insert(ipa_page, entry).is_none() {
            self.stage2_order.push_back(ipa_page);
            if self.stage2.len() > self.stage2_capacity {
                while let Some(old) = self.stage2_order.pop_front() {
                    if self.stage2.remove(&old).is_some() {
                        self.s2_stats.evictions += 1;
                        break;
                    }
                }
            }
        }
    }

    /// Invalidates everything (`TLBI VMALLS12`, roughly).
    pub fn flush_all(&mut self) {
        self.stats.flushes += self.main.len() as u64;
        self.s2_stats.flushes += self.stage2.len() as u64;
        self.main.clear();
        self.main_order.clear();
        self.stage2.clear();
        self.stage2_order.clear();
    }

    /// Invalidates every main-TLB entry of one ASID (`TLBI ASID`).
    pub fn flush_asid(&mut self, asid: u16) {
        let before = self.main.len();
        self.main.retain(|k, _| {
            !matches!(
                k.regime,
                Regime::El1 { asid: Some(a) } if a == asid
            )
        });
        self.stats.flushes += (before - self.main.len()) as u64;
    }

    /// Invalidates the main-TLB entry covering `va` in every ASID of the
    /// regime class (`TLBI VAE1`, conservatively broad).
    pub fn flush_va(&mut self, va: VirtAddr) {
        let page = va.page_index();
        let before = self.main.len();
        self.main.retain(|k, _| k.va_page != page);
        self.stats.flushes += (before - self.main.len()) as u64;
    }

    /// Invalidates stage-2 entries (and, because the main TLB may hold
    /// combined translations, the whole main TLB — as `TLBI IPAS2` plus
    /// `VMALLE1` would).
    pub fn flush_stage2(&mut self) {
        self.flush_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(pa: u64) -> TlbEntry {
        TlbEntry {
            pa_page: PhysAddr::new(pa),
            perms: PagePerms::KERNEL_DATA,
            walk_accesses: 4,
        }
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut tlb = Tlb::new(8, 8);
        let r = Regime::El1 { asid: Some(1) };
        assert!(tlb.lookup(r, VirtAddr::new(0x1000)).is_none());
        tlb.insert(r, VirtAddr::new(0x1000), entry(0x8000));
        assert_eq!(
            tlb.lookup(r, VirtAddr::new(0x1FFF)).unwrap().pa_page,
            PhysAddr::new(0x8000)
        );
        assert_eq!(tlb.stats().hits, 1);
        assert_eq!(tlb.stats().misses, 1);
    }

    #[test]
    fn global_entries_hit_any_asid() {
        let mut tlb = Tlb::new(8, 8);
        tlb.insert(
            Regime::El1 { asid: None },
            VirtAddr::new(0x2000),
            entry(0x9000),
        );
        assert!(tlb
            .lookup(Regime::El1 { asid: Some(7) }, VirtAddr::new(0x2000))
            .is_some());
        assert!(tlb
            .lookup(Regime::El1 { asid: Some(9) }, VirtAddr::new(0x2000))
            .is_some());
        // But not the EL2 regime.
        assert!(tlb.lookup(Regime::El2, VirtAddr::new(0x2000)).is_none());
    }

    #[test]
    fn asid_isolation() {
        let mut tlb = Tlb::new(8, 8);
        tlb.insert(
            Regime::El1 { asid: Some(1) },
            VirtAddr::new(0x2000),
            entry(0x9000),
        );
        assert!(tlb
            .lookup(Regime::El1 { asid: Some(2) }, VirtAddr::new(0x2000))
            .is_none());
    }

    #[test]
    fn capacity_eviction_is_fifo() {
        let mut tlb = Tlb::new(2, 2);
        let r = Regime::El1 { asid: Some(1) };
        tlb.insert(r, VirtAddr::new(0x1000), entry(0x1000));
        tlb.insert(r, VirtAddr::new(0x2000), entry(0x2000));
        tlb.insert(r, VirtAddr::new(0x3000), entry(0x3000));
        assert_eq!(tlb.len(), 2);
        assert!(tlb.lookup(r, VirtAddr::new(0x1000)).is_none());
        assert!(tlb.lookup(r, VirtAddr::new(0x2000)).is_some());
        assert_eq!(tlb.stats().evictions, 1);
    }

    #[test]
    fn flush_asid_spares_globals() {
        let mut tlb = Tlb::new(8, 8);
        tlb.insert(
            Regime::El1 { asid: Some(1) },
            VirtAddr::new(0x1000),
            entry(0x1000),
        );
        tlb.insert(
            Regime::El1 { asid: None },
            VirtAddr::new(0x2000),
            entry(0x2000),
        );
        tlb.flush_asid(1);
        assert!(tlb
            .lookup(Regime::El1 { asid: Some(1) }, VirtAddr::new(0x1000))
            .is_none());
        assert!(tlb
            .lookup(Regime::El1 { asid: Some(1) }, VirtAddr::new(0x2000))
            .is_some());
        assert_eq!(tlb.stats().flushes, 1);
    }

    #[test]
    fn flush_va_hits_all_asids() {
        let mut tlb = Tlb::new(8, 8);
        tlb.insert(
            Regime::El1 { asid: Some(1) },
            VirtAddr::new(0x1000),
            entry(0x1000),
        );
        tlb.insert(
            Regime::El1 { asid: Some(2) },
            VirtAddr::new(0x1000),
            entry(0x1000),
        );
        tlb.flush_va(VirtAddr::new(0x1234));
        assert!(tlb.is_empty());
    }

    #[test]
    fn stage2_roundtrip_and_flush() {
        let mut tlb = Tlb::new(4, 4);
        assert!(tlb.lookup_stage2(5).is_none());
        tlb.insert_stage2(5, entry(0x5000));
        assert!(tlb.lookup_stage2(5).is_some());
        tlb.flush_stage2();
        assert!(tlb.lookup_stage2(5).is_none());
        assert_eq!(tlb.stage2_stats().hits, 1);
        assert_eq!(tlb.stage2_stats().misses, 2);
    }

    #[test]
    fn reinsert_does_not_grow_order_queue() {
        let mut tlb = Tlb::new(2, 2);
        let r = Regime::El2;
        for _ in 0..10 {
            tlb.insert(r, VirtAddr::new(0x1000), entry(0x1000));
        }
        tlb.insert(r, VirtAddr::new(0x2000), entry(0x2000));
        tlb.insert(r, VirtAddr::new(0x3000), entry(0x3000));
        // 0x1000 was oldest; exactly one eviction happened at capacity.
        assert_eq!(tlb.len(), 2);
    }

    #[test]
    fn hit_rate() {
        let mut tlb = Tlb::new(4, 4);
        let r = Regime::El2;
        assert!(tlb.stats().hit_rate().is_none());
        tlb.lookup(r, VirtAddr::new(0));
        tlb.insert(r, VirtAddr::new(0), entry(0));
        tlb.lookup(r, VirtAddr::new(0));
        assert_eq!(tlb.stats().hit_rate(), Some(0.5));
    }
}
