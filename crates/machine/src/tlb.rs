//! Translation lookaside buffer model.
//!
//! Two structures mirror a modern ARM core:
//!
//! * the **main TLB** caches *completed* translations — VA page → final PA
//!   page with combined stage-1 (and, under nested paging, stage-2)
//!   permissions. Entries are tagged by [`Regime`] and ASID so a context
//!   switch need not flush.
//! * the **stage-2 TLB** caches IPA page → PA page mappings used while
//!   nested walks resolve stage-1 table accesses. It only fills when a
//!   hypervisor enables stage-2 translation.
//!
//! **Replacement policy:** both TLBs are true LRU. A lookup hit and a
//! re-insert of an existing key refresh the entry's recency; capacity
//! eviction always discards the least-recently-used entry. Misses are
//! what make nested paging expensive, so sizes and policy matter for
//! reproducing the paper's KVM numbers.
//!
//! In front of the main TLB sits a host-side **L0 micro-TLB**: a small
//! direct-mapped array of recently resolved lookups, turning the
//! dominant hit path into an index + key compare instead of a hash-map
//! probe. The L0 is *model-invisible* — an L0 hit performs the same LRU
//! recency update and the same `hits` accounting as the map path, so
//! simulated state is byte-identical whether it is enabled or not; only
//! the host-observability counters `l0_hits`/`l0_misses` differ. It is
//! invalidated on every flush, on inserts covering its slot, and by
//! [`Tlb::l0_invalidate`] (which the machine calls on every TLBI and
//! translation-system-register write).

use std::collections::HashMap;
use std::hash::Hash;

use crate::addr::{PhysAddr, VirtAddr};
use crate::fastpath::fastpath_enabled;
use crate::pagetable::PagePerms;

/// Translation regime a main-TLB entry belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Regime {
    /// EL0/EL1 stage-1 (plus stage-2 when nested paging is on).
    El1 {
        /// Address-space identifier of the owning process; `None` marks a
        /// global (kernel) mapping shared by all ASIDs.
        asid: Option<u16>,
    },
    /// The EL2 (Hypersec) translation regime.
    El2,
}

/// A cached translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Final physical page base.
    pub pa_page: PhysAddr,
    /// Combined effective permissions.
    pub perms: PagePerms,
    /// Number of stage-1 + stage-2 table accesses a walk for this entry
    /// cost when it was filled (replayed as the TLB-miss penalty).
    pub walk_accesses: u32,
}

/// Main-TLB statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries discarded by capacity replacement.
    pub evictions: u64,
    /// Entries discarded by explicit invalidation.
    pub flushes: u64,
    /// Hits served by the L0 micro-TLB (host observability; subset of
    /// `hits`, zero when the L0 is disabled).
    pub l0_hits: u64,
    /// Lookups that consulted the L0 micro-TLB and fell through to the
    /// main map (host observability, zero when the L0 is disabled).
    pub l0_misses: u64,
}

impl TlbStats {
    /// Hit rate in `[0, 1]`; `None` before the first lookup.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }

    /// Fraction of all lookups served by the L0 micro-TLB; `None`
    /// before the first lookup.
    pub fn l0_hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.l0_hits as f64 / total as f64)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    regime: Regime,
    va_page: u64,
}

/// Sentinel for "no slot" in the intrusive LRU list.
const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Slot<K> {
    key: K,
    entry: TlbEntry,
    prev: usize,
    next: usize,
    live: bool,
}

/// A fixed-capacity LRU map: slab of slots + intrusive doubly-linked
/// recency list + key index. Hit/re-insert moves the slot to the MRU
/// head in O(1); eviction pops the LRU tail.
#[derive(Debug, Clone)]
struct LruMap<K: Eq + Hash + Copy> {
    index: HashMap<K, usize>,
    slots: Vec<Slot<K>>,
    head: usize,
    tail: usize,
    free: Vec<usize>,
    capacity: usize,
}

impl<K: Eq + Hash + Copy> LruMap<K> {
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be non-zero");
        Self {
            index: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            capacity,
        }
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Moves slot `i` to the MRU position.
    fn touch(&mut self, i: usize) {
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
    }

    /// Looks up `key`; a hit refreshes recency. Returns the slot index.
    fn get(&mut self, key: &K) -> Option<usize> {
        let i = *self.index.get(key)?;
        self.touch(i);
        Some(i)
    }

    fn entry(&self, i: usize) -> &TlbEntry {
        &self.slots[i].entry
    }

    /// Inserts or refreshes `key`; returns `true` when a capacity
    /// eviction happened.
    fn insert(&mut self, key: K, entry: TlbEntry) -> bool {
        if let Some(&i) = self.index.get(&key) {
            self.slots[i].entry = entry;
            self.touch(i);
            return false;
        }
        let mut evicted = false;
        let i = if self.index.len() >= self.capacity {
            // Reuse the LRU tail slot in place.
            let t = self.tail;
            self.unlink(t);
            self.index.remove(&self.slots[t].key);
            evicted = true;
            t
        } else if let Some(i) = self.free.pop() {
            i
        } else {
            self.slots.push(Slot {
                key,
                entry,
                prev: NIL,
                next: NIL,
                live: false,
            });
            self.slots.len() - 1
        };
        self.slots[i].key = key;
        self.slots[i].entry = entry;
        self.slots[i].live = true;
        self.push_front(i);
        self.index.insert(key, i);
        evicted
    }

    /// Removes every entry failing `keep`; returns how many were
    /// removed.
    fn retain(&mut self, mut keep: impl FnMut(&K) -> bool) -> u64 {
        let mut removed = 0u64;
        let mut i = self.head;
        while i != NIL {
            let next = self.slots[i].next;
            if !keep(&self.slots[i].key) {
                self.unlink(i);
                self.index.remove(&self.slots[i].key);
                self.slots[i].live = false;
                self.free.push(i);
                removed += 1;
            }
            i = next;
        }
        removed
    }

    /// Drops everything; returns how many entries were removed.
    fn clear(&mut self) -> u64 {
        let removed = self.index.len() as u64;
        self.index.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        removed
    }
}

/// Number of direct-mapped L0 micro-TLB slots (power of two).
const L0_SLOTS: usize = 64;

/// One L0 slot: the VA page it answers for and the main-map slot the
/// resolution lives in. Self-validating — a hit requires the slab slot
/// to still be live with an acceptable key, so stale pointers can never
/// produce a wrong translation, only a fall-through to the map.
#[derive(Debug, Clone, Copy)]
struct L0Entry {
    va_page: u64,
    slot: usize,
}

const L0_EMPTY: L0Entry = L0Entry {
    va_page: 0,
    slot: NIL,
};

/// Finite, LRU-replaced TLB with an L0 micro-TLB front cache.
///
/// ```
/// use hypernel_machine::addr::{PhysAddr, VirtAddr};
/// use hypernel_machine::pagetable::PagePerms;
/// use hypernel_machine::tlb::{Regime, Tlb, TlbEntry};
///
/// let mut tlb = Tlb::new(64, 64);
/// let regime = Regime::El1 { asid: Some(1) };
/// let va = VirtAddr::new(0x1000);
/// assert!(tlb.lookup(regime, va).is_none());
/// tlb.insert(regime, va, TlbEntry {
///     pa_page: PhysAddr::new(0x8000),
///     perms: PagePerms::USER_DATA,
///     walk_accesses: 4,
/// });
/// assert!(tlb.lookup(regime, va).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    main: LruMap<Key>,
    stage2: LruMap<u64>,
    l0: [L0Entry; L0_SLOTS],
    l0_enabled: bool,
    stats: TlbStats,
    s2_stats: TlbStats,
}

impl Tlb {
    /// Creates a TLB with the given main and stage-2 capacities (entries).
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero.
    pub fn new(main_capacity: usize, stage2_capacity: usize) -> Self {
        Self {
            main: LruMap::new(main_capacity),
            stage2: LruMap::new(stage2_capacity),
            l0: [L0_EMPTY; L0_SLOTS],
            l0_enabled: fastpath_enabled(),
            stats: TlbStats::default(),
            s2_stats: TlbStats::default(),
        }
    }

    /// Main-TLB statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Stage-2 TLB statistics.
    pub fn stage2_stats(&self) -> TlbStats {
        self.s2_stats
    }

    /// Resets statistics (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
        self.s2_stats = TlbStats::default();
    }

    /// Number of live main-TLB entries.
    pub fn len(&self) -> usize {
        self.main.len()
    }

    /// Returns `true` if the main TLB holds no entries.
    pub fn is_empty(&self) -> bool {
        self.main.len() == 0
    }

    /// Enables or disables the L0 micro-TLB (testing hook; the default
    /// follows [`fastpath_enabled`]). Simulated state is identical
    /// either way.
    pub fn set_l0_enabled(&mut self, enabled: bool) {
        self.l0_enabled = enabled;
        self.l0 = [L0_EMPTY; L0_SLOTS];
    }

    /// Drops every L0 micro-TLB slot. The machine calls this on every
    /// TLBI and on writes to translation system registers (TTBR/SCTLR/
    /// TCR/VTTBR…); flushes and covering inserts also invalidate
    /// internally.
    pub fn l0_invalidate(&mut self) {
        self.l0 = [L0_EMPTY; L0_SLOTS];
    }

    #[inline]
    fn l0_index(va_page: u64) -> usize {
        (va_page as usize) & (L0_SLOTS - 1)
    }

    /// Whether a stored key satisfies a lookup key — exact match, or a
    /// global (ASID-less) kernel entry answering any EL1 ASID.
    #[inline]
    fn key_serves(stored: &Key, regime: Regime, va_page: u64) -> bool {
        stored.va_page == va_page
            && (stored.regime == regime
                || (stored.regime == Regime::El1 { asid: None }
                    && matches!(regime, Regime::El1 { asid: Some(_) })))
    }

    /// Looks up `va` in `regime`, recording a hit or miss and (on a hit)
    /// refreshing the entry's LRU recency. Global (kernel) entries match
    /// any ASID of the same EL1 regime.
    pub fn lookup(&mut self, regime: Regime, va: VirtAddr) -> Option<TlbEntry> {
        let va_page = va.page_index();
        if self.l0_enabled {
            let cached = self.l0[Self::l0_index(va_page)];
            let mut served = None;
            if cached.va_page == va_page {
                if let Some(slot) = self.main.slots.get(cached.slot) {
                    if slot.live && Self::key_serves(&slot.key, regime, va_page) {
                        served = Some(slot.entry);
                    }
                }
            }
            if let Some(entry) = served {
                // Same accounting + recency update as the map path;
                // only the l0_* observability counters differ.
                self.stats.l0_hits += 1;
                self.stats.hits += 1;
                self.main.touch(cached.slot);
                return Some(entry);
            }
            self.stats.l0_misses += 1;
        }
        let exact = Key { regime, va_page };
        let resolved = self.main.get(&exact).or_else(|| {
            // Global kernel entries are stored with asid: None and hit
            // for any EL1 ASID.
            if let Regime::El1 { asid: Some(_) } = regime {
                self.main.get(&Key {
                    regime: Regime::El1 { asid: None },
                    va_page,
                })
            } else {
                None
            }
        });
        match resolved {
            Some(i) => {
                self.stats.hits += 1;
                if self.l0_enabled {
                    self.l0[Self::l0_index(va_page)] = L0Entry { va_page, slot: i };
                }
                Some(*self.main.entry(i))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Consults the main TLB without touching statistics or recency — a
    /// host-side peek used by the block-access fast path right after a
    /// reference access resolved (and proved permissions for) `va`.
    /// Global kernel entries match any EL1 ASID, as in [`Tlb::lookup`].
    pub fn peek(&self, regime: Regime, va: VirtAddr) -> Option<TlbEntry> {
        let va_page = va.page_index();
        let i = self
            .main
            .index
            .get(&Key { regime, va_page })
            .copied()
            .or_else(|| {
                if let Regime::El1 { asid: Some(_) } = regime {
                    self.main
                        .index
                        .get(&Key {
                            regime: Regime::El1 { asid: None },
                            va_page,
                        })
                        .copied()
                } else {
                    None
                }
            })?;
        Some(self.main.slots[i].entry)
    }

    /// Records `n` main-TLB hits without performing lookups. The block-
    /// access fast path streams words through a translation it already
    /// resolved; this keeps `hits` identical to the per-word reference
    /// path. (Recency needs no update: the resolving access made the
    /// entry MRU and nothing ran in between.)
    pub fn record_block_hits(&mut self, n: u64) {
        self.stats.hits += n;
    }

    /// Inserts a completed translation, refreshing recency when the key
    /// already exists and evicting the least-recently-used entry when
    /// full.
    pub fn insert(&mut self, regime: Regime, va: VirtAddr, entry: TlbEntry) {
        let va_page = va.page_index();
        let key = Key { regime, va_page };
        // The covering L0 slot may cache a resolution this insert
        // shadows (e.g. a global entry when an exact one appears);
        // dropping it keeps the micro-TLB coherent for O(1).
        if self.l0_enabled {
            self.l0[Self::l0_index(va_page)] = L0_EMPTY;
        }
        if self.main.insert(key, entry) {
            self.stats.evictions += 1;
        }
    }

    /// Looks up an IPA page in the stage-2 TLB, refreshing recency on a
    /// hit.
    pub fn lookup_stage2(&mut self, ipa_page: u64) -> Option<TlbEntry> {
        match self.stage2.get(&ipa_page) {
            Some(i) => {
                self.s2_stats.hits += 1;
                Some(*self.stage2.entry(i))
            }
            None => {
                self.s2_stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a stage-2 translation (LRU replacement, recency refresh
    /// on re-insert).
    pub fn insert_stage2(&mut self, ipa_page: u64, entry: TlbEntry) {
        if self.stage2.insert(ipa_page, entry) {
            self.s2_stats.evictions += 1;
        }
    }

    /// Invalidates everything (`TLBI VMALLS12`, roughly).
    pub fn flush_all(&mut self) {
        self.stats.flushes += self.main.clear();
        self.s2_stats.flushes += self.stage2.clear();
        self.l0_invalidate();
    }

    /// Invalidates every main-TLB entry of one ASID (`TLBI ASID`).
    pub fn flush_asid(&mut self, asid: u16) {
        self.stats.flushes += self.main.retain(|k| {
            !matches!(
                k.regime,
                Regime::El1 { asid: Some(a) } if a == asid
            )
        });
        self.l0_invalidate();
    }

    /// Invalidates the main-TLB entry covering `va` in every ASID of the
    /// regime class (`TLBI VAE1`, conservatively broad).
    pub fn flush_va(&mut self, va: VirtAddr) {
        let page = va.page_index();
        self.stats.flushes += self.main.retain(|k| k.va_page != page);
        self.l0_invalidate();
    }

    /// Invalidates stage-2 entries (and, because the main TLB may hold
    /// combined translations, the whole main TLB — as `TLBI IPAS2` plus
    /// `VMALLE1` would).
    pub fn flush_stage2(&mut self) {
        self.flush_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(pa: u64) -> TlbEntry {
        TlbEntry {
            pa_page: PhysAddr::new(pa),
            perms: PagePerms::KERNEL_DATA,
            walk_accesses: 4,
        }
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut tlb = Tlb::new(8, 8);
        let r = Regime::El1 { asid: Some(1) };
        assert!(tlb.lookup(r, VirtAddr::new(0x1000)).is_none());
        tlb.insert(r, VirtAddr::new(0x1000), entry(0x8000));
        assert_eq!(
            tlb.lookup(r, VirtAddr::new(0x1FFF)).unwrap().pa_page,
            PhysAddr::new(0x8000)
        );
        assert_eq!(tlb.stats().hits, 1);
        assert_eq!(tlb.stats().misses, 1);
    }

    #[test]
    fn global_entries_hit_any_asid() {
        let mut tlb = Tlb::new(8, 8);
        tlb.insert(
            Regime::El1 { asid: None },
            VirtAddr::new(0x2000),
            entry(0x9000),
        );
        assert!(tlb
            .lookup(Regime::El1 { asid: Some(7) }, VirtAddr::new(0x2000))
            .is_some());
        assert!(tlb
            .lookup(Regime::El1 { asid: Some(9) }, VirtAddr::new(0x2000))
            .is_some());
        // But not the EL2 regime.
        assert!(tlb.lookup(Regime::El2, VirtAddr::new(0x2000)).is_none());
    }

    #[test]
    fn asid_isolation() {
        let mut tlb = Tlb::new(8, 8);
        tlb.insert(
            Regime::El1 { asid: Some(1) },
            VirtAddr::new(0x2000),
            entry(0x9000),
        );
        assert!(tlb
            .lookup(Regime::El1 { asid: Some(2) }, VirtAddr::new(0x2000))
            .is_none());
    }

    #[test]
    fn capacity_eviction_is_lru() {
        let mut tlb = Tlb::new(2, 2);
        let r = Regime::El1 { asid: Some(1) };
        tlb.insert(r, VirtAddr::new(0x1000), entry(0x1000));
        tlb.insert(r, VirtAddr::new(0x2000), entry(0x2000));
        // Touch 0x1000 so 0x2000 becomes the LRU victim.
        assert!(tlb.lookup(r, VirtAddr::new(0x1000)).is_some());
        tlb.insert(r, VirtAddr::new(0x3000), entry(0x3000));
        assert_eq!(tlb.len(), 2);
        assert!(tlb.lookup(r, VirtAddr::new(0x2000)).is_none());
        assert!(tlb.lookup(r, VirtAddr::new(0x1000)).is_some());
        assert!(tlb.lookup(r, VirtAddr::new(0x3000)).is_some());
        assert_eq!(tlb.stats().evictions, 1);
    }

    #[test]
    fn reinsert_refreshes_recency() {
        let mut tlb = Tlb::new(2, 2);
        let r = Regime::El2;
        tlb.insert(r, VirtAddr::new(0x1000), entry(0x1000));
        tlb.insert(r, VirtAddr::new(0x2000), entry(0x2000));
        // Re-inserting 0x1000 makes it MRU, so 0x2000 is the victim.
        tlb.insert(r, VirtAddr::new(0x1000), entry(0x1000));
        tlb.insert(r, VirtAddr::new(0x3000), entry(0x3000));
        assert_eq!(tlb.len(), 2);
        assert!(tlb.lookup(r, VirtAddr::new(0x1000)).is_some());
        assert!(tlb.lookup(r, VirtAddr::new(0x2000)).is_none());
        assert_eq!(tlb.stats().evictions, 1);
    }

    #[test]
    fn reinsert_updates_payload() {
        let mut tlb = Tlb::new(2, 2);
        let r = Regime::El2;
        tlb.insert(r, VirtAddr::new(0x1000), entry(0x1000));
        tlb.insert(r, VirtAddr::new(0x1000), entry(0x7000));
        assert_eq!(tlb.len(), 1);
        assert_eq!(
            tlb.lookup(r, VirtAddr::new(0x1000)).unwrap().pa_page,
            PhysAddr::new(0x7000)
        );
    }

    #[test]
    fn stage2_eviction_is_lru_too() {
        let mut tlb = Tlb::new(2, 2);
        tlb.insert_stage2(1, entry(0x1000));
        tlb.insert_stage2(2, entry(0x2000));
        assert!(tlb.lookup_stage2(1).is_some()); // 2 becomes LRU
        tlb.insert_stage2(3, entry(0x3000));
        assert!(tlb.lookup_stage2(2).is_none());
        assert!(tlb.lookup_stage2(1).is_some());
        assert_eq!(tlb.stage2_stats().evictions, 1);
    }

    #[test]
    fn flush_asid_spares_globals() {
        let mut tlb = Tlb::new(8, 8);
        tlb.insert(
            Regime::El1 { asid: Some(1) },
            VirtAddr::new(0x1000),
            entry(0x1000),
        );
        tlb.insert(
            Regime::El1 { asid: None },
            VirtAddr::new(0x2000),
            entry(0x2000),
        );
        tlb.flush_asid(1);
        assert!(tlb
            .lookup(Regime::El1 { asid: Some(1) }, VirtAddr::new(0x1000))
            .is_none());
        assert!(tlb
            .lookup(Regime::El1 { asid: Some(1) }, VirtAddr::new(0x2000))
            .is_some());
        assert_eq!(tlb.stats().flushes, 1);
    }

    #[test]
    fn flush_va_hits_all_asids() {
        let mut tlb = Tlb::new(8, 8);
        tlb.insert(
            Regime::El1 { asid: Some(1) },
            VirtAddr::new(0x1000),
            entry(0x1000),
        );
        tlb.insert(
            Regime::El1 { asid: Some(2) },
            VirtAddr::new(0x1000),
            entry(0x1000),
        );
        tlb.flush_va(VirtAddr::new(0x1234));
        assert!(tlb.is_empty());
        assert_eq!(tlb.stats().flushes, 2);
    }

    #[test]
    fn stage2_roundtrip_and_flush() {
        let mut tlb = Tlb::new(4, 4);
        assert!(tlb.lookup_stage2(5).is_none());
        tlb.insert_stage2(5, entry(0x5000));
        assert!(tlb.lookup_stage2(5).is_some());
        tlb.flush_stage2();
        assert!(tlb.lookup_stage2(5).is_none());
        assert_eq!(tlb.stage2_stats().hits, 1);
        assert_eq!(tlb.stage2_stats().misses, 2);
        assert_eq!(tlb.stage2_stats().flushes, 1);
    }

    #[test]
    fn reinsert_does_not_grow_order_queue() {
        let mut tlb = Tlb::new(2, 2);
        let r = Regime::El2;
        for _ in 0..10 {
            tlb.insert(r, VirtAddr::new(0x1000), entry(0x1000));
        }
        tlb.insert(r, VirtAddr::new(0x2000), entry(0x2000));
        tlb.insert(r, VirtAddr::new(0x3000), entry(0x3000));
        // Exactly one eviction happened at capacity.
        assert_eq!(tlb.len(), 2);
        assert_eq!(tlb.stats().evictions, 1);
    }

    #[test]
    fn eviction_and_flush_statistics_accumulate() {
        let mut tlb = Tlb::new(2, 8);
        let r = Regime::El1 { asid: Some(3) };
        for page in 0..5u64 {
            tlb.insert(r, VirtAddr::new(page * 0x1000), entry(page * 0x1000));
        }
        // 5 inserts into 2 slots: 3 capacity evictions.
        assert_eq!(tlb.stats().evictions, 3);
        tlb.flush_all();
        assert_eq!(tlb.stats().flushes, 2);
        assert_eq!(tlb.len(), 0);
        // Flush counters keep accumulating across flushes.
        tlb.insert(r, VirtAddr::new(0x9000), entry(0x9000));
        tlb.flush_va(VirtAddr::new(0x9008));
        assert_eq!(tlb.stats().flushes, 3);
    }

    #[test]
    fn hit_rate() {
        let mut tlb = Tlb::new(4, 4);
        let r = Regime::El2;
        assert!(tlb.stats().hit_rate().is_none());
        tlb.lookup(r, VirtAddr::new(0));
        tlb.insert(r, VirtAddr::new(0), entry(0));
        tlb.lookup(r, VirtAddr::new(0));
        assert_eq!(tlb.stats().hit_rate(), Some(0.5));
    }

    // ------------------------------------------------------------------
    // L0 micro-TLB
    // ------------------------------------------------------------------

    /// Simulated state (entries, hit/miss/eviction accounting) must be
    /// identical with the L0 on or off; only l0_* counters may differ.
    fn strip_l0(mut s: TlbStats) -> TlbStats {
        s.l0_hits = 0;
        s.l0_misses = 0;
        s
    }

    #[test]
    fn l0_serves_repeat_lookups_and_matches_reference() {
        let mut fast = Tlb::new(4, 4);
        fast.set_l0_enabled(true);
        let mut slow = Tlb::new(4, 4);
        slow.set_l0_enabled(false);
        let r = Regime::El1 { asid: Some(1) };
        for t in [&mut fast, &mut slow] {
            for page in 0..6u64 {
                let va = VirtAddr::new(page * 0x1000);
                t.lookup(r, va);
                t.insert(r, va, entry(page * 0x1000));
                t.lookup(r, va);
                t.lookup(r, va);
            }
        }
        assert_eq!(strip_l0(fast.stats()), strip_l0(slow.stats()));
        assert!(fast.stats().l0_hits > 0, "repeat lookups hit the L0");
        assert_eq!(slow.stats().l0_hits, 0);
        assert_eq!(slow.stats().l0_misses, 0);
        // Same visible contents.
        for page in 0..6u64 {
            let va = VirtAddr::new(page * 0x1000);
            assert_eq!(fast.lookup(r, va).is_some(), slow.lookup(r, va).is_some());
        }
    }

    #[test]
    fn l0_hit_refreshes_lru_recency() {
        let mut tlb = Tlb::new(2, 2);
        tlb.set_l0_enabled(true);
        let r = Regime::El2;
        tlb.insert(r, VirtAddr::new(0x1000), entry(0x1000));
        tlb.insert(r, VirtAddr::new(0x2000), entry(0x2000));
        // Two lookups: the second is an L0 hit and must still bump LRU.
        tlb.lookup(r, VirtAddr::new(0x1000));
        tlb.lookup(r, VirtAddr::new(0x1000));
        assert!(tlb.stats().l0_hits >= 1);
        tlb.insert(r, VirtAddr::new(0x3000), entry(0x3000));
        assert!(tlb.lookup(r, VirtAddr::new(0x1000)).is_some());
        assert!(tlb.lookup(r, VirtAddr::new(0x2000)).is_none());
    }

    #[test]
    fn l0_invalidated_by_flushes() {
        let mut tlb = Tlb::new(8, 8);
        tlb.set_l0_enabled(true);
        let r = Regime::El1 { asid: Some(1) };
        let va = VirtAddr::new(0x4000);
        tlb.insert(r, va, entry(0x4000));
        tlb.lookup(r, va); // map hit populates L0
        tlb.lookup(r, va); // L0 hit
        assert_eq!(tlb.stats().l0_hits, 1);
        tlb.flush_va(va);
        assert!(tlb.lookup(r, va).is_none(), "flushed entry must not hit");
        tlb.insert(r, va, entry(0x4000));
        tlb.lookup(r, va);
        tlb.flush_asid(1);
        assert!(tlb.lookup(r, va).is_none());
        tlb.insert(r, va, entry(0x4000));
        tlb.lookup(r, va);
        tlb.flush_all();
        assert!(tlb.lookup(r, va).is_none());
    }

    #[test]
    fn l0_explicit_invalidate_falls_back_to_map() {
        let mut tlb = Tlb::new(8, 8);
        tlb.set_l0_enabled(true);
        let r = Regime::El2;
        let va = VirtAddr::new(0x7000);
        tlb.insert(r, va, entry(0x7000));
        tlb.lookup(r, va);
        tlb.l0_invalidate();
        // Entry still lives in the map; the L0 misses then repopulates.
        let before = tlb.stats().l0_hits;
        assert!(tlb.lookup(r, va).is_some());
        assert!(tlb.lookup(r, va).is_some());
        assert!(tlb.stats().l0_hits > before);
    }

    #[test]
    fn l0_never_leaks_stale_entries_across_eviction() {
        let mut tlb = Tlb::new(2, 2);
        tlb.set_l0_enabled(true);
        let r = Regime::El1 { asid: Some(1) };
        let va = VirtAddr::new(0x1000);
        tlb.insert(r, va, entry(0x1000));
        tlb.lookup(r, va); // L0 now caches 0x1000's slot
                           // Evict 0x1000 by filling the 2-entry TLB with newer pages.
        tlb.insert(r, VirtAddr::new(0x2000), entry(0x2000));
        tlb.lookup(r, VirtAddr::new(0x2000));
        tlb.insert(r, VirtAddr::new(0x3000), entry(0x3000));
        // 0x1000's slot was reused; the L0 must not resurrect it.
        assert!(tlb.lookup(r, va).is_none());
    }

    #[test]
    fn l0_respects_asid_and_regime_boundaries() {
        let mut tlb = Tlb::new(8, 8);
        tlb.set_l0_enabled(true);
        let va = VirtAddr::new(0x2000);
        tlb.insert(Regime::El1 { asid: Some(1) }, va, entry(0x9000));
        tlb.lookup(Regime::El1 { asid: Some(1) }, va);
        tlb.lookup(Regime::El1 { asid: Some(1) }, va);
        // Another ASID or regime must not be served by the cached slot.
        assert!(tlb.lookup(Regime::El1 { asid: Some(2) }, va).is_none());
        assert!(tlb.lookup(Regime::El2, va).is_none());
        // Global entries keep serving any ASID through the L0.
        let kva = VirtAddr::new(0x8000);
        tlb.insert(Regime::El1 { asid: None }, kva, entry(0x8000));
        tlb.lookup(Regime::El1 { asid: Some(5) }, kva);
        let l0_before = tlb.stats().l0_hits;
        assert!(tlb.lookup(Regime::El1 { asid: Some(6) }, kva).is_some());
        assert!(tlb.stats().l0_hits > l0_before);
    }
}
