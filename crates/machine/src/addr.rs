//! Address newtypes and layout constants.
//!
//! The simulated machine uses three address spaces, mirroring AArch64 with
//! the virtualization extension (paper §3):
//!
//! * [`VirtAddr`] — virtual addresses used at EL0/EL1 (translated by the
//!   stage-1 page table) and at EL2 (translated by the EL2 page table).
//! * [`IntermAddr`] — intermediate physical addresses (IPA), the output of
//!   stage-1 translation when a hypervisor with nested paging is active.
//! * [`PhysAddr`] — real physical addresses on the memory bus.
//!
//! When nested paging is disabled (native or Hypernel configurations) the
//! IPA space is identical to the physical space.

use core::fmt;

/// Size of one translation granule (page): 4 KiB, as in the paper's
/// instrumented kernel (§6.2).
pub const PAGE_SIZE: u64 = 4096;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;
/// Size of a 2 MiB section, the vanilla AArch64 Linux linear-map block size
/// the paper's kernel instrumentation replaces with 4 KiB pages (§6.2).
pub const SECTION_SIZE: u64 = 2 * 1024 * 1024;
/// log2 of [`SECTION_SIZE`].
pub const SECTION_SHIFT: u32 = 21;
/// Size of one machine word: 8 bytes. The MBM watch bitmap maps one word to
/// one bit (paper §5.3).
pub const WORD_SIZE: u64 = 8;
/// log2 of [`WORD_SIZE`].
pub const WORD_SHIFT: u32 = 3;
/// Number of valid virtual-address bits (48-bit VA, 4-level translation).
pub const VA_BITS: u32 = 48;

/// Base of the kernel virtual address space (addresses with bit 47 set
/// select `TTBR1_EL1`, mirroring the AArch64 split).
pub const KERNEL_VA_BASE: u64 = 0xFFFF_0000_0000_0000;

macro_rules! addr_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u64);

        impl $name {
            /// Constructs the address from a raw 64-bit value.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw 64-bit value.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Returns the address rounded down to its 4 KiB page boundary.
            #[inline]
            pub const fn page_base(self) -> Self {
                Self(self.0 & !(PAGE_SIZE - 1))
            }

            /// Returns the offset of this address within its 4 KiB page.
            #[inline]
            pub const fn page_offset(self) -> u64 {
                self.0 & (PAGE_SIZE - 1)
            }

            /// Returns the page frame number (address divided by the page size).
            #[inline]
            pub const fn page_index(self) -> u64 {
                self.0 >> PAGE_SHIFT
            }

            /// Returns the address rounded down to its 8-byte word boundary.
            #[inline]
            pub const fn word_base(self) -> Self {
                Self(self.0 & !(WORD_SIZE - 1))
            }

            /// Returns the word index (address divided by the word size).
            #[inline]
            pub const fn word_index(self) -> u64 {
                self.0 >> WORD_SHIFT
            }

            /// Returns `true` if the address is aligned to an 8-byte word.
            #[inline]
            pub const fn is_word_aligned(self) -> bool {
                self.0 % WORD_SIZE == 0
            }

            /// Returns `true` if the address is aligned to a 4 KiB page.
            #[inline]
            pub const fn is_page_aligned(self) -> bool {
                self.0 % PAGE_SIZE == 0
            }

            /// Returns the address advanced by `bytes`.
            ///
            /// # Panics
            ///
            /// Panics in debug builds if the addition overflows.
            #[inline]
            pub const fn add(self, bytes: u64) -> Self {
                Self(self.0 + bytes)
            }

            /// Returns the byte distance from `base` to `self`.
            ///
            /// # Panics
            ///
            /// Panics in debug builds if `self < base`.
            #[inline]
            pub const fn offset_from(self, base: Self) -> u64 {
                self.0 - base.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl fmt::UpperHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::UpperHex::fmt(&self.0, f)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(addr: $name) -> u64 {
                addr.0
            }
        }
    };
}

addr_newtype! {
    /// A physical address on the memory bus.
    ///
    /// ```
    /// use hypernel_machine::addr::PhysAddr;
    /// let pa = PhysAddr::new(0x8000_1234);
    /// assert_eq!(pa.page_base(), PhysAddr::new(0x8000_1000));
    /// assert_eq!(pa.page_offset(), 0x234);
    /// ```
    PhysAddr
}

addr_newtype! {
    /// A virtual address as seen by EL0/EL1 software (stage-1 input) or EL2
    /// software (EL2-table input).
    ///
    /// ```
    /// use hypernel_machine::addr::{VirtAddr, KERNEL_VA_BASE};
    /// let va = VirtAddr::new(KERNEL_VA_BASE + 0x1000);
    /// assert!(va.is_kernel());
    /// ```
    VirtAddr
}

addr_newtype! {
    /// An intermediate physical address: the output of stage-1 translation
    /// and the input of stage-2 translation under nested paging.
    IntermAddr
}

impl VirtAddr {
    /// Returns `true` for addresses in the upper (kernel, `TTBR1`) half of
    /// the virtual address space: bits 63:48 all ones, as AArch64 requires
    /// for `TTBR1`-translated addresses with a 48-bit VA.
    #[inline]
    pub const fn is_kernel(self) -> bool {
        self.0 >> VA_BITS == 0xFFFF
    }

    /// Returns the stage-1 table index for translation level `level`
    /// (0 = root). Each level resolves 9 bits of the address.
    #[inline]
    pub const fn table_index(self, level: u32) -> usize {
        ((self.0 >> (PAGE_SHIFT + 9 * (3 - level))) & 0x1FF) as usize
    }
}

impl IntermAddr {
    /// Returns the stage-2 table index for translation level `level`.
    #[inline]
    pub const fn table_index(self, level: u32) -> usize {
        ((self.0 >> (PAGE_SHIFT + 9 * (3 - level))) & 0x1FF) as usize
    }
}

impl PhysAddr {
    /// Reinterprets the physical address as an IPA (identity mapping), the
    /// situation when nested paging is disabled.
    #[inline]
    pub const fn as_interm(self) -> IntermAddr {
        IntermAddr(self.0)
    }
}

impl IntermAddr {
    /// Reinterprets the IPA as a physical address (identity mapping), the
    /// situation when nested paging is disabled.
    #[inline]
    pub const fn as_phys(self) -> PhysAddr {
        PhysAddr(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_arithmetic() {
        let pa = PhysAddr::new(0x1234_5678);
        assert_eq!(pa.page_base().raw(), 0x1234_5000);
        assert_eq!(pa.page_offset(), 0x678);
        assert_eq!(pa.page_index(), 0x12345);
        assert!(!pa.is_page_aligned());
        assert!(pa.page_base().is_page_aligned());
    }

    #[test]
    fn word_arithmetic() {
        let pa = PhysAddr::new(0x1001);
        assert_eq!(pa.word_base().raw(), 0x1000);
        assert_eq!(pa.word_index(), 0x200);
        assert!(!pa.is_word_aligned());
        assert!(pa.word_base().is_word_aligned());
    }

    #[test]
    fn kernel_user_split() {
        assert!(VirtAddr::new(KERNEL_VA_BASE).is_kernel());
        assert!(VirtAddr::new(u64::MAX).is_kernel());
        assert!(!VirtAddr::new(0x7FFF_FFFF_FFFF).is_kernel());
        assert!(!VirtAddr::new(0).is_kernel());
    }

    #[test]
    fn table_indices_cover_va() {
        // VA = L0:1, L1:2, L2:3, L3:4, offset 5
        let va =
            VirtAddr::new((1u64 << (12 + 27)) | (2 << (12 + 18)) | (3 << (12 + 9)) | (4 << 12) | 5);
        assert_eq!(va.table_index(0), 1);
        assert_eq!(va.table_index(1), 2);
        assert_eq!(va.table_index(2), 3);
        assert_eq!(va.table_index(3), 4);
        assert_eq!(va.page_offset(), 5);
    }

    #[test]
    fn display_and_hex() {
        let pa = PhysAddr::new(0xBEEF);
        assert_eq!(format!("{pa}"), "0xbeef");
        assert_eq!(format!("{pa:x}"), "beef");
        assert_eq!(format!("{pa:X}"), "BEEF");
        assert_eq!(format!("{pa:?}"), "PhysAddr(0xbeef)");
    }

    #[test]
    fn conversions_roundtrip() {
        let pa = PhysAddr::from(42u64);
        let raw: u64 = pa.into();
        assert_eq!(raw, 42);
        assert_eq!(pa.as_interm().as_phys(), pa);
    }

    #[test]
    fn add_and_offset() {
        let a = VirtAddr::new(0x1000);
        assert_eq!(a.add(0x20).offset_from(a), 0x20);
    }
}
