//! Page-table descriptor format, walker and edit planning.
//!
//! The simulated translation regime mirrors AArch64 with a 4 KiB granule:
//! four levels (L0–L3) of 512-entry tables, with block (large-page)
//! descriptors allowed at L1 (1 GiB) and L2 (2 MiB — the "section" size the
//! paper's kernel instrumentation eliminates from the linear map, §6.2).
//!
//! The same format is used for the stage-1 (EL1), stage-2 (IPA→PA) and EL2
//! tables; only the meaning of the input address differs.
//!
//! Software never writes descriptors behind the simulator's back: edits are
//! *planned* here ([`MapPlan`]) and then applied as individual entry writes
//! by the kernel (directly) or by Hypersec (after hypercall verification) —
//! reproducing the paper's design where every kernel page-table write is
//! replaced by a hypercall (§5.2.1).

use crate::addr::{PhysAddr, PAGE_SHIFT};
use crate::mem::PhysMemory;

/// Memory as seen by the page-table walker and edit planners.
///
/// Hardware table walkers are coherent with the data cache, so the walker
/// must not read stale DRAM behind dirty cache lines. [`PhysMemory`]
/// implements this trait with raw reads (correct when no cache sits in
/// front, e.g. in unit tests); [`crate::machine::Machine`] exposes a
/// cache-coherent view via [`crate::machine::Machine::pt_view`].
pub trait PtMemory {
    /// Reads one descriptor-sized word, coherently.
    fn read_pt(&mut self, pa: PhysAddr) -> u64;
    /// Writes one descriptor-sized word, coherently.
    fn write_pt(&mut self, pa: PhysAddr, value: u64);
}

impl PtMemory for PhysMemory {
    fn read_pt(&mut self, pa: PhysAddr) -> u64 {
        self.read_u64(pa)
    }
    fn write_pt(&mut self, pa: PhysAddr, value: u64) {
        self.write_u64(pa, value);
    }
}

/// Number of descriptor entries per table.
pub const ENTRIES_PER_TABLE: usize = 512;
/// Number of translation levels.
pub const LEVELS: u32 = 4;

/// Descriptor flag bits (simulator-defined layout, ARM-like in spirit).
pub mod desc {
    /// Descriptor is valid.
    pub const VALID: u64 = 1 << 0;
    /// Descriptor points to a next-level table (levels 0–2 only).
    pub const TABLE: u64 = 1 << 1;
    /// Leaf is read-only.
    pub const RO: u64 = 1 << 2;
    /// Leaf is accessible from EL0 (user).
    pub const USER: u64 = 1 << 3;
    /// Leaf is execute-never.
    pub const XN: u64 = 1 << 4;
    /// Leaf is non-cacheable (device / MBM-monitored memory).
    pub const NON_CACHEABLE: u64 = 1 << 5;
    /// Mask selecting the output address bits.
    pub const ADDR_MASK: u64 = 0x0000_FFFF_FFFF_F000;
}

/// Effective permissions and attributes of a completed translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PagePerms {
    /// Writes allowed.
    pub write: bool,
    /// Instruction fetch allowed.
    pub exec: bool,
    /// EL0 (user) access allowed.
    pub user: bool,
    /// Accesses may be cached; `false` forces every access onto the bus.
    pub cacheable: bool,
}

impl PagePerms {
    /// Kernel read/write data, cacheable, no execute.
    pub const KERNEL_DATA: PagePerms = PagePerms {
        write: true,
        exec: false,
        user: false,
        cacheable: true,
    };
    /// Kernel read-only + execute (text), cacheable.
    pub const KERNEL_TEXT: PagePerms = PagePerms {
        write: false,
        exec: true,
        user: false,
        cacheable: true,
    };
    /// Kernel read-only data, cacheable.
    pub const KERNEL_RO: PagePerms = PagePerms {
        write: false,
        exec: false,
        user: false,
        cacheable: true,
    };
    /// User read/write data, cacheable, no execute.
    pub const USER_DATA: PagePerms = PagePerms {
        write: true,
        exec: false,
        user: true,
        cacheable: true,
    };
    /// Kernel read/write, non-cacheable (monitored or device memory).
    pub const KERNEL_DATA_NC: PagePerms = PagePerms {
        write: true,
        exec: false,
        user: false,
        cacheable: false,
    };

    /// Encodes the permissions into descriptor flag bits.
    pub fn to_bits(self) -> u64 {
        let mut bits = 0;
        if !self.write {
            bits |= desc::RO;
        }
        if !self.exec {
            bits |= desc::XN;
        }
        if self.user {
            bits |= desc::USER;
        }
        if !self.cacheable {
            bits |= desc::NON_CACHEABLE;
        }
        bits
    }

    /// Decodes permissions from descriptor flag bits.
    pub fn from_bits(bits: u64) -> Self {
        Self {
            write: bits & desc::RO == 0,
            exec: bits & desc::XN == 0,
            user: bits & desc::USER != 0,
            cacheable: bits & desc::NON_CACHEABLE == 0,
        }
    }
}

/// A decoded descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Descriptor {
    /// Unmapped.
    Invalid,
    /// Pointer to a next-level table.
    Table {
        /// Physical address of the next-level table page.
        next: PhysAddr,
    },
    /// Leaf mapping (page at L3, block at L1/L2).
    Leaf {
        /// Output physical (or intermediate-physical) address.
        out: PhysAddr,
        /// Leaf permissions.
        perms: PagePerms,
    },
}

impl Descriptor {
    /// Decodes a raw descriptor at translation `level`.
    pub fn decode(raw: u64, level: u32) -> Self {
        if raw & desc::VALID == 0 {
            return Self::Invalid;
        }
        if level < LEVELS - 1 && raw & desc::TABLE != 0 {
            Self::Table {
                next: PhysAddr::new(raw & desc::ADDR_MASK),
            }
        } else {
            Self::Leaf {
                out: PhysAddr::new(raw & desc::ADDR_MASK),
                perms: PagePerms::from_bits(raw),
            }
        }
    }

    /// Encodes this descriptor to its raw form.
    ///
    /// # Panics
    ///
    /// Panics if a table or leaf address is not page-aligned.
    pub fn encode(self) -> u64 {
        match self {
            Self::Invalid => 0,
            Self::Table { next } => {
                assert!(next.is_page_aligned(), "table address must be page-aligned");
                next.raw() | desc::VALID | desc::TABLE
            }
            Self::Leaf { out, perms } => {
                assert!(out.is_page_aligned(), "leaf address must be page-aligned");
                out.raw() | desc::VALID | perms.to_bits()
            }
        }
    }
}

/// Why a walk failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WalkFault {
    /// A descriptor on the path was invalid.
    Translation {
        /// Level of the invalid descriptor.
        level: u32,
    },
}

impl std::fmt::Display for WalkFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Translation { level } => {
                write!(f, "translation fault at level {level}")
            }
        }
    }
}

impl std::error::Error for WalkFault {}

/// The result of a successful walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkResult {
    /// Output address of the leaf, with the input offset folded in.
    pub out: PhysAddr,
    /// Leaf permissions.
    pub perms: PagePerms,
    /// Level at which the leaf was found (3 for a 4 KiB page).
    pub level: u32,
    /// Physical addresses of every descriptor read during the walk — the
    /// MMU charges one memory access per element, and under nested paging
    /// each of these itself requires a stage-2 translation.
    pub accesses: Vec<PhysAddr>,
}

fn table_index(input: u64, level: u32) -> usize {
    ((input >> (PAGE_SHIFT + 9 * (LEVELS - 1 - level))) & 0x1FF) as usize
}

fn block_offset_mask(level: u32) -> u64 {
    // L3 page: 4 KiB; L2 block: 2 MiB; L1 block: 1 GiB.
    (1u64 << (PAGE_SHIFT + 9 * (LEVELS - 1 - level))) - 1
}

/// Physical address of the descriptor for `input` at `level` within
/// `table`.
pub fn entry_addr(table: PhysAddr, input: u64, level: u32) -> PhysAddr {
    table.add(table_index(input, level) as u64 * 8)
}

/// Walks the table rooted at `root` for the 48-bit `input` address.
///
/// The input is a raw 48-bit value: a [`crate::addr::VirtAddr`] for stage-1
/// and EL2 walks, an [`crate::addr::IntermAddr`] for stage-2 walks. The
/// caller is responsible for masking off any upper tag bits (TTBR1
/// addresses keep only their low 48 bits).
///
/// # Errors
///
/// Returns [`WalkFault::Translation`] if any descriptor on the path is
/// invalid. The accesses performed before the fault are lost to the caller;
/// fault cost is charged separately by the MMU.
pub fn walk<M: PtMemory + ?Sized>(
    mem: &mut M,
    root: PhysAddr,
    input: u64,
) -> Result<WalkResult, WalkFault> {
    let input = input & ((1u64 << 48) - 1);
    let mut table = root;
    let mut accesses = Vec::with_capacity(LEVELS as usize);
    for level in 0..LEVELS {
        let eaddr = entry_addr(table, input, level);
        accesses.push(eaddr);
        let raw = mem.read_pt(eaddr);
        match Descriptor::decode(raw, level) {
            Descriptor::Invalid => return Err(WalkFault::Translation { level }),
            Descriptor::Table { next } => table = next,
            Descriptor::Leaf { out, perms } => {
                let off = input & block_offset_mask(level);
                return Ok(WalkResult {
                    out: out.add(off),
                    perms,
                    level,
                    accesses,
                });
            }
        }
    }
    unreachable!("level-3 descriptors always decode to Leaf or Invalid")
}

/// One planned descriptor write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryWrite {
    /// Page-aligned physical address of the table containing the entry.
    pub table: PhysAddr,
    /// Entry index within the table.
    pub index: usize,
    /// Raw descriptor value to store.
    pub value: u64,
}

impl EntryWrite {
    /// Physical address of the descriptor itself.
    pub fn addr(&self) -> PhysAddr {
        self.table.add(self.index as u64 * 8)
    }
}

/// A planned mapping operation: the table pages that must be freshly
/// allocated (and zeroed) plus the descriptor writes to perform, in order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MapPlan {
    /// Fresh table pages consumed from the allocator (already linked into
    /// the plan's writes).
    pub new_tables: Vec<PhysAddr>,
    /// Descriptor writes to perform, in order.
    pub writes: Vec<EntryWrite>,
}

/// Error returned when a mapping plan cannot be produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapError {
    /// The walk hit a block mapping above the requested level, which would
    /// need splitting (not supported by the planner).
    BlockInTheWay {
        /// Level of the offending block descriptor.
        level: u32,
    },
    /// The allocator ran out of pages for intermediate tables.
    OutOfTablePages,
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BlockInTheWay { level } => {
                write!(
                    f,
                    "existing block mapping at level {level} blocks the request"
                )
            }
            Self::OutOfTablePages => write!(f, "no free pages for intermediate tables"),
        }
    }
}

impl std::error::Error for MapError {}

/// Plans the descriptor writes needed to map `input` → `out` with `perms`
/// as a leaf at `leaf_level` (3 = 4 KiB page, 2 = 2 MiB section, 1 = 1 GiB
/// block). Intermediate tables are taken from `alloc_table`; the planner
/// assumes those pages are zero-filled.
///
/// The plan only *describes* the writes — nothing is modified. This lets
/// the kernel route the writes through hypercalls under Hypernel.
///
/// # Errors
///
/// * [`MapError::BlockInTheWay`] if a larger mapping already covers the
///   range.
/// * [`MapError::OutOfTablePages`] if `alloc_table` returns `None`.
pub fn plan_map<M: PtMemory + ?Sized>(
    mem: &mut M,
    root: PhysAddr,
    input: u64,
    out: PhysAddr,
    perms: PagePerms,
    leaf_level: u32,
    alloc_table: &mut dyn FnMut() -> Option<PhysAddr>,
) -> Result<MapPlan, MapError> {
    assert!(
        (1..LEVELS).contains(&leaf_level),
        "leaf level must be 1..=3"
    );
    let input = input & ((1u64 << 48) - 1);
    let mut plan = MapPlan::default();
    let mut table = root;
    for level in 0..leaf_level {
        let eaddr = entry_addr(table, input, level);
        let raw = mem.read_pt(eaddr);
        match Descriptor::decode(raw, level) {
            Descriptor::Table { next } => table = next,
            Descriptor::Invalid => {
                let fresh = alloc_table().ok_or(MapError::OutOfTablePages)?;
                plan.new_tables.push(fresh);
                plan.writes.push(EntryWrite {
                    table,
                    index: table_index(input, level),
                    value: Descriptor::Table { next: fresh }.encode(),
                });
                table = fresh;
            }
            Descriptor::Leaf { .. } => return Err(MapError::BlockInTheWay { level }),
        }
    }
    plan.writes.push(EntryWrite {
        table,
        index: table_index(input, leaf_level),
        value: Descriptor::Leaf { out, perms }.encode(),
    });
    Ok(plan)
}

/// Plans the single descriptor write that unmaps the leaf covering
/// `input`, or `None` if the address is not mapped.
pub fn plan_unmap<M: PtMemory + ?Sized>(
    mem: &mut M,
    root: PhysAddr,
    input: u64,
) -> Option<EntryWrite> {
    let input = input & ((1u64 << 48) - 1);
    let mut table = root;
    for level in 0..LEVELS {
        let eaddr = entry_addr(table, input, level);
        let raw = mem.read_pt(eaddr);
        match Descriptor::decode(raw, level) {
            Descriptor::Invalid => return None,
            Descriptor::Table { next } => table = next,
            Descriptor::Leaf { .. } => {
                return Some(EntryWrite {
                    table,
                    index: table_index(input, level),
                    value: 0,
                })
            }
        }
    }
    None
}

/// Plans a permissions change on the existing leaf covering `input`,
/// preserving the output address. Returns `None` if unmapped.
pub fn plan_protect<M: PtMemory + ?Sized>(
    mem: &mut M,
    root: PhysAddr,
    input: u64,
    perms: PagePerms,
) -> Option<EntryWrite> {
    let input = input & ((1u64 << 48) - 1);
    let mut table = root;
    for level in 0..LEVELS {
        let eaddr = entry_addr(table, input, level);
        let raw = mem.read_pt(eaddr);
        match Descriptor::decode(raw, level) {
            Descriptor::Invalid => return None,
            Descriptor::Table { next } => table = next,
            Descriptor::Leaf { out, .. } => {
                return Some(EntryWrite {
                    table,
                    index: table_index(input, level),
                    value: Descriptor::Leaf { out, perms }.encode(),
                })
            }
        }
    }
    None
}

/// Applies an entry write directly to physical memory. Used by trusted
/// contexts (boot code, Hypersec after verification); the untrusted kernel
/// under Hypernel must go through hypercalls instead.
pub fn apply_entry_write<M: PtMemory + ?Sized>(mem: &mut M, write: EntryWrite) {
    mem.write_pt(write.addr(), write.value);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PAGE_SIZE;

    struct TableAlloc {
        next: u64,
        limit: u64,
    }

    impl TableAlloc {
        fn new(base: u64, pages: u64) -> Self {
            Self {
                next: base,
                limit: base + pages * PAGE_SIZE,
            }
        }
        fn take(&mut self) -> Option<PhysAddr> {
            if self.next >= self.limit {
                return None;
            }
            let pa = PhysAddr::new(self.next);
            self.next += PAGE_SIZE;
            Some(pa)
        }
    }

    fn map(
        mem: &mut PhysMemory,
        root: PhysAddr,
        alloc: &mut TableAlloc,
        va: u64,
        pa: PhysAddr,
        perms: PagePerms,
        level: u32,
    ) -> MapPlan {
        let plan = plan_map(mem, root, va, pa, perms, level, &mut || alloc.take())
            .expect("planning must succeed");
        for w in &plan.writes {
            apply_entry_write(mem, *w);
        }
        plan
    }

    #[test]
    fn map_then_walk_page() {
        let mut mem = PhysMemory::new(1 << 24);
        let root = PhysAddr::new(0x10_0000);
        let mut alloc = TableAlloc::new(0x20_0000, 16);
        let va = 0x0000_1234_5000u64;
        map(
            &mut mem,
            root,
            &mut alloc,
            va,
            PhysAddr::new(0x4_2000),
            PagePerms::KERNEL_DATA,
            3,
        );
        let res = walk(&mut mem, root, va + 0x123).expect("mapped");
        assert_eq!(res.out, PhysAddr::new(0x4_2123));
        assert_eq!(res.level, 3);
        assert_eq!(res.accesses.len(), 4);
        assert!(res.perms.write);
        assert!(!res.perms.user);
    }

    #[test]
    fn walk_unmapped_faults_at_root() {
        let mut mem = PhysMemory::new(1 << 20);
        let root = PhysAddr::new(0x1000);
        let err = walk(&mut mem, root, 0xABCDE000).unwrap_err();
        assert_eq!(err, WalkFault::Translation { level: 0 });
        assert_eq!(err.to_string(), "translation fault at level 0");
    }

    #[test]
    fn section_mapping_walks_in_three_accesses() {
        let mut mem = PhysMemory::new(1 << 24);
        let root = PhysAddr::new(0x10_0000);
        let mut alloc = TableAlloc::new(0x20_0000, 16);
        let va = 0x0000_4000_0000u64; // 2 MiB aligned
        map(
            &mut mem,
            root,
            &mut alloc,
            va,
            PhysAddr::new(0x80_0000),
            PagePerms::KERNEL_DATA,
            2,
        );
        let res = walk(&mut mem, root, va + 0x12_3456).expect("mapped");
        assert_eq!(res.out, PhysAddr::new(0x92_3456));
        assert_eq!(res.level, 2);
        assert_eq!(res.accesses.len(), 3);
    }

    #[test]
    fn second_map_in_same_table_allocates_nothing() {
        let mut mem = PhysMemory::new(1 << 24);
        let root = PhysAddr::new(0x10_0000);
        let mut alloc = TableAlloc::new(0x20_0000, 16);
        let p1 = map(
            &mut mem,
            root,
            &mut alloc,
            0x1000,
            PhysAddr::new(0x5000),
            PagePerms::USER_DATA,
            3,
        );
        assert_eq!(p1.new_tables.len(), 3); // L1, L2, L3 tables
        let p2 = map(
            &mut mem,
            root,
            &mut alloc,
            0x2000,
            PhysAddr::new(0x6000),
            PagePerms::USER_DATA,
            3,
        );
        assert!(p2.new_tables.is_empty());
        assert_eq!(p2.writes.len(), 1);
    }

    #[test]
    fn unmap_then_fault() {
        let mut mem = PhysMemory::new(1 << 24);
        let root = PhysAddr::new(0x10_0000);
        let mut alloc = TableAlloc::new(0x20_0000, 16);
        map(
            &mut mem,
            root,
            &mut alloc,
            0x3000,
            PhysAddr::new(0x7000),
            PagePerms::KERNEL_DATA,
            3,
        );
        let w = plan_unmap(&mut mem, root, 0x3000).expect("mapped");
        apply_entry_write(&mut mem, w);
        assert!(walk(&mut mem, root, 0x3000).is_err());
        assert!(plan_unmap(&mut mem, root, 0x3000).is_none());
    }

    #[test]
    fn protect_changes_perms_only() {
        let mut mem = PhysMemory::new(1 << 24);
        let root = PhysAddr::new(0x10_0000);
        let mut alloc = TableAlloc::new(0x20_0000, 16);
        map(
            &mut mem,
            root,
            &mut alloc,
            0x3000,
            PhysAddr::new(0x7000),
            PagePerms::KERNEL_DATA,
            3,
        );
        let w = plan_protect(&mut mem, root, 0x3000, PagePerms::KERNEL_RO).expect("mapped");
        apply_entry_write(&mut mem, w);
        let res = walk(&mut mem, root, 0x3000).expect("still mapped");
        assert_eq!(res.out, PhysAddr::new(0x7000));
        assert!(!res.perms.write);
    }

    #[test]
    fn block_in_the_way() {
        let mut mem = PhysMemory::new(1 << 24);
        let root = PhysAddr::new(0x10_0000);
        let mut alloc = TableAlloc::new(0x20_0000, 16);
        map(
            &mut mem,
            root,
            &mut alloc,
            0x4000_0000,
            PhysAddr::new(0x80_0000),
            PagePerms::KERNEL_DATA,
            2,
        );
        let err = plan_map(
            &mut mem,
            root,
            0x4000_0000,
            PhysAddr::new(0x9000),
            PagePerms::KERNEL_DATA,
            3,
            &mut || alloc.take(),
        )
        .unwrap_err();
        assert_eq!(err, MapError::BlockInTheWay { level: 2 });
    }

    #[test]
    fn allocator_exhaustion() {
        let mut mem = PhysMemory::new(1 << 24);
        let root = PhysAddr::new(0x10_0000);
        let mut alloc = TableAlloc::new(0x20_0000, 1);
        let err = plan_map(
            &mut mem,
            root,
            0x1000,
            PhysAddr::new(0x5000),
            PagePerms::KERNEL_DATA,
            3,
            &mut || alloc.take(),
        )
        .unwrap_err();
        assert_eq!(err, MapError::OutOfTablePages);
    }

    #[test]
    fn descriptor_roundtrip() {
        for d in [
            Descriptor::Invalid,
            Descriptor::Table {
                next: PhysAddr::new(0xABC000),
            },
            Descriptor::Leaf {
                out: PhysAddr::new(0xDEF000),
                perms: PagePerms {
                    write: false,
                    exec: true,
                    user: true,
                    cacheable: false,
                },
            },
        ] {
            let level = 1;
            assert_eq!(Descriptor::decode(d.encode(), level), d);
        }
    }

    #[test]
    fn perms_bits_roundtrip() {
        for &p in &[
            PagePerms::KERNEL_DATA,
            PagePerms::KERNEL_TEXT,
            PagePerms::KERNEL_RO,
            PagePerms::USER_DATA,
            PagePerms::KERNEL_DATA_NC,
        ] {
            assert_eq!(PagePerms::from_bits(p.to_bits()), p);
        }
    }

    #[test]
    fn kernel_va_upper_bits_are_masked() {
        let mut mem = PhysMemory::new(1 << 24);
        let root = PhysAddr::new(0x10_0000);
        let mut alloc = TableAlloc::new(0x20_0000, 16);
        let kva = crate::addr::KERNEL_VA_BASE + 0x5000;
        map(
            &mut mem,
            root,
            &mut alloc,
            kva,
            PhysAddr::new(0x9000),
            PagePerms::KERNEL_DATA,
            3,
        );
        let res = walk(&mut mem, root, kva).expect("mapped");
        assert_eq!(res.out, PhysAddr::new(0x9000));
    }
}
