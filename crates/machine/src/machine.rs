//! The simulated machine: CPU front-end, MMU, caches, bus and trap routing.
//!
//! [`Machine`] is the passive hardware state; software (the kernel,
//! Hypersec, workloads) drives it by calling its methods. Operations that
//! can trap to EL2 take a `hyp: &mut dyn Hyp` argument — the installed
//! EL2 software (Hypersec, a KVM-style hypervisor, or [`NullHyp`] for a
//! native machine) — and the machine invokes it synchronously, exactly as
//! a hardware exception would transfer control.
//!
//! Every operation charges cycles from the [`CostModel`], which is how the
//! paper's performance experiments (Table 1, Figure 6) are reproduced.

use crate::addr::{IntermAddr, PhysAddr, VirtAddr};
use crate::bus::{BusTransaction, MemoryBus, LINE_WORDS};
use crate::cache::{CachePlan, DataCache, LINE_SIZE};
use crate::cost::CostModel;
use crate::fault::{FaultStats, SharedFaults};
use crate::irq::IrqController;
use crate::mem::PhysMemory;
use crate::pagetable::{self, PagePerms, WalkFault};
use crate::regs::{ExceptionLevel, SysReg, SysRegs};
use crate::shadow::{PageTag, ShadowTags, Writer as ShadowWriter};
use crate::tlb::{Regime, Tlb, TlbEntry};
use crate::trace::{TraceBuffer, TraceEvent};
use hypernel_telemetry::{Event, PointKind, SharedSink, SpanKind, Track};

/// The kind of memory access being performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Data load.
    Read,
    /// Data store.
    Write,
}

impl std::fmt::Display for AccessKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Read => write!(f, "read"),
            Self::Write => write!(f, "write"),
        }
    }
}

/// A security-policy denial produced by EL2 software.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyViolation {
    /// Machine-readable reason code (defined by the EL2 software).
    pub code: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl PolicyViolation {
    /// Creates a violation with the given code and message.
    pub fn new(code: u32, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for PolicyViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "policy violation {}: {}", self.code, self.message)
    }
}

impl std::error::Error for PolicyViolation {}

/// Architectural exceptions surfaced to the executing software.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Exception {
    /// Stage-1 data abort, delivered to the EL1 kernel (e.g. demand
    /// paging).
    DataAbort {
        /// The faulting virtual address.
        va: VirtAddr,
        /// The attempted access.
        kind: AccessKind,
        /// Whether the fault is a translation (unmapped) or permission
        /// fault.
        permission: bool,
    },
    /// The EL2 software denied the operation.
    Denied(PolicyViolation),
    /// A stage-2 abort with no hypervisor resolution (hardware would hang
    /// or the VM would be killed).
    Stage2Abort {
        /// The faulting intermediate physical address.
        ipa: IntermAddr,
        /// The attempted access.
        kind: AccessKind,
    },
    /// An undefined-instruction style fault (e.g. EL0 touching a system
    /// register).
    Undefined {
        /// Short description of the offending operation.
        what: &'static str,
    },
}

impl std::fmt::Display for Exception {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DataAbort {
                va,
                kind,
                permission,
            } => write!(
                f,
                "{} abort at {va} ({})",
                kind,
                if *permission {
                    "permission"
                } else {
                    "translation"
                }
            ),
            Self::Denied(v) => write!(f, "{v}"),
            Self::Stage2Abort { ipa, kind } => write!(f, "unhandled stage-2 {kind} abort at {ipa}"),
            Self::Undefined { what } => write!(f, "undefined operation: {what}"),
        }
    }
}

impl std::error::Error for Exception {}

impl From<PolicyViolation> for Exception {
    fn from(v: PolicyViolation) -> Self {
        Self::Denied(v)
    }
}

/// A fault part-way through a block access ([`Machine::read_block`] /
/// [`Machine::write_block`]): `completed` words transferred, then the
/// next word raised `exception`. The faulting word's attempt has the
/// exact side effects a per-word access would have had, so callers can
/// resume (or emulate the faulting word) without replaying it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockFault {
    /// Words successfully transferred before the fault.
    pub completed: u64,
    /// The exception the faulting word raised.
    pub exception: Exception,
}

impl std::fmt::Display for BlockFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} after {} words", self.exception, self.completed)
    }
}

impl std::error::Error for BlockFault {}

/// Resolution of a stage-2 fault by the hypervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage2Outcome {
    /// The handler repaired the stage-2 tables; the machine retries the
    /// translation.
    Retry,
    /// The handler performed (emulated) the access itself; the machine
    /// does not replay it. Only meaningful for writes.
    Emulated,
}

/// The EL2 software installed on the machine.
///
/// Implementations: Hypersec (the paper's secure-space software), the
/// KVM-style nested-paging hypervisor baseline, and [`NullHyp`] for a
/// native machine where EL2 is unused.
pub trait Hyp {
    /// Handles an `HVC` from EL1. Returns a value to the caller or denies.
    ///
    /// # Errors
    ///
    /// Returns a [`PolicyViolation`] if the request violates the security
    /// policy; the machine surfaces it to the caller as
    /// [`Exception::Denied`].
    fn on_hypercall(
        &mut self,
        machine: &mut Machine,
        call: u64,
        args: [u64; 4],
    ) -> Result<u64, PolicyViolation>;

    /// Handles a trapped EL1 write to a VM-group system register
    /// (`HCR_EL2.TVM`). On `Ok(())` the handler has either applied the
    /// write itself or decided to discard it.
    ///
    /// # Errors
    ///
    /// Returns a [`PolicyViolation`] to reject the write.
    fn on_sysreg_trap(
        &mut self,
        machine: &mut Machine,
        reg: SysReg,
        value: u64,
    ) -> Result<(), PolicyViolation>;

    /// Handles a stage-2 fault (translation or permission). `value` is the
    /// store value for write faults.
    ///
    /// # Errors
    ///
    /// Returns a [`PolicyViolation`] to kill the access.
    fn on_stage2_fault(
        &mut self,
        machine: &mut Machine,
        ipa: IntermAddr,
        kind: AccessKind,
        value: Option<u64>,
    ) -> Result<Stage2Outcome, PolicyViolation>;

    /// Called when EL1 executes `WFI` (blocking wait). Hypervisors that
    /// trap WFI (KVM does, to schedule the host) charge their world-switch
    /// cost here; the default is a no-op, as on bare metal and under
    /// Hypersec (which does not set `HCR_EL2.TWI`).
    fn on_wfi(&mut self, machine: &mut Machine) {
        let _ = machine;
    }

    /// Called when EL1 sends a software-generated interrupt (an IPI via
    /// the GIC's `SGI` register). Under KVM the SGI register access traps
    /// so the vGIC can inject the virtual IPI; on bare metal and under
    /// Hypersec it is free.
    fn on_sgi(&mut self, machine: &mut Machine) {
        let _ = machine;
    }
}

/// The EL2 handler of a machine with no hypervisor: every EL2 entry is a
/// configuration error.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullHyp;

impl NullHyp {
    fn violation() -> PolicyViolation {
        PolicyViolation::new(u32::MAX, "no EL2 software installed")
    }
}

impl Hyp for NullHyp {
    fn on_hypercall(
        &mut self,
        _machine: &mut Machine,
        _call: u64,
        _args: [u64; 4],
    ) -> Result<u64, PolicyViolation> {
        Err(Self::violation())
    }

    fn on_sysreg_trap(
        &mut self,
        _machine: &mut Machine,
        _reg: SysReg,
        _value: u64,
    ) -> Result<(), PolicyViolation> {
        Err(Self::violation())
    }

    fn on_stage2_fault(
        &mut self,
        _machine: &mut Machine,
        _ipa: IntermAddr,
        _kind: AccessKind,
        _value: Option<u64>,
    ) -> Result<Stage2Outcome, PolicyViolation> {
        Err(Self::violation())
    }
}

/// Running event counters for a machine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Translated data reads performed.
    pub reads: u64,
    /// Translated data writes performed.
    pub writes: u64,
    /// Accesses that bypassed the cache (non-cacheable attribute).
    pub uncached_accesses: u64,
    /// Hypercalls taken.
    pub hypercalls: u64,
    /// VM-register writes trapped to EL2.
    pub sysreg_traps: u64,
    /// Stage-2 faults routed to the hypervisor.
    pub stage2_faults: u64,
    /// Stage-1 aborts delivered to EL1.
    pub el1_aborts: u64,
    /// Interrupts delivered to software.
    pub irqs_delivered: u64,
}

/// Static configuration of a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// DRAM size in bytes.
    pub dram_size: u64,
    /// Cycle cost table.
    pub cost: CostModel,
    /// Main-TLB capacity in entries.
    pub tlb_entries: usize,
    /// Stage-2 TLB capacity in entries.
    pub stage2_tlb_entries: usize,
    /// Data cache geometry: number of sets.
    pub cache_sets: usize,
    /// Data cache geometry: associativity.
    pub cache_ways: usize,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self {
            // 2 GiB, as in the paper's motherboard-DRAM experiments (§7.1).
            dram_size: 2 << 30,
            cost: CostModel::calibrated(),
            tlb_entries: 512,
            stage2_tlb_entries: 512,
            cache_sets: 128,
            cache_ways: 4,
        }
    }
}

/// The simulated machine.
///
/// ```
/// use hypernel_machine::machine::{Machine, MachineConfig};
///
/// let machine = Machine::new(MachineConfig::default());
/// assert_eq!(machine.cycles(), 0);
/// ```
///
/// `Clone` deep-copies all architectural state (memory, TLB, cache,
/// registers, attached bus devices), supporting warm-boot forking. Two
/// host-side attachments are shared handles and are *not* deepened: the
/// telemetry sink and the fault injector (both `Rc`). Callers forking a
/// machine must re-wire those (see `System::fork` in `hypernel-core`).
#[derive(Clone)]
pub struct Machine {
    mem: PhysMemory,
    bus: MemoryBus,
    cache: DataCache,
    tlb: Tlb,
    regs: SysRegs,
    irq: IrqController,
    el: ExceptionLevel,
    cycles: u64,
    cost: CostModel,
    stats: MachineStats,
    trace: Option<TraceBuffer>,
    sink: Option<SharedSink>,
    faults: Option<SharedFaults>,
    /// Host-side switch for the block-access streaming path. Model
    /// state is byte-identical either way; see [`crate::fastpath`].
    block_fastpath: bool,
    /// Ownership sanitizer (off by default; see [`crate::shadow`]).
    /// Checked at the physical-access chokepoint with zero simulated
    /// cycles — enabling it never changes a simulated result.
    shadow: Option<Box<ShadowTags>>,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("el", &self.el)
            .field("cycles", &self.cycles)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

const MAX_STAGE2_RETRIES: u32 = 8;

impl Machine {
    /// Creates a machine in EL2 (boot state) with the MMU off.
    pub fn new(config: MachineConfig) -> Self {
        Self {
            mem: PhysMemory::new(config.dram_size),
            bus: MemoryBus::new(),
            cache: DataCache::new(config.cache_sets, config.cache_ways),
            tlb: Tlb::new(config.tlb_entries, config.stage2_tlb_entries),
            regs: SysRegs::new(),
            irq: IrqController::new(),
            el: ExceptionLevel::El2,
            cycles: 0,
            cost: config.cost,
            stats: MachineStats::default(),
            trace: None,
            sink: None,
            faults: None,
            block_fastpath: crate::fastpath::fastpath_enabled(),
            shadow: None,
        }
    }

    /// Installs (or, with `None`, removes) the ownership sanitizer.
    /// Tags start as seeded by the caller; the kernel maintains them
    /// at its allocation/mapping sites via [`Machine::tag_page`].
    pub fn set_shadow_tags(&mut self, shadow: Option<Box<ShadowTags>>) {
        self.shadow = shadow;
    }

    /// The installed ownership sanitizer, if any.
    pub fn shadow_tags(&self) -> Option<&ShadowTags> {
        self.shadow.as_deref()
    }

    /// Mutable access to the installed ownership sanitizer, if any.
    pub fn shadow_tags_mut(&mut self) -> Option<&mut ShadowTags> {
        self.shadow.as_deref_mut()
    }

    /// Retags the page containing `pa`. No-op (one branch) when the
    /// sanitizer is disabled, so allocation sites call unconditionally.
    #[inline]
    pub fn tag_page(&mut self, pa: PhysAddr, tag: PageTag) {
        if let Some(shadow) = &mut self.shadow {
            shadow.tag_page(pa, tag);
        }
    }

    /// Retags every page of `[base, base + len)`. No-op when disabled.
    #[inline]
    pub fn tag_range(&mut self, base: PhysAddr, len: u64, tag: PageTag) {
        if let Some(shadow) = &mut self.shadow {
            shadow.tag_range(base, len, tag);
        }
    }

    /// The sanitizer writer identity for the current exception level.
    fn shadow_writer(&self) -> ShadowWriter {
        match self.el {
            ExceptionLevel::El0 => ShadowWriter::El0,
            ExceptionLevel::El1 => ShadowWriter::El1,
            ExceptionLevel::El2 => ShadowWriter::El2,
        }
    }

    /// Enables or disables the block-access streaming fast path
    /// (testing hook; the default follows
    /// [`crate::fastpath::fastpath_enabled`]).
    pub fn set_block_fastpath(&mut self, enabled: bool) {
        self.block_fastpath = enabled;
    }

    /// Installs (or removes) the fault injector on the machine's own
    /// fault sites — lost hypercalls here, snoop corruption on the bus.
    /// The same shared injector is typically also handed to bus devices
    /// (the MBM) so one schedule covers the whole pipeline.
    pub fn set_fault_injector(&mut self, faults: Option<SharedFaults>) {
        self.bus.set_fault_injector(faults.clone());
        self.faults = faults;
    }

    /// The installed fault injector, for cloning into devices.
    pub fn fault_injector(&self) -> Option<SharedFaults> {
        self.faults.clone()
    }

    /// Injection counters of the installed fault injector, if any.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.faults.as_ref().map(|f| f.borrow().stats())
    }

    /// Enables architectural event tracing with a ring of `capacity`
    /// records. Free when disabled (the default).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(TraceBuffer::new(capacity));
    }

    /// Disables tracing and returns the buffer, if any.
    pub fn disable_trace(&mut self) -> Option<TraceBuffer> {
        self.trace.take()
    }

    /// The live trace buffer, if tracing is enabled.
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.trace.as_ref()
    }

    /// Installs (or, with `None`, removes) the telemetry sink. The same
    /// shared sink is typically also handed to the kernel, Hypersec and
    /// the MBM so all layers stamp one event stream on one clock.
    pub fn set_telemetry_sink(&mut self, sink: Option<SharedSink>) {
        self.sink = sink;
    }

    /// The installed telemetry sink, for cloning into other components.
    pub fn telemetry_sink(&self) -> Option<SharedSink> {
        self.sink.clone()
    }

    /// The telemetry track for the current exception level.
    pub fn track(&self) -> Track {
        match self.el {
            ExceptionLevel::El0 => Track::El0,
            ExceptionLevel::El1 => Track::El1,
            ExceptionLevel::El2 => Track::El2,
        }
    }

    /// Emits a point event on the current EL's track. One branch when no
    /// sink is installed.
    #[inline]
    pub fn emit_mark(&self, point: PointKind, a: u64, b: u64) {
        if let Some(sink) = &self.sink {
            sink.borrow_mut()
                .record(&Event::mark(self.cycles, self.track(), point, a, b));
        }
    }

    /// Opens a span on the current EL's track.
    #[inline]
    pub fn emit_begin(&self, span: SpanKind, arg: u64) {
        if let Some(sink) = &self.sink {
            sink.borrow_mut()
                .record(&Event::begin(self.cycles, self.track(), span, arg));
        }
    }

    /// Closes the innermost open span of `span`'s kind on the current
    /// EL's track.
    #[inline]
    pub fn emit_end(&self, span: SpanKind, arg: u64) {
        if let Some(sink) = &self.sink {
            sink.borrow_mut()
                .record(&Event::end(self.cycles, self.track(), span, arg));
        }
    }

    fn trace_event(&mut self, event: TraceEvent) {
        if let Some(buf) = &mut self.trace {
            buf.record(self.cycles, event);
        }
        if self.sink.is_some() {
            let (point, a, b) = match event {
                TraceEvent::Hypercall { call } => (PointKind::Hypercall, call, 0),
                TraceEvent::SysregTrap { reg, value } => (PointKind::SysregTrap, reg as u64, value),
                TraceEvent::Stage2Fault { ipa, kind } => {
                    (PointKind::Stage2Fault, ipa.raw(), kind as u64)
                }
                TraceEvent::DataAbort {
                    va,
                    kind,
                    permission,
                } => (
                    PointKind::DataAbort,
                    va.raw(),
                    (u64::from(permission) << 1) | kind as u64,
                ),
                TraceEvent::IrqRaised { line } => (PointKind::IrqRaised, u64::from(line.0), 0),
                TraceEvent::Wfi => (PointKind::Wfi, 0, 0),
                TraceEvent::Sgi => (PointKind::Sgi, 0, 0),
                TraceEvent::TlbMaintenance => (PointKind::TlbMaintenance, 0, 0),
            };
            self.emit_mark(point, a, b);
        }
    }

    // ------------------------------------------------------------------
    // State accessors
    // ------------------------------------------------------------------

    /// Total cycles elapsed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Event counters.
    pub fn stats(&self) -> MachineStats {
        self.stats
    }

    /// The cost model in effect.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The current exception level.
    pub fn el(&self) -> ExceptionLevel {
        self.el
    }

    /// Changes the current exception level (used by the kernel/hypervisor
    /// scaffolding to model `ERET`/exception entry; costs are charged by
    /// the dedicated entry helpers).
    pub fn set_el(&mut self, el: ExceptionLevel) {
        self.el = el;
    }

    /// The system register file (read-only view).
    pub fn regs(&self) -> &SysRegs {
        &self.regs
    }

    /// The interrupt controller.
    pub fn irq(&self) -> &IrqController {
        &self.irq
    }

    /// Mutable interrupt controller (software acks through this).
    pub fn irq_mut(&mut self) -> &mut IrqController {
        &mut self.irq
    }

    /// The memory bus (to attach devices or inspect snoopers).
    pub fn bus(&self) -> &MemoryBus {
        &self.bus
    }

    /// Mutable memory bus.
    pub fn bus_mut(&mut self) -> &mut MemoryBus {
        &mut self.bus
    }

    /// The TLB (statistics inspection).
    pub fn tlb(&self) -> &Tlb {
        &self.tlb
    }

    /// Mutable TLB — for per-structure host fast-path toggles
    /// ([`Tlb::set_l0_enabled`]) in tests that compare the two paths
    /// within one process.
    pub fn tlb_mut(&mut self) -> &mut Tlb {
        &mut self.tlb
    }

    /// The data cache (statistics inspection).
    pub fn data_cache(&self) -> &DataCache {
        &self.cache
    }

    /// Charges `n` cycles of computation.
    pub fn charge(&mut self, n: u64) {
        self.cycles += n;
    }

    // ------------------------------------------------------------------
    // Debug (cost-free, trap-free) physical access — for boot code,
    // device emulation and tests. Not visible on the bus.
    // ------------------------------------------------------------------

    /// Reads physical memory without cost, translation or bus visibility.
    /// Coherent: sees dirty data still sitting in the CPU cache.
    pub fn debug_read_phys(&mut self, pa: PhysAddr) -> u64 {
        if self.cache.contains(pa) {
            self.cache.read_word(pa.word_base())
        } else {
            self.mem.read_u64(pa)
        }
    }

    /// Writes physical memory without cost, translation or bus visibility.
    /// Coherent: updates a resident cache line as well as DRAM.
    ///
    /// Intended for boot-time population and test setup only — the MBM
    /// cannot see these writes.
    pub fn debug_write_phys(&mut self, pa: PhysAddr, value: u64) {
        if self.cache.contains(pa) {
            self.cache.write_word(pa.word_base(), value);
        }
        self.mem.write_u64(pa, value);
    }

    /// Direct access to backing memory for trusted device/boot code.
    pub fn mem_mut(&mut self) -> &mut PhysMemory {
        &mut self.mem
    }

    /// Bytes of simulated DRAM.
    pub fn dram_size(&self) -> u64 {
        self.mem.size()
    }

    /// A cache-coherent view of physical memory for page-table planners
    /// and walkers (hardware walkers snoop the data cache, so stale DRAM
    /// behind dirty lines must never be observed).
    pub fn pt_view(&mut self) -> CoherentMemView<'_> {
        CoherentMemView {
            cache: &mut self.cache,
            mem: &mut self.mem,
        }
    }

    /// Zeroes the 4 KiB page containing `pa`, discarding any stale cached
    /// lines of the recycled frame. Cost-free (the cycle cost of
    /// `clear_page` is charged separately by callers that model it).
    pub fn debug_zero_page(&mut self, pa: PhysAddr) {
        let base = pa.page_base();
        self.cache.discard_page(base);
        self.mem.fill(base, crate::addr::PAGE_SIZE, 0);
    }

    /// A DMA write: goes straight onto the bus, bypassing the CPU's MMU
    /// and caches — the vector discussed in the paper's §8 (DMA attacks).
    pub fn dma_write_u64(&mut self, pa: PhysAddr, value: u64) {
        if let Some(shadow) = &mut self.shadow {
            shadow.check_write(ShadowWriter::Dma, pa.word_base(), value);
        }
        self.cycles += self.cost.dram_access;
        self.bus.issue(
            BusTransaction::WriteWord {
                addr: pa.word_base(),
                value,
            },
            &mut self.mem,
            &mut self.irq,
            self.cycles,
        );
    }

    // ------------------------------------------------------------------
    // System registers, hypercalls, exceptions
    // ------------------------------------------------------------------

    /// Writes a system register from the current exception level,
    /// applying privilege checks and `HCR_EL2.TVM` trapping.
    ///
    /// # Errors
    ///
    /// * [`Exception::Undefined`] if the current EL may not access `reg`.
    /// * [`Exception::Denied`] if the write traps and EL2 software rejects
    ///   it.
    pub fn write_sysreg(
        &mut self,
        reg: SysReg,
        value: u64,
        hyp: &mut dyn Hyp,
    ) -> Result<(), Exception> {
        match self.el {
            ExceptionLevel::El0 => Err(Exception::Undefined {
                what: "system register write from EL0",
            }),
            ExceptionLevel::El1 => {
                if reg.is_el2_only() {
                    return Err(Exception::Undefined {
                        what: "EL2 register write from EL1",
                    });
                }
                if reg.is_vm_group() && self.regs.tvm_enabled() {
                    self.stats.sysreg_traps += 1;
                    self.trace_event(TraceEvent::SysregTrap { reg, value });
                    self.cycles += self.cost.hyp_roundtrip;
                    let from = self.el;
                    self.el = ExceptionLevel::El2;
                    self.emit_begin(SpanKind::SysregVerify, reg as u64);
                    let result = hyp.on_sysreg_trap(self, reg, value);
                    self.emit_end(SpanKind::SysregVerify, u64::from(result.is_err()));
                    self.el = from;
                    result.map_err(Exception::Denied)
                } else {
                    self.regs.write(reg, value);
                    if reg.affects_translation() {
                        self.tlb.l0_invalidate();
                    }
                    Ok(())
                }
            }
            ExceptionLevel::El2 => {
                self.regs.write(reg, value);
                if reg.affects_translation() {
                    self.tlb.l0_invalidate();
                }
                Ok(())
            }
        }
    }

    /// Applies a system-register write with EL2 authority. Only callable
    /// while executing at EL2 (i.e. from `Hyp` handlers or boot code).
    ///
    /// # Panics
    ///
    /// Panics if called while the machine is not at EL2 — that would let
    /// unprivileged code forge register state.
    pub fn el2_write_sysreg(&mut self, reg: SysReg, value: u64) {
        assert_eq!(
            self.el,
            ExceptionLevel::El2,
            "el2_write_sysreg requires EL2 execution"
        );
        self.regs.write(reg, value);
        if reg.affects_translation() {
            self.tlb.l0_invalidate();
        }
    }

    /// Reads a system register (reads are not trapped by TVM).
    pub fn read_sysreg(&self, reg: SysReg) -> u64 {
        self.regs.read(reg)
    }

    /// Executes an `HVC` (hypercall) from EL1.
    ///
    /// # Errors
    ///
    /// * [`Exception::Undefined`] if executed from EL0.
    /// * [`Exception::Denied`] if EL2 software rejects the request.
    pub fn hvc(&mut self, call: u64, args: [u64; 4], hyp: &mut dyn Hyp) -> Result<u64, Exception> {
        if self.el == ExceptionLevel::El0 {
            return Err(Exception::Undefined {
                what: "HVC from EL0",
            });
        }
        self.stats.hypercalls += 1;
        self.trace_event(TraceEvent::Hypercall { call });
        self.cycles += self.cost.hyp_roundtrip;
        // Fault site: the trap is taken (cycles charged, event traced)
        // but the EL2 handler never runs — a lost doorbell.
        if let Some(faults) = &self.faults {
            if faults.borrow_mut().on_hypercall(call) {
                return Ok(0);
            }
        }
        let from = self.el;
        self.el = ExceptionLevel::El2;
        self.emit_begin(SpanKind::HypercallVerify, call);
        let result = hyp.on_hypercall(self, call, args);
        self.emit_end(SpanKind::HypercallVerify, u64::from(result.is_err()));
        self.el = from;
        result.map_err(Exception::Denied)
    }

    /// Executes `WFI`: waits for an interrupt. On bare metal this is
    /// cycle-free in our model (idle time is not charged to the
    /// benchmark); a trapping hypervisor charges its exit cost via
    /// [`Hyp::on_wfi`].
    pub fn wfi(&mut self, hyp: &mut dyn Hyp) {
        self.trace_event(TraceEvent::Wfi);
        let from = self.el;
        self.el = ExceptionLevel::El2;
        hyp.on_wfi(self);
        self.el = from;
    }

    /// Sends a software-generated interrupt (cross-CPU wakeup). Traps to
    /// a hypervisor's vGIC via [`Hyp::on_sgi`]; free otherwise.
    pub fn send_sgi(&mut self, hyp: &mut dyn Hyp) {
        self.trace_event(TraceEvent::Sgi);
        let from = self.el;
        self.el = ExceptionLevel::El2;
        hyp.on_sgi(self);
        self.el = from;
    }

    /// Charges the EL0→EL1 syscall round-trip cost.
    pub fn charge_syscall(&mut self) {
        self.cycles += self.cost.syscall_roundtrip;
    }

    /// Charges an EL1 IRQ round trip and counts the delivery.
    pub fn charge_irq(&mut self) {
        self.stats.irqs_delivered += 1;
        self.cycles += self.cost.irq_roundtrip;
    }

    /// Charges an EL1 fault (data abort) round trip.
    pub fn charge_fault(&mut self) {
        self.cycles += self.cost.fault_roundtrip;
    }

    /// Charges a full EL2 world switch (KVM vmexit/vmentry pair).
    pub fn charge_world_switch(&mut self) {
        self.cycles += self.cost.world_switch;
    }

    // ------------------------------------------------------------------
    // TLB / cache maintenance (software-visible instructions)
    // ------------------------------------------------------------------

    /// `TLBI VMALLE1`-style full invalidation.
    pub fn tlbi_all(&mut self) {
        self.trace_event(TraceEvent::TlbMaintenance);
        self.cycles += self.cost.tlb_maintenance;
        self.tlb.flush_all();
    }

    /// `TLBI ASID` — invalidate one address space.
    pub fn tlbi_asid(&mut self, asid: u16) {
        self.trace_event(TraceEvent::TlbMaintenance);
        self.cycles += self.cost.tlb_maintenance;
        self.tlb.flush_asid(asid);
    }

    /// `TLBI VAE1` — invalidate one page in all address spaces.
    pub fn tlbi_va(&mut self, va: VirtAddr) {
        self.trace_event(TraceEvent::TlbMaintenance);
        self.cycles += self.cost.tlb_maintenance;
        self.tlb.flush_va(va);
    }

    /// Invalidate stage-2 (and combined) entries after a stage-2 table
    /// change.
    pub fn tlbi_stage2(&mut self) {
        self.trace_event(TraceEvent::TlbMaintenance);
        self.cycles += self.cost.tlb_maintenance;
        self.tlb.flush_stage2();
    }

    /// Cleans and invalidates every cache line of the physical page
    /// containing `pa`, pushing dirty data onto the bus (where the MBM can
    /// see it). Charged per line.
    pub fn cache_clean_invalidate_page(&mut self, pa: PhysAddr) {
        let evictions = self.cache.clean_invalidate_page(pa);
        self.cycles += self.cost.cache_maintenance * (crate::addr::PAGE_SIZE / LINE_SIZE);
        let mut written_back = 0u64;
        for ev in evictions {
            self.cycles += self.cost.dram_access;
            self.bus.issue(
                BusTransaction::WriteLine {
                    addr: ev.addr,
                    data: ev.data,
                },
                &mut self.mem,
                &mut self.irq,
                self.cycles,
            );
            written_back += 1;
        }
        self.emit_mark(
            PointKind::CacheMaintenance,
            pa.page_base().raw(),
            written_back,
        );
    }

    /// Lets attached bus devices (the MBM) drain internal queues; call at
    /// operation boundaries.
    pub fn step_devices(&mut self) {
        self.bus
            .step_snoopers(&mut self.mem, &mut self.irq, self.cycles);
    }

    // ------------------------------------------------------------------
    // Translated memory access (EL0/EL1)
    // ------------------------------------------------------------------

    /// Reads a 64-bit word at `va` from the current EL0/EL1 context.
    ///
    /// # Errors
    ///
    /// Propagates translation/permission aborts and EL2 denials.
    ///
    /// # Panics
    ///
    /// Panics if `va` is not 8-byte aligned or if called at EL2 (use
    /// [`Machine::el2_read_u64`]).
    pub fn read_u64(&mut self, va: VirtAddr, hyp: &mut dyn Hyp) -> Result<u64, Exception> {
        assert!(va.is_word_aligned(), "unaligned word read at {va}");
        assert_ne!(self.el, ExceptionLevel::El2, "EL2 must use el2_read_u64");
        self.stats.reads += 1;
        match self.access_el01(va, AccessKind::Read, None, hyp)? {
            Some(v) => Ok(v),
            None => unreachable!("reads always produce a value"),
        }
    }

    /// Writes a 64-bit word at `va` from the current EL0/EL1 context.
    ///
    /// # Errors
    ///
    /// Propagates translation/permission aborts and EL2 denials.
    ///
    /// # Panics
    ///
    /// Panics if `va` is not 8-byte aligned or if called at EL2 (use
    /// [`Machine::el2_write_u64`]).
    pub fn write_u64(
        &mut self,
        va: VirtAddr,
        value: u64,
        hyp: &mut dyn Hyp,
    ) -> Result<(), Exception> {
        assert!(va.is_word_aligned(), "unaligned word write at {va}");
        assert_ne!(self.el, ExceptionLevel::El2, "EL2 must use el2_write_u64");
        self.stats.writes += 1;
        self.access_el01(va, AccessKind::Write, Some(value), hyp)?;
        Ok(())
    }

    /// Reads `words` consecutive 64-bit words starting at `va`, returning
    /// the last word read (0 when `words == 0`).
    ///
    /// Model-equivalent to calling [`Machine::read_u64`] once per word:
    /// identical cycles, statistics, bus traffic and fault behavior. The
    /// host fast path takes the first word of each page through the full
    /// reference access, then streams the rest of the page through the
    /// translation that access just resolved (and proved permissions
    /// for) — so only the first word of a page run can fault.
    ///
    /// # Errors
    ///
    /// The exception the faulting word raised, with the count of words
    /// that completed before it.
    ///
    /// # Panics
    ///
    /// Panics if `va` is not 8-byte aligned or if called at EL2.
    pub fn read_block(
        &mut self,
        va: VirtAddr,
        words: u64,
        hyp: &mut dyn Hyp,
    ) -> Result<u64, BlockFault> {
        let mut last = 0u64;
        let mut i = 0u64;
        while i < words {
            let cur = va.add(i * 8);
            match self.read_u64(cur, hyp) {
                Ok(v) => last = v,
                Err(exception) => {
                    return Err(BlockFault {
                        completed: i,
                        exception,
                    })
                }
            }
            i += 1;
            if !self.block_fastpath {
                continue;
            }
            let in_page = ((crate::addr::PAGE_SIZE - cur.page_offset() - 8) / 8).min(words - i);
            if in_page == 0 {
                continue;
            }
            let regime = Regime::El1 {
                asid: Some(self.current_asid()),
            };
            // An emulated access leaves no TLB entry behind; stay on the
            // reference path then.
            let Some(entry) = self.tlb.peek(regime, cur) else {
                continue;
            };
            self.tlb.record_block_hits(in_page);
            self.stats.reads += in_page;
            for _ in 0..in_page {
                self.cycles += self.cost.tlb_lookup;
                let pa = entry.pa_page.add(va.add(i * 8).page_offset());
                last = self.perform(pa, AccessKind::Read, None, entry.perms.cacheable);
                i += 1;
            }
        }
        Ok(last)
    }

    /// Writes `words` consecutive 64-bit words starting at `va`, taking
    /// the value of word `i` from `value_of(i)`.
    ///
    /// Model-equivalent to calling [`Machine::write_u64`] once per word;
    /// see [`Machine::read_block`] for the fast-path contract. On a
    /// fault, `value_of` has been consulted for words `0..=completed`.
    ///
    /// # Errors
    ///
    /// The exception the faulting word raised, with the count of words
    /// that completed before it.
    ///
    /// # Panics
    ///
    /// Panics if `va` is not 8-byte aligned or if called at EL2.
    pub fn write_block(
        &mut self,
        va: VirtAddr,
        words: u64,
        hyp: &mut dyn Hyp,
        mut value_of: impl FnMut(u64) -> u64,
    ) -> Result<(), BlockFault> {
        let mut i = 0u64;
        while i < words {
            let cur = va.add(i * 8);
            if let Err(exception) = self.write_u64(cur, value_of(i), hyp) {
                return Err(BlockFault {
                    completed: i,
                    exception,
                });
            }
            i += 1;
            if !self.block_fastpath {
                continue;
            }
            let in_page = ((crate::addr::PAGE_SIZE - cur.page_offset() - 8) / 8).min(words - i);
            if in_page == 0 {
                continue;
            }
            let regime = Regime::El1 {
                asid: Some(self.current_asid()),
            };
            let Some(entry) = self.tlb.peek(regime, cur) else {
                continue;
            };
            self.tlb.record_block_hits(in_page);
            self.stats.writes += in_page;
            for _ in 0..in_page {
                self.cycles += self.cost.tlb_lookup;
                let pa = entry.pa_page.add(va.add(i * 8).page_offset());
                self.perform(
                    pa,
                    AccessKind::Write,
                    Some(value_of(i)),
                    entry.perms.cacheable,
                );
                i += 1;
            }
        }
        Ok(())
    }

    fn current_asid(&self) -> u16 {
        (self.regs.read(SysReg::TTBR0_EL1) >> 48) as u16
    }

    fn stage1_root(&self, va: VirtAddr) -> PhysAddr {
        let ttbr = if va.is_kernel() {
            self.regs.read(SysReg::TTBR1_EL1)
        } else {
            self.regs.read(SysReg::TTBR0_EL1)
        };
        PhysAddr::new(ttbr & pagetable::desc::ADDR_MASK)
    }

    /// Resolves an IPA through stage 2, filling the stage-2 TLB. Returns
    /// the physical address and the stage-2 write permission.
    fn stage2_resolve(
        &mut self,
        ipa: IntermAddr,
        walk_accesses: &mut u32,
    ) -> Result<(PhysAddr, PagePerms), WalkFault> {
        if let Some(e) = self.tlb.lookup_stage2(ipa.page_index()) {
            return Ok((e.pa_page.add(ipa.page_offset()), e.perms));
        }
        let root = PhysAddr::new(self.regs.read(SysReg::VTTBR_EL2) & pagetable::desc::ADDR_MASK);
        let res = {
            let mut view = CoherentMemView {
                cache: &mut self.cache,
                mem: &mut self.mem,
            };
            pagetable::walk(&mut view, root, ipa.raw())?
        };
        *walk_accesses += res.accesses.len() as u32;
        self.cycles += self.cost.walk_access * res.accesses.len() as u64;
        self.tlb.insert_stage2(
            ipa.page_index(),
            TlbEntry {
                pa_page: res.out.page_base(),
                perms: res.perms,
                walk_accesses: res.accesses.len() as u32,
            },
        );
        Ok((res.out, res.perms))
    }

    /// Walks stage 1 (with per-level stage-2 resolution of table pointers
    /// when nested paging is active). Returns the final PA, combined
    /// permissions, and total walk accesses.
    fn translate_slow(
        &mut self,
        va: VirtAddr,
        kind: AccessKind,
    ) -> Result<(PhysAddr, PagePerms, u32), TranslateFault> {
        let s2_on = self.regs.stage2_enabled();
        let mut accesses = 0u32;
        // Stage-1 disabled: the VA is used directly as an IPA.
        let (leaf_ipa, s1_perms) = if self.regs.stage1_enabled() {
            let root_ipa = IntermAddr::new(self.stage1_root(va).raw());
            let input = va.raw() & ((1u64 << 48) - 1);
            let mut table_ipa = root_ipa;
            let mut result = None;
            for level in 0..pagetable::LEVELS {
                let table_pa = if s2_on {
                    self.stage2_resolve(table_ipa, &mut accesses)
                        .map_err(|_| TranslateFault::Stage2 {
                            ipa: table_ipa,
                            kind: AccessKind::Read,
                        })?
                        .0
                } else {
                    table_ipa.as_phys()
                };
                let eaddr = pagetable::entry_addr(table_pa, input, level);
                accesses += 1;
                self.cycles += self.cost.walk_access;
                let raw = if self.cache.contains(eaddr) {
                    self.cache.read_word(eaddr.word_base())
                } else {
                    self.mem.read_u64(eaddr)
                };
                match pagetable::Descriptor::decode(raw, level) {
                    pagetable::Descriptor::Invalid => {
                        return Err(TranslateFault::Stage1 { permission: false })
                    }
                    pagetable::Descriptor::Table { next } => {
                        table_ipa = IntermAddr::new(next.raw());
                    }
                    pagetable::Descriptor::Leaf { out, perms } => {
                        let mask = (1u64 << (12 + 9 * (pagetable::LEVELS - 1 - level))) - 1;
                        result = Some((IntermAddr::new(out.raw() | (input & mask)), perms));
                        break;
                    }
                }
            }
            result.ok_or(TranslateFault::Stage1 { permission: false })?
        } else {
            (
                IntermAddr::new(va.raw()),
                PagePerms {
                    write: true,
                    exec: true,
                    user: true,
                    cacheable: true,
                },
            )
        };

        // Stage-1 permission check.
        let user = self.el == ExceptionLevel::El0;
        if user && !s1_perms.user {
            return Err(TranslateFault::Stage1 { permission: true });
        }
        if kind == AccessKind::Write && !s1_perms.write {
            return Err(TranslateFault::Stage1 { permission: true });
        }

        // Stage-2 translation of the leaf output.
        if s2_on {
            let (pa, s2_perms) = self.stage2_resolve(leaf_ipa, &mut accesses).map_err(|_| {
                TranslateFault::Stage2 {
                    ipa: leaf_ipa,
                    kind,
                }
            })?;
            if kind == AccessKind::Write && !s2_perms.write {
                return Err(TranslateFault::Stage2 {
                    ipa: leaf_ipa,
                    kind,
                });
            }
            let combined = PagePerms {
                write: s1_perms.write && s2_perms.write,
                exec: s1_perms.exec,
                user: s1_perms.user,
                cacheable: s1_perms.cacheable && s2_perms.cacheable,
            };
            Ok((pa, combined, accesses))
        } else {
            Ok((leaf_ipa.as_phys(), s1_perms, accesses))
        }
    }

    fn access_el01(
        &mut self,
        va: VirtAddr,
        kind: AccessKind,
        value: Option<u64>,
        hyp: &mut dyn Hyp,
    ) -> Result<Option<u64>, Exception> {
        for _attempt in 0..MAX_STAGE2_RETRIES {
            self.cycles += self.cost.tlb_lookup;
            let regime = Regime::El1 {
                asid: Some(self.current_asid()),
            };
            // TLB hit path.
            if let Some(entry) = self.tlb.lookup(regime, va) {
                let user = self.el == ExceptionLevel::El0;
                if (user && !entry.perms.user) || (kind == AccessKind::Write && !entry.perms.write)
                {
                    // Conservative: a permission mismatch on a cached entry
                    // re-walks so stage-1 vs stage-2 can be distinguished.
                    self.tlb.flush_va(va);
                } else {
                    let pa = entry.pa_page.add(va.page_offset());
                    return Ok(Some(self.perform(pa, kind, value, entry.perms.cacheable)));
                }
            }
            match self.translate_slow(va, kind) {
                Ok((pa, perms, walk_accesses)) => {
                    let regime_insert = if va.is_kernel() {
                        Regime::El1 { asid: None }
                    } else {
                        regime
                    };
                    self.tlb.insert(
                        regime_insert,
                        va,
                        TlbEntry {
                            pa_page: pa.page_base(),
                            perms,
                            walk_accesses,
                        },
                    );
                    return Ok(Some(self.perform(pa, kind, value, perms.cacheable)));
                }
                Err(TranslateFault::Stage1 { permission }) => {
                    self.stats.el1_aborts += 1;
                    self.trace_event(TraceEvent::DataAbort {
                        va,
                        kind,
                        permission,
                    });
                    return Err(Exception::DataAbort {
                        va,
                        kind,
                        permission,
                    });
                }
                Err(TranslateFault::Stage2 { ipa, kind: fk }) => {
                    self.stats.stage2_faults += 1;
                    self.trace_event(TraceEvent::Stage2Fault { ipa, kind: fk });
                    self.cycles += self.cost.world_switch;
                    let from = self.el;
                    self.el = ExceptionLevel::El2;
                    let outcome = hyp.on_stage2_fault(self, ipa, fk, value);
                    self.el = from;
                    match outcome {
                        Ok(Stage2Outcome::Retry) => continue,
                        Ok(Stage2Outcome::Emulated) => return Ok(value.map(|_| 0)),
                        Err(v) => return Err(Exception::Denied(v)),
                    }
                }
            }
        }
        Err(Exception::Stage2Abort {
            ipa: IntermAddr::new(va.raw()),
            kind,
        })
    }

    /// Performs the physical access through the cache hierarchy / bus.
    fn perform(
        &mut self,
        pa: PhysAddr,
        kind: AccessKind,
        value: Option<u64>,
        cacheable: bool,
    ) -> u64 {
        // Ownership sanitizer: the one point where every CPU store —
        // cacheable or not, any EL — passes with its writer identity
        // still attached. Zero cycles, no architectural effect.
        if kind == AccessKind::Write && self.shadow.is_some() {
            let writer = self.shadow_writer();
            if let Some(shadow) = &mut self.shadow {
                shadow.check_write(writer, pa.word_base(), value.unwrap_or(0));
            }
        }
        if !cacheable {
            self.stats.uncached_accesses += 1;
            self.cycles += self.cost.dram_access;
            let txn = match kind {
                AccessKind::Read => BusTransaction::ReadWord {
                    addr: pa.word_base(),
                },
                AccessKind::Write => BusTransaction::WriteWord {
                    addr: pa.word_base(),
                    value: value.expect("write carries a value"),
                },
            };
            let (read, _) = self
                .bus
                .issue(txn, &mut self.mem, &mut self.irq, self.cycles);
            return read;
        }
        // Cacheable path.
        match self.cache.probe(pa) {
            CachePlan::Hit => {
                self.cycles += self.cost.cache_hit;
            }
            CachePlan::Refill { line, evict } => {
                if let Some(ev) = evict {
                    self.cycles += self.cost.dram_access;
                    self.bus.issue(
                        BusTransaction::WriteLine {
                            addr: ev.addr,
                            data: ev.data,
                        },
                        &mut self.mem,
                        &mut self.irq,
                        self.cycles,
                    );
                }
                self.cycles += self.cost.dram_access;
                self.bus.issue(
                    BusTransaction::ReadLine { addr: line },
                    &mut self.mem,
                    &mut self.irq,
                    self.cycles,
                );
                let mut data = [0u64; LINE_WORDS];
                for (i, w) in data.iter_mut().enumerate() {
                    *w = self.mem.read_u64(line.add(i as u64 * 8));
                }
                self.cache.install(line, data);
                self.cycles += self.cost.cache_hit;
            }
        }
        match kind {
            AccessKind::Read => self.cache.read_word(pa),
            AccessKind::Write => {
                let v = value.expect("write carries a value");
                self.cache.write_word(pa, v);
                v
            }
        }
    }

    /// Models an instruction fetch from `va`: translates like a read but
    /// additionally requires execute permission. Returns the first word
    /// of the fetched instruction slot.
    ///
    /// This is how W⊕X pays off at runtime: code injected into a
    /// writable page translates fine for loads but *fetching* it takes a
    /// permission abort — the attacker cannot run what they can write.
    ///
    /// # Errors
    ///
    /// Returns [`Exception::DataAbort`] with `permission: true` for
    /// execute-never pages (and the usual translation faults otherwise).
    ///
    /// # Panics
    ///
    /// Panics if `va` is unaligned or the machine is at EL2.
    pub fn fetch(&mut self, va: VirtAddr, hyp: &mut dyn Hyp) -> Result<u64, Exception> {
        assert!(va.is_word_aligned(), "unaligned fetch at {va}");
        assert_ne!(self.el, ExceptionLevel::El2, "EL2 fetch is not modeled");
        // Reuse the read path for translation + data, then enforce the
        // execute permission from the cached entry / fresh walk.
        let value = self.read_u64(va, hyp)?;
        let regime = Regime::El1 {
            asid: Some(self.current_asid()),
        };
        let entry = self
            .tlb
            .lookup(regime, va)
            .expect("read_u64 just filled this entry");
        let user = self.el == ExceptionLevel::El0;
        if !entry.perms.exec || (user && !entry.perms.user) {
            self.stats.el1_aborts += 1;
            self.trace_event(TraceEvent::DataAbort {
                va,
                kind: AccessKind::Read,
                permission: true,
            });
            return Err(Exception::DataAbort {
                va,
                kind: AccessKind::Read,
                permission: true,
            });
        }
        Ok(value)
    }

    // ------------------------------------------------------------------
    // EL2 (Hypersec) memory access: translated by the EL2 table, never by
    // stage 2, never trapped.
    // ------------------------------------------------------------------

    fn translate_el2(
        &mut self,
        va: VirtAddr,
        kind: AccessKind,
    ) -> Result<(PhysAddr, PagePerms), Exception> {
        self.cycles += self.cost.tlb_lookup;
        if let Some(e) = self.tlb.lookup(Regime::El2, va) {
            if kind == AccessKind::Write && !e.perms.write {
                return Err(Exception::DataAbort {
                    va,
                    kind,
                    permission: true,
                });
            }
            return Ok((e.pa_page.add(va.page_offset()), e.perms));
        }
        let root = PhysAddr::new(self.regs.read(SysReg::TTBR0_EL2) & pagetable::desc::ADDR_MASK);
        let res = {
            let mut view = CoherentMemView {
                cache: &mut self.cache,
                mem: &mut self.mem,
            };
            pagetable::walk(&mut view, root, va.raw())
        }
        .map_err(|_| Exception::DataAbort {
            va,
            kind,
            permission: false,
        })?;
        self.cycles += self.cost.walk_access * res.accesses.len() as u64;
        if kind == AccessKind::Write && !res.perms.write {
            return Err(Exception::DataAbort {
                va,
                kind,
                permission: true,
            });
        }
        self.tlb.insert(
            Regime::El2,
            va,
            TlbEntry {
                pa_page: res.out.page_base(),
                perms: res.perms,
                walk_accesses: res.accesses.len() as u32,
            },
        );
        Ok((res.out, res.perms))
    }

    /// Reads a word through the EL2 translation regime.
    ///
    /// # Errors
    ///
    /// Returns [`Exception::DataAbort`] if the EL2 table does not map `va`.
    ///
    /// # Panics
    ///
    /// Panics if `va` is unaligned or the machine is not at EL2.
    pub fn el2_read_u64(&mut self, va: VirtAddr) -> Result<u64, Exception> {
        assert!(va.is_word_aligned(), "unaligned EL2 read at {va}");
        assert_eq!(self.el, ExceptionLevel::El2, "el2_read_u64 requires EL2");
        let (pa, perms) = self.translate_el2(va, AccessKind::Read)?;
        Ok(self.perform(pa, AccessKind::Read, None, perms.cacheable))
    }

    /// Writes a word through the EL2 translation regime.
    ///
    /// # Errors
    ///
    /// Returns [`Exception::DataAbort`] on a missing mapping or a
    /// read-only page.
    ///
    /// # Panics
    ///
    /// Panics if `va` is unaligned or the machine is not at EL2.
    pub fn el2_write_u64(&mut self, va: VirtAddr, value: u64) -> Result<(), Exception> {
        assert!(va.is_word_aligned(), "unaligned EL2 write at {va}");
        assert_eq!(self.el, ExceptionLevel::El2, "el2_write_u64 requires EL2");
        let (pa, perms) = self.translate_el2(va, AccessKind::Write)?;
        self.perform(pa, AccessKind::Write, Some(value), perms.cacheable);
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TranslateFault {
    Stage1 { permission: bool },
    Stage2 { ipa: IntermAddr, kind: AccessKind },
}

/// Cache-coherent physical memory view: reads and writes consult the data
/// cache before DRAM, exactly as a coherent hardware table walker does.
/// Obtained from [`Machine::pt_view`].
pub struct CoherentMemView<'a> {
    cache: &'a mut DataCache,
    mem: &'a mut PhysMemory,
}

impl pagetable::PtMemory for CoherentMemView<'_> {
    fn read_pt(&mut self, pa: PhysAddr) -> u64 {
        if self.cache.contains(pa) {
            self.cache.read_word(pa.word_base())
        } else {
            self.mem.read_u64(pa)
        }
    }

    fn write_pt(&mut self, pa: PhysAddr, value: u64) {
        if self.cache.contains(pa) {
            self.cache.write_word(pa.word_base(), value);
        }
        self.mem.write_u64(pa, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PAGE_SIZE;
    use crate::pagetable::{apply_entry_write, plan_map, PagePerms};
    use crate::regs::{hcr, sctlr};

    /// Test helper: builds identity-ish stage-1 mappings directly in
    /// physical memory (trusted boot-style writes).
    struct Rig {
        m: Machine,
        next_table: u64,
    }

    impl Rig {
        fn new() -> Self {
            let mut m = Machine::new(MachineConfig {
                dram_size: 64 << 20,
                ..MachineConfig::default()
            });
            // Stage-1 root at 1 MiB.
            m.el2_write_sysreg(SysReg::TTBR0_EL1, 0x10_0000);
            m.el2_write_sysreg(SysReg::TTBR1_EL1, 0x10_0000);
            m.el2_write_sysreg(SysReg::SCTLR_EL1, sctlr::M);
            m.set_el(ExceptionLevel::El1);
            Self {
                m,
                next_table: 0x20_0000,
            }
        }

        fn map(&mut self, va: u64, pa: u64, perms: PagePerms) {
            let next = &mut self.next_table;
            let plan = plan_map(
                self.m.mem_mut(),
                PhysAddr::new(0x10_0000),
                va,
                PhysAddr::new(pa),
                perms,
                3,
                &mut || {
                    let t = *next;
                    *next += PAGE_SIZE;
                    Some(PhysAddr::new(t))
                },
            )
            .expect("plan");
            for w in &plan.writes {
                apply_entry_write(self.m.mem_mut(), *w);
            }
        }
    }

    #[derive(Default)]
    struct CountingHyp {
        hypercalls: u64,
        traps: u64,
        s2_faults: u64,
        allow: bool,
    }

    impl Hyp for CountingHyp {
        fn on_hypercall(
            &mut self,
            _m: &mut Machine,
            call: u64,
            args: [u64; 4],
        ) -> Result<u64, PolicyViolation> {
            self.hypercalls += 1;
            if self.allow {
                Ok(call + args[0])
            } else {
                Err(PolicyViolation::new(1, "rejected"))
            }
        }

        fn on_sysreg_trap(
            &mut self,
            m: &mut Machine,
            reg: SysReg,
            value: u64,
        ) -> Result<(), PolicyViolation> {
            self.traps += 1;
            if self.allow {
                m.el2_write_sysreg(reg, value);
                Ok(())
            } else {
                Err(PolicyViolation::new(2, "sysreg write rejected"))
            }
        }

        fn on_stage2_fault(
            &mut self,
            _m: &mut Machine,
            _ipa: IntermAddr,
            _kind: AccessKind,
            _value: Option<u64>,
        ) -> Result<Stage2Outcome, PolicyViolation> {
            self.s2_faults += 1;
            Err(PolicyViolation::new(3, "stage-2 fault"))
        }
    }

    #[test]
    fn read_write_through_stage1() {
        let mut rig = Rig::new();
        rig.map(0x5000, 0x8_0000, PagePerms::KERNEL_DATA);
        let mut hyp = NullHyp;
        rig.m
            .write_u64(VirtAddr::new(0x5008), 0xFEED, &mut hyp)
            .unwrap();
        assert_eq!(
            rig.m.read_u64(VirtAddr::new(0x5008), &mut hyp).unwrap(),
            0xFEED
        );
        // The data landed at the mapped physical address.
        assert_eq!(rig.m.debug_read_phys(PhysAddr::new(0x8_0008)), 0xFEED);
    }

    #[test]
    fn unmapped_va_aborts() {
        let mut rig = Rig::new();
        let mut hyp = NullHyp;
        let err = rig.m.read_u64(VirtAddr::new(0x9000), &mut hyp).unwrap_err();
        assert!(matches!(
            err,
            Exception::DataAbort {
                permission: false,
                ..
            }
        ));
        assert_eq!(rig.m.stats().el1_aborts, 1);
    }

    #[test]
    fn readonly_page_rejects_writes() {
        let mut rig = Rig::new();
        rig.map(0x5000, 0x8_0000, PagePerms::KERNEL_RO);
        let mut hyp = NullHyp;
        assert!(rig.m.read_u64(VirtAddr::new(0x5000), &mut hyp).is_ok());
        let err = rig
            .m
            .write_u64(VirtAddr::new(0x5000), 1, &mut hyp)
            .unwrap_err();
        assert!(matches!(
            err,
            Exception::DataAbort {
                permission: true,
                ..
            }
        ));
    }

    #[test]
    fn user_cannot_touch_kernel_pages() {
        let mut rig = Rig::new();
        rig.map(0x5000, 0x8_0000, PagePerms::KERNEL_DATA);
        rig.m.set_el(ExceptionLevel::El0);
        let mut hyp = NullHyp;
        let err = rig.m.read_u64(VirtAddr::new(0x5000), &mut hyp).unwrap_err();
        assert!(matches!(
            err,
            Exception::DataAbort {
                permission: true,
                ..
            }
        ));
    }

    #[test]
    fn tlb_caches_translations() {
        let mut rig = Rig::new();
        rig.map(0x5000, 0x8_0000, PagePerms::KERNEL_DATA);
        let mut hyp = NullHyp;
        rig.m.read_u64(VirtAddr::new(0x5000), &mut hyp).unwrap();
        let misses = rig.m.tlb().stats().misses;
        rig.m.read_u64(VirtAddr::new(0x5010), &mut hyp).unwrap();
        assert_eq!(rig.m.tlb().stats().misses, misses);
        assert!(rig.m.tlb().stats().hits >= 1);
    }

    #[test]
    fn tvm_traps_route_to_hyp() {
        let mut rig = Rig::new();
        rig.m.set_el(ExceptionLevel::El2);
        rig.m.el2_write_sysreg(SysReg::HCR_EL2, hcr::TVM);
        rig.m.set_el(ExceptionLevel::El1);
        let mut hyp = CountingHyp {
            allow: true,
            ..CountingHyp::default()
        };
        rig.m
            .write_sysreg(SysReg::TTBR1_EL1, 0x30_0000, &mut hyp)
            .unwrap();
        assert_eq!(hyp.traps, 1);
        assert_eq!(rig.m.read_sysreg(SysReg::TTBR1_EL1), 0x30_0000);
        assert_eq!(rig.m.stats().sysreg_traps, 1);
    }

    #[test]
    fn tvm_denial_blocks_write() {
        let mut rig = Rig::new();
        rig.m.set_el(ExceptionLevel::El2);
        rig.m.el2_write_sysreg(SysReg::HCR_EL2, hcr::TVM);
        rig.m.set_el(ExceptionLevel::El1);
        let before = rig.m.read_sysreg(SysReg::TTBR1_EL1);
        let mut hyp = CountingHyp::default();
        let err = rig
            .m
            .write_sysreg(SysReg::TTBR1_EL1, 0xBAD000, &mut hyp)
            .unwrap_err();
        assert!(matches!(err, Exception::Denied(_)));
        assert_eq!(rig.m.read_sysreg(SysReg::TTBR1_EL1), before);
    }

    #[test]
    fn untrapped_sysreg_write_is_direct() {
        let mut rig = Rig::new();
        let mut hyp = CountingHyp::default();
        rig.m
            .write_sysreg(SysReg::TTBR0_EL1, 0x40_0000, &mut hyp)
            .unwrap();
        assert_eq!(hyp.traps, 0);
        assert_eq!(rig.m.read_sysreg(SysReg::TTBR0_EL1), 0x40_0000);
    }

    #[test]
    fn el0_sysreg_write_is_undefined() {
        let mut rig = Rig::new();
        rig.m.set_el(ExceptionLevel::El0);
        let mut hyp = NullHyp;
        let err = rig
            .m
            .write_sysreg(SysReg::TTBR0_EL1, 0, &mut hyp)
            .unwrap_err();
        assert!(matches!(err, Exception::Undefined { .. }));
    }

    #[test]
    fn el1_cannot_write_el2_registers() {
        let mut rig = Rig::new();
        let mut hyp = NullHyp;
        let err = rig
            .m
            .write_sysreg(SysReg::HCR_EL2, hcr::VM, &mut hyp)
            .unwrap_err();
        assert!(matches!(err, Exception::Undefined { .. }));
    }

    #[test]
    fn hypercall_roundtrip() {
        let mut rig = Rig::new();
        let mut hyp = CountingHyp {
            allow: true,
            ..CountingHyp::default()
        };
        let ret = rig.m.hvc(10, [32, 0, 0, 0], &mut hyp).unwrap();
        assert_eq!(ret, 42);
        assert_eq!(rig.m.stats().hypercalls, 1);
        // EL restored after the call.
        assert_eq!(rig.m.el(), ExceptionLevel::El1);
    }

    #[test]
    fn nested_paging_costs_more_cycles() {
        // Build two identical rigs; enable stage-2 identity mapping on one.
        let mut native = Rig::new();
        native.map(0x5000, 0x8_0000, PagePerms::KERNEL_DATA);

        let mut nested = Rig::new();
        nested.map(0x5000, 0x8_0000, PagePerms::KERNEL_DATA);
        // Stage-2 identity map covering low memory with 2 MiB blocks.
        {
            let s2_root = PhysAddr::new(0x100_0000);
            let mut next = 0x110_0000u64;
            for section in 0..16u64 {
                let ipa = section * crate::addr::SECTION_SIZE;
                let plan = plan_map(
                    nested.m.mem_mut(),
                    s2_root,
                    ipa,
                    PhysAddr::new(ipa),
                    PagePerms::KERNEL_DATA,
                    2,
                    &mut || {
                        let t = next;
                        next += PAGE_SIZE;
                        Some(PhysAddr::new(t))
                    },
                )
                .expect("s2 plan");
                for w in &plan.writes {
                    apply_entry_write(nested.m.mem_mut(), *w);
                }
            }
            nested.m.set_el(ExceptionLevel::El2);
            nested.m.el2_write_sysreg(SysReg::VTTBR_EL2, s2_root.raw());
            nested.m.el2_write_sysreg(SysReg::HCR_EL2, hcr::VM);
            nested.m.set_el(ExceptionLevel::El1);
        }

        let mut hyp = NullHyp;
        let c0 = native.m.cycles();
        native.m.read_u64(VirtAddr::new(0x5000), &mut hyp).unwrap();
        let native_cost = native.m.cycles() - c0;

        let c0 = nested.m.cycles();
        nested.m.read_u64(VirtAddr::new(0x5000), &mut hyp).unwrap();
        let nested_cost = nested.m.cycles() - c0;

        assert!(
            nested_cost > native_cost,
            "nested TLB-miss cost {nested_cost} must exceed native {native_cost}"
        );
    }

    #[test]
    fn stage2_fault_routes_to_hyp() {
        let mut rig = Rig::new();
        rig.map(0x5000, 0x8_0000, PagePerms::KERNEL_DATA);
        rig.m.set_el(ExceptionLevel::El2);
        // Stage-2 enabled but the table is empty: every access faults.
        rig.m.el2_write_sysreg(SysReg::VTTBR_EL2, 0x100_0000);
        rig.m.el2_write_sysreg(SysReg::HCR_EL2, hcr::VM);
        rig.m.set_el(ExceptionLevel::El1);
        let mut hyp = CountingHyp::default();
        let err = rig.m.read_u64(VirtAddr::new(0x5000), &mut hyp).unwrap_err();
        assert!(matches!(err, Exception::Denied(_)));
        assert_eq!(hyp.s2_faults, 1);
        assert_eq!(rig.m.stats().stage2_faults, 1);
    }

    #[test]
    fn noncacheable_writes_hit_the_bus_immediately() {
        let mut rig = Rig::new();
        rig.map(0x5000, 0x8_0000, PagePerms::KERNEL_DATA_NC);
        rig.map(0x6000, 0x9_0000, PagePerms::KERNEL_DATA);
        let mut hyp = NullHyp;
        let writes0 = rig.m.bus().writes();
        rig.m.write_u64(VirtAddr::new(0x5000), 1, &mut hyp).unwrap();
        assert_eq!(rig.m.bus().writes(), writes0 + 1, "NC write visible");
        // A cacheable write only produces a line *fill* (read), no write.
        rig.m.write_u64(VirtAddr::new(0x6000), 1, &mut hyp).unwrap();
        assert_eq!(rig.m.bus().writes(), writes0 + 1, "cached write hidden");
        assert_eq!(rig.m.stats().uncached_accesses, 1);
    }

    #[test]
    fn dma_write_bypasses_translation() {
        let mut rig = Rig::new();
        let w0 = rig.m.bus().writes();
        rig.m.dma_write_u64(PhysAddr::new(0x7_0000), 99);
        assert_eq!(rig.m.debug_read_phys(PhysAddr::new(0x7_0000)), 99);
        assert_eq!(rig.m.bus().writes(), w0 + 1);
    }

    #[test]
    fn el2_access_uses_el2_table() {
        let mut rig = Rig::new();
        // EL2 table: linear map of the first 2 MiB at root 0x50_0000.
        let root = PhysAddr::new(0x50_0000);
        let mut next = 0x51_0000u64;
        let plan = plan_map(
            rig.m.mem_mut(),
            root,
            0x0,
            PhysAddr::new(0x0),
            PagePerms::KERNEL_DATA,
            2,
            &mut || {
                let t = next;
                next += PAGE_SIZE;
                Some(PhysAddr::new(t))
            },
        )
        .expect("plan");
        for w in &plan.writes {
            apply_entry_write(rig.m.mem_mut(), *w);
        }
        rig.m.set_el(ExceptionLevel::El2);
        rig.m.el2_write_sysreg(SysReg::TTBR0_EL2, root.raw());
        rig.m.el2_write_u64(VirtAddr::new(0x12_3000), 7).unwrap();
        assert_eq!(rig.m.el2_read_u64(VirtAddr::new(0x12_3000)).unwrap(), 7);
        assert_eq!(rig.m.debug_read_phys(PhysAddr::new(0x12_3000)), 7);
    }

    #[test]
    fn cache_maintenance_flushes_dirty_data_to_bus() {
        let mut rig = Rig::new();
        rig.map(0x5000, 0x8_0000, PagePerms::KERNEL_DATA);
        let mut hyp = NullHyp;
        rig.m
            .write_u64(VirtAddr::new(0x5000), 0xCAFE, &mut hyp)
            .unwrap();
        let w0 = rig.m.bus().writes();
        rig.m.cache_clean_invalidate_page(PhysAddr::new(0x8_0000));
        assert!(rig.m.bus().writes() > w0, "dirty line written back on bus");
    }

    #[test]
    fn fetch_requires_execute_permission() {
        let mut rig = Rig::new();
        rig.map(0x5000, 0x8_0000, PagePerms::KERNEL_TEXT);
        rig.map(0x6000, 0x9_0000, PagePerms::KERNEL_DATA);
        let mut hyp = NullHyp;
        // Text fetches succeed.
        rig.m
            .fetch(VirtAddr::new(0x5000), &mut hyp)
            .expect("text fetch");
        // Data pages are execute-never: reads fine, fetches abort.
        rig.m
            .read_u64(VirtAddr::new(0x6000), &mut hyp)
            .expect("data read");
        let err = rig.m.fetch(VirtAddr::new(0x6000), &mut hyp).unwrap_err();
        assert!(matches!(
            err,
            Exception::DataAbort {
                permission: true,
                ..
            }
        ));
    }

    #[test]
    fn injected_code_cannot_run() {
        // The classic payload: write shellcode into writable memory, jump
        // to it. The write lands; the jump faults.
        let mut rig = Rig::new();
        rig.map(0x6000, 0x9_0000, PagePerms::KERNEL_DATA);
        let mut hyp = NullHyp;
        rig.m
            .write_u64(VirtAddr::new(0x6000), 0xD65F03C0 /* RET */, &mut hyp)
            .expect("shellcode written");
        let err = rig.m.fetch(VirtAddr::new(0x6000), &mut hyp).unwrap_err();
        assert!(matches!(
            err,
            Exception::DataAbort {
                permission: true,
                ..
            }
        ));
    }

    #[test]
    fn exception_display() {
        let e = Exception::DataAbort {
            va: VirtAddr::new(0x1000),
            kind: AccessKind::Write,
            permission: true,
        };
        assert_eq!(e.to_string(), "write abort at 0x1000 (permission)");
        let d: Exception = PolicyViolation::new(9, "nope").into();
        assert!(d.to_string().contains("nope"));
    }
}
