//! Sparse physical memory backing store.
//!
//! [`PhysMemory`] models the DRAM of the simulated platform. It is sparse:
//! pages are allocated lazily on first touch so a multi-gigabyte address
//! space costs only what the workload actually uses. Pages live in a
//! frame-indexed vector (one pointer-sized slot per frame), so the hot
//! page lookup is an index instead of a hash probe. All accesses are raw —
//! translation, permissions, caching and bus visibility are handled by the
//! layers above ([`crate::machine::Machine`]).
//!
//! Pages are reference-counted and copy-on-write: `Clone` shares every
//! resident page and the first write through either copy detaches just
//! that page. This makes snapshotting a booted machine (warm-boot
//! forking) an O(resident pages) pointer copy instead of a DRAM-sized
//! memcpy, while reads and unshared writes stay as fast as before.

use std::rc::Rc;

use crate::addr::{PhysAddr, PAGE_SIZE};

/// Error returned when an access falls outside the populated DRAM range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessOutOfRangeError {
    /// The faulting physical address.
    pub addr: PhysAddr,
    /// The size of DRAM in bytes.
    pub dram_size: u64,
}

impl std::fmt::Display for AccessOutOfRangeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "physical access at {} outside DRAM of {} bytes",
            self.addr, self.dram_size
        )
    }
}

impl std::error::Error for AccessOutOfRangeError {}

/// Sparse byte-addressable physical memory.
///
/// ```
/// use hypernel_machine::addr::PhysAddr;
/// use hypernel_machine::mem::PhysMemory;
///
/// let mut mem = PhysMemory::new(1 << 20);
/// mem.write_u64(PhysAddr::new(0x100), 0xDEAD_BEEF);
/// assert_eq!(mem.read_u64(PhysAddr::new(0x100)), 0xDEAD_BEEF);
/// ```
#[derive(Debug, Clone)]
pub struct PhysMemory {
    pages: Vec<Option<Rc<[u8; PAGE_SIZE as usize]>>>,
    resident: usize,
    size: u64,
}

impl PhysMemory {
    /// Creates a DRAM of `size` bytes (rounded up to a whole page).
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: u64) -> Self {
        assert!(size > 0, "DRAM size must be non-zero");
        let size = (size + PAGE_SIZE - 1) & !(PAGE_SIZE - 1);
        Self {
            pages: vec![None; (size / PAGE_SIZE) as usize],
            resident: 0,
            size,
        }
    }

    /// Total DRAM size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Number of pages lazily materialized so far.
    pub fn resident_pages(&self) -> usize {
        self.resident
    }

    /// Returns `true` if `addr..addr+len` lies inside DRAM.
    pub fn contains(&self, addr: PhysAddr, len: u64) -> bool {
        addr.raw()
            .checked_add(len)
            .is_some_and(|end| end <= self.size)
    }

    /// Writable view of a frame: materializes the page if absent and —
    /// when the page is shared with a forked memory — detaches a private
    /// copy first (copy-on-write).
    fn page(&mut self, frame: u64) -> &mut [u8; PAGE_SIZE as usize] {
        let slot = &mut self.pages[frame as usize];
        if slot.is_none() {
            *slot = Some(Rc::new([0u8; PAGE_SIZE as usize]));
            self.resident += 1;
        }
        Rc::make_mut(slot.as_mut().expect("just populated"))
    }

    /// Read-only view of a frame: materializes absent pages (so resident
    /// accounting matches the write path) but never detaches a shared
    /// one — reads through a fork stay zero-copy.
    fn page_ref(&mut self, frame: u64) -> &[u8; PAGE_SIZE as usize] {
        let slot = &mut self.pages[frame as usize];
        if slot.is_none() {
            *slot = Some(Rc::new([0u8; PAGE_SIZE as usize]));
            self.resident += 1;
        }
        slot.as_deref().expect("just populated")
    }

    fn check(&self, addr: PhysAddr, len: u64) {
        assert!(
            self.contains(addr, len),
            "physical access at {addr} (+{len}) outside DRAM of {} bytes",
            self.size
        );
    }

    /// Checked variant of the bounds test used by fallible callers.
    ///
    /// # Errors
    ///
    /// Returns [`AccessOutOfRangeError`] if the range escapes DRAM.
    pub fn try_check(&self, addr: PhysAddr, len: u64) -> Result<(), AccessOutOfRangeError> {
        if self.contains(addr, len) {
            Ok(())
        } else {
            Err(AccessOutOfRangeError {
                addr,
                dram_size: self.size,
            })
        }
    }

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics if the address is outside DRAM.
    pub fn read_u8(&mut self, addr: PhysAddr) -> u8 {
        self.check(addr, 1);
        self.page_ref(addr.page_index())[addr.page_offset() as usize]
    }

    /// Writes one byte.
    ///
    /// # Panics
    ///
    /// Panics if the address is outside DRAM.
    pub fn write_u8(&mut self, addr: PhysAddr, value: u8) {
        self.check(addr, 1);
        self.page(addr.page_index())[addr.page_offset() as usize] = value;
    }

    /// Reads a little-endian 64-bit word. The access may straddle a page
    /// boundary.
    ///
    /// # Panics
    ///
    /// Panics if any byte of the word is outside DRAM.
    pub fn read_u64(&mut self, addr: PhysAddr) -> u64 {
        self.check(addr, 8);
        if addr.page_offset() <= PAGE_SIZE - 8 {
            let page = self.page_ref(addr.page_index());
            let off = addr.page_offset() as usize;
            u64::from_le_bytes(page[off..off + 8].try_into().expect("8-byte slice"))
        } else {
            let mut bytes = [0u8; 8];
            for (i, b) in bytes.iter_mut().enumerate() {
                *b = self.read_u8(addr.add(i as u64));
            }
            u64::from_le_bytes(bytes)
        }
    }

    /// Writes a little-endian 64-bit word. The access may straddle a page
    /// boundary.
    ///
    /// # Panics
    ///
    /// Panics if any byte of the word is outside DRAM.
    pub fn write_u64(&mut self, addr: PhysAddr, value: u64) {
        self.check(addr, 8);
        if addr.page_offset() <= PAGE_SIZE - 8 {
            let off = addr.page_offset() as usize;
            self.page(addr.page_index())[off..off + 8].copy_from_slice(&value.to_le_bytes());
        } else {
            for (i, b) in value.to_le_bytes().iter().enumerate() {
                self.write_u8(addr.add(i as u64), *b);
            }
        }
    }

    /// Copies `buf.len()` bytes out of DRAM starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is outside DRAM.
    pub fn read_bytes(&mut self, addr: PhysAddr, buf: &mut [u8]) {
        self.check(addr, buf.len() as u64);
        for (i, b) in buf.iter_mut().enumerate() {
            *b = self.read_u8(addr.add(i as u64));
        }
    }

    /// Copies `buf` into DRAM starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is outside DRAM.
    pub fn write_bytes(&mut self, addr: PhysAddr, buf: &[u8]) {
        self.check(addr, buf.len() as u64);
        for (i, b) in buf.iter().enumerate() {
            self.write_u8(addr.add(i as u64), *b);
        }
    }

    /// Fills `len` bytes starting at `addr` with `value`.
    ///
    /// # Panics
    ///
    /// Panics if the range is outside DRAM.
    pub fn fill(&mut self, addr: PhysAddr, len: u64, value: u8) {
        self.check(addr, len);
        let mut cur = addr;
        let end = addr.add(len);
        while cur < end {
            let in_page = (PAGE_SIZE - cur.page_offset()).min(end.offset_from(cur));
            let page = self.page(cur.page_index());
            let off = cur.page_offset() as usize;
            page[off..off + in_page as usize].fill(value);
            cur = cur.add(in_page);
        }
    }
}

impl PartialEq for PhysMemory {
    fn eq(&self, other: &Self) -> bool {
        // Two memories are equal if every *resident* page matches and absent
        // pages (implicitly zero) compare equal to zero-filled pages.
        if self.size != other.size {
            return false;
        }
        let zero = [0u8; PAGE_SIZE as usize];
        self.pages.iter().zip(&other.pages).all(|(a, b)| {
            let a = a.as_deref().map_or(&zero[..], |p| &p[..]);
            let b = b.as_deref().map_or(&zero[..], |p| &p[..]);
            a == b
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let mut mem = PhysMemory::new(PAGE_SIZE * 4);
        assert_eq!(mem.read_u64(PhysAddr::new(0)), 0);
        assert_eq!(mem.read_u8(PhysAddr::new(PAGE_SIZE * 4 - 1)), 0);
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn u64_roundtrip() {
        let mut mem = PhysMemory::new(1 << 16);
        mem.write_u64(PhysAddr::new(0x38), 0x0102_0304_0506_0708);
        assert_eq!(mem.read_u64(PhysAddr::new(0x38)), 0x0102_0304_0506_0708);
        // Little-endian byte order.
        assert_eq!(mem.read_u8(PhysAddr::new(0x38)), 0x08);
        assert_eq!(mem.read_u8(PhysAddr::new(0x3F)), 0x01);
    }

    #[test]
    fn straddling_page_boundary() {
        let mut mem = PhysMemory::new(1 << 16);
        let addr = PhysAddr::new(PAGE_SIZE - 4);
        mem.write_u64(addr, 0xAABB_CCDD_EEFF_0011);
        assert_eq!(mem.read_u64(addr), 0xAABB_CCDD_EEFF_0011);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut mem = PhysMemory::new(1 << 16);
        let data = [1u8, 2, 3, 4, 5];
        mem.write_bytes(PhysAddr::new(100), &data);
        let mut out = [0u8; 5];
        mem.read_bytes(PhysAddr::new(100), &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn fill_spans_pages() {
        let mut mem = PhysMemory::new(1 << 16);
        mem.fill(PhysAddr::new(PAGE_SIZE - 16), 32, 0xAB);
        for i in 0..32 {
            assert_eq!(mem.read_u8(PhysAddr::new(PAGE_SIZE - 16 + i)), 0xAB);
        }
        assert_eq!(mem.read_u8(PhysAddr::new(PAGE_SIZE - 17)), 0);
        assert_eq!(mem.read_u8(PhysAddr::new(PAGE_SIZE + 16)), 0);
    }

    #[test]
    #[should_panic(expected = "outside DRAM")]
    fn out_of_range_panics() {
        let mut mem = PhysMemory::new(PAGE_SIZE);
        mem.read_u64(PhysAddr::new(PAGE_SIZE - 4));
    }

    #[test]
    fn try_check_reports_error() {
        let mem = PhysMemory::new(PAGE_SIZE);
        let err = mem.try_check(PhysAddr::new(PAGE_SIZE), 8).unwrap_err();
        assert_eq!(err.addr, PhysAddr::new(PAGE_SIZE));
        assert!(err.to_string().contains("outside DRAM"));
        assert!(mem.try_check(PhysAddr::new(0), PAGE_SIZE).is_ok());
    }

    #[test]
    fn size_rounds_to_page() {
        let mem = PhysMemory::new(100);
        assert_eq!(mem.size(), PAGE_SIZE);
    }

    #[test]
    fn clone_is_copy_on_write() {
        let mut a = PhysMemory::new(1 << 16);
        a.write_u64(PhysAddr::new(0x100), 11);
        a.write_u64(PhysAddr::new(PAGE_SIZE + 8), 22);
        let mut b = a.clone();
        // Writes through either copy never leak into the other.
        b.write_u64(PhysAddr::new(0x100), 99);
        a.write_u64(PhysAddr::new(PAGE_SIZE + 8), 33);
        assert_eq!(a.read_u64(PhysAddr::new(0x100)), 11);
        assert_eq!(b.read_u64(PhysAddr::new(0x100)), 99);
        assert_eq!(a.read_u64(PhysAddr::new(PAGE_SIZE + 8)), 33);
        assert_eq!(b.read_u64(PhysAddr::new(PAGE_SIZE + 8)), 22);
        // Reads alone keep the untouched page shared (no divergence).
        assert_eq!(b.read_u64(PhysAddr::new(PAGE_SIZE + 8)), 22);
    }

    #[test]
    fn sparse_equality() {
        let mut a = PhysMemory::new(1 << 16);
        let mut b = PhysMemory::new(1 << 16);
        assert_eq!(a, b);
        a.write_u8(PhysAddr::new(5), 7);
        assert_ne!(a, b);
        b.write_u8(PhysAddr::new(5), 7);
        assert_eq!(a, b);
        // Touching a page with zeroes keeps equality with an untouched one.
        a.write_u8(PhysAddr::new(PAGE_SIZE * 3), 0);
        assert_eq!(a, b);
    }
}
