//! The cycle cost model.
//!
//! Every architectural event the simulation performs charges cycles from
//! this table. The defaults are calibrated for the paper's platform — a
//! Cortex-A57 at 1.15 GHz on the Juno r1 (paper §6) — using publicly
//! reported latencies for that generation of core (L1 ≈ 4 cycles, L2 ≈ 20,
//! DRAM ≈ 170, exception entry/exit ≈ 300–400, EL2 world switch ≈ 1.2 k).
//! EXPERIMENTS.md documents how measured results track the paper when these
//! defaults are used.

/// Clock frequency of the modeled big core (Cortex-A57 on Juno r1).
pub const CPU_FREQ_HZ: u64 = 1_150_000_000;

/// Cycle costs of architectural events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// A load/store that hits the L1 data cache.
    pub cache_hit: u64,
    /// DRAM access latency (cache-line fill, write-back, or non-cacheable
    /// access).
    pub dram_access: u64,
    /// One page-table descriptor fetch during a walk (walks are well
    /// cached in real cores; this sits between L1 and L2 latency).
    pub walk_access: u64,
    /// TLB lookup (charged on every translated access).
    pub tlb_lookup: u64,
    /// EL0→EL1 exception entry + return (SVC round trip).
    pub syscall_roundtrip: u64,
    /// EL1→EL2 synchronous exception entry + return (HVC or trap round
    /// trip), excluding handler work.
    pub hyp_roundtrip: u64,
    /// Full world switch with register-file save/restore, as KVM performs
    /// on vmexit/vmentry.
    pub world_switch: u64,
    /// IRQ entry + return at EL1.
    pub irq_roundtrip: u64,
    /// Fault (data abort) entry + return at EL1.
    pub fault_roundtrip: u64,
    /// TLB maintenance operation (per invalidate instruction).
    pub tlb_maintenance: u64,
    /// Cache maintenance operation (per line).
    pub cache_maintenance: u64,
}

impl CostModel {
    /// The calibrated default model (see module docs).
    pub const fn calibrated() -> Self {
        Self {
            cache_hit: 4,
            dram_access: 170,
            walk_access: 12,
            tlb_lookup: 1,
            syscall_roundtrip: 300,
            hyp_roundtrip: 400,
            world_switch: 1500,
            irq_roundtrip: 350,
            fault_roundtrip: 400,
            tlb_maintenance: 35,
            cache_maintenance: 30,
        }
    }

    /// An alternative calibration for the platform's *little* core (a
    /// Cortex-A53-class in-order core at 650 MHz, the other half of the
    /// paper's big.LITTLE Juno). Lower clock means fewer cycles per DRAM
    /// access but a costlier in-order exception path. Used by the
    /// sensitivity bench to show the paper's overhead *shape* is robust
    /// to the calibration point, not an artifact of one constant set.
    pub const fn cortex_a53() -> Self {
        Self {
            cache_hit: 3,
            dram_access: 95,
            walk_access: 9,
            tlb_lookup: 1,
            syscall_roundtrip: 380,
            hyp_roundtrip: 520,
            world_switch: 1900,
            irq_roundtrip: 430,
            fault_roundtrip: 500,
            tlb_maintenance: 45,
            cache_maintenance: 35,
        }
    }

    /// Converts a cycle count to microseconds at [`CPU_FREQ_HZ`].
    pub fn cycles_to_us(cycles: u64) -> f64 {
        cycles as f64 / (CPU_FREQ_HZ as f64 / 1e6)
    }

    /// Converts microseconds to cycles at [`CPU_FREQ_HZ`].
    pub fn us_to_cycles(us: f64) -> u64 {
        (us * (CPU_FREQ_HZ as f64 / 1e6)).round() as u64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_calibrated() {
        assert_eq!(CostModel::default(), CostModel::calibrated());
    }

    #[test]
    fn unit_conversion_roundtrip() {
        assert_eq!(CostModel::us_to_cycles(1.0), 1150);
        let us = CostModel::cycles_to_us(2300);
        assert!((us - 2.0).abs() < 1e-9);
    }

    #[test]
    fn a53_profile_is_distinct_but_sane() {
        let big = CostModel::calibrated();
        let little = CostModel::cortex_a53();
        assert_ne!(big, little);
        assert!(little.cache_hit < little.walk_access);
        assert!(little.walk_access < little.dram_access);
        assert!(little.hyp_roundtrip < little.world_switch);
    }

    #[test]
    fn relative_ordering_is_sane() {
        let c = CostModel::calibrated();
        assert!(c.cache_hit < c.walk_access);
        assert!(c.walk_access < c.dram_access);
        assert!(c.syscall_roundtrip < c.hyp_roundtrip);
        assert!(c.hyp_roundtrip < c.world_switch);
    }
}
