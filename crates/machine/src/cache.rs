//! Write-back, write-allocate data cache model.
//!
//! The cache sits between the CPU and the memory bus. Cacheable stores that
//! hit stay in the cache (dirty) and are invisible on the bus until the
//! line is written back — which is exactly why the paper's Hypersec
//! "modifies the kernel page table so that any cache entry for the page
//! including the monitored region is not generated" (§5.3). Non-cacheable
//! accesses bypass this module entirely.
//!
//! Geometry: physically indexed/tagged, 64-byte lines, set-associative with
//! true-LRU replacement. The defaults approximate a Cortex-A57 L1D
//! (32 KiB, 2-way in hardware; we use 4-way × 128 sets = 32 KiB).

use crate::addr::PhysAddr;
use crate::bus::LINE_WORDS;

/// Line size in bytes (64 B, eight 8-byte words).
pub const LINE_SIZE: u64 = 64;
/// log2 of [`LINE_SIZE`].
pub const LINE_SHIFT: u32 = 6;

/// What the cache needs the machine to do on the bus before an access can
/// complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePlan {
    /// The access hits; no bus traffic required.
    Hit,
    /// The access misses; the machine must (1) write back the evicted dirty
    /// line if present, (2) fill `line` from memory, (3) call
    /// [`DataCache::install`], then retry.
    Refill {
        /// Line-aligned address to fill.
        line: PhysAddr,
        /// Dirty victim to write back first, if any.
        evict: Option<Eviction>,
    },
}

/// A dirty line that must be written back to memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Line-aligned address of the victim.
    pub addr: PhysAddr,
    /// Final contents of the victim line.
    pub data: [u64; LINE_WORDS],
}

/// Running statistics for the cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines written back (capacity evictions + maintenance).
    pub writebacks: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; `None` before the first access.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
    data: [u64; LINE_WORDS],
}

impl Line {
    const INVALID: Line = Line {
        tag: 0,
        valid: false,
        dirty: false,
        lru: 0,
        data: [0; LINE_WORDS],
    };
}

/// Set-associative write-back data cache.
///
/// ```
/// use hypernel_machine::addr::PhysAddr;
/// use hypernel_machine::cache::{CachePlan, DataCache};
///
/// let mut cache = DataCache::new(128, 4);
/// let pa = PhysAddr::new(0x4000);
/// // First touch misses and asks for a refill.
/// match cache.probe(pa) {
///     CachePlan::Refill { line, evict } => {
///         assert_eq!(line, pa);
///         assert!(evict.is_none());
///         cache.install(line, [0; 8]);
///     }
///     CachePlan::Hit => unreachable!("cold cache cannot hit"),
/// }
/// cache.write_word(pa, 7);
/// assert_eq!(cache.read_word(pa), 7);
/// ```
#[derive(Debug, Clone)]
pub struct DataCache {
    sets: Vec<Vec<Line>>,
    ways: usize,
    tick: u64,
    stats: CacheStats,
}

impl DataCache {
    /// Creates a cache with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or either parameter is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(
            sets.is_power_of_two() && sets > 0,
            "sets must be a power of two"
        );
        assert!(ways > 0, "ways must be non-zero");
        Self {
            sets: vec![vec![Line::INVALID; ways]; sets],
            ways,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        (self.sets.len() * self.ways) as u64 * LINE_SIZE
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn index(&self, addr: PhysAddr) -> (usize, u64) {
        let line = addr.raw() >> LINE_SHIFT;
        let set = (line as usize) & (self.sets.len() - 1);
        let tag = line >> self.sets.len().trailing_zeros();
        (set, tag)
    }

    fn line_base(&self, addr: PhysAddr) -> PhysAddr {
        PhysAddr::new(addr.raw() & !(LINE_SIZE - 1))
    }

    /// Probes for `addr` (read or write — the plan is the same) and records
    /// a hit or miss. On a miss the caller must perform the returned refill
    /// protocol before retrying the word access.
    pub fn probe(&mut self, addr: PhysAddr) -> CachePlan {
        self.tick += 1;
        let tick = self.tick;
        let (set_idx, tag) = self.index(addr);
        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = tick;
            self.stats.hits += 1;
            return CachePlan::Hit;
        }
        self.stats.misses += 1;
        // Choose victim: invalid way first, else LRU.
        let victim = set.iter().position(|l| !l.valid).unwrap_or_else(|| {
            set.iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .map(|(i, _)| i)
                .expect("ways > 0")
        });
        let victim_line = set[victim];
        let evict = if victim_line.valid && victim_line.dirty {
            self.stats.writebacks += 1;
            Some(Eviction {
                addr: self.reconstruct_addr(set_idx, victim_line.tag),
                data: victim_line.data,
            })
        } else {
            None
        };
        // Mark the victim way invalid so `install` can find it.
        self.sets[set_idx][victim] = Line::INVALID;
        CachePlan::Refill {
            line: self.line_base(addr),
            evict,
        }
    }

    fn reconstruct_addr(&self, set: usize, tag: u64) -> PhysAddr {
        let bits = self.sets.len().trailing_zeros();
        PhysAddr::new(((tag << bits) | set as u64) << LINE_SHIFT)
    }

    /// Installs a freshly fetched line. Must follow a `Refill` plan for the
    /// same line.
    ///
    /// # Panics
    ///
    /// Panics if the set has no free way (i.e. `probe` was not called or a
    /// different line was probed).
    pub fn install(&mut self, line_addr: PhysAddr, data: [u64; LINE_WORDS]) {
        self.tick += 1;
        let tick = self.tick;
        let (set_idx, tag) = self.index(line_addr);
        let set = &mut self.sets[set_idx];
        let way = set
            .iter()
            .position(|l| !l.valid)
            .expect("install requires a prior Refill probe that freed a way");
        set[way] = Line {
            tag,
            valid: true,
            dirty: false,
            lru: tick,
            data,
        };
    }

    /// Reads the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident (callers must `probe`/`install`
    /// first).
    pub fn read_word(&mut self, addr: PhysAddr) -> u64 {
        let (set_idx, tag) = self.index(addr);
        let word = (addr.raw() >> 3) as usize & (LINE_WORDS - 1);
        let line = self.sets[set_idx]
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)
            .expect("read_word requires a resident line");
        line.data[word]
    }

    /// Writes the word at `addr` and marks the line dirty.
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident.
    pub fn write_word(&mut self, addr: PhysAddr, value: u64) {
        let (set_idx, tag) = self.index(addr);
        let word = (addr.raw() >> 3) as usize & (LINE_WORDS - 1);
        let line = self.sets[set_idx]
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)
            .expect("write_word requires a resident line");
        line.data[word] = value;
        line.dirty = true;
    }

    /// Cleans and invalidates every line inside the 4 KiB page containing
    /// `page_addr`, returning dirty lines that must be written back.
    ///
    /// Hypersec performs this maintenance when it makes a page
    /// non-cacheable so that stale dirty data cannot shadow future
    /// bus-visible writes.
    pub fn clean_invalidate_page(&mut self, page_addr: PhysAddr) -> Vec<Eviction> {
        let base = page_addr.page_base();
        let mut out = Vec::new();
        for offset in (0..crate::addr::PAGE_SIZE).step_by(LINE_SIZE as usize) {
            let line_addr = base.add(offset);
            let (set_idx, tag) = self.index(line_addr);
            if let Some(line) = self.sets[set_idx]
                .iter_mut()
                .find(|l| l.valid && l.tag == tag)
            {
                if line.dirty {
                    self.stats.writebacks += 1;
                    out.push(Eviction {
                        addr: line_addr,
                        data: line.data,
                    });
                }
                *line = Line::INVALID;
            }
        }
        out
    }

    /// Invalidates the whole cache, returning all dirty lines for
    /// write-back.
    pub fn clean_invalidate_all(&mut self) -> Vec<Eviction> {
        let mut out = Vec::new();
        for set_idx in 0..self.sets.len() {
            for way in 0..self.ways {
                let line = self.sets[set_idx][way];
                if line.valid && line.dirty {
                    self.stats.writebacks += 1;
                    out.push(Eviction {
                        addr: self.reconstruct_addr(set_idx, line.tag),
                        data: line.data,
                    });
                }
                self.sets[set_idx][way] = Line::INVALID;
            }
        }
        out
    }

    /// Discards (invalidates without write-back) every line of the 4 KiB
    /// page containing `page_addr`. Used when a frame is recycled and its
    /// old contents are dead — stale dirty lines must not resurface.
    pub fn discard_page(&mut self, page_addr: PhysAddr) {
        let base = page_addr.page_base();
        for offset in (0..crate::addr::PAGE_SIZE).step_by(LINE_SIZE as usize) {
            let line_addr = base.add(offset);
            let (set_idx, tag) = self.index(line_addr);
            if let Some(line) = self.sets[set_idx]
                .iter_mut()
                .find(|l| l.valid && l.tag == tag)
            {
                *line = Line::INVALID;
            }
        }
    }

    /// Returns `true` if the line containing `addr` is resident.
    pub fn contains(&self, addr: PhysAddr) -> bool {
        let (set_idx, tag) = self.index(addr);
        self.sets[set_idx].iter().any(|l| l.valid && l.tag == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(cache: &mut DataCache, addr: PhysAddr) {
        match cache.probe(addr) {
            CachePlan::Hit => {}
            CachePlan::Refill { line, .. } => cache.install(line, [0; LINE_WORDS]),
        }
    }

    #[test]
    fn miss_then_hit() {
        let mut cache = DataCache::new(16, 2);
        let pa = PhysAddr::new(0x1000);
        assert!(matches!(cache.probe(pa), CachePlan::Refill { .. }));
        cache.install(pa, [9; LINE_WORDS]);
        assert_eq!(cache.probe(pa), CachePlan::Hit);
        assert_eq!(cache.read_word(pa.add(16)), 9);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn dirty_eviction_carries_data() {
        // 1 set x 1 way: second distinct line always evicts the first.
        let mut cache = DataCache::new(1, 1);
        let a = PhysAddr::new(0x0);
        let b = PhysAddr::new(0x40);
        fill(&mut cache, a);
        cache.write_word(a, 0xAA);
        match cache.probe(b) {
            CachePlan::Refill { line, evict } => {
                assert_eq!(line, b);
                let ev = evict.expect("dirty victim");
                assert_eq!(ev.addr, a);
                assert_eq!(ev.data[0], 0xAA);
            }
            CachePlan::Hit => panic!("must miss"),
        }
        assert_eq!(cache.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_is_silent() {
        let mut cache = DataCache::new(1, 1);
        fill(&mut cache, PhysAddr::new(0));
        match cache.probe(PhysAddr::new(0x40)) {
            CachePlan::Refill { evict, .. } => assert!(evict.is_none()),
            CachePlan::Hit => panic!("must miss"),
        }
    }

    #[test]
    fn lru_replacement_order() {
        let mut cache = DataCache::new(1, 2);
        let a = PhysAddr::new(0x000);
        let b = PhysAddr::new(0x040);
        let c = PhysAddr::new(0x080);
        fill(&mut cache, a);
        fill(&mut cache, b);
        // Touch `a` so `b` becomes LRU.
        assert_eq!(cache.probe(a), CachePlan::Hit);
        fill(&mut cache, c);
        assert!(cache.contains(a));
        assert!(!cache.contains(b));
        assert!(cache.contains(c));
    }

    #[test]
    fn page_maintenance_flushes_dirty_lines() {
        let mut cache = DataCache::new(128, 4);
        let page = PhysAddr::new(0x3000);
        fill(&mut cache, page);
        fill(&mut cache, page.add(0x80));
        cache.write_word(page, 1);
        cache.write_word(page.add(0x80), 2);
        // A line in a different page stays.
        fill(&mut cache, PhysAddr::new(0x9000));
        let evictions = cache.clean_invalidate_page(page);
        assert_eq!(evictions.len(), 2);
        assert!(!cache.contains(page));
        assert!(cache.contains(PhysAddr::new(0x9000)));
    }

    #[test]
    fn full_flush_returns_every_dirty_line() {
        let mut cache = DataCache::new(4, 2);
        for i in 0..4u64 {
            let a = PhysAddr::new(i * 0x40);
            fill(&mut cache, a);
            cache.write_word(a, i);
        }
        let mut evs = cache.clean_invalidate_all();
        evs.sort_by_key(|e| e.addr);
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[2].data[0], 2);
        assert!(!cache.contains(PhysAddr::new(0)));
    }

    #[test]
    fn eviction_address_reconstruction() {
        let mut cache = DataCache::new(64, 2);
        let a = PhysAddr::new(0xAB_CDC0); // arbitrary line-aligned address
        fill(&mut cache, a);
        cache.write_word(a, 5);
        let evs = cache.clean_invalidate_all();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].addr, a);
    }

    #[test]
    fn hit_rate() {
        let mut cache = DataCache::new(16, 2);
        assert!(cache.stats().hit_rate().is_none());
        fill(&mut cache, PhysAddr::new(0));
        cache.probe(PhysAddr::new(0));
        assert_eq!(cache.stats().hit_rate(), Some(0.5));
    }

    #[test]
    fn capacity() {
        assert_eq!(DataCache::new(128, 4).capacity(), 32 * 1024);
    }
}
