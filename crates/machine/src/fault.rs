//! Deterministic hardware-fault injection at the machine/MBM boundary.
//!
//! The adversarial campaign engine (`crates/campaign`) stresses the
//! detection pipeline not just with attacker programs but with the
//! hardware misbehaving underneath them: interrupts that never arrive,
//! a bus tap that flips an address bit, a translator that stalls until
//! its FIFO overflows. A [`FaultPlan`] declares those events as a
//! deterministic schedule — each [`FaultSpec`] names a *site* (an
//! observable pipeline point) and the occurrence window at which it
//! fires — and a [`FaultInjector`] executes the schedule, keeping
//! per-fault counters and a hit log so verdict oracles can attribute
//! every missed detection to the fault that caused it.
//!
//! Everything here is deterministic: the same plan against the same
//! workload produces bit-identical injections, which is what makes
//! campaign runs reproducible from `(scenario, seed)` alone and lets
//! the minimizer bisect a failing schedule.

use std::cell::RefCell;
use std::rc::Rc;

use crate::addr::PhysAddr;

/// The kinds of injectable hardware faults, each tied to one site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The MBM's interrupt assertion is lost on the wire.
    /// Site: MBM IRQ raise attempts.
    DropIrq,
    /// The MBM's interrupt assertion is delayed by `param` pipeline
    /// steps before reaching the controller.
    /// Site: MBM IRQ raise attempts.
    DelayIrq,
    /// The bitmap translator stalls for one drain opportunity, letting
    /// the snoop FIFO back up (and eventually overflow).
    /// Site: MBM drain invocations.
    StallTranslator,
    /// The bus tap observes a corrupted address: bit `param` of the
    /// snooped write address is flipped. DRAM still receives the true
    /// write — only the monitor's view is wrong.
    /// Site: snooped bus write transactions.
    FlipSnoopAddr,
    /// A hypercall traps to EL2 but its effect is lost (the doorbell
    /// rings in an empty room). `param` selects the hypercall number to
    /// lose, or `u64::MAX` for any.
    /// Site: hypercalls matching the filter.
    LoseHypercall,
    /// The watch bitmap the decision unit consults reads back as zero
    /// (a desynchronized/corrupted bitmap word).
    /// Site: bitmap lookups.
    DesyncBitmap,
}

impl FaultKind {
    /// Stable machine-readable name (used by scenario TOML and reports).
    pub fn name(self) -> &'static str {
        match self {
            Self::DropIrq => "drop-irq",
            Self::DelayIrq => "delay-irq",
            Self::StallTranslator => "stall-translator",
            Self::FlipSnoopAddr => "flip-snoop-addr",
            Self::LoseHypercall => "lose-hypercall",
            Self::DesyncBitmap => "desync-bitmap",
        }
    }

    /// Parses a [`FaultKind::name`] back into the kind.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "drop-irq" => Self::DropIrq,
            "delay-irq" => Self::DelayIrq,
            "stall-translator" => Self::StallTranslator,
            "flip-snoop-addr" => Self::FlipSnoopAddr,
            "lose-hypercall" => Self::LoseHypercall,
            "desync-bitmap" => Self::DesyncBitmap,
            _ => return None,
        })
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One scheduled fault: fire on the `at`-th through `at + count - 1`-th
/// occurrence (1-based) of the kind's site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// What goes wrong.
    pub kind: FaultKind,
    /// First site occurrence (1-based) the fault fires on.
    pub at: u64,
    /// Number of consecutive occurrences affected.
    pub count: u64,
    /// Kind-specific parameter (delay steps, bit index, hypercall nr).
    pub param: u64,
}

impl FaultSpec {
    /// Drop the `at`-th through `at + count - 1`-th MBM IRQ assertions.
    pub fn drop_irq(at: u64, count: u64) -> Self {
        Self {
            kind: FaultKind::DropIrq,
            at,
            count,
            param: 0,
        }
    }

    /// Delay matching MBM IRQ assertions by `steps` pipeline steps.
    pub fn delay_irq(at: u64, count: u64, steps: u64) -> Self {
        Self {
            kind: FaultKind::DelayIrq,
            at,
            count,
            param: steps,
        }
    }

    /// Stall the bitmap translator for `count` drain opportunities.
    pub fn stall_translator(at: u64, count: u64) -> Self {
        Self {
            kind: FaultKind::StallTranslator,
            at,
            count,
            param: 0,
        }
    }

    /// Flip address bit `bit` of matching snooped writes.
    pub fn flip_snoop_addr(at: u64, count: u64, bit: u64) -> Self {
        Self {
            kind: FaultKind::FlipSnoopAddr,
            at,
            count,
            param: bit,
        }
    }

    /// Lose matching hypercalls numbered `call` (`u64::MAX` = any).
    pub fn lose_hypercall(at: u64, count: u64, call: u64) -> Self {
        Self {
            kind: FaultKind::LoseHypercall,
            at,
            count,
            param: call,
        }
    }

    /// Zero the bitmap word seen by matching decision-unit lookups.
    pub fn desync_bitmap(at: u64, count: u64) -> Self {
        Self {
            kind: FaultKind::DesyncBitmap,
            at,
            count,
            param: 0,
        }
    }
}

/// A declarative fault schedule, threaded through `SystemBuilder`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scheduled faults, in declaration order.
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fault to the schedule.
    #[must_use]
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Returns `true` when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

/// Per-fault injection counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// MBM IRQ assertions dropped.
    pub irqs_dropped: u64,
    /// MBM IRQ assertions delayed.
    pub irqs_delayed: u64,
    /// Translator drain opportunities stalled.
    pub translator_stalls: u64,
    /// Snooped write addresses corrupted.
    pub snoop_addr_flips: u64,
    /// Hypercalls lost.
    pub hypercalls_lost: u64,
    /// Bitmap lookups desynchronized.
    pub bitmap_desyncs: u64,
}

impl FaultStats {
    /// Total injections across all kinds.
    pub fn total(&self) -> u64 {
        self.irqs_dropped
            + self.irqs_delayed
            + self.translator_stalls
            + self.snoop_addr_flips
            + self.hypercalls_lost
            + self.bitmap_desyncs
    }

    /// Injections that can hide a watched write from the detection
    /// pipeline (everything except pure delays).
    pub fn detection_threatening(&self) -> u64 {
        self.total() - self.irqs_delayed
    }

    /// `(field, count)` pairs for every counter, in declaration order.
    /// The names are the artifact field names — campaign records and
    /// summaries serialize through this one list.
    pub fn counters(&self) -> [(&'static str, u64); 6] {
        [
            ("irqs_dropped", self.irqs_dropped),
            ("irqs_delayed", self.irqs_delayed),
            ("translator_stalls", self.translator_stalls),
            ("snoop_addr_flips", self.snoop_addr_flips),
            ("hypercalls_lost", self.hypercalls_lost),
            ("bitmap_desyncs", self.bitmap_desyncs),
        ]
    }

    /// Adds every counter from `other` into `self` (summary rollups).
    pub fn add(&mut self, other: &FaultStats) {
        self.irqs_dropped += other.irqs_dropped;
        self.irqs_delayed += other.irqs_delayed;
        self.translator_stalls += other.translator_stalls;
        self.snoop_addr_flips += other.snoop_addr_flips;
        self.hypercalls_lost += other.hypercalls_lost;
        self.bitmap_desyncs += other.bitmap_desyncs;
    }
}

/// One recorded injection, for post-run attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultHit {
    /// The kind that fired.
    pub kind: FaultKind,
    /// The site-occurrence index (1-based) it fired on.
    pub site_index: u64,
    /// Kind-specific detail (affected address, hypercall nr, …).
    pub info: u64,
}

/// The decision an IRQ-raise site gets back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrqFault {
    /// Deliver normally.
    None,
    /// Suppress the assertion entirely.
    Drop,
    /// Deliver after this many pipeline steps.
    Delay(u64),
}

#[derive(Clone)]
struct SpecState {
    spec: FaultSpec,
    seen: u64,
}

impl SpecState {
    /// Advances this spec's private site counter and reports whether the
    /// occurrence falls inside the firing window.
    fn hit(&mut self) -> bool {
        self.seen += 1;
        self.seen >= self.spec.at && self.seen < self.spec.at.saturating_add(self.spec.count)
    }
}

/// Executes a [`FaultPlan`]: each site consults the injector, which
/// tracks occurrence counts per spec and records every injection.
///
/// `Clone` copies the occurrence counters, stats and log as they stand,
/// so a forked system resumes fault injection exactly where the original
/// was at fork time (for warm-boot reuse, that is the fresh post-boot
/// state).
#[derive(Clone)]
pub struct FaultInjector {
    specs: Vec<SpecState>,
    stats: FaultStats,
    log: Vec<FaultHit>,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("specs", &self.specs.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl FaultInjector {
    /// Creates an injector executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            specs: plan
                .specs
                .into_iter()
                .map(|spec| SpecState { spec, seen: 0 })
                .collect(),
            stats: FaultStats::default(),
            log: Vec::new(),
        }
    }

    /// Injection counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Every injection performed, in order.
    pub fn log(&self) -> &[FaultHit] {
        &self.log
    }

    fn record(&mut self, kind: FaultKind, site_index: u64, info: u64) {
        self.log.push(FaultHit {
            kind,
            site_index,
            info,
        });
    }

    /// Site: the MBM asserts its interrupt line. Returns what the wire
    /// does with it. `addr` is the triggering write address (logged).
    pub fn on_irq_raise(&mut self, addr: u64) -> IrqFault {
        let mut verdict = IrqFault::None;
        let mut hits = Vec::new();
        for s in &mut self.specs {
            let matches = matches!(s.spec.kind, FaultKind::DropIrq | FaultKind::DelayIrq);
            if !matches {
                continue;
            }
            if s.hit() {
                hits.push((s.spec.kind, s.seen, s.spec.param));
            }
        }
        for (kind, site, param) in hits {
            match kind {
                FaultKind::DropIrq => {
                    self.stats.irqs_dropped += 1;
                    self.record(kind, site, addr);
                    verdict = IrqFault::Drop;
                }
                FaultKind::DelayIrq => {
                    self.stats.irqs_delayed += 1;
                    self.record(kind, site, addr);
                    // A drop beats a delay when both fire.
                    if verdict == IrqFault::None {
                        verdict = IrqFault::Delay(param.max(1));
                    }
                }
                _ => unreachable!("filtered above"),
            }
        }
        verdict
    }

    /// Site: the bitmap translator gets a drain opportunity. Returns
    /// `true` when the translator must stall this time.
    pub fn on_drain(&mut self) -> bool {
        let mut stalled = false;
        let mut hits = Vec::new();
        for s in &mut self.specs {
            if s.spec.kind != FaultKind::StallTranslator {
                continue;
            }
            if s.hit() {
                hits.push(s.seen);
            }
        }
        for site in hits {
            self.stats.translator_stalls += 1;
            self.record(FaultKind::StallTranslator, site, 0);
            stalled = true;
        }
        stalled
    }

    /// Site: a write transaction is shown to bus snoopers. Returns the
    /// (possibly corrupted) address the snoopers observe.
    pub fn on_snoop_write(&mut self, addr: PhysAddr) -> PhysAddr {
        let mut out = addr;
        let mut hits = Vec::new();
        for s in &mut self.specs {
            if s.spec.kind != FaultKind::FlipSnoopAddr {
                continue;
            }
            if s.hit() {
                hits.push((s.seen, s.spec.param));
            }
        }
        for (site, bit) in hits {
            out = PhysAddr::new(out.raw() ^ (1u64 << (bit % 64)));
            self.stats.snoop_addr_flips += 1;
            self.record(FaultKind::FlipSnoopAddr, site, addr.raw());
        }
        out
    }

    /// Site: EL1 issues hypercall `call`. Returns `true` when the call
    /// is lost (trap taken, handler never runs).
    pub fn on_hypercall(&mut self, call: u64) -> bool {
        let mut lost = false;
        let mut hits = Vec::new();
        for s in &mut self.specs {
            if s.spec.kind != FaultKind::LoseHypercall {
                continue;
            }
            if s.spec.param != u64::MAX && s.spec.param != call {
                continue;
            }
            if s.hit() {
                hits.push(s.seen);
            }
        }
        for site in hits {
            self.stats.hypercalls_lost += 1;
            self.record(FaultKind::LoseHypercall, site, call);
            lost = true;
        }
        lost
    }

    /// Site: the decision unit fetches a bitmap word. Returns `true`
    /// when the word must read back as zero.
    pub fn on_bitmap_lookup(&mut self, word_addr: u64) -> bool {
        let mut desync = false;
        let mut hits = Vec::new();
        for s in &mut self.specs {
            if s.spec.kind != FaultKind::DesyncBitmap {
                continue;
            }
            if s.hit() {
                hits.push(s.seen);
            }
        }
        for site in hits {
            self.stats.bitmap_desyncs += 1;
            self.record(FaultKind::DesyncBitmap, site, word_addr);
            desync = true;
        }
        desync
    }
}

/// The shared handle components hold on one injector. The machine and
/// its devices live on one thread (the whole `System` is single-
/// threaded), so `Rc<RefCell<…>>` matches the existing telemetry-sink
/// sharing pattern.
pub type SharedFaults = Rc<RefCell<FaultInjector>>;

/// Wraps a plan into the shared handle form the taps consume.
pub fn share(plan: FaultPlan) -> SharedFaults {
    Rc::new(RefCell::new(FaultInjector::new(plan)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_fire_on_exact_occurrences() {
        let mut inj = FaultInjector::new(FaultPlan::new().with(FaultSpec::drop_irq(2, 2)));
        assert_eq!(inj.on_irq_raise(0xA), IrqFault::None);
        assert_eq!(inj.on_irq_raise(0xB), IrqFault::Drop);
        assert_eq!(inj.on_irq_raise(0xC), IrqFault::Drop);
        assert_eq!(inj.on_irq_raise(0xD), IrqFault::None);
        assert_eq!(inj.stats().irqs_dropped, 2);
        assert_eq!(inj.log().len(), 2);
        assert_eq!(inj.log()[0].site_index, 2);
        assert_eq!(inj.log()[0].info, 0xB);
    }

    #[test]
    fn drop_beats_delay_on_overlap() {
        let mut inj = FaultInjector::new(
            FaultPlan::new()
                .with(FaultSpec::drop_irq(1, 1))
                .with(FaultSpec::delay_irq(1, 1, 5)),
        );
        assert_eq!(inj.on_irq_raise(0), IrqFault::Drop);
        assert_eq!(inj.stats().irqs_dropped, 1);
        assert_eq!(inj.stats().irqs_delayed, 1);
    }

    #[test]
    fn hypercall_filter_only_counts_matching_calls() {
        let mut inj =
            FaultInjector::new(FaultPlan::new().with(FaultSpec::lose_hypercall(1, 1, 0x130)));
        assert!(!inj.on_hypercall(0x100), "non-matching call not counted");
        assert!(!inj.on_hypercall(0x100));
        assert!(inj.on_hypercall(0x130), "first matching call is lost");
        assert!(!inj.on_hypercall(0x130), "window exhausted");
        assert_eq!(inj.stats().hypercalls_lost, 1);
    }

    #[test]
    fn snoop_flip_changes_only_the_observed_address() {
        let mut inj =
            FaultInjector::new(FaultPlan::new().with(FaultSpec::flip_snoop_addr(1, 1, 3)));
        let seen = inj.on_snoop_write(PhysAddr::new(0x1000));
        assert_eq!(seen, PhysAddr::new(0x1008));
        let seen = inj.on_snoop_write(PhysAddr::new(0x1000));
        assert_eq!(seen, PhysAddr::new(0x1000), "window exhausted");
        assert_eq!(inj.stats().snoop_addr_flips, 1);
    }

    #[test]
    fn stall_and_desync_sites() {
        let mut inj = FaultInjector::new(
            FaultPlan::new()
                .with(FaultSpec::stall_translator(1, 3))
                .with(FaultSpec::desync_bitmap(2, 1)),
        );
        assert!(inj.on_drain());
        assert!(inj.on_drain());
        assert!(inj.on_drain());
        assert!(!inj.on_drain());
        assert!(!inj.on_bitmap_lookup(0x40));
        assert!(inj.on_bitmap_lookup(0x48));
        assert!(!inj.on_bitmap_lookup(0x50));
        let stats = inj.stats();
        assert_eq!(stats.translator_stalls, 3);
        assert_eq!(stats.bitmap_desyncs, 1);
        assert_eq!(stats.total(), 4);
        assert_eq!(stats.detection_threatening(), 4);
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in [
            FaultKind::DropIrq,
            FaultKind::DelayIrq,
            FaultKind::StallTranslator,
            FaultKind::FlipSnoopAddr,
            FaultKind::LoseHypercall,
            FaultKind::DesyncBitmap,
        ] {
            assert_eq!(FaultKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(FaultKind::parse("nope"), None);
    }
}
