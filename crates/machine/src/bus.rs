//! The CPU↔DRAM memory bus and its snooping interface.
//!
//! The paper's MBM "eavesdrops on the system bus between the host processor
//! and main memory" (§1). This module models that bus: every access that
//! actually leaves the cache hierarchy becomes a [`BusTransaction`], and any
//! attached [`BusSnooper`] observes it *after* the backing DRAM has been
//! updated (write-through ordering on the bus itself).
//!
//! Crucially, cacheable writes that hit in the write-back data cache do
//! **not** appear here — only misses, write-backs of dirty lines, and
//! non-cacheable accesses do. This reproduces the visibility constraint
//! that forces Hypersec to mark monitored pages non-cacheable (paper §5.3).

use std::any::Any;

use crate::addr::PhysAddr;
use crate::fault::SharedFaults;
use crate::irq::IrqController;
use crate::mem::PhysMemory;

/// Number of 8-byte words in one cache line (64-byte lines).
pub const LINE_WORDS: usize = 8;

/// A transaction observed on the memory bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusTransaction {
    /// A single 8-byte read (non-cacheable load or page-table walk access).
    ReadWord {
        /// Word-aligned physical address.
        addr: PhysAddr,
    },
    /// A single 8-byte write (non-cacheable store).
    WriteWord {
        /// Word-aligned physical address.
        addr: PhysAddr,
        /// The value written.
        value: u64,
    },
    /// A 64-byte line fill (cache miss refill).
    ReadLine {
        /// Line-aligned physical address.
        addr: PhysAddr,
    },
    /// A 64-byte dirty-line write-back. Carries the final contents of the
    /// line; intermediate store values coalesced inside the cache are lost,
    /// which is precisely why monitored regions must be non-cacheable.
    WriteLine {
        /// Line-aligned physical address.
        addr: PhysAddr,
        /// Final contents of the eight words of the line.
        data: [u64; LINE_WORDS],
    },
}

impl BusTransaction {
    /// Physical address of the transaction (word- or line-aligned).
    pub fn addr(&self) -> PhysAddr {
        match self {
            Self::ReadWord { addr }
            | Self::WriteWord { addr, .. }
            | Self::ReadLine { addr }
            | Self::WriteLine { addr, .. } => *addr,
        }
    }

    /// Returns `true` for write transactions (the MBM only inspects writes).
    pub fn is_write(&self) -> bool {
        matches!(self, Self::WriteWord { .. } | Self::WriteLine { .. })
    }
}

/// Context handed to snoopers: backing memory (a snooper such as the MBM
/// fetches its bitmap from DRAM) and the interrupt controller (to signal
/// the host CPU).
pub struct BusContext<'a> {
    /// Backing DRAM. Snooper reads here model the MBM's own memory port.
    pub mem: &'a mut PhysMemory,
    /// Platform interrupt controller.
    pub irq: &'a mut IrqController,
    /// Cycle counter the snooper may charge for its own DRAM traffic
    /// (the MBM shares the memory port with the CPU).
    pub extra_mem_accesses: &'a mut u64,
    /// CPU cycle counter at the moment of the transaction, so snoopers
    /// can timestamp telemetry on the same clock as the core.
    pub cycles: u64,
}

/// A device attached to the memory bus that observes every transaction.
///
/// Implementors also get a chance to run their internal pipeline via
/// [`BusSnooper::step`], which the machine calls at instruction boundaries
/// so queued work drains even when the bus goes quiet.
pub trait BusSnooper: Any {
    /// Called for every bus transaction, after DRAM has been updated.
    fn on_transaction(&mut self, txn: &BusTransaction, ctx: &mut BusContext<'_>);

    /// Called periodically to let the device drain internal queues.
    fn step(&mut self, ctx: &mut BusContext<'_>) {
        let _ = ctx;
    }

    /// Upcast to [`Any`] so callers can recover the concrete device type.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast to [`Any`].
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// Deep-copies the device (including any queued internal state), so
    /// a whole bus — and with it a whole machine — can be snapshotted
    /// and forked for warm-boot reuse.
    fn clone_box(&self) -> Box<dyn BusSnooper>;
}

/// The memory bus: DRAM plus an ordered list of snooping devices.
///
/// All machine-level memory traffic funnels through [`MemoryBus::issue`],
/// which applies the access to DRAM and then shows it to every snooper.
#[derive(Default)]
pub struct MemoryBus {
    snoopers: Vec<Box<dyn BusSnooper>>,
    reads: u64,
    writes: u64,
    faults: Option<SharedFaults>,
}

impl std::fmt::Debug for MemoryBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryBus")
            .field("snoopers", &self.snoopers.len())
            .field("reads", &self.reads)
            .field("writes", &self.writes)
            .finish()
    }
}

impl Clone for MemoryBus {
    /// Deep-copies every attached snooper via
    /// [`BusSnooper::clone_box`]. A fault injector is shared (`Rc`) —
    /// callers forking a machine re-wire it afterwards.
    fn clone(&self) -> Self {
        Self {
            snoopers: self.snoopers.iter().map(|s| s.clone_box()).collect(),
            reads: self.reads,
            writes: self.writes,
            faults: self.faults.clone(),
        }
    }
}

impl MemoryBus {
    /// Creates a bus with no attached devices.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a snooping device. Devices observe transactions in
    /// attachment order.
    pub fn attach(&mut self, snooper: Box<dyn BusSnooper>) {
        self.snoopers.push(snooper);
    }

    /// Detaches and returns all snoopers (used by tests to inspect state).
    pub fn detach_all(&mut self) -> Vec<Box<dyn BusSnooper>> {
        std::mem::take(&mut self.snoopers)
    }

    /// Installs (or removes) the fault injector. The only fault the bus
    /// itself executes is snoop-path address corruption
    /// ([`crate::fault::FaultKind::FlipSnoopAddr`]): DRAM always receives
    /// the true write; the corrupted address is what snoopers observe.
    pub fn set_fault_injector(&mut self, faults: Option<SharedFaults>) {
        self.faults = faults;
    }

    /// The write transaction snoopers will observe for `txn` — identical
    /// unless a snoop-corruption fault fires.
    fn snooped_view(&mut self, txn: &BusTransaction) -> BusTransaction {
        let Some(faults) = &self.faults else {
            return *txn;
        };
        match *txn {
            BusTransaction::WriteWord { addr, value } => BusTransaction::WriteWord {
                addr: faults.borrow_mut().on_snoop_write(addr),
                value,
            },
            BusTransaction::WriteLine { addr, data } => BusTransaction::WriteLine {
                addr: faults.borrow_mut().on_snoop_write(addr),
                data,
            },
            read => read,
        }
    }

    /// Returns a reference to the first attached snooper of type `T`.
    pub fn snooper<T: BusSnooper>(&self) -> Option<&T> {
        self.snoopers
            .iter()
            .find_map(|s| s.as_any().downcast_ref::<T>())
    }

    /// Returns a mutable reference to the first attached snooper of type `T`.
    pub fn snooper_mut<T: BusSnooper>(&mut self) -> Option<&mut T> {
        self.snoopers
            .iter_mut()
            .find_map(|s| s.as_any_mut().downcast_mut::<T>())
    }

    /// Issues a transaction: applies it to DRAM, updates counters, then
    /// lets each snooper observe it.
    ///
    /// Returns the value read for read transactions (word reads return the
    /// word; line reads return the first word — callers wanting the full
    /// line read it from `mem` directly).
    pub fn issue(
        &mut self,
        txn: BusTransaction,
        mem: &mut PhysMemory,
        irq: &mut IrqController,
        cycles: u64,
    ) -> (u64, u64) {
        let mut extra = 0u64;
        let value = match txn {
            BusTransaction::ReadWord { addr } => {
                self.reads += 1;
                mem.read_u64(addr)
            }
            BusTransaction::ReadLine { addr } => {
                self.reads += 1;
                mem.read_u64(addr)
            }
            BusTransaction::WriteWord { addr, value } => {
                self.writes += 1;
                mem.write_u64(addr, value);
                value
            }
            BusTransaction::WriteLine { addr, data } => {
                self.writes += 1;
                for (i, w) in data.iter().enumerate() {
                    mem.write_u64(addr.add(i as u64 * 8), *w);
                }
                data[0]
            }
        };
        let snooped = self.snooped_view(&txn);
        for s in &mut self.snoopers {
            let mut ctx = BusContext {
                mem,
                irq,
                extra_mem_accesses: &mut extra,
                cycles,
            };
            s.on_transaction(&snooped, &mut ctx);
        }
        (value, extra)
    }

    /// Lets every snooper drain internal queues.
    pub fn step_snoopers(
        &mut self,
        mem: &mut PhysMemory,
        irq: &mut IrqController,
        cycles: u64,
    ) -> u64 {
        let mut extra = 0u64;
        for s in &mut self.snoopers {
            let mut ctx = BusContext {
                mem,
                irq,
                extra_mem_accesses: &mut extra,
                cycles,
            };
            s.step(&mut ctx);
        }
        extra
    }

    /// Total read transactions issued.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total write transactions issued.
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Default, Clone)]
    struct Recorder {
        seen: Vec<BusTransaction>,
    }

    impl BusSnooper for Recorder {
        fn on_transaction(&mut self, txn: &BusTransaction, _ctx: &mut BusContext<'_>) {
            self.seen.push(*txn);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn clone_box(&self) -> Box<dyn BusSnooper> {
            Box::new(self.clone())
        }
    }

    fn rig() -> (MemoryBus, PhysMemory, IrqController) {
        (
            MemoryBus::new(),
            PhysMemory::new(1 << 20),
            IrqController::new(),
        )
    }

    #[test]
    fn write_reaches_memory_then_snooper() {
        let (mut bus, mut mem, mut irq) = rig();
        bus.attach(Box::new(Recorder::default()));
        bus.issue(
            BusTransaction::WriteWord {
                addr: PhysAddr::new(0x100),
                value: 42,
            },
            &mut mem,
            &mut irq,
            0,
        );
        assert_eq!(mem.read_u64(PhysAddr::new(0x100)), 42);
        let rec: &Recorder = bus.snooper().unwrap();
        assert_eq!(rec.seen.len(), 1);
        assert!(rec.seen[0].is_write());
        assert_eq!(rec.seen[0].addr(), PhysAddr::new(0x100));
    }

    #[test]
    fn read_returns_value() {
        let (mut bus, mut mem, mut irq) = rig();
        mem.write_u64(PhysAddr::new(0x80), 77);
        let (v, _) = bus.issue(
            BusTransaction::ReadWord {
                addr: PhysAddr::new(0x80),
            },
            &mut mem,
            &mut irq,
            0,
        );
        assert_eq!(v, 77);
        assert_eq!(bus.reads(), 1);
        assert_eq!(bus.writes(), 0);
    }

    #[test]
    fn line_writeback_updates_all_words() {
        let (mut bus, mut mem, mut irq) = rig();
        let data = [1u64, 2, 3, 4, 5, 6, 7, 8];
        bus.issue(
            BusTransaction::WriteLine {
                addr: PhysAddr::new(0x1000),
                data,
            },
            &mut mem,
            &mut irq,
            0,
        );
        for (i, w) in data.iter().enumerate() {
            assert_eq!(mem.read_u64(PhysAddr::new(0x1000 + i as u64 * 8)), *w);
        }
    }

    #[test]
    fn snooper_downcast_by_type() {
        let (mut bus, _, _) = rig();
        bus.attach(Box::new(Recorder::default()));
        assert!(bus.snooper::<Recorder>().is_some());
        assert!(bus.snooper_mut::<Recorder>().is_some());
    }

    #[test]
    fn reads_are_snooped_too() {
        let (mut bus, mut mem, mut irq) = rig();
        bus.attach(Box::new(Recorder::default()));
        bus.issue(
            BusTransaction::ReadLine {
                addr: PhysAddr::new(0),
            },
            &mut mem,
            &mut irq,
            0,
        );
        let rec: &Recorder = bus.snooper().unwrap();
        assert_eq!(rec.seen.len(), 1);
        assert!(!rec.seen[0].is_write());
    }
}
