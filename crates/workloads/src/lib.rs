#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # hypernel-workloads
//!
//! Workload generators for the Hypernel (DAC 2018) reproduction:
//!
//! * [`lmbench`] — the nine kernel-operation microbenchmarks of the
//!   paper's Table 1 (`stat`, signals, pipe/socket latency, fork/exec,
//!   page fault, mmap);
//! * [`apps`] — the five application benchmarks of Figure 6 and Table 2
//!   (whetstone, dhrystone, untar, iozone, apache), modeled as the
//!   kernel-operation mixes the real programs generate.
//!
//! All workloads are deterministic (seeded) and operate directly on the
//! `(Kernel, Machine, Hyp)` triple, so the same generator runs unchanged
//! under the Native, KVM-guest and Hypernel configurations.

pub mod apps;
pub mod lmbench;
pub mod measure;
pub mod replay;

pub use apps::AppBenchmark;
pub use lmbench::{ExtraOp, LmbenchOp};
pub use measure::Measurement;
