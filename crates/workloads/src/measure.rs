//! Measurement primitives shared by all workloads.

use hypernel_machine::cost::CostModel;

/// Cycles spent over a number of iterations of an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Measurement {
    /// Total cycles across all iterations.
    pub total_cycles: u64,
    /// Number of iterations measured.
    pub iterations: u64,
}

impl Measurement {
    /// Mean cycles per iteration.
    pub fn cycles_per_iter(&self) -> f64 {
        self.total_cycles as f64 / self.iterations.max(1) as f64
    }

    /// Mean microseconds per iteration at the modeled 1.15 GHz clock.
    pub fn micros_per_iter(&self) -> f64 {
        CostModel::cycles_to_us(self.total_cycles) / self.iterations.max(1) as f64
    }

    /// Overhead of `self` relative to `baseline` as a fraction
    /// (`0.05` = 5 % slower).
    pub fn overhead_vs(&self, baseline: &Measurement) -> f64 {
        self.cycles_per_iter() / baseline.cycles_per_iter() - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_iter_math() {
        let base = Measurement {
            total_cycles: 1000,
            iterations: 10,
        };
        let slower = Measurement {
            total_cycles: 1150,
            iterations: 10,
        };
        assert_eq!(base.cycles_per_iter(), 100.0);
        assert!((slower.overhead_vs(&base) - 0.15).abs() < 1e-12);
        assert!((base.micros_per_iter() - 100.0 / 1150.0).abs() < 1e-9);
    }

    #[test]
    fn zero_iterations_does_not_divide_by_zero() {
        let m = Measurement {
            total_cycles: 100,
            iterations: 0,
        };
        assert_eq!(m.cycles_per_iter(), 100.0);
    }
}
