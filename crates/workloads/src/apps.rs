//! Application benchmark models (paper Figure 6 and Table 2).
//!
//! Each [`AppBenchmark`] reproduces the *kernel-operation mix* of the
//! benchmark the paper ran: process launches, file creation/IO, socket
//! traffic, and user-space compute phases with memory traffic. Absolute
//! run times are meaningless across a simulator boundary; what matters —
//! and what these mixes are calibrated for — is (a) the relative overhead
//! of the three system configurations (Figure 6) and (b) the ratio of
//! sensitive-field writes to whole-object writes on the monitored `cred`
//! and `dentry` objects (Table 2).
//!
//! Sizes are scaled down ~10× from the paper's runs (see
//! [`AppBenchmark::paper_scale_factor`]); both Table 2 columns scale
//! linearly with workload size, so the ratio is preserved.

use hypernel_kernel::kernel::{Kernel, KernelError};
use hypernel_kernel::layout;
use hypernel_kernel::task::Pid;

use hypernel_machine::addr::{VirtAddr, PAGE_SIZE};
use hypernel_machine::machine::{Hyp, Machine};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::measure::Measurement;

/// The five application benchmarks of the paper's Figure 6 / Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppBenchmark {
    /// Floating-point compute (whetstone).
    Whetstone,
    /// Integer/string compute (dhrystone).
    Dhrystone,
    /// Archive extraction: many small file creations (untar).
    Untar,
    /// Filesystem throughput (iozone).
    Iozone,
    /// Web serving: sockets + static files + CGI forks (apache).
    Apache,
}

impl AppBenchmark {
    /// All benchmarks in the paper's Table 2 row order.
    pub const ALL: &'static [AppBenchmark] = &[
        Self::Whetstone,
        Self::Dhrystone,
        Self::Untar,
        Self::Iozone,
        Self::Apache,
    ];

    /// The paper's row label.
    pub fn label(self) -> &'static str {
        match self {
            Self::Whetstone => "whetstone",
            Self::Dhrystone => "dhrystone",
            Self::Untar => "untar",
            Self::Iozone => "iozone",
            Self::Apache => "apache",
        }
    }

    /// Paper Table 2: trap events under page-granularity monitoring.
    pub fn paper_page_granularity_events(self) -> u64 {
        match self {
            Self::Whetstone => 525,
            Self::Dhrystone => 637,
            Self::Untar => 2_173_870,
            Self::Iozone => 1_510,
            Self::Apache => 48_650,
        }
    }

    /// Paper Table 2: trap events under word-granularity monitoring.
    pub fn paper_word_granularity_events(self) -> u64 {
        match self {
            Self::Whetstone => 48,
            Self::Dhrystone => 39,
            Self::Untar => 96_467,
            Self::Iozone => 117,
            Self::Apache => 1_754,
        }
    }

    /// How much smaller (roughly) our default workload sizes are than the
    /// paper's runs. Event counts scale linearly; ratios do not change.
    pub fn paper_scale_factor(self) -> f64 {
        match self {
            Self::Whetstone | Self::Dhrystone | Self::Iozone => 1.0,
            Self::Untar => 10.0,
            Self::Apache => 10.0,
        }
    }
}

impl std::fmt::Display for AppBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// User-space compute phase: charges cycles and performs strided loads
/// and stores over the current task's image pages at EL0 — the traffic
/// that makes nested-paging TLB misses expensive under KVM. Accesses go
/// through the kernel's demand-paging path, so pages exec left unmapped
/// fault in naturally.
fn user_compute(
    kernel: &mut Kernel,
    m: &mut Machine,
    hyp: &mut dyn Hyp,
    compute_cycles: u64,
    mem_ops: u64,
    rng: &mut SmallRng,
) -> Result<(), KernelError> {
    m.charge(compute_cycles);
    let pages = hypernel_kernel::kernel::tuning::USER_IMAGE_PAGES as u64;
    for i in 0..mem_ops {
        let page = rng.gen_range(0..pages);
        let word = rng.gen_range(0..PAGE_SIZE / 8);
        let va = VirtAddr::new(layout::USER_IMAGE_BASE + page * PAGE_SIZE + word * 8);
        if i % 3 == 0 {
            kernel.user_store(m, hyp, va, i)?;
        } else {
            kernel.user_touch(m, hyp, va)?;
        }
    }
    Ok(())
}

/// Interactive-shell background activity around a benchmark run: PATH
/// stats, history appends — the dcache traffic a driver script causes.
fn shell_activity(
    kernel: &mut Kernel,
    m: &mut Machine,
    hyp: &mut dyn Hyp,
    rounds: u64,
) -> Result<(), KernelError> {
    kernel.sys_create(m, hyp, "/tmp/.sh_history")?;
    for i in 0..rounds {
        let path = ["/bin/sh", "/bin", "/etc", "/usr"][(i % 4) as usize];
        kernel.sys_stat(m, hyp, path)?;
        kernel.sys_write_file(m, hyp, "/tmp/.sh_history", 64)?;
    }
    kernel.sys_unlink(m, hyp, "/tmp/.sh_history")?;
    Ok(())
}

/// Public wrapper over the user-compute phase for the replay engine.
#[doc(hidden)]
pub fn user_compute_public(
    kernel: &mut Kernel,
    m: &mut Machine,
    hyp: &mut dyn Hyp,
    compute_cycles: u64,
    mem_ops: u64,
    rng: &mut SmallRng,
) -> Result<(), KernelError> {
    user_compute(kernel, m, hyp, compute_cycles, mem_ops, rng)
}

/// Launches a benchmark process: fork from the shell, exec the binary.
fn launch(
    kernel: &mut Kernel,
    m: &mut Machine,
    hyp: &mut dyn Hyp,
    binary: &str,
) -> Result<(Pid, Pid), KernelError> {
    let shell = kernel.current();
    let child = kernel.sys_fork(m, hyp)?;
    kernel.switch_to(m, hyp, child)?;
    kernel.sys_execve(m, hyp, binary)?;
    Ok((shell, child))
}

fn finish(
    kernel: &mut Kernel,
    m: &mut Machine,
    hyp: &mut dyn Hyp,
    shell: Pid,
    child: Pid,
) -> Result<(), KernelError> {
    kernel.sys_exit(m, hyp, child, shell)?;
    kernel.poll_irqs(m, hyp)?;
    Ok(())
}

/// Creates the static filesystem content a benchmark expects (binaries,
/// archives, document roots). Run this **before** resetting monitor
/// statistics: the paper's benchmarks also start from an existing
/// filesystem.
///
/// # Errors
///
/// Propagates kernel errors.
pub fn prepare(
    kernel: &mut Kernel,
    m: &mut Machine,
    hyp: &mut dyn Hyp,
    bench: AppBenchmark,
) -> Result<(), KernelError> {
    match bench {
        AppBenchmark::Whetstone => kernel.sys_create(m, hyp, "/bin/whetstone"),
        AppBenchmark::Dhrystone => kernel.sys_create(m, hyp, "/bin/dhrystone"),
        AppBenchmark::Untar => {
            kernel.sys_create(m, hyp, "/bin/tar")?;
            kernel.sys_create(m, hyp, "/tmp/archive.tar")?;
            kernel.sys_write_file(m, hyp, "/tmp/archive.tar", 64 * 1024)?;
            kernel.sys_create(m, hyp, "/tmp/untar")
        }
        AppBenchmark::Iozone => kernel.sys_create(m, hyp, "/bin/iozone"),
        AppBenchmark::Apache => {
            kernel.sys_create(m, hyp, "/bin/httpd")?;
            kernel.sys_create(m, hyp, "/usr/index.html")?;
            kernel.sys_write_file(m, hyp, "/usr/index.html", 8 * 1024)?;
            kernel.sys_create(m, hyp, "/bin/cgi")?;
            kernel.sys_create(m, hyp, "/tmp/access.log")
        }
    }
}

/// Runs `bench` at `scale` (1 = default size) with a deterministic
/// `seed`, returning the cycles consumed. Call [`prepare`] first.
///
/// # Errors
///
/// Propagates kernel errors.
pub fn run(
    kernel: &mut Kernel,
    m: &mut Machine,
    hyp: &mut dyn Hyp,
    bench: AppBenchmark,
    scale: u32,
    seed: u64,
) -> Result<Measurement, KernelError> {
    let scale = scale.max(1) as u64;
    let mut rng = SmallRng::seed_from_u64(seed);
    let start = m.cycles();
    match bench {
        AppBenchmark::Whetstone => {
            let (shell, child) = launch(kernel, m, hyp, "/bin/whetstone")?;
            kernel.sys_create(m, hyp, "/tmp/whet.out")?;
            for i in 0..60 * scale {
                user_compute(kernel, m, hyp, 55_000, 96, &mut rng)?;
                if i % 20 == 19 {
                    // Timer check + intermediate result append.
                    kernel.sys_getpid(m);
                    kernel.sys_write_file(m, hyp, "/tmp/whet.out", 256)?;
                }
            }
            // Per-section scratch files, as the driver script produces.
            for s in 0..3 {
                let scratch = format!("/tmp/whet.{s}");
                kernel.sys_create(m, hyp, &scratch)?;
                kernel.sys_write_file(m, hyp, &scratch, 512)?;
                kernel.sys_unlink(m, hyp, &scratch)?;
            }
            kernel.sys_unlink(m, hyp, "/tmp/whet.out")?;
            shell_activity(kernel, m, hyp, 30)?;
            finish(kernel, m, hyp, shell, child)?;
        }
        AppBenchmark::Dhrystone => {
            let (shell, child) = launch(kernel, m, hyp, "/bin/dhrystone")?;
            kernel.sys_create(m, hyp, "/tmp/dhry.out")?;
            for i in 0..80 * scale {
                user_compute(kernel, m, hyp, 40_000, 160, &mut rng)?;
                if i % 25 == 24 {
                    kernel.sys_getpid(m);
                    kernel.sys_write_file(m, hyp, "/tmp/dhry.out", 128)?;
                }
            }
            kernel.sys_unlink(m, hyp, "/tmp/dhry.out")?;
            shell_activity(kernel, m, hyp, 24)?;
            finish(kernel, m, hyp, shell, child)?;
        }
        AppBenchmark::Untar => {
            let (shell, child) = launch(kernel, m, hyp, "/bin/tar")?;
            let files = 1_900 * scale;
            for f in 0..files {
                let dir = f / 100;
                let dir_path = format!("/tmp/untar/d{dir}");
                if f % 100 == 0 {
                    kernel.sys_create(m, hyp, &dir_path)?;
                }
                // Read the next archive chunk.
                kernel.sys_read_file(m, hyp, "/tmp/archive.tar", 4096)?;
                // Extract: create, write, chmod/utime (stat-like touch).
                let path = format!("{dir_path}/f{f}");
                kernel.sys_create(m, hyp, &path)?;
                // tar writes in 512-byte blocks: eight write() calls.
                for _ in 0..8 {
                    kernel.sys_write_file(m, hyp, &path, 512)?;
                }
                kernel.sys_stat(m, hyp, &path)?;
                kernel.sys_stat(m, hyp, &path)?; // chmod + utime touch
                user_compute(kernel, m, hyp, 6_000, 16, &mut rng)?;
                if f % 256 == 255 {
                    kernel.poll_irqs(m, hyp)?;
                }
            }
            finish(kernel, m, hyp, shell, child)?;
        }
        AppBenchmark::Iozone => {
            let (shell, child) = launch(kernel, m, hyp, "/bin/iozone")?;
            for t in 0..20 * scale {
                let path = format!("/tmp/ioz{t}");
                kernel.sys_create(m, hyp, &path)?;
                // Sequential write + rewrite (64 KiB in 4 KiB chunks).
                for _ in 0..2 {
                    for _ in 0..16 {
                        kernel.sys_write_file(m, hyp, &path, 4096)?;
                    }
                }
                // Read + reread.
                for _ in 0..2 {
                    for _ in 0..16 {
                        kernel.sys_read_file(m, hyp, &path, 4096)?;
                    }
                }
                // Random reads.
                for _ in 0..8 {
                    kernel.sys_read_file(m, hyp, &path, 512)?;
                }
                kernel.sys_unlink(m, hyp, &path)?;
                kernel.poll_irqs(m, hyp)?;
            }
            finish(kernel, m, hyp, shell, child)?;
        }
        AppBenchmark::Apache => {
            let (shell, httpd) = launch(kernel, m, hyp, "/bin/httpd")?;
            // Prefork one worker that requests bounce off.
            let worker = kernel.sys_fork(m, hyp)?;
            let requests = 2_000 * scale;
            for r in 0..requests {
                kernel.sys_socket_roundtrip(m, hyp, worker, 512)?;
                kernel.sys_stat(m, hyp, "/usr/index.html")?;
                kernel.sys_read_file(m, hyp, "/usr/index.html", 8 * 1024)?;
                kernel.sys_write_file(m, hyp, "/tmp/access.log", 128)?;
                user_compute(kernel, m, hyp, 3_000, 16, &mut rng)?;
                if r % 200 == 199 {
                    // CGI request: fork + exec + exit.
                    let me = kernel.current();
                    let cgi = kernel.sys_fork(m, hyp)?;
                    kernel.switch_to(m, hyp, cgi)?;
                    kernel.sys_execve(m, hyp, "/bin/cgi")?;
                    let out = format!("/tmp/cgi{r}");
                    kernel.sys_create(m, hyp, &out)?;
                    kernel.sys_write_file(m, hyp, &out, 1024)?;
                    kernel.sys_unlink(m, hyp, &out)?;
                    kernel.sys_exit(m, hyp, cgi, me)?;
                }
                if r % 256 == 255 {
                    kernel.poll_irqs(m, hyp)?;
                }
            }
            kernel.sys_exit(m, hyp, worker, httpd)?;
            finish(kernel, m, hyp, shell, httpd)?;
        }
    }
    Ok(Measurement {
        total_cycles: m.cycles() - start,
        iterations: 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypernel_kernel::kernel::KernelConfig;
    use hypernel_machine::machine::{MachineConfig, NullHyp};

    fn boot() -> (Machine, NullHyp, Kernel) {
        let mut m = Machine::new(MachineConfig {
            dram_size: layout::DRAM_SIZE,
            ..MachineConfig::default()
        });
        let mut hyp = NullHyp;
        let k = Kernel::boot(&mut m, &mut hyp, KernelConfig::native()).expect("boot");
        (m, hyp, k)
    }

    #[test]
    fn whetstone_is_compute_dominated() {
        let (mut m, mut hyp, mut k) = boot();
        prepare(&mut k, &mut m, &mut hyp, AppBenchmark::Whetstone).unwrap();
        let syscalls_before = k.stats().syscalls;
        let meas = run(&mut k, &mut m, &mut hyp, AppBenchmark::Whetstone, 1, 42).unwrap();
        assert!(meas.total_cycles > 3_000_000, "got {}", meas.total_cycles);
        assert!(k.stats().syscalls - syscalls_before < 200, "few syscalls");
    }

    #[test]
    fn untar_creates_many_files() {
        let (mut m, mut hyp, mut k) = boot();
        prepare(&mut k, &mut m, &mut hyp, AppBenchmark::Untar).unwrap();
        run(&mut k, &mut m, &mut hyp, AppBenchmark::Untar, 1, 42).unwrap();
        assert!(k.stats().files_created >= 1_900);
    }

    #[test]
    fn apache_mixes_sockets_and_forks() {
        let (mut m, mut hyp, mut k) = boot();
        prepare(&mut k, &mut m, &mut hyp, AppBenchmark::Apache).unwrap();
        run(&mut k, &mut m, &mut hyp, AppBenchmark::Apache, 1, 42).unwrap();
        assert!(k.stats().forks >= 10, "CGI forks happened");
        assert!(k.stats().context_switches > 2_000, "socket round trips");
    }

    #[test]
    fn iozone_is_io_dominated() {
        let (mut m, mut hyp, mut k) = boot();
        prepare(&mut k, &mut m, &mut hyp, AppBenchmark::Iozone).unwrap();
        let meas = run(&mut k, &mut m, &mut hyp, AppBenchmark::Iozone, 1, 42).unwrap();
        assert!(meas.total_cycles > 500_000);
        assert_eq!(k.dentry_slab().stats().live, k.dentry_slab().stats().live);
    }

    #[test]
    fn runs_are_deterministic() {
        let run_once = || {
            let (mut m, mut hyp, mut k) = boot();
            prepare(&mut k, &mut m, &mut hyp, AppBenchmark::Dhrystone).unwrap();
            run(&mut k, &mut m, &mut hyp, AppBenchmark::Dhrystone, 1, 7)
                .unwrap()
                .total_cycles
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn labels_and_paper_rows() {
        for &b in AppBenchmark::ALL {
            assert!(!b.label().is_empty());
            assert!(b.paper_page_granularity_events() > b.paper_word_granularity_events());
            assert!(b.paper_scale_factor() >= 1.0);
            assert_eq!(b.to_string(), b.label());
        }
        assert_eq!(AppBenchmark::ALL.len(), 5);
    }
}
