//! LMbench-style kernel-operation microbenchmarks (paper Table 1).
//!
//! Each [`LmbenchOp`] reproduces the kernel-operation mix of the
//! corresponding LMbench test: the set of syscalls, page-table updates,
//! context switches and memory touches the real benchmark performs. The
//! three system configurations then diverge purely through mechanism —
//! hypercalls and TVM traps under Hypernel, nested walks, lazy stage-2
//! faults and WFI exits under KVM.

use hypernel_kernel::kernel::{Kernel, KernelError};
use hypernel_machine::addr::{VirtAddr, PAGE_SIZE};
use hypernel_machine::machine::{Hyp, Machine};

use crate::measure::Measurement;

/// The nine kernel operations of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LmbenchOp {
    /// `lat_syscall stat` — resolve a path and fill a stat buffer.
    SyscallStat,
    /// `lat_sig install` — install a signal handler.
    SignalInstall,
    /// `lat_sig catch` — deliver and return from a signal.
    SignalOverhead,
    /// `lat_pipe` — token round trip between two processes.
    PipeLatency,
    /// `lat_unix` — AF_UNIX socket round trip.
    SocketLatency,
    /// `lat_proc fork` — fork a child that exits immediately.
    ForkExit,
    /// `lat_proc exec` — fork + execve + exit.
    ForkExecve,
    /// `lat_pagefault` — fault a page of a mapped file.
    PageFault,
    /// `lat_mmap` — map and unmap a region.
    Mmap,
}

impl LmbenchOp {
    /// Every operation, in the paper's Table 1 row order.
    pub const ALL: &'static [LmbenchOp] = &[
        Self::SyscallStat,
        Self::SignalInstall,
        Self::SignalOverhead,
        Self::PipeLatency,
        Self::SocketLatency,
        Self::ForkExit,
        Self::ForkExecve,
        Self::PageFault,
        Self::Mmap,
    ];

    /// The paper's row label.
    pub fn label(self) -> &'static str {
        match self {
            Self::SyscallStat => "syscall stat",
            Self::SignalInstall => "signal install",
            Self::SignalOverhead => "signal ovh",
            Self::PipeLatency => "pipe lat",
            Self::SocketLatency => "socket lat",
            Self::ForkExit => "fork+exit",
            Self::ForkExecve => "fork+execv",
            Self::PageFault => "page fault",
            Self::Mmap => "mmap",
        }
    }

    /// The paper's measured native latency in microseconds (Table 1),
    /// used by EXPERIMENTS.md to compare shapes.
    pub fn paper_native_us(self) -> f64 {
        match self {
            Self::SyscallStat => 1.92,
            Self::SignalInstall => 0.68,
            Self::SignalOverhead => 2.96,
            Self::PipeLatency => 10.07,
            Self::SocketLatency => 13.76,
            Self::ForkExit => 271.68,
            Self::ForkExecve => 285.53,
            Self::PageFault => 1.57,
            Self::Mmap => 24.60,
        }
    }

    /// The paper's KVM-guest latency (µs).
    pub fn paper_kvm_us(self) -> f64 {
        match self {
            Self::SyscallStat => 1.83,
            Self::SignalInstall => 0.75,
            Self::SignalOverhead => 3.38,
            Self::PipeLatency => 11.45,
            Self::SocketLatency => 16.08,
            Self::ForkExit => 337.84,
            Self::ForkExecve => 351.81,
            Self::PageFault => 1.98,
            Self::Mmap => 28.40,
        }
    }

    /// The paper's Hypernel latency (µs).
    pub fn paper_hypernel_us(self) -> f64 {
        match self {
            Self::SyscallStat => 1.94,
            Self::SignalInstall => 0.68,
            Self::SignalOverhead => 2.98,
            Self::PipeLatency => 10.68,
            Self::SocketLatency => 14.51,
            Self::ForkExit => 314.77,
            Self::ForkExecve => 340.70,
            Self::PageFault => 1.89,
            Self::Mmap => 27.50,
        }
    }
}

impl std::fmt::Display for LmbenchOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Extra kernel-operation microbenchmarks beyond the paper's Table 1 —
/// the rest of the LMbench family a complete harness ships.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtraOp {
    /// `lat_syscall null` — the cheapest possible kernel entry.
    NullSyscall,
    /// `lat_ctx` — bare context-switch ping-pong between two processes.
    ContextSwitch,
    /// `lat_fs create/delete` — file create + unlink cycle.
    FileCreateDelete,
    /// `rename` — metadata move (authorized sensitive-field update).
    Rename,
}

impl ExtraOp {
    /// Every extra operation.
    pub const ALL: &'static [ExtraOp] = &[
        Self::NullSyscall,
        Self::ContextSwitch,
        Self::FileCreateDelete,
        Self::Rename,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Self::NullSyscall => "null syscall",
            Self::ContextSwitch => "ctx switch",
            Self::FileCreateDelete => "create+delete",
            Self::Rename => "rename",
        }
    }
}

impl std::fmt::Display for ExtraOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Runs an [`ExtraOp`] for `iterations`.
///
/// # Errors
///
/// Propagates kernel errors.
pub fn run_extra(
    kernel: &mut Kernel,
    m: &mut Machine,
    hyp: &mut dyn Hyp,
    op: ExtraOp,
    iterations: u64,
) -> Result<Measurement, KernelError> {
    match op {
        ExtraOp::NullSyscall => {
            let start = m.cycles();
            for _ in 0..iterations {
                kernel.sys_getpid(m);
            }
            Ok(Measurement {
                total_cycles: m.cycles() - start,
                iterations,
            })
        }
        ExtraOp::ContextSwitch => {
            let me = kernel.current();
            let peer = kernel.sys_fork(m, hyp)?;
            let start = m.cycles();
            for _ in 0..iterations {
                kernel.switch_to(m, hyp, peer)?;
                kernel.switch_to(m, hyp, me)?;
            }
            let total = m.cycles() - start;
            kernel.sys_exit(m, hyp, peer, me)?;
            Ok(Measurement {
                total_cycles: total,
                iterations: iterations * 2,
            })
        }
        ExtraOp::FileCreateDelete => {
            let start = m.cycles();
            for i in 0..iterations {
                let path = format!("/tmp/lmb{i}");
                kernel.sys_create(m, hyp, &path)?;
                kernel.sys_unlink(m, hyp, &path)?;
            }
            Ok(Measurement {
                total_cycles: m.cycles() - start,
                iterations,
            })
        }
        ExtraOp::Rename => {
            kernel.sys_create(m, hyp, "/tmp/rn0")?;
            let start = m.cycles();
            for i in 0..iterations {
                let from = format!("/tmp/rn{i}");
                let to = format!("/tmp/rn{}", i + 1);
                kernel.sys_rename(m, hyp, &from, &to)?;
            }
            let total = m.cycles() - start;
            kernel.sys_unlink(m, hyp, &format!("/tmp/rn{iterations}"))?;
            Ok(Measurement {
                total_cycles: total,
                iterations,
            })
        }
    }
}

/// Runs `op` for `iterations` and returns the measured latency.
///
/// Setup work (spawning a peer process, creating files, mapping the
/// fault region) happens outside the measured window, as LMbench does.
///
/// # Errors
///
/// Propagates kernel errors — under a correctly configured system none
/// occur.
pub fn run_op(
    kernel: &mut Kernel,
    m: &mut Machine,
    hyp: &mut dyn Hyp,
    op: LmbenchOp,
    iterations: u64,
) -> Result<Measurement, KernelError> {
    match op {
        LmbenchOp::SyscallStat => {
            kernel.sys_stat(m, hyp, "/bin/sh")?; // warm the path
            let start = m.cycles();
            for _ in 0..iterations {
                kernel.sys_stat(m, hyp, "/bin/sh")?;
            }
            Ok(Measurement {
                total_cycles: m.cycles() - start,
                iterations,
            })
        }
        LmbenchOp::SignalInstall => {
            let start = m.cycles();
            for i in 0..iterations {
                kernel.sys_signal_install(m, hyp, i % 32)?;
            }
            Ok(Measurement {
                total_cycles: m.cycles() - start,
                iterations,
            })
        }
        LmbenchOp::SignalOverhead => {
            kernel.sys_signal_install(m, hyp, 10)?;
            let start = m.cycles();
            for _ in 0..iterations {
                kernel.sys_signal_deliver(m, hyp, 10)?;
            }
            Ok(Measurement {
                total_cycles: m.cycles() - start,
                iterations,
            })
        }
        LmbenchOp::PipeLatency | LmbenchOp::SocketLatency => {
            let me = kernel.current();
            let peer = kernel.sys_fork(m, hyp)?;
            // Warm one round trip.
            match op {
                LmbenchOp::PipeLatency => kernel.sys_pipe_roundtrip(m, hyp, peer, 8)?,
                _ => kernel.sys_socket_roundtrip(m, hyp, peer, 8)?,
            }
            let start = m.cycles();
            for _ in 0..iterations {
                match op {
                    LmbenchOp::PipeLatency => kernel.sys_pipe_roundtrip(m, hyp, peer, 8)?,
                    _ => kernel.sys_socket_roundtrip(m, hyp, peer, 8)?,
                }
            }
            let total = m.cycles() - start;
            kernel.sys_exit(m, hyp, peer, me)?;
            Ok(Measurement {
                total_cycles: total,
                iterations,
            })
        }
        LmbenchOp::ForkExit => {
            let me = kernel.current();
            let start = m.cycles();
            for _ in 0..iterations {
                let child = kernel.sys_fork(m, hyp)?;
                kernel.switch_to(m, hyp, child)?;
                kernel.sys_exit(m, hyp, child, me)?;
            }
            Ok(Measurement {
                total_cycles: m.cycles() - start,
                iterations,
            })
        }
        LmbenchOp::ForkExecve => {
            let me = kernel.current();
            let start = m.cycles();
            for _ in 0..iterations {
                let child = kernel.sys_fork(m, hyp)?;
                kernel.switch_to(m, hyp, child)?;
                kernel.sys_execve(m, hyp, "/bin/sh")?;
                kernel.sys_exit(m, hyp, child, me)?;
            }
            Ok(Measurement {
                total_cycles: m.cycles() - start,
                iterations,
            })
        }
        LmbenchOp::PageFault => {
            // Map a lazy region large enough that each iteration faults a
            // fresh page (LMbench faults pages of an mmap'd file).
            let eager = hypernel_kernel::kernel::tuning::MMAP_EAGER_PAGES as u64;
            let pages = iterations + eager + 1;
            let base = kernel.sys_mmap(m, hyp, pages as usize)?;
            let start = m.cycles();
            for i in 0..iterations {
                let va = VirtAddr::new(base.raw() + (eager + i) * PAGE_SIZE);
                kernel.user_touch(m, hyp, va)?;
            }
            let total = m.cycles() - start;
            kernel.sys_munmap(m, hyp, base)?;
            Ok(Measurement {
                total_cycles: total,
                iterations,
            })
        }
        LmbenchOp::Mmap => {
            let start = m.cycles();
            for _ in 0..iterations {
                let base = kernel.sys_mmap(m, hyp, 16)?;
                kernel.sys_munmap(m, hyp, base)?;
            }
            Ok(Measurement {
                total_cycles: m.cycles() - start,
                iterations,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypernel_kernel::kernel::KernelConfig;
    use hypernel_kernel::layout;
    use hypernel_machine::machine::{MachineConfig, NullHyp};

    fn boot() -> (Machine, NullHyp, Kernel) {
        let mut m = Machine::new(MachineConfig {
            dram_size: layout::DRAM_SIZE,
            ..MachineConfig::default()
        });
        let mut hyp = NullHyp;
        let k = Kernel::boot(&mut m, &mut hyp, KernelConfig::native()).expect("boot");
        (m, hyp, k)
    }

    #[test]
    fn every_op_runs_natively() {
        let (mut m, mut hyp, mut k) = boot();
        for &op in LmbenchOp::ALL {
            let measurement = run_op(&mut k, &mut m, &mut hyp, op, 3).expect("op runs");
            assert!(measurement.total_cycles > 0, "{op} must consume cycles");
            assert_eq!(measurement.iterations, 3);
        }
    }

    #[test]
    fn fork_dwarfs_stat() {
        let (mut m, mut hyp, mut k) = boot();
        let stat = run_op(&mut k, &mut m, &mut hyp, LmbenchOp::SyscallStat, 10).unwrap();
        let fork = run_op(&mut k, &mut m, &mut hyp, LmbenchOp::ForkExit, 10).unwrap();
        assert!(
            fork.cycles_per_iter() > 20.0 * stat.cycles_per_iter(),
            "fork {:.0} vs stat {:.0}",
            fork.cycles_per_iter(),
            stat.cycles_per_iter()
        );
    }

    #[test]
    fn page_fault_measures_faults() {
        let (mut m, mut hyp, mut k) = boot();
        run_op(&mut k, &mut m, &mut hyp, LmbenchOp::PageFault, 16).unwrap();
        assert_eq!(k.stats().page_faults, 16);
    }

    #[test]
    fn extra_ops_run_and_cost_cycles() {
        let (mut m, mut hyp, mut k) = boot();
        for &op in ExtraOp::ALL {
            let meas = run_extra(&mut k, &mut m, &mut hyp, op, 4).expect("extra op");
            assert!(meas.total_cycles > 0, "{op} consumed no cycles");
            assert!(!op.label().is_empty());
        }
        // A context switch costs more than a null syscall.
        let null = run_extra(&mut k, &mut m, &mut hyp, ExtraOp::NullSyscall, 10).unwrap();
        let ctx = run_extra(&mut k, &mut m, &mut hyp, ExtraOp::ContextSwitch, 10).unwrap();
        assert!(ctx.cycles_per_iter() > null.cycles_per_iter());
    }

    #[test]
    fn labels_and_paper_rows_are_complete() {
        for &op in LmbenchOp::ALL {
            assert!(!op.label().is_empty());
            assert!(op.paper_native_us() > 0.0);
            assert!(op.paper_kvm_us() > 0.0);
            assert!(op.paper_hypernel_us() > 0.0);
            assert_eq!(op.to_string(), op.label());
        }
        assert_eq!(LmbenchOp::ALL.len(), 9);
    }
}
