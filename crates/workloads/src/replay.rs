//! Trace-driven workload replay.
//!
//! A tiny line-oriented script format so custom workloads can be written
//! as text and replayed against any system configuration (the CLI's
//! `replay` command consumes it):
//!
//! ```text
//! # comments and blank lines are ignored
//! fork                 # fork a child and switch to it
//! exec /bin/sh         # execve in the current child
//! create /tmp/a        # create a file
//! write /tmp/a 4096    # write bytes
//! read /tmp/a 4096     # read bytes
//! stat /bin/sh
//! rename /tmp/a /tmp/b
//! unlink /tmp/b
//! mmap 16              # map a 16-page region (named by its index)
//! touch 0 3            # touch page 3 of region 0
//! munmap 0             # unmap region 0
//! pipe 64              # pipe round trip with the last forked child
//! signal 7             # install + deliver signal 7
//! compute 50000 32     # user compute: cycles + memory ops
//! exit                 # exit the current child, back to init
//! irqs                 # service pending interrupts
//! ```

use hypernel_kernel::kernel::{Kernel, KernelError};
use hypernel_kernel::task::Pid;
use hypernel_machine::addr::{VirtAddr, PAGE_SIZE};
use hypernel_machine::machine::{Hyp, Machine};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::measure::Measurement;

/// One parsed replay statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// Fork and switch to the child.
    Fork,
    /// `execve` the given binary in the current task.
    Exec(String),
    /// Create a file.
    Create(String),
    /// Write `bytes` to a file.
    Write(String, u64),
    /// Read `bytes` from a file.
    Read(String, u64),
    /// Stat a path.
    Stat(String),
    /// Rename a path.
    Rename(String, String),
    /// Unlink a path.
    Unlink(String),
    /// Map a region of `pages` pages.
    Mmap(u64),
    /// Touch page `page` of mapped region `region`.
    Touch(usize, u64),
    /// Unmap region `region`.
    Munmap(usize),
    /// Pipe round trip of `bytes` with the most recent child (forking a
    /// peer if none exists).
    Pipe(u64),
    /// Install and deliver a signal.
    Signal(u64),
    /// User compute: cycles and memory operations.
    Compute(u64, u64),
    /// Exit the current child and return to init.
    Exit,
    /// Service pending interrupts.
    Irqs,
}

/// Error produced while parsing a replay script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseScriptError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseScriptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseScriptError {}

/// Parses a replay script.
///
/// # Errors
///
/// Returns [`ParseScriptError`] with the offending line on any malformed
/// statement.
///
/// ```
/// use hypernel_workloads::replay::{parse, Statement};
///
/// let script = "fork\nexec /bin/sh\nwrite /tmp/x 512\nexit\n";
/// let stmts = parse(script)?;
/// assert_eq!(stmts.len(), 4);
/// assert_eq!(stmts[0], Statement::Fork);
/// # Ok::<(), hypernel_workloads::replay::ParseScriptError>(())
/// ```
pub fn parse(script: &str) -> Result<Vec<Statement>, ParseScriptError> {
    let mut out = Vec::new();
    for (i, raw) in script.lines().enumerate() {
        let line = i + 1;
        let err = |message: String| ParseScriptError { line, message };
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let mut parts = text.split_whitespace();
        let verb = parts.next().expect("non-empty line");
        let mut arg = |name: &str| {
            parts
                .next()
                .map(str::to_string)
                .ok_or_else(|| err(format!("'{verb}' needs {name}")))
        };
        let stmt = match verb {
            "fork" => Statement::Fork,
            "exec" => Statement::Exec(arg("a path")?),
            "create" => Statement::Create(arg("a path")?),
            "write" => {
                let path = arg("a path")?;
                let bytes = arg("a byte count")?;
                Statement::Write(path, bytes.parse().map_err(|e| err(format!("bytes: {e}")))?)
            }
            "read" => {
                let path = arg("a path")?;
                let bytes = arg("a byte count")?;
                Statement::Read(path, bytes.parse().map_err(|e| err(format!("bytes: {e}")))?)
            }
            "stat" => Statement::Stat(arg("a path")?),
            "rename" => Statement::Rename(arg("a source")?, arg("a destination")?),
            "unlink" => Statement::Unlink(arg("a path")?),
            "mmap" => Statement::Mmap(
                arg("a page count")?
                    .parse()
                    .map_err(|e| err(format!("pages: {e}")))?,
            ),
            "touch" => Statement::Touch(
                arg("a region index")?
                    .parse()
                    .map_err(|e| err(format!("region: {e}")))?,
                arg("a page index")?
                    .parse()
                    .map_err(|e| err(format!("page: {e}")))?,
            ),
            "munmap" => Statement::Munmap(
                arg("a region index")?
                    .parse()
                    .map_err(|e| err(format!("region: {e}")))?,
            ),
            "pipe" => Statement::Pipe(
                arg("a byte count")?
                    .parse()
                    .map_err(|e| err(format!("bytes: {e}")))?,
            ),
            "signal" => Statement::Signal(
                arg("a signal number")?
                    .parse()
                    .map_err(|e| err(format!("signal: {e}")))?,
            ),
            "compute" => Statement::Compute(
                arg("cycles")?
                    .parse()
                    .map_err(|e| err(format!("cycles: {e}")))?,
                arg("memory ops")?
                    .parse()
                    .map_err(|e| err(format!("ops: {e}")))?,
            ),
            "exit" => Statement::Exit,
            "irqs" => Statement::Irqs,
            other => return Err(err(format!("unknown verb '{other}'"))),
        };
        if let Some(extra) = parts.next() {
            return Err(err(format!("unexpected trailing token '{extra}'")));
        }
        out.push(stmt);
    }
    Ok(out)
}

/// Error produced while replaying a script.
#[derive(Debug)]
pub enum ReplayError {
    /// A statement referenced a region that does not exist.
    NoSuchRegion {
        /// The statement index (0-based).
        statement: usize,
        /// The referenced region index.
        region: usize,
    },
    /// The kernel rejected an operation.
    Kernel {
        /// The statement index (0-based).
        statement: usize,
        /// The underlying error.
        source: KernelError,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoSuchRegion { statement, region } => {
                write!(f, "statement {statement}: no mapped region {region}")
            }
            Self::Kernel { statement, source } => {
                write!(f, "statement {statement}: {source}")
            }
        }
    }
}

impl std::error::Error for ReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Kernel { source, .. } => Some(source),
            Self::NoSuchRegion { .. } => None,
        }
    }
}

/// Replays parsed statements against a kernel, returning the cycle cost.
///
/// # Errors
///
/// Returns [`ReplayError`] with the failing statement's index.
pub fn replay(
    kernel: &mut Kernel,
    m: &mut Machine,
    hyp: &mut dyn Hyp,
    statements: &[Statement],
    seed: u64,
) -> Result<Measurement, ReplayError> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut regions: Vec<Option<VirtAddr>> = Vec::new();
    let mut child: Option<Pid> = None;
    let start = m.cycles();
    let kernel_err =
        |statement: usize| move |source: KernelError| ReplayError::Kernel { statement, source };
    for (i, stmt) in statements.iter().enumerate() {
        match stmt {
            Statement::Fork => {
                let pid = kernel.sys_fork(m, hyp).map_err(kernel_err(i))?;
                kernel.switch_to(m, hyp, pid).map_err(kernel_err(i))?;
                child = Some(pid);
            }
            Statement::Exec(path) => {
                kernel.sys_execve(m, hyp, path).map_err(kernel_err(i))?;
            }
            Statement::Create(path) => {
                kernel.sys_create(m, hyp, path).map_err(kernel_err(i))?;
            }
            Statement::Write(path, bytes) => {
                kernel
                    .sys_write_file(m, hyp, path, *bytes)
                    .map_err(kernel_err(i))?;
            }
            Statement::Read(path, bytes) => {
                kernel
                    .sys_read_file(m, hyp, path, *bytes)
                    .map_err(kernel_err(i))?;
            }
            Statement::Stat(path) => {
                kernel.sys_stat(m, hyp, path).map_err(kernel_err(i))?;
            }
            Statement::Rename(from, to) => {
                kernel.sys_rename(m, hyp, from, to).map_err(kernel_err(i))?;
            }
            Statement::Unlink(path) => {
                kernel.sys_unlink(m, hyp, path).map_err(kernel_err(i))?;
            }
            Statement::Mmap(pages) => {
                let base = kernel
                    .sys_mmap(m, hyp, *pages as usize)
                    .map_err(kernel_err(i))?;
                regions.push(Some(base));
            }
            Statement::Touch(region, page) => {
                let base =
                    regions
                        .get(*region)
                        .copied()
                        .flatten()
                        .ok_or(ReplayError::NoSuchRegion {
                            statement: i,
                            region: *region,
                        })?;
                kernel
                    .user_touch(m, hyp, base.add(page * PAGE_SIZE))
                    .map_err(kernel_err(i))?;
            }
            Statement::Munmap(region) => {
                let slot = regions.get_mut(*region).ok_or(ReplayError::NoSuchRegion {
                    statement: i,
                    region: *region,
                })?;
                let base = slot.take().ok_or(ReplayError::NoSuchRegion {
                    statement: i,
                    region: *region,
                })?;
                kernel.sys_munmap(m, hyp, base).map_err(kernel_err(i))?;
            }
            Statement::Pipe(bytes) => {
                // The pipe peer is transient: fork, round-trip, reap.
                let me = kernel.current();
                let peer = kernel.sys_fork(m, hyp).map_err(kernel_err(i))?;
                kernel
                    .sys_pipe_roundtrip(m, hyp, peer, *bytes)
                    .map_err(kernel_err(i))?;
                kernel.sys_exit(m, hyp, peer, me).map_err(kernel_err(i))?;
            }
            Statement::Signal(sig) => {
                kernel
                    .sys_signal_install(m, hyp, *sig)
                    .map_err(kernel_err(i))?;
                kernel
                    .sys_signal_deliver(m, hyp, *sig)
                    .map_err(kernel_err(i))?;
            }
            Statement::Compute(cycles, ops) => {
                crate::apps::user_compute_public(kernel, m, hyp, *cycles, *ops, &mut rng)
                    .map_err(kernel_err(i))?;
            }
            Statement::Exit => {
                if let Some(pid) = child.take() {
                    kernel
                        .sys_exit(m, hyp, pid, Pid(1))
                        .map_err(kernel_err(i))?;
                }
            }
            Statement::Irqs => {
                kernel.poll_irqs(m, hyp).map_err(kernel_err(i))?;
            }
        }
    }
    // Reap any dangling child so scripts cannot leak processes.
    if let Some(pid) = child {
        if kernel.task(pid).is_some() {
            kernel
                .sys_exit(m, hyp, pid, Pid(1))
                .map_err(|source| ReplayError::Kernel {
                    statement: statements.len(),
                    source,
                })?;
        }
    }
    Ok(Measurement {
        total_cycles: m.cycles() - start,
        iterations: statements.len() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypernel_kernel::kernel::KernelConfig;
    use hypernel_kernel::layout;
    use hypernel_machine::machine::{MachineConfig, NullHyp};

    fn boot() -> (Machine, NullHyp, Kernel) {
        let mut m = Machine::new(MachineConfig {
            dram_size: layout::DRAM_SIZE,
            ..MachineConfig::default()
        });
        let mut hyp = NullHyp;
        let k = Kernel::boot(&mut m, &mut hyp, KernelConfig::native()).expect("boot");
        (m, hyp, k)
    }

    const SCRIPT: &str = "\
# an untar-flavoured mini workload
fork
exec /bin/sh
create /tmp/r1
write /tmp/r1 4096
read /tmp/r1 4096
stat /tmp/r1
rename /tmp/r1 /tmp/r2
mmap 8
touch 0 2
munmap 0
pipe 64
signal 9
compute 10000 16
unlink /tmp/r2
irqs
exit
";

    #[test]
    fn parse_full_vocabulary() {
        let stmts = parse(SCRIPT).expect("parses");
        assert_eq!(stmts.len(), 16);
        assert_eq!(
            stmts[6],
            Statement::Rename("/tmp/r1".into(), "/tmp/r2".into())
        );
        assert_eq!(stmts[8], Statement::Touch(0, 2));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse("fork\nwrite /tmp/x\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("byte count"));
        let err = parse("florp\n").unwrap_err();
        assert!(err.message.contains("unknown verb"));
        let err = parse("exit now\n").unwrap_err();
        assert!(err.message.contains("trailing"));
        let err = parse("mmap eight\n").unwrap_err();
        assert!(err.message.contains("pages"));
    }

    #[test]
    fn replay_runs_and_balances() {
        let (mut m, mut hyp, mut k) = boot();
        let stmts = parse(SCRIPT).expect("parses");
        let meas = replay(&mut k, &mut m, &mut hyp, &stmts, 7).expect("replays");
        assert!(meas.total_cycles > 0);
        assert_eq!(k.pids(), vec![Pid(1)], "children reaped");
        assert!(k.dentry_of("/tmp/r2").is_none(), "file unlinked");
    }

    #[test]
    fn replay_reports_the_failing_statement() {
        let (mut m, mut hyp, mut k) = boot();
        let stmts = parse("stat /no/such/file\n").expect("parses");
        let err = replay(&mut k, &mut m, &mut hyp, &stmts, 7).unwrap_err();
        assert!(matches!(err, ReplayError::Kernel { statement: 0, .. }));
        let stmts = parse("touch 3 0\n").expect("parses");
        let err = replay(&mut k, &mut m, &mut hyp, &stmts, 7).unwrap_err();
        assert!(matches!(err, ReplayError::NoSuchRegion { region: 3, .. }));
    }

    #[test]
    fn dangling_children_are_reaped() {
        let (mut m, mut hyp, mut k) = boot();
        let stmts = parse("fork\nexec /bin/sh\n").expect("parses");
        replay(&mut k, &mut m, &mut hyp, &stmts, 7).expect("replays");
        assert_eq!(k.pids(), vec![Pid(1)]);
    }

    #[test]
    fn replay_is_deterministic() {
        let run = || {
            let (mut m, mut hyp, mut k) = boot();
            let stmts = parse(SCRIPT).expect("parses");
            replay(&mut k, &mut m, &mut hyp, &stmts, 99)
                .expect("replays")
                .total_cycles
        };
        assert_eq!(run(), run());
    }
}
