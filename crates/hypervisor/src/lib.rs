#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # hypernel-hypervisor
//!
//! A KVM/ARM-style **nested-paging hypervisor**, the baseline the paper
//! compares against (§7.1, "KVM-guest"). It provides exactly the costs
//! Hypernel is designed to avoid:
//!
//! * **Stage-2 translation** for every EL0/EL1 access — two-stage table
//!   walks on TLB misses, the "up to about 30 %" overhead the paper cites
//!   from Dall et al. (ISCA'16).
//! * **Lazily populated stage-2 tables**: the first guest touch of each
//!   physical page exits to the host, which allocates and maps it — the
//!   dominant cost of fork/exec-heavy workloads in a VM.
//! * **WFI trapping**: blocking waits exit to the host scheduler, taxing
//!   pipe/socket round trips.
//! * Optional **page-granularity write protection** through stage-2, the
//!   trap-and-emulate kernel-monitoring scheme whose granularity gap
//!   Table 2 quantifies.

use std::collections::HashSet;

use hypernel_machine::addr::{IntermAddr, PhysAddr, PAGE_SIZE};
use hypernel_machine::machine::{AccessKind, Hyp, Machine, PolicyViolation, Stage2Outcome};
use hypernel_machine::pagetable::{self, PagePerms};
use hypernel_machine::regs::{hcr, ExceptionLevel, SysReg};

/// Configuration of the KVM-style hypervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvmConfig {
    /// Host memory region for stage-2 tables (the guest never sees it).
    pub host_base: PhysAddr,
    /// Size of the host region in bytes.
    pub host_len: u64,
    /// Guest "physical" (IPA) space: `[0, guest_len)`, identity-mapped.
    pub guest_len: u64,
    /// Host-side compute per stage-2 fault (get_user_pages, mm locking…).
    pub stage2_fault_compute: u64,
    /// Host-side compute per WFI exit (host scheduler round trip).
    pub wfi_exit_compute: u64,
    /// Cost of a trapped SGI (vGIC virtual-IPI injection).
    pub sgi_exit_compute: u64,
}

impl KvmConfig {
    /// Defaults matching the simulated platform layout, with fault costs
    /// calibrated against the paper's Table 1 KVM column.
    pub fn standard(host_base: PhysAddr, host_len: u64, guest_len: u64) -> Self {
        Self {
            host_base,
            host_len,
            guest_len,
            stage2_fault_compute: 16_000,
            wfi_exit_compute: 900,
            sgi_exit_compute: 800,
        }
    }
}

/// Statistics of hypervisor activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvmStats {
    /// Stage-2 faults taken (lazy population + protection).
    pub stage2_faults: u64,
    /// Pages mapped into stage 2.
    pub pages_mapped: u64,
    /// WFI exits.
    pub wfi_exits: u64,
    /// SGI (virtual IPI) exits.
    pub sgi_exits: u64,
    /// Writes trapped by page-granularity protection and emulated.
    pub protection_traps: u64,
}

/// A write observed by the page-granularity monitoring scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrappedWrite {
    /// Faulting intermediate physical address.
    pub ipa: IntermAddr,
    /// Value the guest attempted to store.
    pub value: u64,
}

/// Violation codes reported by the hypervisor.
pub mod codes {
    /// Guest touched an IPA outside its memory.
    pub const BAD_IPA: u32 = 0x4B01;
    /// The host ran out of stage-2 table memory.
    pub const HOST_OOM: u32 = 0x4B02;
    /// The guest issued a hypercall KVM does not provide.
    pub const NO_SUCH_HYPERCALL: u32 = 0x4B03;
}

/// The KVM-style hypervisor. Implements [`Hyp`]; install with
/// [`KvmHypervisor::install`] before booting the guest kernel.
///
/// ```
/// use hypernel_machine::addr::PhysAddr;
/// use hypernel_machine::machine::{Machine, MachineConfig};
/// use hypernel_hypervisor::{KvmConfig, KvmHypervisor};
///
/// let mut machine = Machine::new(MachineConfig::default());
/// let mut kvm = KvmHypervisor::new(KvmConfig::standard(
///     PhysAddr::new(0x7800_0000), // host region: top of DRAM
///     128 << 20,
///     0x7800_0000,                // guest sees everything below it
/// ));
/// kvm.install(&mut machine);
/// assert!(machine.regs().stage2_enabled());
/// ```
#[derive(Debug, Clone)]
pub struct KvmHypervisor {
    config: KvmConfig,
    s2_root: PhysAddr,
    next_table: u64,
    protected: HashSet<u64>,
    trapped_writes: Vec<TrappedWrite>,
    stats: KvmStats,
}

impl KvmHypervisor {
    /// Creates a hypervisor; call [`KvmHypervisor::install`] next.
    pub fn new(config: KvmConfig) -> Self {
        Self {
            config,
            s2_root: config.host_base,
            next_table: config.host_base.raw() + PAGE_SIZE,
            protected: HashSet::new(),
            trapped_writes: Vec::new(),
            stats: KvmStats::default(),
        }
    }

    /// Statistics.
    pub fn stats(&self) -> KvmStats {
        self.stats
    }

    /// Drains the log of writes trapped by page-granularity protection.
    pub fn take_trapped_writes(&mut self) -> Vec<TrappedWrite> {
        std::mem::take(&mut self.trapped_writes)
    }

    /// Installs stage-2 translation: builds an empty stage-2 root, points
    /// `VTTBR_EL2` at it and sets `HCR_EL2.VM`. The machine must be at
    /// EL2 (boot state).
    ///
    /// # Panics
    ///
    /// Panics if the machine is not at EL2.
    pub fn install(&mut self, m: &mut Machine) {
        assert_eq!(m.el(), ExceptionLevel::El2, "install requires EL2 (boot)");
        m.debug_zero_page(self.s2_root);
        m.el2_write_sysreg(SysReg::VTTBR_EL2, self.s2_root.raw());
        m.el2_write_sysreg(SysReg::HCR_EL2, hcr::VM);
    }

    fn map_ipa(
        &mut self,
        m: &mut Machine,
        ipa: IntermAddr,
        perms: PagePerms,
    ) -> Result<(), PolicyViolation> {
        let page = IntermAddr::new(ipa.raw() & !(PAGE_SIZE - 1));
        let mut fresh: Vec<PhysAddr> = Vec::new();
        let root = self.s2_root;
        let end = self.config.host_base.raw() + self.config.host_len;
        let mut next = self.next_table;
        let plan_result = {
            let mut view = m.pt_view();
            pagetable::plan_map(
                &mut view,
                root,
                page.raw(),
                page.as_phys(),
                perms,
                3,
                &mut || {
                    if next + PAGE_SIZE > end {
                        return None;
                    }
                    let t = PhysAddr::new(next);
                    next += PAGE_SIZE;
                    fresh.push(t);
                    Some(t)
                },
            )
        };
        self.next_table = next;
        let plan = plan_result.map_err(|e| {
            PolicyViolation::new(codes::HOST_OOM, format!("stage-2 map failed: {e}"))
        })?;
        for t in &fresh {
            m.debug_zero_page(*t);
        }
        for w in &plan.writes {
            let mut view = m.pt_view();
            pagetable::apply_entry_write(&mut view, *w);
        }
        self.stats.pages_mapped += 1;
        Ok(())
    }

    /// Eagerly maps the guest IPA range `[0, up_to)` (RW, cacheable),
    /// used after guest boot so that only *post-boot* allocations fault
    /// lazily — mirroring a guest whose boot-time memory is warm.
    ///
    /// # Panics
    ///
    /// Panics if the host table region is too small.
    pub fn prefault(&mut self, m: &mut Machine, up_to: PhysAddr) {
        let mut ipa = 0u64;
        while ipa < up_to.raw().min(self.config.guest_len) {
            self.map_ipa(m, IntermAddr::new(ipa), PagePerms::KERNEL_DATA)
                .expect("host table region exhausted during prefault");
            ipa += PAGE_SIZE;
        }
        m.tlbi_stage2();
    }

    /// Write-protects a guest page in stage 2 (page-granularity
    /// monitoring): subsequent guest writes anywhere in the page trap.
    ///
    /// # Panics
    ///
    /// Panics if the host table region is exhausted.
    pub fn protect_page(&mut self, m: &mut Machine, page: PhysAddr) {
        let page = page.page_base();
        self.protected.insert(page.page_index());
        self.map_ipa(m, IntermAddr::new(page.raw()), PagePerms::KERNEL_RO)
            .expect("host table region exhausted");
        m.tlbi_stage2();
    }

    /// Removes write protection from a guest page.
    ///
    /// # Panics
    ///
    /// Panics if the host table region is exhausted.
    pub fn unprotect_page(&mut self, m: &mut Machine, page: PhysAddr) {
        let page = page.page_base();
        self.protected.remove(&page.page_index());
        self.map_ipa(m, IntermAddr::new(page.raw()), PagePerms::KERNEL_DATA)
            .expect("host table region exhausted");
        m.tlbi_stage2();
    }

    /// Number of currently protected pages.
    pub fn protected_pages(&self) -> usize {
        self.protected.len()
    }
}

impl Hyp for KvmHypervisor {
    fn on_hypercall(
        &mut self,
        _machine: &mut Machine,
        call: u64,
        _args: [u64; 4],
    ) -> Result<u64, PolicyViolation> {
        Err(PolicyViolation::new(
            codes::NO_SUCH_HYPERCALL,
            format!("KVM provides no hypercall {call:#x}"),
        ))
    }

    fn on_sysreg_trap(
        &mut self,
        _machine: &mut Machine,
        reg: SysReg,
        _value: u64,
    ) -> Result<(), PolicyViolation> {
        // This model's KVM does not set TVM; a trap here is a config bug.
        Err(PolicyViolation::new(
            codes::NO_SUCH_HYPERCALL,
            format!("unexpected {reg} trap under KVM"),
        ))
    }

    fn on_stage2_fault(
        &mut self,
        machine: &mut Machine,
        ipa: IntermAddr,
        kind: AccessKind,
        value: Option<u64>,
    ) -> Result<Stage2Outcome, PolicyViolation> {
        self.stats.stage2_faults += 1;
        machine.charge(self.config.stage2_fault_compute);
        if ipa.raw() >= self.config.guest_len {
            return Err(PolicyViolation::new(
                codes::BAD_IPA,
                format!("guest access outside memory at {ipa}"),
            ));
        }
        let page = PhysAddr::new(ipa.raw()).page_base();
        if self.protected.contains(&page.page_index()) && kind == AccessKind::Write {
            // Trap-and-emulate page-granularity monitoring.
            self.stats.protection_traps += 1;
            let value = value.unwrap_or(0);
            self.trapped_writes.push(TrappedWrite { ipa, value });
            machine.debug_write_phys(PhysAddr::new(ipa.raw()).word_base(), value);
            return Ok(Stage2Outcome::Emulated);
        }
        // Lazy population.
        self.map_ipa(machine, ipa, PagePerms::KERNEL_DATA)?;
        Ok(Stage2Outcome::Retry)
    }

    fn on_wfi(&mut self, machine: &mut Machine) {
        self.stats.wfi_exits += 1;
        machine.charge_world_switch();
        machine.charge(self.config.wfi_exit_compute);
    }

    fn on_sgi(&mut self, machine: &mut Machine) {
        self.stats.sgi_exits += 1;
        machine.charge(self.config.sgi_exit_compute);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypernel_machine::addr::VirtAddr;
    use hypernel_machine::machine::{Exception, MachineConfig};
    use hypernel_machine::pagetable::{apply_entry_write, plan_map};
    use hypernel_machine::regs::sctlr;

    const GUEST_LEN: u64 = 64 << 20;
    const HOST_BASE: u64 = 64 << 20;

    fn config() -> KvmConfig {
        KvmConfig::standard(PhysAddr::new(HOST_BASE), 32 << 20, GUEST_LEN)
    }

    /// Guest rig: stage-1 identity-maps the low 16 MiB; stage-2 empty.
    fn rig() -> (Machine, KvmHypervisor) {
        let mut m = Machine::new(MachineConfig {
            dram_size: 128 << 20,
            ..MachineConfig::default()
        });
        let mut kvm = KvmHypervisor::new(config());
        kvm.install(&mut m);
        let root = PhysAddr::new(0x10_0000);
        let mut next = 0x20_0000u64;
        for page in (0..(16u64 << 20)).step_by(PAGE_SIZE as usize) {
            let plan = plan_map(
                m.mem_mut(),
                root,
                page,
                PhysAddr::new(page),
                PagePerms::KERNEL_DATA,
                3,
                &mut || {
                    let t = next;
                    next += PAGE_SIZE;
                    Some(PhysAddr::new(t))
                },
            )
            .expect("stage-1 plan");
            for w in &plan.writes {
                apply_entry_write(m.mem_mut(), *w);
            }
        }
        m.el2_write_sysreg(SysReg::TTBR0_EL1, root.raw());
        m.el2_write_sysreg(SysReg::TTBR1_EL1, root.raw());
        m.el2_write_sysreg(SysReg::SCTLR_EL1, sctlr::M);
        m.set_el(ExceptionLevel::El1);
        (m, kvm)
    }

    #[test]
    fn first_touch_faults_then_succeeds() {
        let (mut m, mut kvm) = rig();
        let va = VirtAddr::new(0x50_0000);
        m.write_u64(va, 7, &mut kvm).expect("lazy populate + retry");
        assert!(kvm.stats().stage2_faults >= 1);
        assert!(kvm.stats().pages_mapped >= 1);
        let faults = kvm.stats().stage2_faults;
        m.write_u64(va.add(8), 8, &mut kvm).expect("warm");
        assert_eq!(kvm.stats().stage2_faults, faults, "no refault on warm page");
    }

    #[test]
    fn prefault_avoids_lazy_faults() {
        let (mut m, mut kvm) = rig();
        kvm.prefault(&mut m, PhysAddr::new(16 << 20));
        let before = kvm.stats().stage2_faults;
        m.write_u64(VirtAddr::new(0x50_0000), 7, &mut kvm)
            .expect("warm");
        assert_eq!(kvm.stats().stage2_faults, before);
    }

    #[test]
    fn nested_translation_cold_miss_is_expensive() {
        let (mut m, mut kvm) = rig();
        kvm.prefault(&mut m, PhysAddr::new(16 << 20));
        m.tlbi_all();
        let c0 = m.cycles();
        m.read_u64(VirtAddr::new(0x51_0000), &mut kvm)
            .expect("read");
        let cold = m.cycles() - c0;
        let c1 = m.cycles();
        m.read_u64(VirtAddr::new(0x51_0000), &mut kvm)
            .expect("read");
        let warm = m.cycles() - c1;
        assert!(cold > warm * 3, "nested walk cold={cold} warm={warm}");
    }

    #[test]
    fn protected_page_traps_and_emulates_writes() {
        let (mut m, mut kvm) = rig();
        kvm.prefault(&mut m, PhysAddr::new(16 << 20));
        let page = PhysAddr::new(0x60_0000);
        kvm.protect_page(&mut m, page);
        // Writes to ANY word of the page trap — the granularity gap.
        m.write_u64(VirtAddr::new(0x60_0F00), 0xAA, &mut kvm)
            .expect("emulated");
        m.write_u64(VirtAddr::new(0x60_0008), 0xBB, &mut kvm)
            .expect("emulated");
        assert_eq!(kvm.stats().protection_traps, 2);
        let log = kvm.take_trapped_writes();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].value, 0xAA);
        assert_eq!(m.debug_read_phys(PhysAddr::new(0x60_0F00)), 0xAA);
        // Reads do not trap.
        let faults = kvm.stats().stage2_faults;
        m.read_u64(VirtAddr::new(0x60_0F00), &mut kvm)
            .expect("read ok");
        assert_eq!(kvm.stats().stage2_faults, faults);
    }

    #[test]
    fn unprotect_restores_direct_writes() {
        let (mut m, mut kvm) = rig();
        kvm.prefault(&mut m, PhysAddr::new(16 << 20));
        let page = PhysAddr::new(0x60_0000);
        kvm.protect_page(&mut m, page);
        kvm.unprotect_page(&mut m, page);
        m.write_u64(VirtAddr::new(0x60_0000), 1, &mut kvm)
            .expect("direct");
        assert_eq!(kvm.stats().protection_traps, 0);
        assert_eq!(kvm.protected_pages(), 0);
    }

    #[test]
    fn out_of_guest_memory_is_denied() {
        let (mut m, mut kvm) = rig();
        let root = PhysAddr::new(0x10_0000);
        let bad_ipa = GUEST_LEN + 0x1000;
        let mut next = 0x1F0_0000u64;
        let plan = plan_map(
            m.mem_mut(),
            root,
            0xF00_0000,
            PhysAddr::new(bad_ipa),
            PagePerms::KERNEL_DATA,
            3,
            &mut || {
                let t = next;
                next += PAGE_SIZE;
                Some(PhysAddr::new(t))
            },
        )
        .expect("plan");
        for w in &plan.writes {
            apply_entry_write(m.mem_mut(), *w);
        }
        let err = m.read_u64(VirtAddr::new(0xF00_0000), &mut kvm).unwrap_err();
        assert!(matches!(err, Exception::Denied(v) if v.code == codes::BAD_IPA));
    }

    #[test]
    fn wfi_exits_cost_cycles() {
        let (mut m, mut kvm) = rig();
        let c0 = m.cycles();
        m.wfi(&mut kvm);
        assert!(m.cycles() - c0 >= 1500);
        assert_eq!(kvm.stats().wfi_exits, 1);
    }

    #[test]
    fn kvm_rejects_hypercalls() {
        let (mut m, mut kvm) = rig();
        let err = m.hvc(0x100, [0; 4], &mut kvm).unwrap_err();
        assert!(matches!(err, Exception::Denied(v) if v.code == codes::NO_SUCH_HYPERCALL));
    }
}
