//! `hypernel-analyze` — trace analytics and perf-regression CLI.
//!
//! ```text
//! hypernel-analyze attribution <trace.jsonl> [--collapsed <out>] [--top N]
//! hypernel-analyze forensics   <trace.jsonl> [--json]
//! hypernel-analyze compare     <baseline.json> <current.json>
//!                              [--threshold 0.05] [--json]
//! hypernel-analyze bench       --dir <summaries> [--out <file> | --out-dir <dir>]
//!                              [--baseline <trajectory.json>] [--threshold 0.10]
//! hypernel-analyze audit       <report.json>...
//! hypernel-analyze timeline    <metrics.jsonl | blackbox.json> [--csv]
//!                              [--against <other>] [--threshold 0.10]
//! hypernel-analyze coverage    <coverage.json> [--against <baseline.json>]
//! hypernel-analyze selftest
//! ```
//!
//! `compare` and `bench --baseline` exit nonzero when a cost metric
//! regressed beyond the threshold, which is what the CI perf gate keys
//! on; `coverage --against` exits nonzero when any feature covered by
//! the baseline atlas went uncovered, which is what the CI coverage
//! gate keys on.

use hypernel_analyze::attribution::{attribute, collapsed_stacks};
use hypernel_analyze::bench::{read_summaries_dir, today_utc, trajectory_json};
use hypernel_analyze::compare::compare_reports;
use hypernel_analyze::forensics::{incidents_to_json, reconstruct_incidents, render_text};
use hypernel_telemetry::json::Json;
use hypernel_telemetry::reader::read_jsonl_lossy;
use hypernel_telemetry::Event;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
hypernel-analyze — trace analytics for the Hypernel simulation

USAGE:
  hypernel-analyze attribution <trace.jsonl> [--collapsed <out>] [--top N]
      Per-span self-vs-nested cycle accounting; optionally writes
      collapsed stacks for flamegraph tooling.
  hypernel-analyze forensics <trace.jsonl> [--json]
      Causal timeline of every MBM incident with detection latency.
  hypernel-analyze compare <baseline.json> <current.json> [--threshold F] [--json]
      Diffs two run reports; exits 1 when a cost metric regressed
      beyond the threshold (default 0.05 = 5%).
  hypernel-analyze bench --dir <summaries> [--out <file> | --out-dir <dir>]
                         [--baseline <trajectory.json>] [--threshold F]
      Aggregates bench summaries into a BENCH_<date>.json trajectory;
      with --baseline also runs the regression gate (default 0.10).
  hypernel-analyze selftest
      End-to-end pipeline check over a synthetic trace; exits nonzero
      on any inconsistency.
  hypernel-analyze campaign <campaign.jsonl> [--baseline <summary.json>]
                            [--out <summary.json>] [--threshold F] [--json]
      Aggregates adversarial campaign run records into a per-scenario
      summary; with --baseline also diffs against a previous summary
      and exits 1 on any regression (new unexpected violations,
      pass-rate drops, detection-latency growth beyond the threshold,
      default 0.10 = 10%). Exits 1 whenever unexpected violations are
      present.
  hypernel-analyze audit <report.json>...
      Ingests one or more `hypernel-audit` static-audit reports and
      prints a per-invariant finding breakdown for each; exits 1 when
      any report is not clean.
  hypernel-analyze timeline <metrics.jsonl | blackbox.json> [--csv]
                            [--against <other>] [--threshold F]
      Renders a run's windowed time series (one row per window, derived
      hit-rate columns appended) as an aligned markdown table, or raw
      CSV with --csv. Accepts either a metrics.jsonl document or a
      blackbox.json flight-recorder dump (whose embedded metrics are
      extracted). --against diffs a second document and exits 1 when a
      gated tail series (FIFO high water, detection-latency max) grew
      beyond the threshold (default 0.10 = 10%).
  hypernel-analyze coverage <coverage.json> [--against <baseline.json>]
      Renders a campaign coverage atlas (per-group coverage table plus
      the uncovered tuple/feature lists). --against diffs a baseline
      atlas and exits 1 when any feature covered by the baseline is no
      longer covered.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "attribution" => cmd_attribution(rest),
        "forensics" => cmd_forensics(rest),
        "compare" => cmd_compare(rest),
        "bench" => cmd_bench(rest),
        "campaign" => cmd_campaign(rest),
        "audit" => cmd_audit(rest),
        "timeline" => cmd_timeline(rest),
        "coverage" => cmd_coverage(rest),
        "selftest" => cmd_selftest(),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("hypernel-analyze: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Named `--flag value` options pulled out of an argument list.
type ParsedOptions = Vec<(String, String)>;

/// Pulls `--flag value` out of an argument list; the remainder are
/// positionals.
fn split_args(rest: &[String], flags: &[&str]) -> Result<(Vec<String>, ParsedOptions), String> {
    let mut positional = Vec::new();
    let mut options = Vec::new();
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        if let Some(name) = arg.strip_prefix("--") {
            if !flags.contains(&name) {
                return Err(format!("unknown option `--{name}`"));
            }
            let value = iter
                .next()
                .cloned()
                .ok_or_else(|| format!("option `--{name}` needs a value"))?;
            options.push((name.to_string(), value));
        } else {
            positional.push(arg.clone());
        }
    }
    Ok((positional, options))
}

fn opt<'a>(options: &'a [(String, String)], name: &str) -> Option<&'a str> {
    options
        .iter()
        .rev()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

fn has_flag(rest: &[String], name: &str) -> bool {
    rest.iter().any(|a| a == name)
}

fn load_trace(path: &str) -> Result<Vec<Event>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read trace `{path}`: {e}"))?;
    let trace = read_jsonl_lossy(&text);
    if trace.skipped > 0 {
        eprintln!(
            "warning: skipped {} malformed line(s) in `{path}`:",
            trace.skipped
        );
        for (line, why) in &trace.skip_details {
            eprintln!("warning:   line {line}: {why}");
        }
        let undetailed = trace
            .skipped
            .saturating_sub(trace.skip_details.len() as u64);
        if undetailed > 0 {
            eprintln!("warning:   ... and {undetailed} more");
        }
    }
    if trace.events.is_empty() {
        return Err(format!("`{path}` contains no parseable telemetry events"));
    }
    Ok(trace.events)
}

fn load_report(path: &str) -> Result<Json, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read report `{path}`: {e}"))?;
    Json::parse(&text).map_err(|e| format!("`{path}` is not valid JSON: {e}"))
}

fn cmd_attribution(rest: &[String]) -> Result<ExitCode, String> {
    let rest: Vec<String> = rest.iter().filter(|a| *a != "--json").cloned().collect();
    let (positional, options) = split_args(&rest, &["collapsed", "top"])?;
    let [trace_path] = positional.as_slice() else {
        return Err("usage: attribution <trace.jsonl> [--collapsed <out>] [--top N]".into());
    };
    let top = match opt(&options, "top") {
        Some(n) => n
            .parse::<usize>()
            .map_err(|_| format!("--top wants a number, got `{n}`"))?,
        None => 20,
    };
    let events = load_trace(trace_path)?;
    let attribution = attribute(&events);
    print!("{}", attribution.render_table(top));
    if let Some(out) = opt(&options, "collapsed") {
        let stacks = collapsed_stacks(&events);
        std::fs::write(out, &stacks).map_err(|e| format!("cannot write `{out}`: {e}"))?;
        println!(
            "wrote {} collapsed stack(s) to {out}",
            stacks.lines().count()
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_forensics(rest: &[String]) -> Result<ExitCode, String> {
    let json = has_flag(rest, "--json");
    let positional: Vec<&String> = rest.iter().filter(|a| *a != "--json").collect();
    let [trace_path] = positional.as_slice() else {
        return Err("usage: forensics <trace.jsonl> [--json]".into());
    };
    let events = load_trace(trace_path)?;
    let incidents = reconstruct_incidents(&events);
    if json {
        println!("{}", incidents_to_json(&incidents));
    } else {
        print!("{}", render_text(&incidents));
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_compare(rest: &[String]) -> Result<ExitCode, String> {
    let json = has_flag(rest, "--json");
    let rest: Vec<String> = rest.iter().filter(|a| *a != "--json").cloned().collect();
    let (positional, options) = split_args(&rest, &["threshold"])?;
    let [baseline_path, current_path] = positional.as_slice() else {
        return Err(
            "usage: compare <baseline.json> <current.json> [--threshold F] [--json]".into(),
        );
    };
    let threshold = parse_threshold(opt(&options, "threshold"), 0.05)?;
    let baseline = load_report(baseline_path)?;
    let current = load_report(current_path)?;
    let comparison = compare_reports(&baseline, &current, threshold);
    if json {
        println!("{}", comparison.to_json());
    } else {
        print!("{}", comparison.render_text());
    }
    Ok(if comparison.has_regressions() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn parse_threshold(raw: Option<&str>, default: f64) -> Result<f64, String> {
    match raw {
        None => Ok(default),
        Some(text) => text
            .parse::<f64>()
            .ok()
            .filter(|t| t.is_finite() && *t >= 0.0)
            .ok_or_else(|| format!("--threshold wants a non-negative number, got `{text}`")),
    }
}

fn cmd_bench(rest: &[String]) -> Result<ExitCode, String> {
    let (positional, options) =
        split_args(rest, &["dir", "out", "out-dir", "baseline", "threshold"])?;
    if !positional.is_empty() {
        return Err(format!("unexpected argument `{}`", positional[0]));
    }
    let dir = opt(&options, "dir").ok_or("bench needs --dir <summaries>")?;
    let (entries, skipped) = read_summaries_dir(Path::new(dir))
        .map_err(|e| format!("cannot read summaries dir `{dir}`: {e}"))?;
    for name in &skipped {
        eprintln!("warning: `{dir}/{name}` is not a bench summary, skipped");
    }
    if entries.is_empty() {
        return Err(format!("no bench summaries found in `{dir}`"));
    }
    let date = today_utc();
    let trajectory = trajectory_json(&entries, &date);
    let out_path: PathBuf = match (opt(&options, "out"), opt(&options, "out-dir")) {
        (Some(out), _) => PathBuf::from(out),
        (None, Some(out_dir)) => Path::new(out_dir).join(format!("BENCH_{date}.json")),
        (None, None) => PathBuf::from(format!("BENCH_{date}.json")),
    };
    if let Some(parent) = out_path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("cannot create `{}`: {e}", parent.display()))?;
    }
    std::fs::write(&out_path, format!("{trajectory}\n"))
        .map_err(|e| format!("cannot write `{}`: {e}", out_path.display()))?;
    println!(
        "aggregated {} bench(es) into {}",
        entries.len(),
        out_path.display()
    );
    if let Some(baseline_path) = opt(&options, "baseline") {
        let threshold = parse_threshold(opt(&options, "threshold"), 0.10)?;
        let baseline = load_report(baseline_path)?;
        let comparison = compare_reports(&baseline, &trajectory, threshold);
        print!("{}", comparison.render_text());
        if comparison.has_regressions() {
            eprintln!("perf gate: FAIL (regressions vs `{baseline_path}`)");
            return Ok(ExitCode::FAILURE);
        }
        println!("perf gate: ok vs `{baseline_path}`");
    }
    Ok(ExitCode::SUCCESS)
}

/// A synthetic end-to-end run of the whole pipeline; used as a CI
/// health gate that needs no pre-existing artifacts.
fn cmd_campaign(rest: &[String]) -> Result<ExitCode, String> {
    use hypernel_analyze::campaign::{
        diff_campaigns, ingest_records, rows_from_summary, summary_to_json,
    };

    let json = has_flag(rest, "--json");
    let rest: Vec<String> = rest.iter().filter(|a| *a != "--json").cloned().collect();
    let (positional, options) = split_args(&rest, &["baseline", "out", "threshold"])?;
    let [records_path] = positional.as_slice() else {
        return Err(
            "usage: campaign <campaign.jsonl> [--baseline <summary.json>] \
             [--out <summary.json>] [--threshold F] [--json]"
                .into(),
        );
    };
    let threshold: f64 = match opt(&options, "threshold") {
        None => 0.10,
        Some(text) => text
            .parse()
            .map_err(|_| format!("invalid threshold `{text}`"))?,
    };
    let text = std::fs::read_to_string(records_path)
        .map_err(|e| format!("cannot read `{records_path}`: {e}"))?;
    let (rows, skipped) = ingest_records(&text)?;
    if skipped > 0 {
        eprintln!("warning: skipped {skipped} non-record line(s) in `{records_path}`");
    }

    let summary = summary_to_json(&rows);
    if let Some(path) = opt(&options, "out") {
        std::fs::write(path, format!("{summary}\n"))
            .map_err(|e| format!("cannot write summary `{path}`: {e}"))?;
        eprintln!("wrote campaign summary to {path}");
    }
    if json {
        println!("{summary}");
    } else {
        for row in &rows {
            println!(
                "{:<28} runs {:>3}  passed {:>3}  expected-violations {:>3}  unexpected {:>3}{}",
                row.scenario,
                row.runs,
                row.passed,
                row.expected_violations,
                row.unexpected_violations,
                row.max_latency
                    .map(|l| format!("  max-latency {l}"))
                    .unwrap_or_default()
                    + &match row.fault_total() {
                        0 => String::new(),
                        n => format!("  fault-hits {n}"),
                    },
            );
        }
    }

    let mut failed = false;
    let unexpected: u64 = rows.iter().map(|r| r.unexpected_violations).sum();
    if unexpected > 0 {
        eprintln!("campaign has {unexpected} unexpected violation(s)");
        failed = true;
    }
    if let Some(baseline_path) = opt(&options, "baseline") {
        let baseline = rows_from_summary(&load_report(baseline_path)?)
            .map_err(|e| format!("`{baseline_path}`: {e}"))?;
        let findings = diff_campaigns(&baseline, &rows, threshold);
        for f in &findings {
            println!(
                "{} {}: {}",
                if f.regression { "REGRESSION" } else { "note" },
                f.scenario,
                f.detail
            );
        }
        if findings.iter().any(|f| f.regression) {
            failed = true;
        } else {
            println!("no regressions vs {baseline_path}");
        }
    }
    Ok(if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn cmd_timeline(rest: &[String]) -> Result<ExitCode, String> {
    use hypernel_analyze::timeline::{diff, ingest, render_csv, render_markdown};

    let csv = has_flag(rest, "--csv");
    let rest: Vec<String> = rest.iter().filter(|a| *a != "--csv").cloned().collect();
    let (positional, options) = split_args(&rest, &["against", "threshold"])?;
    let [path] = positional.as_slice() else {
        return Err("usage: timeline <metrics.jsonl | blackbox.json> [--csv] \
             [--against <other>] [--threshold F]"
            .into());
    };
    let load = |path: &str| -> Result<_, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        ingest(&text).map_err(|e| format!("`{path}`: {e}"))
    };
    let timeline = load(path)?;
    if csv {
        print!("{}", render_csv(&timeline));
    } else {
        print!("{}", render_markdown(&timeline));
    }
    if let Some(against_path) = opt(&options, "against") {
        let threshold = parse_threshold(opt(&options, "threshold"), 0.10)?;
        let baseline = load(against_path)?;
        let delta = diff(&baseline.doc, &timeline.doc, threshold);
        for note in &delta.notes {
            println!("note: {note}");
        }
        for regression in &delta.regressions {
            println!("REGRESSION: {regression}");
        }
        if delta.has_regressions() {
            eprintln!("timeline gate: FAIL vs `{against_path}`");
            return Ok(ExitCode::FAILURE);
        }
        println!("timeline gate: ok vs `{against_path}`");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_coverage(rest: &[String]) -> Result<ExitCode, String> {
    use hypernel_analyze::coverage::{diff_atlases, ingest_atlas, render_report};

    let (positional, options) = split_args(rest, &["against"])?;
    let [atlas_path] = positional.as_slice() else {
        return Err("usage: coverage <coverage.json> [--against <baseline.json>]".into());
    };
    let atlas =
        ingest_atlas(&load_report(atlas_path)?).map_err(|e| format!("`{atlas_path}`: {e}"))?;
    print!("{}", render_report(&atlas));
    if let Some(baseline_path) = opt(&options, "against") {
        let baseline = ingest_atlas(&load_report(baseline_path)?)
            .map_err(|e| format!("`{baseline_path}`: {e}"))?;
        let diff = diff_atlases(&baseline, &atlas);
        for key in &diff.newly_covered {
            println!("newly covered: {key}");
        }
        for key in &diff.regressions {
            println!("REGRESSION: `{key}` covered in baseline, uncovered now");
        }
        if diff.has_regressions() {
            eprintln!(
                "coverage gate: FAIL ({} feature(s) lost vs `{baseline_path}`)",
                diff.regressions.len()
            );
            return Ok(ExitCode::FAILURE);
        }
        println!("coverage gate: ok vs `{baseline_path}`");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_audit(rest: &[String]) -> Result<ExitCode, String> {
    use hypernel_analyze::audit::ingest_report;

    if rest.is_empty() || rest.iter().any(|a| a.starts_with("--")) {
        return Err("usage: audit <report.json>...".into());
    }
    let mut dirty = 0usize;
    for path in rest {
        let summary = ingest_report(&load_report(path)?).map_err(|e| format!("`{path}`: {e}"))?;
        println!("{path}:");
        for line in summary.render_text().lines() {
            println!("  {line}");
        }
        if !summary.clean {
            dirty += 1;
        }
    }
    if dirty > 0 {
        eprintln!("{dirty} of {} report(s) not clean", rest.len());
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_selftest() -> Result<ExitCode, String> {
    use hypernel_telemetry::{PointKind, SpanKind, Track};

    // A tiny but representative trace: one syscall with a nested EL2
    // verify, and one full MBM incident trail.
    let events = vec![
        Event::begin(0, Track::El1, SpanKind::Syscall, 57),
        Event::begin(10, Track::El2, SpanKind::HypercallVerify, 3),
        Event::end(30, Track::El2, SpanKind::HypercallVerify, 0),
        Event::end(50, Track::El1, SpanKind::Syscall, 0),
        Event::mark(100, Track::Mbm, PointKind::MbmFifoPush, 0xdead_b000, 42),
        Event::begin(110, Track::Mbm, SpanKind::MbmDrain, 1),
        Event::mark(112, Track::Mbm, PointKind::MbmWatchHit, 0xdead_b000, 42),
        Event::end(118, Track::Mbm, SpanKind::MbmDrain, 1),
        Event::mark(120, Track::Mbm, PointKind::IrqRaised, 5, 0xdead_b000),
        Event::begin(130, Track::El1, SpanKind::MbmIrqService, 5),
        Event::begin(140, Track::El2, SpanKind::HypercallVerify, 9),
        Event::end(150, Track::El2, SpanKind::HypercallVerify, 0),
        Event::end(160, Track::El1, SpanKind::MbmIrqService, 0),
    ];
    let mut jsonl = String::new();
    for event in &events {
        jsonl.push_str(&hypernel_telemetry::export::event_to_json(event).to_string());
        jsonl.push('\n');
    }
    jsonl.push_str("{ this line is corrupted\n");

    let trace = read_jsonl_lossy(&jsonl);
    check(trace.skipped == 1, "lossy reader should skip 1 line")?;
    check(
        trace.events.len() == events.len(),
        "lossy reader should keep all valid events",
    )?;

    let attribution = attribute(&trace.events);
    check(!attribution.rows.is_empty(), "attribution produced rows")?;
    let self_sum: u64 = attribution.rows.iter().map(|r| r.self_cycles).sum();
    check(
        self_sum == attribution.accounted_cycles,
        "self cycles partition accounted time",
    )?;
    check(
        collapsed_stacks(&trace.events).lines().all(|l| {
            l.rsplit_once(' ')
                .is_some_and(|(_, n)| n.parse::<u64>().is_ok())
        }),
        "collapsed stacks are flamegraph-shaped",
    )?;

    let incidents = reconstruct_incidents(&trace.events);
    check(incidents.len() == 1, "exactly one MBM incident")?;
    check(
        incidents[0].detection_latency() == Some(60),
        "detection latency write@100 → service-end@160",
    )?;

    let report = Json::parse(
        r#"{"schema":1,"kind":"hypernel-run-report","cycles":160,
            "counters":{"hypercalls":2}}"#,
    )
    .map_err(|e| e.to_string())?;
    let comparison = compare_reports(&report, &report, 0.05);
    check(
        !comparison.has_regressions() && comparison.changed.is_empty(),
        "self-compare is clean",
    )?;

    println!("selftest ok: reader, attribution, forensics, compare all consistent");
    Ok(ExitCode::SUCCESS)
}

fn check(condition: bool, what: &str) -> Result<(), String> {
    if condition {
        Ok(())
    } else {
        Err(format!("selftest failed: {what}"))
    }
}
