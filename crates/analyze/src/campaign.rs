//! Campaign-artifact analytics: ingest `campaign.jsonl` run records,
//! aggregate per-scenario rows, and diff against a baseline summary.
//!
//! This module speaks the `hypernel-campaign` artifact schema (see
//! `docs/CAMPAIGN.md`) but deliberately parses generic JSON rather than
//! linking the campaign crate — the analyzer must keep reading old
//! artifacts even as the engine evolves, and the dependency would be
//! circular anyway (`campaign → core → analyze`).

use hypernel_telemetry::json::Json;

/// `kind` tag of one campaign run record.
pub const CAMPAIGN_RECORD_KIND: &str = "hypernel-campaign-run";

/// `kind` tag of a campaign summary artifact.
pub const CAMPAIGN_SUMMARY_KIND: &str = "hypernel-campaign-summary";

/// The injected-fault counter names, in artifact order (the field
/// names of a run record's `faults` object).
pub const FAULT_COUNTERS: [&str; 6] = [
    "irqs_dropped",
    "irqs_delayed",
    "translator_stalls",
    "snoop_addr_flips",
    "hypercalls_lost",
    "bitmap_desyncs",
];

fn zero_faults() -> Vec<(String, u64)> {
    FAULT_COUNTERS.iter().map(|n| (n.to_string(), 0)).collect()
}

/// Per-scenario aggregation of a campaign sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignRow {
    /// Scenario name.
    pub scenario: String,
    /// Runs executed.
    pub runs: u64,
    /// Runs whose violations were all declared by the scenario.
    pub passed: u64,
    /// Declared (expected) violations across all runs.
    pub expected_violations: u64,
    /// Undeclared violations — real failures.
    pub unexpected_violations: u64,
    /// Largest observed write→detection latency in cycles.
    pub max_latency: Option<u64>,
    /// Injected-fault counters summed over the scenario's runs, in
    /// artifact order ([`FAULT_COUNTERS`] plus any future names).
    pub faults: Vec<(String, u64)>,
}

impl CampaignRow {
    /// Total fault injections across all counters.
    pub fn fault_total(&self) -> u64 {
        self.faults.iter().map(|(_, n)| n).sum()
    }
}

fn row_mut<'a>(rows: &'a mut Vec<CampaignRow>, scenario: &str) -> &'a mut CampaignRow {
    if let Some(pos) = rows.iter().position(|r| r.scenario == scenario) {
        return &mut rows[pos];
    }
    rows.push(CampaignRow {
        scenario: scenario.to_string(),
        runs: 0,
        passed: 0,
        expected_violations: 0,
        unexpected_violations: 0,
        max_latency: None,
        faults: zero_faults(),
    });
    rows.last_mut().expect("pushed above")
}

fn add_faults(into: &mut Vec<(String, u64)>, doc: &Json) {
    if let Some(Json::Object(fields)) = doc.get("faults") {
        for (name, value) in fields {
            let n = value.as_u64().unwrap_or(0);
            match into.iter_mut().find(|(k, _)| k == name) {
                Some(slot) => slot.1 += n,
                None => into.push((name.clone(), n)),
            }
        }
    }
}

/// Aggregates a `campaign.jsonl` document (one run record per line)
/// into per-scenario rows, in first-seen order.
///
/// # Errors
///
/// Returns a message when no campaign run record parses at all;
/// individual malformed lines are skipped and counted.
pub fn ingest_records(text: &str) -> Result<(Vec<CampaignRow>, usize), String> {
    let mut rows: Vec<CampaignRow> = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Ok(doc) = Json::parse(line) else {
            skipped += 1;
            continue;
        };
        if doc.get("kind").and_then(Json::as_str) != Some(CAMPAIGN_RECORD_KIND) {
            skipped += 1;
            continue;
        }
        let Some(scenario) = doc.get("scenario").and_then(Json::as_str) else {
            skipped += 1;
            continue;
        };
        let row = row_mut(&mut rows, scenario);
        row.runs += 1;
        let passed = matches!(doc.get("passed"), Some(Json::Bool(true)));
        row.passed += u64::from(passed);
        add_faults(&mut row.faults, &doc);
        if let Some(violations) = doc.get("violations").and_then(Json::as_array) {
            for v in violations {
                if matches!(v.get("expected"), Some(Json::Bool(true))) {
                    row.expected_violations += 1;
                } else {
                    row.unexpected_violations += 1;
                }
            }
        }
        if let Some(steps) = doc.get("steps").and_then(Json::as_array) {
            for s in steps {
                let detections = s.get("detections").and_then(Json::as_u64).unwrap_or(0);
                if detections == 0 {
                    continue;
                }
                if let Some(latency) = s.get("latency").and_then(Json::as_u64) {
                    row.max_latency = row.max_latency.max(Some(latency));
                }
            }
        }
    }
    if rows.is_empty() {
        return Err("no campaign run records found".to_string());
    }
    Ok((rows, skipped))
}

/// Reads rows back out of a summary artifact (as written by
/// `hypernel-campaign run --summary` or [`summary_to_json`]).
///
/// # Errors
///
/// Returns a message when the document is not a campaign summary.
pub fn rows_from_summary(doc: &Json) -> Result<Vec<CampaignRow>, String> {
    if doc.get("kind").and_then(Json::as_str) != Some(CAMPAIGN_SUMMARY_KIND) {
        return Err(format!(
            "not a campaign summary (kind = {:?})",
            doc.get("kind").and_then(Json::as_str)
        ));
    }
    let scenarios = doc
        .get("scenarios")
        .and_then(Json::as_array)
        .ok_or("summary has no `scenarios` array")?;
    let mut rows = Vec::with_capacity(scenarios.len());
    for s in scenarios {
        rows.push(CampaignRow {
            scenario: s
                .get("scenario")
                .and_then(Json::as_str)
                .ok_or("scenario row without a name")?
                .to_string(),
            runs: s.get("runs").and_then(Json::as_u64).unwrap_or(0),
            passed: s.get("passed").and_then(Json::as_u64).unwrap_or(0),
            expected_violations: s
                .get("expected_violations")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            unexpected_violations: s
                .get("unexpected_violations")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            max_latency: s.get("max_latency").and_then(Json::as_u64),
            faults: {
                let mut faults = zero_faults();
                add_faults(&mut faults, s);
                // `add_faults` accumulates on top of the zeros, so a
                // summary row's absolute counts land unchanged.
                faults
            },
        });
    }
    Ok(rows)
}

/// Serializes rows as a summary artifact, byte-compatible with the one
/// `hypernel-campaign run --summary` writes.
pub fn summary_to_json(rows: &[CampaignRow]) -> Json {
    Json::obj(vec![
        ("schema", Json::UInt(1)),
        ("kind", Json::str(CAMPAIGN_SUMMARY_KIND)),
        ("runs", Json::UInt(rows.iter().map(|r| r.runs).sum())),
        ("passed", Json::UInt(rows.iter().map(|r| r.passed).sum())),
        (
            "unexpected_violations",
            Json::UInt(rows.iter().map(|r| r.unexpected_violations).sum()),
        ),
        (
            "scenarios",
            Json::Array(
                rows.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("scenario", Json::str(&r.scenario)),
                            ("runs", Json::UInt(r.runs)),
                            ("passed", Json::UInt(r.passed)),
                            ("expected_violations", Json::UInt(r.expected_violations)),
                            ("unexpected_violations", Json::UInt(r.unexpected_violations)),
                            ("max_latency", r.max_latency.map_or(Json::Null, Json::UInt)),
                            (
                                "faults",
                                Json::Object(
                                    r.faults
                                        .iter()
                                        .map(|(name, n)| (name.clone(), Json::UInt(*n)))
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// One finding from a baseline diff.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignFinding {
    /// Scenario the finding is about.
    pub scenario: String,
    /// What changed.
    pub detail: String,
    /// `true` when the change should fail a gate (new unexpected
    /// violations, pass-rate drop, latency regression); `false` for
    /// informational drift (new/removed scenarios, improvements).
    pub regression: bool,
}

/// Diffs `current` against `baseline`. `latency_threshold` is the
/// fractional max-latency growth tolerated before it counts as a
/// regression (e.g. `0.10` = 10%).
pub fn diff_campaigns(
    baseline: &[CampaignRow],
    current: &[CampaignRow],
    latency_threshold: f64,
) -> Vec<CampaignFinding> {
    let mut findings = Vec::new();
    for cur in current {
        let Some(base) = baseline.iter().find(|b| b.scenario == cur.scenario) else {
            findings.push(CampaignFinding {
                scenario: cur.scenario.clone(),
                detail: "new scenario (absent from baseline)".to_string(),
                regression: false,
            });
            continue;
        };
        if cur.unexpected_violations > base.unexpected_violations {
            findings.push(CampaignFinding {
                scenario: cur.scenario.clone(),
                detail: format!(
                    "unexpected violations {} -> {}",
                    base.unexpected_violations, cur.unexpected_violations
                ),
                regression: true,
            });
        }
        let base_rate = base.passed as f64 / base.runs.max(1) as f64;
        let cur_rate = cur.passed as f64 / cur.runs.max(1) as f64;
        if cur_rate < base_rate {
            findings.push(CampaignFinding {
                scenario: cur.scenario.clone(),
                detail: format!("pass rate {base_rate:.2} -> {cur_rate:.2}"),
                regression: true,
            });
        }
        if let (Some(base_lat), Some(cur_lat)) = (base.max_latency, cur.max_latency) {
            let limit = base_lat as f64 * (1.0 + latency_threshold);
            if cur_lat as f64 > limit {
                findings.push(CampaignFinding {
                    scenario: cur.scenario.clone(),
                    detail: format!(
                        "max detection latency {base_lat} -> {cur_lat} cycles \
                         (> {:.0}% growth)",
                        latency_threshold * 100.0
                    ),
                    regression: true,
                });
            }
        }
    }
    for base in baseline {
        if !current.iter().any(|c| c.scenario == base.scenario) {
            findings.push(CampaignFinding {
                scenario: base.scenario.clone(),
                detail: "scenario disappeared from the campaign".to_string(),
                regression: false,
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_line(scenario: &str, seed: u64, passed: bool, latency: u64) -> String {
        Json::obj(vec![
            ("schema", Json::UInt(1)),
            ("kind", Json::str(CAMPAIGN_RECORD_KIND)),
            ("scenario", Json::str(scenario)),
            ("seed", Json::UInt(seed)),
            (
                "steps",
                Json::Array(vec![Json::obj(vec![
                    ("detections", Json::UInt(1)),
                    ("latency", Json::UInt(latency)),
                ])]),
            ),
            (
                "violations",
                if passed {
                    Json::Array(vec![])
                } else {
                    Json::Array(vec![Json::obj(vec![
                        ("oracle", Json::str("detection")),
                        ("expected", Json::Bool(false)),
                    ])])
                },
            ),
            ("passed", Json::Bool(passed)),
        ])
        .to_string()
    }

    fn rows(spec: &[(&str, u64, u64, Option<u64>)]) -> Vec<CampaignRow> {
        spec.iter()
            .map(|(scenario, runs, unexpected, max_latency)| CampaignRow {
                scenario: (*scenario).to_string(),
                runs: *runs,
                passed: *runs - u64::from(*unexpected > 0),
                expected_violations: 0,
                unexpected_violations: *unexpected,
                max_latency: *max_latency,
                faults: zero_faults(),
            })
            .collect()
    }

    #[test]
    fn ingest_aggregates_and_counts_skips() {
        let text = format!(
            "{}\n{}\nnot json\n{}\n",
            record_line("a", 0, true, 100),
            record_line("a", 1, false, 300),
            record_line("b", 0, true, 50),
        );
        let (rows, skipped) = ingest_records(&text).expect("ingests");
        assert_eq!(skipped, 1);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].scenario, "a");
        assert_eq!(rows[0].runs, 2);
        assert_eq!(rows[0].passed, 1);
        assert_eq!(rows[0].unexpected_violations, 1);
        assert_eq!(rows[0].max_latency, Some(300));
        assert_eq!(rows[1].runs, 1);
    }

    #[test]
    fn ingest_sums_fault_counters_per_scenario() {
        let with_faults = |seed: u64, dropped: u64| {
            Json::obj(vec![
                ("schema", Json::UInt(1)),
                ("kind", Json::str(CAMPAIGN_RECORD_KIND)),
                ("scenario", Json::str("faulty")),
                ("seed", Json::UInt(seed)),
                (
                    "faults",
                    Json::obj(vec![
                        ("irqs_dropped", Json::UInt(dropped)),
                        ("irqs_delayed", Json::UInt(1)),
                    ]),
                ),
                ("passed", Json::Bool(true)),
            ])
            .to_string()
        };
        let text = format!("{}\n{}\n", with_faults(0, 2), with_faults(1, 3));
        let (rows, _) = ingest_records(&text).expect("ingests");
        assert_eq!(rows[0].fault_total(), 7);
        let dropped = rows[0].faults.iter().find(|(k, _)| k == "irqs_dropped");
        assert_eq!(dropped.map(|(_, n)| *n), Some(5));
        // Round trip through the summary artifact keeps the counters.
        let doc = Json::parse(&summary_to_json(&rows).to_string()).expect("valid");
        let back = rows_from_summary(&doc).expect("summary");
        assert_eq!(back, rows);
    }

    #[test]
    fn summary_round_trips_through_json() {
        let original = rows(&[("a", 4, 0, Some(120)), ("b", 4, 1, None)]);
        let doc = summary_to_json(&original);
        let parsed = Json::parse(&doc.to_string()).expect("valid");
        assert_eq!(rows_from_summary(&parsed).expect("summary"), original);
    }

    #[test]
    fn diff_flags_regressions_and_tolerates_drift() {
        let baseline = rows(&[("a", 4, 0, Some(100)), ("gone", 4, 0, None)]);
        let current = rows(&[("a", 4, 1, Some(200)), ("new", 4, 0, None)]);
        let findings = diff_campaigns(&baseline, &current, 0.10);
        let regressions: Vec<_> = findings.iter().filter(|f| f.regression).collect();
        // unexpected violations, pass-rate drop, latency growth on `a`.
        assert_eq!(regressions.len(), 3, "{findings:?}");
        assert!(findings
            .iter()
            .any(|f| f.scenario == "new" && !f.regression));
        assert!(findings
            .iter()
            .any(|f| f.scenario == "gone" && !f.regression));
        assert!(diff_campaigns(&baseline, &baseline, 0.10)
            .iter()
            .all(|f| !f.regression));
    }
}
