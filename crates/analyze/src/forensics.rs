//! Attack forensics: causal reconstruction of MBM incidents.
//!
//! Each detection in the simulation leaves a fixed trail in the event
//! stream: the offending store is captured into the MBM FIFO
//! (`mbm-fifo-push`), the decision unit matches it against the watch
//! bitmap during a drain (`mbm-watch-hit` inside an `mbm-drain` span),
//! the IRQ line is asserted (`irq-raised`), and the kernel eventually
//! services it (`mbm-irq-service` span wrapping the `IrqNotify`
//! hypercall that hands the event to EL2). This module stitches those
//! back into per-incident timelines with an end-to-end detection
//! latency — the measured counterpart of the paper's Table 2.
//!
//! Secure-guard alarms (bus/DMA writes into Hypersec's private memory,
//! the §8 extension) raise the IRQ without a watch-bitmap hit; they are
//! reconstructed as [`IncidentKind::SecureGuardAlarm`].

use crate::CYCLES_PER_US;
use hypernel_telemetry::json::Json;
use hypernel_telemetry::{Event, EventKind, PointKind, SpanKind, Track};

/// What triggered the incident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncidentKind {
    /// The decision unit matched a write against the watch bitmap.
    WatchHit,
    /// A bus write landed in the guarded (Hypersec-private) region.
    SecureGuardAlarm,
}

impl IncidentKind {
    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            IncidentKind::WatchHit => "watch-hit",
            IncidentKind::SecureGuardAlarm => "secure-guard-alarm",
        }
    }
}

/// The kernel/EL2 service window an incident was handled in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceWindow {
    /// `mbm-irq-service` begin cycle.
    pub begin: u64,
    /// `mbm-irq-service` end cycle (`None`: trace ended mid-service).
    pub end: Option<u64>,
    /// IRQ line number (the span's begin payload).
    pub line: u64,
    /// Whether the service path reported an error (end payload ≠ 0).
    pub errored: bool,
    /// EL2 `hypercall-verify` spans opened inside the window (the
    /// `IrqNotify` forwarding and any nested checks).
    pub el2_verifies: u64,
}

/// One reconstructed incident.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Incident {
    /// Position in detection order, starting at 1.
    pub seq: usize,
    /// Trigger class.
    pub kind: IncidentKind,
    /// Physical address of the watched word (or guarded location).
    pub addr: u64,
    /// Value written, when the FIFO captured it.
    pub value: Option<u64>,
    /// Cycle of the offending store's FIFO capture.
    pub write_cycles: Option<u64>,
    /// Cycle the decision unit matched (watch-hit incidents).
    pub watch_cycles: Option<u64>,
    /// Cycle the IRQ line was asserted.
    pub irq_cycles: Option<u64>,
    /// IRQ line number.
    pub irq_line: Option<u64>,
    /// Begin cycle of the `mbm-drain` span the match happened in.
    pub drain_begin: Option<u64>,
    /// Innermost non-MBM span open when the incident fired:
    /// `(track, kind, begin payload)` — i.e. who the machine was
    /// running when the offending write hit the bus.
    pub context: Option<(Track, SpanKind, u64)>,
    /// The service window that handled it, if the kernel got there.
    pub service: Option<ServiceWindow>,
}

impl Incident {
    /// The earliest cycle evidence of the incident (FIFO capture if
    /// seen, else the match, else the IRQ).
    pub fn origin_cycles(&self) -> u64 {
        self.write_cycles
            .or(self.watch_cycles)
            .or(self.irq_cycles)
            .unwrap_or(0)
    }

    /// End-to-end detection latency: offending write → kernel/EL2
    /// service complete. `None` while the service never finished (or
    /// never ran) inside the trace.
    pub fn detection_latency(&self) -> Option<u64> {
        let end = self.service.as_ref()?.end?;
        Some(end.saturating_sub(self.origin_cycles()))
    }
}

/// A lightweight open-span stack frame.
#[derive(Clone, Copy)]
struct Frame {
    track: Track,
    kind: SpanKind,
    arg: u64,
}

/// Reconstructs every incident in an event stream, in trigger order.
pub fn reconstruct_incidents(events: &[Event]) -> Vec<Incident> {
    let mut incidents: Vec<Incident> = Vec::new();
    let mut services: Vec<ServiceWindow> = Vec::new();
    // Innermost-open service index into `services` (they never nest).
    let mut open_service: Option<usize> = None;
    let mut stack: Vec<Frame> = Vec::new();
    // Last FIFO capture per address; value + cycle.
    let mut last_push: std::collections::BTreeMap<u64, (u64, u64)> =
        std::collections::BTreeMap::new();
    let mut open_drain: Option<u64> = None;

    let context_of = |stack: &[Frame]| {
        stack
            .iter()
            .rev()
            .find(|f| f.track != Track::Mbm)
            .map(|f| (f.track, f.kind, f.arg))
    };

    for event in events {
        match event.kind {
            EventKind::Begin(kind, arg) => {
                if kind == SpanKind::MbmDrain {
                    open_drain = Some(event.cycles);
                }
                if kind == SpanKind::MbmIrqService {
                    services.push(ServiceWindow {
                        begin: event.cycles,
                        end: None,
                        line: arg,
                        errored: false,
                        el2_verifies: 0,
                    });
                    open_service = Some(services.len() - 1);
                }
                if kind == SpanKind::HypercallVerify && event.track == Track::El2 {
                    if let Some(idx) = open_service {
                        services[idx].el2_verifies += 1;
                    }
                }
                stack.push(Frame {
                    track: event.track,
                    kind,
                    arg,
                });
            }
            EventKind::End(kind, arg) => {
                if kind == SpanKind::MbmDrain {
                    open_drain = None;
                }
                if kind == SpanKind::MbmIrqService {
                    if let Some(idx) = open_service.take() {
                        services[idx].end = Some(event.cycles);
                        services[idx].errored = arg != 0;
                    }
                }
                // Tolerant pop, matching the SpanTree builder.
                if let Some(pos) = stack
                    .iter()
                    .rposition(|f| f.track == event.track && f.kind == kind)
                {
                    stack.truncate(pos);
                }
            }
            EventKind::Mark(point, a, b) => match point {
                PointKind::MbmFifoPush => {
                    last_push.insert(a, (b, event.cycles));
                }
                PointKind::MbmWatchHit => {
                    let push = last_push.get(&a).copied();
                    incidents.push(Incident {
                        seq: incidents.len() + 1,
                        kind: IncidentKind::WatchHit,
                        addr: a,
                        value: Some(b),
                        write_cycles: push.map(|(_, c)| c),
                        watch_cycles: Some(event.cycles),
                        irq_cycles: None,
                        irq_line: None,
                        drain_begin: open_drain,
                        context: context_of(&stack),
                        service: None,
                    });
                }
                PointKind::IrqRaised => {
                    // Attach to the newest incident at this address still
                    // awaiting its IRQ; otherwise it is a guard alarm.
                    if let Some(incident) = incidents
                        .iter_mut()
                        .rev()
                        .find(|i| i.addr == b && i.irq_cycles.is_none())
                    {
                        incident.irq_cycles = Some(event.cycles);
                        incident.irq_line = Some(a);
                    } else {
                        incidents.push(Incident {
                            seq: incidents.len() + 1,
                            kind: IncidentKind::SecureGuardAlarm,
                            addr: b,
                            value: None,
                            write_cycles: None,
                            watch_cycles: None,
                            irq_cycles: Some(event.cycles),
                            irq_line: Some(a),
                            drain_begin: open_drain,
                            context: context_of(&stack),
                            service: None,
                        });
                    }
                }
                _ => {}
            },
        }
    }

    // Assign each incident the first service window that starts at or
    // after its trigger (a single drain batch can service several).
    for incident in &mut incidents {
        let trigger = incident
            .watch_cycles
            .or(incident.irq_cycles)
            .unwrap_or(incident.origin_cycles());
        incident.service = services.iter().find(|s| s.begin >= trigger).copied();
    }
    incidents
}

fn us(cycles: u64) -> f64 {
    cycles as f64 / CYCLES_PER_US
}

/// Renders incidents as human-readable per-incident timelines plus a
/// Table 2-shaped summary footer.
pub fn render_text(incidents: &[Incident]) -> String {
    let mut out = String::new();
    if incidents.is_empty() {
        out.push_str("no MBM incidents in this trace\n");
        return out;
    }
    for i in incidents {
        out.push_str(&format!(
            "incident #{} [{}] watched word {:#012x}{}\n",
            i.seq,
            i.kind.name(),
            i.addr,
            i.value
                .map(|v| format!(" <- value {v:#x}"))
                .unwrap_or_default(),
        ));
        if let Some((track, kind, arg)) = i.context {
            out.push_str(&format!(
                "  during: {}:{} (arg {:#x})\n",
                track.name(),
                kind.name(),
                arg
            ));
        }
        if let Some(c) = i.write_cycles {
            out.push_str(&format!("  cycle {c:>10}  write captured into MBM FIFO\n"));
        }
        if let Some(c) = i.drain_begin {
            out.push_str(&format!("  cycle {c:>10}  FIFO drain began\n"));
        }
        if let Some(c) = i.watch_cycles {
            out.push_str(&format!(
                "  cycle {c:>10}  decision unit matched the watch bitmap\n"
            ));
        }
        if let (Some(c), Some(line)) = (i.irq_cycles, i.irq_line) {
            out.push_str(&format!("  cycle {c:>10}  IRQ line {line} asserted\n"));
        }
        match &i.service {
            Some(s) => {
                out.push_str(&format!(
                    "  cycle {:>10}  kernel mbm-irq-service began (line {})\n",
                    s.begin, s.line
                ));
                match s.end {
                    Some(end) => {
                        out.push_str(&format!(
                        "  cycle {end:>10}  service complete: {} ({} EL2 verification span(s))\n",
                        if s.errored { "ERRORED" } else { "verdict delivered" },
                        s.el2_verifies
                    ))
                    }
                    None => out.push_str("  service still open at end of trace\n"),
                }
            }
            None => out.push_str("  never serviced within this trace\n"),
        }
        match i.detection_latency() {
            Some(lat) => out.push_str(&format!(
                "  detection latency: {lat} cycles ({:.2} us)\n",
                us(lat)
            )),
            None => out.push_str("  detection latency: pending (no completed service)\n"),
        }
        out.push('\n');
    }
    let latencies: Vec<u64> = incidents
        .iter()
        .filter_map(Incident::detection_latency)
        .collect();
    out.push_str(&format!(
        "{} incident(s): {} watch-hit, {} secure-guard\n",
        incidents.len(),
        incidents
            .iter()
            .filter(|i| i.kind == IncidentKind::WatchHit)
            .count(),
        incidents
            .iter()
            .filter(|i| i.kind == IncidentKind::SecureGuardAlarm)
            .count(),
    ));
    if !latencies.is_empty() {
        let min = latencies.iter().min().unwrap();
        let max = latencies.iter().max().unwrap();
        let mean = latencies.iter().sum::<u64>() / latencies.len() as u64;
        out.push_str(&format!(
            "detection latency cycles: min {min} / mean {mean} / max {max} ({:.2} / {:.2} / {:.2} us)\n",
            us(*min),
            us(mean),
            us(*max)
        ));
    }
    out
}

/// Serializes incidents as a JSON array (machine-readable forensics
/// artifact).
pub fn incidents_to_json(incidents: &[Incident]) -> Json {
    let items = incidents
        .iter()
        .map(|i| {
            let mut fields = vec![
                ("seq", Json::UInt(i.seq as u64)),
                ("kind", Json::str(i.kind.name())),
                ("addr", Json::UInt(i.addr)),
            ];
            if let Some(v) = i.value {
                fields.push(("value", Json::UInt(v)));
            }
            if let Some(c) = i.write_cycles {
                fields.push(("write_cycles", Json::UInt(c)));
            }
            if let Some(c) = i.watch_cycles {
                fields.push(("watch_cycles", Json::UInt(c)));
            }
            if let Some(c) = i.irq_cycles {
                fields.push(("irq_cycles", Json::UInt(c)));
            }
            if let Some((track, kind, arg)) = i.context {
                fields.push((
                    "context",
                    Json::obj(vec![
                        ("track", Json::str(track.name())),
                        ("span", Json::str(kind.name())),
                        ("arg", Json::UInt(arg)),
                    ]),
                ));
            }
            if let Some(s) = &i.service {
                let mut svc = vec![
                    ("begin", Json::UInt(s.begin)),
                    ("line", Json::UInt(s.line)),
                    ("el2_verifies", Json::UInt(s.el2_verifies)),
                    ("errored", Json::Bool(s.errored)),
                ];
                if let Some(end) = s.end {
                    svc.push(("end", Json::UInt(end)));
                }
                fields.push(("service", Json::obj(svc)));
            }
            if let Some(lat) = i.detection_latency() {
                fields.push(("detection_latency_cycles", Json::UInt(lat)));
                fields.push(("detection_latency_us", Json::Float(us(lat))));
            }
            Json::obj(fields)
        })
        .collect();
    Json::Array(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic but shape-faithful incident trail: syscall context,
    /// capture, drain+match, IRQ, then the kernel service window with
    /// the EL2 forwarding hypercall inside.
    fn incident_trail() -> Vec<Event> {
        vec![
            Event::begin(0, Track::El1, SpanKind::Syscall, 0x39),
            Event::mark(100, Track::Mbm, PointKind::MbmFifoPush, 0x4a10, 0),
            Event::begin(110, Track::Mbm, SpanKind::MbmDrain, 1),
            Event::mark(112, Track::Mbm, PointKind::MbmWatchHit, 0x4a10, 0),
            Event::mark(114, Track::Mbm, PointKind::IrqRaised, 3, 0x4a10),
            Event::end(118, Track::Mbm, SpanKind::MbmDrain, 1),
            Event::end(150, Track::El1, SpanKind::Syscall, 0),
            Event::begin(200, Track::El1, SpanKind::MbmIrqService, 3),
            Event::begin(210, Track::El2, SpanKind::HypercallVerify, 40),
            Event::end(240, Track::El2, SpanKind::HypercallVerify, 0),
            Event::end(260, Track::El1, SpanKind::MbmIrqService, 0),
        ]
    }

    #[test]
    fn reconstructs_the_full_causal_chain() {
        let incidents = reconstruct_incidents(&incident_trail());
        assert_eq!(incidents.len(), 1);
        let i = &incidents[0];
        assert_eq!(i.kind, IncidentKind::WatchHit);
        assert_eq!(i.addr, 0x4a10);
        assert_eq!(i.value, Some(0));
        assert_eq!(i.write_cycles, Some(100));
        assert_eq!(i.watch_cycles, Some(112));
        assert_eq!(i.irq_cycles, Some(114));
        assert_eq!(i.irq_line, Some(3));
        assert_eq!(i.drain_begin, Some(110));
        // Offender context: the EL1 syscall that was executing.
        assert_eq!(i.context, Some((Track::El1, SpanKind::Syscall, 0x39)));
        let s = i.service.expect("serviced");
        assert_eq!((s.begin, s.end, s.line), (200, Some(260), 3));
        assert_eq!(s.el2_verifies, 1);
        assert!(!s.errored);
        // write at 100, service done at 260.
        assert_eq!(i.detection_latency(), Some(160));
    }

    #[test]
    fn guard_alarm_without_watch_hit_is_classified() {
        let events = vec![
            Event::mark(50, Track::Mbm, PointKind::IrqRaised, 3, 0x9000),
            Event::begin(70, Track::El1, SpanKind::MbmIrqService, 3),
            Event::end(90, Track::El1, SpanKind::MbmIrqService, 0),
        ];
        let incidents = reconstruct_incidents(&events);
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].kind, IncidentKind::SecureGuardAlarm);
        assert_eq!(incidents[0].addr, 0x9000);
        assert_eq!(incidents[0].detection_latency(), Some(40));
    }

    #[test]
    fn batched_incidents_share_one_service_window() {
        let events = vec![
            Event::mark(10, Track::Mbm, PointKind::MbmFifoPush, 0x100, 1),
            Event::mark(11, Track::Mbm, PointKind::MbmFifoPush, 0x200, 2),
            Event::mark(20, Track::Mbm, PointKind::MbmWatchHit, 0x100, 1),
            Event::mark(21, Track::Mbm, PointKind::IrqRaised, 3, 0x100),
            Event::mark(22, Track::Mbm, PointKind::MbmWatchHit, 0x200, 2),
            Event::mark(23, Track::Mbm, PointKind::IrqRaised, 3, 0x200),
            Event::begin(100, Track::El1, SpanKind::MbmIrqService, 3),
            Event::end(180, Track::El1, SpanKind::MbmIrqService, 0),
        ];
        let incidents = reconstruct_incidents(&events);
        assert_eq!(incidents.len(), 2);
        for i in &incidents {
            assert_eq!(i.service.unwrap().begin, 100);
        }
        assert_eq!(incidents[0].detection_latency(), Some(170));
        assert_eq!(incidents[1].detection_latency(), Some(169));
    }

    #[test]
    fn unserviced_incident_reports_pending() {
        let events = vec![
            Event::mark(10, Track::Mbm, PointKind::MbmFifoPush, 0x100, 1),
            Event::mark(20, Track::Mbm, PointKind::MbmWatchHit, 0x100, 1),
        ];
        let incidents = reconstruct_incidents(&events);
        assert_eq!(incidents.len(), 1);
        assert!(incidents[0].service.is_none());
        assert_eq!(incidents[0].detection_latency(), None);
        let text = render_text(&incidents);
        assert!(text.contains("never serviced"));
        assert!(text.contains("pending"));
    }

    #[test]
    fn text_and_json_renderings_cover_the_incident() {
        let incidents = reconstruct_incidents(&incident_trail());
        let text = render_text(&incidents);
        assert!(text.contains("0x0000004a10"));
        assert!(text.contains("detection latency: 160 cycles"));
        assert!(text.contains("el1:syscall"));
        let json = incidents_to_json(&incidents).to_string();
        let doc = Json::parse(&json).expect("valid json");
        let arr = doc.as_array().unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(
            arr[0]
                .get("detection_latency_cycles")
                .and_then(Json::as_u64),
            Some(160)
        );
        assert_eq!(arr[0].get("kind").and_then(Json::as_str), Some("watch-hit"));
    }

    #[test]
    fn empty_trace_has_no_incidents() {
        assert!(reconstruct_incidents(&[]).is_empty());
        assert!(render_text(&[]).contains("no MBM incidents"));
    }
}
