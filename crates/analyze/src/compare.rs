//! Regression comparison of machine-readable run reports.
//!
//! `RunReport::to_json()` artifacts (and the BENCH trajectory files
//! built from bench summaries) are nested JSON. [`flatten_metrics`]
//! projects every numeric leaf onto a stable dotted key —
//! `counters.hypercalls`, `telemetry.latencies.syscall@el1.p95`,
//! `mbm.events_matched` — and [`compare_reports`] diffs two such maps.
//! Only *cost-like* metrics (cycles, latency quantiles, miss/drop
//! counts; see [`is_cost_metric`]) and *throughput* metrics (host-side
//! `…_mops` rates, where a **drop** is the regression; see
//! [`is_throughput_metric`]) gate the regression verdict: behavioral
//! counters like `counters.hypercalls` are reported as changes but a
//! workload may legitimately shift them, and keys present on only one
//! side are listed without gating — a baseline predating a new metric
//! must not fail the gate.

use hypernel_telemetry::json::Json;
use std::collections::BTreeMap;

/// Flattens a report document into `dotted.key -> value` pairs over
/// every numeric leaf. Arrays of objects are keyed by their `span`/
/// `point` + `track` fields (run-report latency tables), or by a `name`
/// field (bench summaries); other arrays by index. Strings, booleans
/// and nulls are skipped.
pub fn flatten_metrics(doc: &Json) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    flatten_into("", doc, &mut out);
    out
}

fn join(prefix: &str, key: &str) -> String {
    if prefix.is_empty() {
        key.to_string()
    } else {
        format!("{prefix}.{key}")
    }
}

/// A label for an array element, when it carries one.
fn element_label(item: &Json) -> Option<String> {
    let track = item.get("track").and_then(Json::as_str);
    if let (Some(name), Some(track)) = (
        item.get("span")
            .or_else(|| item.get("point"))
            .and_then(Json::as_str),
        track,
    ) {
        return Some(format!("{name}@{track}"));
    }
    item.get("name").and_then(Json::as_str).map(str::to_string)
}

fn flatten_into(prefix: &str, doc: &Json, out: &mut BTreeMap<String, f64>) {
    match doc {
        Json::UInt(_) | Json::Int(_) | Json::Float(_) => {
            if let Some(v) = doc.as_f64() {
                out.insert(prefix.to_string(), v);
            }
        }
        Json::Object(fields) => {
            for (key, value) in fields {
                // Label fields become part of the key, not metrics.
                if matches!(value, Json::Str(_) | Json::Bool(_) | Json::Null) {
                    continue;
                }
                flatten_into(&join(prefix, key), value, out);
            }
        }
        Json::Array(items) => {
            for (idx, item) in items.iter().enumerate() {
                let label = element_label(item).unwrap_or_else(|| idx.to_string());
                flatten_into(&join(prefix, &label), item, out);
            }
        }
        Json::Str(_) | Json::Bool(_) | Json::Null => {}
    }
}

/// Whether a flattened key measures *cost* — something where a higher
/// value is a regression (cycle counts, latency quantiles, misses,
/// telemetry loss). Sample counts under a latency table are population
/// sizes, not costs.
pub fn is_cost_metric(key: &str) -> bool {
    if key.ends_with(".count") {
        return false;
    }
    key == "cycles"
        || key == "micros"
        || key.ends_with(".cycles")
        || key.ends_with("_cycles")
        || key.ends_with(".micros")
        || key.ends_with("_us")
        || key.contains("overhead")
        || key.contains("latenc")
        || key.contains("misses")
        || key.contains("dropped")
        || key.contains("unmatched")
        || key.contains("open_spans")
}

/// Whether a flattened key measures *throughput* — something where a
/// **lower** value is the regression (simulated mega-ops per host
/// second from the `throughput` bench). Throughput keys end in `_mops`
/// by convention.
pub fn is_throughput_metric(key: &str) -> bool {
    key.ends_with("_mops") || key.ends_with(".mops")
}

/// One metric present in both reports.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Flattened dotted key.
    pub key: String,
    /// Value in the baseline report.
    pub baseline: f64,
    /// Value in the current report.
    pub current: f64,
}

impl MetricDelta {
    /// Absolute change.
    pub fn delta(&self) -> f64 {
        self.current - self.baseline
    }

    /// Relative change (`0.05` = 5 % up); `None` when the baseline is 0.
    pub fn ratio(&self) -> Option<f64> {
        (self.baseline != 0.0).then(|| self.delta() / self.baseline)
    }

    fn exceeds(&self, threshold: f64) -> bool {
        match self.ratio() {
            Some(r) => r.abs() > threshold,
            // 0 -> anything is an infinite relative change.
            None => self.current != 0.0,
        }
    }
}

/// The outcome of comparing two reports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Comparison {
    /// Relative-change threshold the verdicts used.
    pub threshold: f64,
    /// Every metric whose value changed, sorted by key.
    pub changed: Vec<MetricDelta>,
    /// Cost metrics that got worse beyond the threshold.
    pub regressions: Vec<MetricDelta>,
    /// Cost metrics that got better beyond the threshold.
    pub improvements: Vec<MetricDelta>,
    /// Keys only in the current report.
    pub added: Vec<String>,
    /// Keys only in the baseline report.
    pub removed: Vec<String>,
    /// `(baseline, current)` schema versions, when they disagree.
    pub schema_mismatch: Option<(u64, u64)>,
    /// Metrics compared in total.
    pub compared: usize,
}

impl Comparison {
    /// True when the perf gate should fail.
    pub fn has_regressions(&self) -> bool {
        !self.regressions.is_empty()
    }

    /// Human-readable rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if let Some((b, c)) = self.schema_mismatch {
            out.push_str(&format!(
                "warning: schema mismatch (baseline v{b}, current v{c}) — keys may not line up\n"
            ));
        }
        out.push_str(&format!(
            "{} metric(s) compared, {} changed, {} regression(s), {} improvement(s) at ±{:.1}%\n",
            self.compared,
            self.changed.len(),
            self.regressions.len(),
            self.improvements.len(),
            self.threshold * 100.0
        ));
        let fmt = |d: &MetricDelta| {
            let rel = match d.ratio() {
                Some(r) => format!("{:+.1}%", r * 100.0),
                None => "new-nonzero".to_string(),
            };
            format!(
                "  {:<48} {:>14} -> {:>14}  ({rel})\n",
                d.key, d.baseline, d.current
            )
        };
        if !self.regressions.is_empty() {
            out.push_str("REGRESSIONS:\n");
            self.regressions.iter().for_each(|d| out.push_str(&fmt(d)));
        }
        if !self.improvements.is_empty() {
            out.push_str("improvements:\n");
            self.improvements.iter().for_each(|d| out.push_str(&fmt(d)));
        }
        let neutral: Vec<&MetricDelta> = self
            .changed
            .iter()
            .filter(|d| !is_cost_metric(&d.key) && !is_throughput_metric(&d.key))
            .collect();
        if !neutral.is_empty() {
            out.push_str("other changed metrics (not gated):\n");
            neutral.into_iter().for_each(|d| out.push_str(&fmt(d)));
        }
        if !self.added.is_empty() || !self.removed.is_empty() {
            out.push_str(&format!(
                "{} key(s) only in current, {} only in baseline\n",
                self.added.len(),
                self.removed.len()
            ));
        }
        if self.changed.is_empty() && self.added.is_empty() && self.removed.is_empty() {
            out.push_str("reports are metric-identical\n");
        }
        out
    }

    /// Machine-readable rendering (for `BENCH_*` artifacts and CI logs).
    pub fn to_json(&self) -> Json {
        let deltas = |v: &[MetricDelta]| {
            Json::Array(
                v.iter()
                    .map(|d| {
                        Json::obj(vec![
                            ("key", Json::str(&d.key)),
                            ("baseline", Json::Float(d.baseline)),
                            ("current", Json::Float(d.current)),
                            ("delta", Json::Float(d.delta())),
                        ])
                    })
                    .collect(),
            )
        };
        Json::obj(vec![
            ("threshold", Json::Float(self.threshold)),
            ("compared", Json::UInt(self.compared as u64)),
            ("changed", deltas(&self.changed)),
            ("regressions", deltas(&self.regressions)),
            ("improvements", deltas(&self.improvements)),
            (
                "added",
                Json::Array(self.added.iter().map(|k| Json::str(k)).collect()),
            ),
            (
                "removed",
                Json::Array(self.removed.iter().map(|k| Json::str(k)).collect()),
            ),
        ])
    }
}

/// Diffs two report documents at the given relative threshold.
pub fn compare_reports(baseline: &Json, current: &Json, threshold: f64) -> Comparison {
    let schema = |doc: &Json| doc.get("schema").and_then(Json::as_u64);
    let schema_mismatch = match (schema(baseline), schema(current)) {
        (Some(b), Some(c)) if b != c => Some((b, c)),
        _ => None,
    };
    let base = flatten_metrics(baseline);
    let cur = flatten_metrics(current);

    let mut comparison = Comparison {
        threshold,
        schema_mismatch,
        ..Comparison::default()
    };
    for (key, &b) in &base {
        match cur.get(key) {
            None => comparison.removed.push(key.clone()),
            Some(&c) => {
                comparison.compared += 1;
                let delta = MetricDelta {
                    key: key.clone(),
                    baseline: b,
                    current: c,
                };
                if b == c {
                    continue;
                }
                if is_throughput_metric(key) && delta.exceeds(threshold) {
                    // Throughput gates inverted: a drop is the regression.
                    if c < b {
                        comparison.regressions.push(delta.clone());
                    } else {
                        comparison.improvements.push(delta.clone());
                    }
                } else if is_cost_metric(key) && delta.exceeds(threshold) {
                    if c > b {
                        comparison.regressions.push(delta.clone());
                    } else {
                        comparison.improvements.push(delta.clone());
                    }
                }
                comparison.changed.push(delta);
            }
        }
    }
    for key in cur.keys() {
        if !base.contains_key(key) {
            comparison.added.push(key.clone());
        }
    }
    // Worst regressions first.
    comparison.regressions.sort_by(|a, b| {
        let ra = a.ratio().unwrap_or(f64::INFINITY);
        let rb = b.ratio().unwrap_or(f64::INFINITY);
        rb.partial_cmp(&ra).unwrap_or(std::cmp::Ordering::Equal)
    });
    comparison
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64, p95: u64, hypercalls: u64) -> Json {
        Json::parse(&format!(
            r#"{{"schema":1,"mode":"Hypernel","cycles":{cycles},
                 "counters":{{"hypercalls":{hypercalls},"tlb_misses":10}},
                 "telemetry":{{"latencies":[
                    {{"span":"syscall","track":"el1","count":9,"p95":{p95}}}]}}}}"#
        ))
        .expect("valid fixture")
    }

    #[test]
    fn flatten_produces_stable_dotted_keys() {
        let m = flatten_metrics(&report(1000, 40, 7));
        assert_eq!(m["cycles"], 1000.0);
        assert_eq!(m["counters.hypercalls"], 7.0);
        assert_eq!(m["telemetry.latencies.syscall@el1.p95"], 40.0);
        assert_eq!(m["telemetry.latencies.syscall@el1.count"], 9.0);
        // The mode string and the schema label are not metrics… schema is
        // numeric though, and harmless to carry.
        assert!(!m.contains_key("mode"));
    }

    #[test]
    fn self_compare_has_zero_regressions() {
        let r = report(1000, 40, 7);
        let c = compare_reports(&r, &r, 0.05);
        assert!(!c.has_regressions());
        assert!(c.changed.is_empty());
        assert!(c.compared > 0);
        assert!(c.render_text().contains("metric-identical"));
    }

    #[test]
    fn cost_regressions_gate_but_counter_shifts_do_not() {
        let base = report(1000, 40, 7);
        // +20 % cycles and +50 % p95: both cost metrics regress.
        let worse = report(1200, 60, 7);
        let c = compare_reports(&base, &worse, 0.05);
        assert!(c.has_regressions());
        let keys: Vec<&str> = c.regressions.iter().map(|d| d.key.as_str()).collect();
        assert!(keys.contains(&"cycles"));
        assert!(keys.contains(&"telemetry.latencies.syscall@el1.p95"));
        // Worst first: p95 +50 % outranks cycles +20 %.
        assert_eq!(c.regressions[0].key, "telemetry.latencies.syscall@el1.p95");

        // A pure behavior change (more hypercalls) is reported but not
        // gated.
        let shifted = report(1000, 40, 9);
        let c = compare_reports(&base, &shifted, 0.05);
        assert!(!c.has_regressions());
        assert_eq!(c.changed.len(), 1);
        assert!(c.render_text().contains("not gated"));
    }

    #[test]
    fn threshold_suppresses_small_drift() {
        let base = report(1000, 40, 7);
        let slightly = report(1030, 41, 7); // +3 %, +2.5 %
        let strict = compare_reports(&base, &slightly, 0.01);
        assert!(strict.has_regressions());
        let lax = compare_reports(&base, &slightly, 0.05);
        assert!(!lax.has_regressions());
        assert_eq!(lax.changed.len(), 2); // still visible as changes
    }

    #[test]
    fn improvements_and_zero_baselines_are_classified() {
        let base = report(1000, 40, 7);
        let better = report(800, 40, 7);
        let c = compare_reports(&base, &better, 0.05);
        assert!(!c.has_regressions());
        assert_eq!(c.improvements.len(), 1);

        // 0 -> nonzero on a cost metric is always a regression.
        let zero = Json::parse(r#"{"schema":1,"cycles":0}"#).unwrap();
        let nonzero = Json::parse(r#"{"schema":1,"cycles":5}"#).unwrap();
        let c = compare_reports(&zero, &nonzero, 0.5);
        assert!(c.has_regressions());
    }

    #[test]
    fn added_removed_and_schema_mismatch_are_surfaced() {
        let base = Json::parse(r#"{"schema":1,"cycles":10,"old":1}"#).unwrap();
        let cur = Json::parse(r#"{"schema":2,"cycles":10,"new":2}"#).unwrap();
        let c = compare_reports(&base, &cur, 0.05);
        assert_eq!(c.schema_mismatch, Some((1, 2)));
        assert_eq!(c.added, vec!["new".to_string()]);
        assert_eq!(c.removed, vec!["old".to_string()]);
        assert!(c.render_text().contains("schema mismatch"));
        // JSON rendering survives a round-trip.
        let doc = Json::parse(&c.to_json().to_string()).unwrap();
        assert_eq!(doc.get("compared").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn throughput_drop_gates_but_rise_is_an_improvement() {
        let base = Json::parse(
            r#"{"schema":1,"benches":{"throughput":{"metrics":{"untar_sim_mops":30.0}}}}"#,
        )
        .unwrap();
        let slower = Json::parse(
            r#"{"schema":1,"benches":{"throughput":{"metrics":{"untar_sim_mops":20.0}}}}"#,
        )
        .unwrap();
        let c = compare_reports(&base, &slower, 0.20);
        assert!(c.has_regressions(), "a -33% throughput drop must gate");
        assert_eq!(
            c.regressions[0].key,
            "benches.throughput.metrics.untar_sim_mops"
        );
        assert!(c.render_text().contains("REGRESSIONS"));

        let faster = Json::parse(
            r#"{"schema":1,"benches":{"throughput":{"metrics":{"untar_sim_mops":90.0}}}}"#,
        )
        .unwrap();
        let c = compare_reports(&base, &faster, 0.20);
        assert!(!c.has_regressions(), "faster is never a regression");
        assert_eq!(c.improvements.len(), 1);

        // Within the band: visible, not gated.
        let drift = Json::parse(
            r#"{"schema":1,"benches":{"throughput":{"metrics":{"untar_sim_mops":27.0}}}}"#,
        )
        .unwrap();
        let c = compare_reports(&base, &drift, 0.20);
        assert!(!c.has_regressions());
        assert_eq!(c.changed.len(), 1);
    }

    #[test]
    fn new_metrics_are_tolerated_not_gated() {
        // A baseline predating the throughput bench (or any new metric)
        // must not fail the gate just because keys were added.
        let base = Json::parse(r#"{"schema":1,"cycles":10}"#).unwrap();
        let cur = Json::parse(
            r#"{"schema":1,"cycles":10,
                 "benches":{"throughput":{"metrics":{"untar_sim_mops":30.0}}}}"#,
        )
        .unwrap();
        let c = compare_reports(&base, &cur, 0.05);
        assert!(!c.has_regressions());
        assert_eq!(
            c.added,
            vec!["benches.throughput.metrics.untar_sim_mops".to_string()]
        );
        assert!(c.render_text().contains("only in current"));
    }

    #[test]
    fn cost_metric_classification() {
        assert!(is_cost_metric("cycles"));
        assert!(is_cost_metric("telemetry.latencies.syscall@el1.p99"));
        assert!(is_cost_metric("counters.tlb_misses"));
        assert!(is_cost_metric("mbm.fifo_dropped"));
        // Bench trajectory conventions.
        assert!(is_cost_metric(
            "benches.smoke.metrics.fork_exit_hypernel_cycles"
        ));
        assert!(is_cost_metric(
            "benches.table1_lmbench.metrics.fork_exit_native_us"
        ));
        assert!(is_cost_metric(
            "benches.smoke.metrics.fork_exit_hyp_overhead_pct"
        ));
        assert!(!is_cost_metric("counters.hypercalls"));
        assert!(!is_cost_metric("telemetry.latencies.syscall@el1.count"));
        assert!(!is_cost_metric("mbm.events_matched"));
        assert!(!is_cost_metric("benches.smoke.metrics.untar_word_events"));
        // Throughput keys are gated by the inverted rule, not the cost one.
        assert!(is_throughput_metric(
            "benches.throughput.metrics.untar_sim_mops"
        ));
        assert!(is_throughput_metric(
            "benches.throughput.metrics.campaign_sweep_sim_mops"
        ));
        assert!(!is_throughput_metric("cycles"));
        assert!(!is_cost_metric("benches.throughput.metrics.untar_sim_mops"));
    }
}
