//! Windowed-metrics timelines: render and diff `metrics.jsonl` series.
//!
//! A campaign or simulator run samples its counters into fixed
//! 50k-cycle windows (`hypernel-telemetry`'s [`MetricsDoc`]); this
//! module turns those columns back into something a human reads:
//!
//! * [`ingest`] accepts either a raw `metrics.jsonl` document or a
//!   `blackbox.json` flight-recorder dump (which embeds its run's
//!   metrics), so a post-mortem renders with the same command as a
//!   healthy run;
//! * [`render_markdown`] / [`render_csv`] print the per-window table,
//!   with derived hit-rate columns (TLB, watch) computed at render time
//!   — the artifact itself stores only raw integers;
//! * [`diff`] compares two documents and gates on the two tail-risk
//!   series: FIFO high water and per-window detection-latency max.
//!   Everything else is reported as a note, not a failure.

use hypernel_telemetry::json::Json;
use hypernel_telemetry::series::{MetricsDoc, SeriesKind, METRICS_KIND};

/// Blackbox context carried alongside metrics ingested from a
/// `blackbox.json` dump.
#[derive(Debug, Clone)]
pub struct BlackboxInfo {
    /// Why the flight recorder dumped (the failure trigger).
    pub reason: String,
    /// Undeclared oracle violations in the dump.
    pub unexpected_violations: usize,
    /// Telemetry events the flight ring had to drop.
    pub events_dropped: u64,
}

/// An ingested timeline: the metrics document plus, when the source was
/// a flight-recorder dump, the failure context.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// The windowed series.
    pub doc: MetricsDoc,
    /// Present when the source was a `blackbox.json` dump.
    pub blackbox: Option<BlackboxInfo>,
}

/// Ingests a timeline source: a `metrics.jsonl` document, or a
/// `blackbox.json` dump whose embedded `metrics_jsonl` is extracted.
///
/// # Errors
///
/// A human-readable message when the text is neither a metrics document
/// nor a blackbox dump carrying one.
pub fn ingest(text: &str) -> Result<Timeline, String> {
    // A blackbox dump is one JSON object; a metrics document is JSONL
    // whose header carries `kind: "hypernel-metrics"`. Try the dump
    // shape first — its first line alone is not valid JSON, so the two
    // cannot be confused.
    if let Ok(doc) = Json::parse(text) {
        return match doc.get("kind").and_then(Json::as_str) {
            Some("hypernel-blackbox") => {
                let embedded = doc
                    .get("metrics_jsonl")
                    .and_then(Json::as_str)
                    .ok_or("blackbox dump carries no `metrics_jsonl`")?;
                let metrics = MetricsDoc::parse_jsonl(embedded)
                    .map_err(|e| format!("embedded metrics: {e}"))?;
                let unexpected = doc
                    .get("violations")
                    .and_then(Json::as_array)
                    .map(|vs| {
                        vs.iter()
                            .filter(|v| {
                                v.get("expected").map(|e| *e == Json::Bool(false)) == Some(true)
                            })
                            .count()
                    })
                    .unwrap_or(0);
                Ok(Timeline {
                    doc: metrics,
                    blackbox: Some(BlackboxInfo {
                        reason: doc
                            .get("reason")
                            .and_then(Json::as_str)
                            .unwrap_or("unknown")
                            .to_string(),
                        unexpected_violations: unexpected,
                        events_dropped: doc
                            .get("events_dropped")
                            .and_then(Json::as_u64)
                            .unwrap_or(0),
                    }),
                })
            }
            Some(METRICS_KIND) => {
                // A single-line metrics document (header only, zero
                // windows) parses as one JSON object too.
                MetricsDoc::parse_jsonl(text).map(|doc| Timeline {
                    doc,
                    blackbox: None,
                })
            }
            other => Err(format!(
                "unrecognized document kind `{}`",
                other.unwrap_or("<missing>")
            )),
        };
    }
    MetricsDoc::parse_jsonl(text).map(|doc| Timeline {
        doc,
        blackbox: None,
    })
}

/// A derived percentage column: `100 * hits / (hits + misses)`, or
/// `100 * num / den` when `den` already includes the numerator.
struct DerivedRate {
    header: &'static str,
    num: &'static str,
    den: &'static str,
    /// When true the denominator is `num + den` (hit/miss pairs).
    den_is_misses: bool,
}

const DERIVED: &[DerivedRate] = &[
    DerivedRate {
        header: "tlb-hit%",
        num: "tlb-hits",
        den: "tlb-misses",
        den_is_misses: true,
    },
    DerivedRate {
        header: "watch-hit%",
        num: "mbm-watch-hits",
        den: "mbm-bus-writes",
        den_is_misses: false,
    },
];

fn derived_cell(doc: &MetricsDoc, rate: &DerivedRate, window: usize) -> Option<String> {
    let num = doc.series(rate.num)?.values[window];
    let den_base = doc.series(rate.den)?.values[window];
    let den = if rate.den_is_misses {
        num + den_base
    } else {
        den_base
    };
    if den == 0 {
        return Some("-".to_string());
    }
    // One decimal place; integer arithmetic keeps this deterministic.
    let permille = num.saturating_mul(1000) / den;
    Some(format!("{}.{}", permille / 10, permille % 10))
}

fn header_lines(timeline: &Timeline) -> String {
    let doc = &timeline.doc;
    let mut out = String::new();
    let mut what = Vec::new();
    if let Some(scenario) = &doc.scenario {
        what.push(format!("scenario `{scenario}`"));
    }
    if let Some(seed) = doc.seed {
        what.push(format!("seed {seed}"));
    }
    if let Some(mode) = &doc.mode {
        what.push(format!("mode {mode}"));
    }
    what.push(format!(
        "{} window(s) x {} cycles",
        doc.windows(),
        doc.window_cycles
    ));
    out.push_str(&format!("timeline: {}\n", what.join(", ")));
    if let Some(bb) = &timeline.blackbox {
        out.push_str(&format!(
            "blackbox: {} ({} unexpected violation(s), {} event(s) dropped)\n",
            bb.reason, bb.unexpected_violations, bb.events_dropped
        ));
    }
    out
}

/// Renders the timeline as an aligned markdown table, one row per
/// window, with the derived hit-rate columns appended.
pub fn render_markdown(timeline: &Timeline) -> String {
    let doc = &timeline.doc;
    let derived: Vec<&DerivedRate> = DERIVED
        .iter()
        .filter(|r| doc.series(r.num).is_some() && doc.series(r.den).is_some())
        .collect();

    let mut headers: Vec<String> = vec!["window".into(), "start".into()];
    headers.extend(doc.series.iter().map(|s| s.name.clone()));
    headers.extend(derived.iter().map(|r| r.header.to_string()));

    let mut rows: Vec<Vec<String>> = Vec::with_capacity(doc.windows());
    for w in 0..doc.windows() {
        let mut row = vec![
            w.to_string(),
            (w as u64).saturating_mul(doc.window_cycles).to_string(),
        ];
        row.extend(doc.series.iter().map(|s| s.values[w].to_string()));
        row.extend(
            derived
                .iter()
                .map(|r| derived_cell(doc, r, w).unwrap_or_else(|| "-".to_string())),
        );
        rows.push(row);
    }

    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r[i].len())
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();

    let mut out = header_lines(timeline);
    out.push('\n');
    let fmt_row = |cells: &[String], widths: &[usize]| {
        let mut line = String::from("|");
        for (cell, width) in cells.iter().zip(widths) {
            line.push_str(&format!(" {cell:>width$} |"));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(&headers, &widths));
    let mut sep = String::from("|");
    for width in &widths {
        sep.push_str(&format!("{:->w$}:|", "", w = width + 1));
    }
    sep.push('\n');
    out.push_str(&sep);
    for row in &rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Renders the timeline as CSV: raw integer columns only (derived rates
/// are a presentation concern; recompute them from the columns).
pub fn render_csv(timeline: &Timeline) -> String {
    let doc = &timeline.doc;
    let mut out = String::from("window,start");
    for s in &doc.series {
        out.push(',');
        out.push_str(&s.name);
    }
    out.push('\n');
    for w in 0..doc.windows() {
        out.push_str(&format!(
            "{w},{}",
            (w as u64).saturating_mul(doc.window_cycles)
        ));
        for s in &doc.series {
            out.push_str(&format!(",{}", s.values[w]));
        }
        out.push('\n');
    }
    out
}

/// The two series whose growth fails the [`diff`] gate: FIFO high water
/// (queue pressure) and the per-window detection-latency max (tail
/// latency). Everything else only produces notes.
pub const GATED_SERIES: &[&str] = &["mbm-fifo-high-water", "detection-latency-max"];

/// Outcome of diffing two timelines.
#[derive(Debug, Clone, Default)]
pub struct TimelineDelta {
    /// Gated-series growth beyond the threshold — CI-failing.
    pub regressions: Vec<String>,
    /// Informational changes (totals moved, window counts differ, ...).
    pub notes: Vec<String>,
}

impl TimelineDelta {
    /// `true` when the regression gate should fail.
    pub fn has_regressions(&self) -> bool {
        !self.regressions.is_empty()
    }
}

fn exceeds(baseline: u64, current: u64, threshold: f64) -> bool {
    if current <= baseline {
        return false;
    }
    if baseline == 0 {
        return true;
    }
    (current as f64) > (baseline as f64) * (1.0 + threshold)
}

/// Diffs `current` against `baseline`. Gated series regress when their
/// overall max grows beyond `threshold` (relative, e.g. `0.10` = 10%);
/// the per-window comparison is reported alongside so the regression
/// names *where* in the run the tail grew. Other series produce notes
/// when their totals move beyond the threshold.
pub fn diff(baseline: &MetricsDoc, current: &MetricsDoc, threshold: f64) -> TimelineDelta {
    let mut delta = TimelineDelta::default();
    if baseline.windows() != current.windows() {
        delta.notes.push(format!(
            "window count changed: {} -> {}",
            baseline.windows(),
            current.windows()
        ));
    }
    if baseline.window_cycles != current.window_cycles {
        delta.notes.push(format!(
            "window size changed: {} -> {} cycles (per-window comparison skipped)",
            baseline.window_cycles, current.window_cycles
        ));
    }
    let comparable_windows = if baseline.window_cycles == current.window_cycles {
        baseline.windows().min(current.windows())
    } else {
        0
    };

    for series in &current.series {
        let Some(base) = baseline.series(&series.name) else {
            delta
                .notes
                .push(format!("series `{}` is new in current", series.name));
            continue;
        };
        if GATED_SERIES.contains(&series.name.as_str()) {
            if exceeds(base.max(), series.max(), threshold) {
                let worst = (0..comparable_windows)
                    .filter(|w| series.values[*w] > base.values[*w])
                    .max_by_key(|w| series.values[*w]);
                let at = worst
                    .map(|w| format!(" (worst growth at window {w})"))
                    .unwrap_or_default();
                delta.regressions.push(format!(
                    "`{}` max grew {} -> {}{at}",
                    series.name,
                    base.max(),
                    series.max()
                ));
            }
            continue;
        }
        let (a, b) = match series.kind {
            SeriesKind::Counter => (base.total(), series.total()),
            SeriesKind::Gauge => (base.max(), series.max()),
        };
        if exceeds(a, b, threshold) || exceeds(b, a, threshold) {
            delta.notes.push(format!(
                "`{}` {} changed {a} -> {b}",
                series.name,
                match series.kind {
                    SeriesKind::Counter => "total",
                    SeriesKind::Gauge => "max",
                }
            ));
        }
    }
    for series in &baseline.series {
        if current.series(&series.name).is_none() {
            delta
                .notes
                .push(format!("series `{}` disappeared", series.name));
        }
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypernel_telemetry::series::Series;

    fn doc(fifo_hw: &[u64], latency: &[u64]) -> MetricsDoc {
        MetricsDoc {
            window_cycles: 1000,
            scenario: Some("t".to_string()),
            seed: Some(0),
            mode: Some("hypernel".to_string()),
            series: vec![
                Series {
                    name: "tlb-hits".to_string(),
                    kind: SeriesKind::Counter,
                    values: vec![90; fifo_hw.len()],
                },
                Series {
                    name: "tlb-misses".to_string(),
                    kind: SeriesKind::Counter,
                    values: vec![10; fifo_hw.len()],
                },
                Series {
                    name: "mbm-fifo-high-water".to_string(),
                    kind: SeriesKind::Gauge,
                    values: fifo_hw.to_vec(),
                },
                Series {
                    name: "detection-latency-max".to_string(),
                    kind: SeriesKind::Gauge,
                    values: latency.to_vec(),
                },
            ],
        }
    }

    #[test]
    fn metrics_jsonl_round_trips_through_ingest() {
        let original = doc(&[2, 5], &[0, 300]);
        let timeline = ingest(&original.to_jsonl()).expect("ingests");
        assert!(timeline.blackbox.is_none());
        assert_eq!(timeline.doc, original);
    }

    #[test]
    fn markdown_has_aligned_rows_and_derived_rates() {
        let timeline = ingest(&doc(&[2, 5], &[0, 300]).to_jsonl()).expect("ingests");
        let table = render_markdown(&timeline);
        assert!(table.contains("tlb-hit%"), "{table}");
        assert!(
            table.contains("90.0"),
            "90/(90+10) renders as 90.0:\n{table}"
        );
        let rows: Vec<&str> = table.lines().filter(|l| l.starts_with('|')).collect();
        assert_eq!(rows.len(), 4, "header + separator + 2 windows");
        assert!(rows.iter().all(|r| r.len() == rows[0].len()), "aligned");
    }

    #[test]
    fn csv_is_raw_columns_only() {
        let timeline = ingest(&doc(&[2], &[7]).to_jsonl()).expect("ingests");
        let csv = render_csv(&timeline);
        assert_eq!(
            csv,
            "window,start,tlb-hits,tlb-misses,mbm-fifo-high-water,detection-latency-max\n\
             0,0,90,10,2,7\n"
        );
    }

    #[test]
    fn gate_fires_only_on_gated_series_growth() {
        let baseline = doc(&[2, 4], &[100, 200]);
        // FIFO high water grew 4 -> 9: regression. Latency unchanged.
        let grown = doc(&[2, 9], &[100, 200]);
        let delta = diff(&baseline, &grown, 0.10);
        assert!(delta.has_regressions());
        assert!(delta.regressions[0].contains("mbm-fifo-high-water"));
        assert!(delta.regressions[0].contains("window 1"));
        // Shrinking is never a regression.
        let shrunk = doc(&[1, 2], &[50, 80]);
        assert!(!diff(&baseline, &shrunk, 0.10).has_regressions());
        // A non-gated counter moving is a note, not a regression.
        let mut noisy = doc(&[2, 4], &[100, 200]);
        noisy.series[0].values = vec![500, 500];
        let delta = diff(&baseline, &noisy, 0.10);
        assert!(!delta.has_regressions());
        assert!(delta.notes.iter().any(|n| n.contains("tlb-hits")));
    }

    #[test]
    fn blackbox_dump_is_ingested_via_its_embedded_metrics() {
        let metrics = doc(&[3], &[42]);
        let dump = Json::obj(vec![
            ("schema", Json::UInt(1)),
            ("kind", Json::str("hypernel-blackbox")),
            ("reason", Json::str("unit trigger")),
            (
                "violations",
                Json::Array(vec![Json::obj(vec![
                    ("oracle", Json::str("detection")),
                    ("expected", Json::Bool(false)),
                ])]),
            ),
            ("events_dropped", Json::UInt(0)),
            ("metrics_jsonl", Json::str(&metrics.to_jsonl())),
        ]);
        let timeline = ingest(&dump.to_string()).expect("ingests dump");
        let bb = timeline
            .blackbox
            .as_ref()
            .expect("carries blackbox context");
        assert_eq!(bb.reason, "unit trigger");
        assert_eq!(bb.unexpected_violations, 1);
        assert_eq!(timeline.doc, metrics);
        assert!(render_markdown(&timeline).contains("unit trigger"));
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(ingest("not json at all").is_err());
        assert!(ingest("{\"kind\":\"something-else\"}").is_err());
    }
}
