//! Static-audit artifact analytics: ingest `hypernel-audit` report
//! JSON and render per-invariant breakdowns.
//!
//! Like [`crate::campaign`], this module parses generic JSON rather
//! than linking the audit crate: the analyzer must keep reading old
//! artifacts as the auditor evolves, and the reverse dependency would
//! be circular (`audit → core → analyze`).

use hypernel_telemetry::json::Json;

/// `kind` tag of a static-audit report artifact.
pub const AUDIT_REPORT_KIND: &str = "hypernel-audit-report";

/// One finding row of an ingested report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditFinding {
    /// Invariant name (`wx-mapping`, `rogue-root`, ...).
    pub check: String,
    /// Human-readable specifics.
    pub detail: String,
    /// Rendered descriptor chain, when the finding has one.
    pub chain: Option<String>,
}

/// An ingested `hypernel-audit` report.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditSummary {
    /// Translation roots walked.
    pub roots: u64,
    /// Distinct table pages visited.
    pub tables: u64,
    /// Leaves checked.
    pub leaves: u64,
    /// Monitored regions whose watch coverage was checked.
    pub regions: u64,
    /// Every finding, in report order.
    pub findings: Vec<AuditFinding>,
    /// Static-vs-incremental verdict (`None` when the differential did
    /// not run).
    pub differential_agrees: Option<bool>,
    /// `(checked, denied)` sanitizer counters, when enabled.
    pub sanitizer: Option<(u64, u64)>,
    /// The report's own overall verdict.
    pub clean: bool,
}

impl AuditSummary {
    /// Finding counts per invariant, in first-seen order.
    pub fn counts_by_check(&self) -> Vec<(String, u64)> {
        let mut rows: Vec<(String, u64)> = Vec::new();
        for finding in &self.findings {
            match rows.iter_mut().find(|(check, _)| *check == finding.check) {
                Some((_, n)) => *n += 1,
                None => rows.push((finding.check.clone(), 1)),
            }
        }
        rows
    }

    /// Renders the summary as the human-facing text block.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "roots {}  tables {}  leaves {}  regions {}\n",
            self.roots, self.tables, self.leaves, self.regions
        );
        match self.differential_agrees {
            Some(true) => out.push_str("differential: static and incremental agree\n"),
            Some(false) => out.push_str("differential: DISAGREEMENT (verifier bug)\n"),
            None => {}
        }
        if let Some((checked, denied)) = self.sanitizer {
            out.push_str(&format!(
                "sanitizer: {checked} writes checked, {denied} denied\n"
            ));
        }
        if self.findings.is_empty() {
            out.push_str("no findings\n");
        } else {
            for (check, n) in self.counts_by_check() {
                out.push_str(&format!("{check:<18} {n:>3}\n"));
            }
            for f in &self.findings {
                let chain = f
                    .chain
                    .as_deref()
                    .map(|c| format!(" (via {c})"))
                    .unwrap_or_default();
                out.push_str(&format!("  [{}] {}{chain}\n", f.check, f.detail));
            }
        }
        out.push_str(if self.clean {
            "verdict: clean\n"
        } else {
            "verdict: NOT CLEAN\n"
        });
        out
    }
}

/// Ingests one audit-report document.
///
/// # Errors
///
/// Returns a message when the document is not a static-audit report.
pub fn ingest_report(doc: &Json) -> Result<AuditSummary, String> {
    if doc.get("kind").and_then(Json::as_str) != Some(AUDIT_REPORT_KIND) {
        return Err(format!(
            "not a static-audit report (kind = {:?})",
            doc.get("kind").and_then(Json::as_str)
        ));
    }
    let count = |key: &str| doc.get(key).and_then(Json::as_u64).unwrap_or(0);
    let findings = doc
        .get("findings")
        .and_then(Json::as_array)
        .map(|items| {
            items
                .iter()
                .map(|f| AuditFinding {
                    check: f
                        .get("check")
                        .and_then(Json::as_str)
                        .unwrap_or("unknown")
                        .to_string(),
                    detail: f
                        .get("detail")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string(),
                    chain: f
                        .get("chain")
                        .and_then(Json::as_str)
                        .map(ToString::to_string),
                })
                .collect()
        })
        .unwrap_or_default();
    Ok(AuditSummary {
        roots: count("roots_walked"),
        tables: count("tables_walked"),
        leaves: count("leaves_checked"),
        regions: count("regions_checked"),
        findings,
        differential_agrees: doc
            .get("differential")
            .and_then(|d| d.get("agrees"))
            .and_then(Json::as_bool),
        sanitizer: doc.get("sanitizer").map(|s| {
            (
                s.get("checked").and_then(Json::as_u64).unwrap_or(0),
                s.get("denied").and_then(Json::as_u64).unwrap_or(0),
            )
        }),
        clean: doc.get("clean").and_then(Json::as_bool).unwrap_or(false),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const REPORT: &str = r#"{"schema":1,"kind":"hypernel-audit-report",
        "roots_walked":2,"tables_walked":971,"leaves_checked":491585,
        "regions_checked":43,
        "findings":[
            {"check":"wx-mapping","detail":"writable+executable leaf at va 0x817000","chain":"0x400000[0]"},
            {"check":"wx-mapping","detail":"writable+executable leaf at va 0x818000"},
            {"check":"rogue-root","detail":"active root 0x814000 is not trusted"}],
        "differential":{"static_findings":3,"incremental_violations":0,
                        "agrees":false,"disagreements":["static-only: x"]},
        "sanitizer":{"checked":100,"denied":2,"violations":[]},
        "clean":false}"#;

    #[test]
    fn ingests_and_aggregates_by_check() {
        let doc = Json::parse(REPORT).expect("valid");
        let summary = ingest_report(&doc).expect("ingests");
        assert_eq!(summary.roots, 2);
        assert_eq!(summary.tables, 971);
        assert_eq!(summary.findings.len(), 3);
        assert_eq!(summary.differential_agrees, Some(false));
        assert_eq!(summary.sanitizer, Some((100, 2)));
        assert!(!summary.clean);
        assert_eq!(
            summary.counts_by_check(),
            vec![("wx-mapping".to_string(), 2), ("rogue-root".to_string(), 1)]
        );
        let text = summary.render_text();
        assert!(text.contains("DISAGREEMENT"));
        assert!(text.contains("NOT CLEAN"));
        assert!(text
            .lines()
            .any(|l| l.starts_with("wx-mapping") && l.ends_with('2')));
    }

    #[test]
    fn clean_report_renders_clean() {
        let doc = Json::parse(
            r#"{"schema":1,"kind":"hypernel-audit-report","roots_walked":2,
                "tables_walked":9,"leaves_checked":10,"regions_checked":0,
                "findings":[],"clean":true}"#,
        )
        .expect("valid");
        let summary = ingest_report(&doc).expect("ingests");
        assert!(summary.clean);
        assert_eq!(summary.differential_agrees, None);
        assert!(summary.render_text().contains("verdict: clean"));
    }

    #[test]
    fn rejects_other_kinds() {
        let doc = Json::parse(r#"{"kind":"hypernel-run-report"}"#).expect("valid");
        assert!(ingest_report(&doc).is_err());
    }
}
