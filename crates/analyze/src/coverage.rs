//! Coverage-atlas analytics: ingest the `coverage.json` artifact a
//! campaign sweep emits, render per-crate/per-feature tables with the
//! uncovered remainder, and diff two atlases for the CI coverage gate.
//!
//! Like the campaign module, this parses generic JSON instead of
//! linking `hypernel-campaign` (the dependency would be circular) —
//! which is exactly why the atlas embeds its own feature `universe`:
//! everything needed to compute "what was never reached" travels in the
//! artifact.

use std::collections::BTreeSet;

use hypernel_telemetry::json::Json;

/// `kind` tag of a coverage atlas artifact.
pub const COVERAGE_ATLAS_KIND: &str = "hypernel-coverage-atlas";

/// A parsed coverage atlas: feature hit counts plus the feature
/// universe they are measured against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atlas {
    /// Runs merged into the atlas.
    pub runs: u64,
    /// `(feature, hits)` pairs, sorted by feature; hits are never 0
    /// (uncovered features are simply absent).
    pub features: Vec<(String, u64)>,
    /// Every feature the instrumentation can emit, sorted.
    pub universe: Vec<String>,
}

impl Atlas {
    /// Hit count of one feature (0 when uncovered).
    pub fn count(&self, key: &str) -> u64 {
        self.features
            .iter()
            .find(|(k, _)| k == key)
            .map_or(0, |(_, n)| *n)
    }

    /// Whether the feature was reached at least once.
    pub fn covers(&self, key: &str) -> bool {
        self.count(key) > 0
    }

    /// Universe features never reached, in universe order.
    pub fn uncovered(&self) -> Vec<&str> {
        let covered: BTreeSet<&str> = self.features.iter().map(|(k, _)| k.as_str()).collect();
        self.universe
            .iter()
            .map(String::as_str)
            .filter(|k| !covered.contains(k))
            .collect()
    }
}

/// Parses a coverage atlas document.
///
/// # Errors
///
/// Returns a message when the document is not a coverage atlas or the
/// `features`/`universe` sections have the wrong shape.
pub fn ingest_atlas(doc: &Json) -> Result<Atlas, String> {
    if doc.get("kind").and_then(Json::as_str) != Some(COVERAGE_ATLAS_KIND) {
        return Err(format!(
            "not a coverage atlas (kind = {:?})",
            doc.get("kind").and_then(Json::as_str)
        ));
    }
    let Some(Json::Object(fields)) = doc.get("features") else {
        return Err("atlas has no `features` object".to_string());
    };
    let mut features = Vec::with_capacity(fields.len());
    for (key, value) in fields {
        let n = value
            .as_u64()
            .ok_or_else(|| format!("feature `{key}` has a non-integer count"))?;
        features.push((key.clone(), n));
    }
    let universe = doc
        .get("universe")
        .and_then(Json::as_array)
        .ok_or("atlas has no `universe` array")?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| "universe entries must be strings".to_string())
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Atlas {
        runs: doc.get("runs").and_then(Json::as_u64).unwrap_or(0),
        features,
        universe,
    })
}

/// Coverage rollup for one key group (the first `/`-separated segment:
/// `machine`, `mbm`, `hypersec`, `kernel`, `oracle`, `tuple`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupCoverage {
    /// Group name.
    pub group: String,
    /// Distinct features reached.
    pub covered: usize,
    /// Features the universe defines for this group.
    pub universe: usize,
    /// Total hits across the group's features.
    pub hits: u64,
}

fn group_of(key: &str) -> &str {
    key.split('/').next().unwrap_or(key)
}

/// Rolls the atlas up per key group, in universe order. Features
/// outside the universe (newer emitter than universe snapshot) still
/// count toward their group's `covered` and `hits`.
pub fn per_group(atlas: &Atlas) -> Vec<GroupCoverage> {
    let mut groups: Vec<GroupCoverage> = Vec::new();
    let group_mut = |name: &str, groups: &mut Vec<GroupCoverage>| -> usize {
        if let Some(pos) = groups.iter().position(|g| g.group == name) {
            return pos;
        }
        groups.push(GroupCoverage {
            group: name.to_string(),
            covered: 0,
            universe: 0,
            hits: 0,
        });
        groups.len() - 1
    };
    for key in &atlas.universe {
        let pos = group_mut(group_of(key), &mut groups);
        groups[pos].universe += 1;
    }
    for (key, hits) in &atlas.features {
        let pos = group_mut(group_of(key), &mut groups);
        groups[pos].covered += 1;
        groups[pos].hits += hits;
    }
    groups
}

/// How many uncovered keys a rendered report lists per section before
/// summarizing the rest by count (never silently).
const UNCOVERED_LIST_CAP: usize = 40;

/// Renders the atlas as an aligned markdown report: the per-group
/// rollup table, then the uncovered tuple list and the uncovered
/// non-tuple features (each capped at [`UNCOVERED_LIST_CAP`] lines with
/// an explicit remainder count).
pub fn render_report(atlas: &Atlas) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let groups = per_group(atlas);
    let covered: usize = groups.iter().map(|g| g.covered).sum();
    let universe: usize = groups.iter().map(|g| g.universe).sum();
    let _ = writeln!(out, "coverage atlas: {} run(s) merged", atlas.runs);
    let _ = writeln!(out);
    let _ = writeln!(out, "| group    | covered | universe |  pct   | hits |");
    let _ = writeln!(out, "|----------|--------:|---------:|-------:|-----:|");
    for g in &groups {
        let _ = writeln!(
            out,
            "| {:<8} | {:>7} | {:>8} | {:>5.1}% | {:>4} |",
            g.group,
            g.covered,
            g.universe,
            percent(g.covered, g.universe),
            g.hits,
        );
    }
    let total_hits: u64 = groups.iter().map(|g| g.hits).sum();
    let _ = writeln!(
        out,
        "| total    | {:>7} | {:>8} | {:>5.1}% | {:>4} |",
        covered,
        universe,
        percent(covered, universe),
        total_hits,
    );
    let uncovered = atlas.uncovered();
    let (tuples, features): (Vec<&str>, Vec<&str>) =
        uncovered.iter().partition(|k| k.starts_with("tuple/"));
    let _ = writeln!(out);
    write_uncovered(&mut out, "uncovered tuples", &tuples);
    write_uncovered(&mut out, "uncovered features", &features);
    out
}

fn percent(covered: usize, universe: usize) -> f64 {
    if universe == 0 {
        100.0
    } else {
        covered as f64 * 100.0 / universe as f64
    }
}

fn write_uncovered(out: &mut String, what: &str, keys: &[&str]) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "{what}: {}", keys.len());
    for key in keys.iter().take(UNCOVERED_LIST_CAP) {
        let _ = writeln!(out, "  - {key}");
    }
    if keys.len() > UNCOVERED_LIST_CAP {
        let _ = writeln!(out, "  ... and {} more", keys.len() - UNCOVERED_LIST_CAP);
    }
}

/// Result of diffing a candidate atlas against a baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageDiff {
    /// Features covered in the baseline but not in the candidate —
    /// each one fails the gate.
    pub regressions: Vec<String>,
    /// Features the candidate covers that the baseline did not
    /// (informational).
    pub newly_covered: Vec<String>,
}

impl CoverageDiff {
    /// Whether the candidate lost coverage anywhere.
    pub fn has_regressions(&self) -> bool {
        !self.regressions.is_empty()
    }
}

/// Diffs `candidate` against `baseline`: every feature reached by the
/// baseline must still be reached by the candidate.
pub fn diff_atlases(baseline: &Atlas, candidate: &Atlas) -> CoverageDiff {
    let base: BTreeSet<&str> = baseline.features.iter().map(|(k, _)| k.as_str()).collect();
    let cand: BTreeSet<&str> = candidate.features.iter().map(|(k, _)| k.as_str()).collect();
    CoverageDiff {
        regressions: base.difference(&cand).map(|k| k.to_string()).collect(),
        newly_covered: cand.difference(&base).map(|k| k.to_string()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atlas(features: &[(&str, u64)], universe: &[&str]) -> Atlas {
        Atlas {
            runs: 8,
            features: features.iter().map(|(k, n)| (k.to_string(), *n)).collect(),
            universe: universe.iter().map(|k| k.to_string()).collect(),
        }
    }

    fn sample() -> Atlas {
        atlas(
            &[
                ("machine/tlb/hit", 100),
                ("mbm/stage/snooped", 40),
                ("tuple/detected/none/none/hypernel", 8),
            ],
            &[
                "machine/tlb/hit",
                "machine/tlb/miss",
                "mbm/stage/snooped",
                "tuple/detected/none/none/hypernel",
                "tuple/detected/none/none/kvm",
            ],
        )
    }

    #[test]
    fn ingest_round_trips_the_artifact_shape() {
        let doc = Json::obj(vec![
            ("schema", Json::UInt(1)),
            ("kind", Json::str(COVERAGE_ATLAS_KIND)),
            ("runs", Json::UInt(8)),
            (
                "features",
                Json::obj(vec![("machine/tlb/hit", Json::UInt(100))]),
            ),
            (
                "universe",
                Json::Array(vec![
                    Json::str("machine/tlb/hit"),
                    Json::str("machine/tlb/miss"),
                ]),
            ),
        ]);
        let parsed = ingest_atlas(&Json::parse(&doc.to_string()).expect("valid")).expect("atlas");
        assert_eq!(parsed.runs, 8);
        assert_eq!(parsed.count("machine/tlb/hit"), 100);
        assert!(!parsed.covers("machine/tlb/miss"));
        assert_eq!(parsed.uncovered(), vec!["machine/tlb/miss"]);
        assert!(ingest_atlas(&Json::obj(vec![("kind", Json::str("nope"))])).is_err());
    }

    #[test]
    fn groups_roll_up_covered_universe_and_hits() {
        let groups = per_group(&sample());
        let machine = groups.iter().find(|g| g.group == "machine").expect("m");
        assert_eq!(
            (machine.covered, machine.universe, machine.hits),
            (1, 2, 100)
        );
        let tuple = groups.iter().find(|g| g.group == "tuple").expect("t");
        assert_eq!((tuple.covered, tuple.universe), (1, 2));
        let report = render_report(&sample());
        assert!(report.contains("machine"), "{report}");
        assert!(report.contains("tuple/detected/none/none/kvm"), "{report}");
        assert!(report.contains("uncovered tuples: 1"), "{report}");
    }

    #[test]
    fn diff_flags_lost_coverage_only() {
        let base = sample();
        let mut candidate = sample();
        candidate.features.retain(|(k, _)| k != "mbm/stage/snooped");
        candidate.features.push(("machine/tlb/miss".to_string(), 3));
        let diff = diff_atlases(&base, &candidate);
        assert!(diff.has_regressions());
        assert_eq!(diff.regressions, vec!["mbm/stage/snooped".to_string()]);
        assert_eq!(diff.newly_covered, vec!["machine/tlb/miss".to_string()]);
        assert!(!diff_atlases(&base, &base).has_regressions());
    }
}
