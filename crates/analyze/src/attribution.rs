//! Cycle attribution: where did the run's cycles go?
//!
//! The span tree gives every span a total duration and a self duration
//! (total minus nested children). Aggregating self time by
//! `(track, span kind)` answers the cost-model question directly: of the
//! cycles a `fork` spends, how many are the EL2 hypercall checks
//! themselves versus the stage-2-equivalent leaf walks nested inside
//! them? The collapsed-stack export feeds the same data to standard
//! flamegraph tooling (`flamegraph.pl`, speedscope, inferno).

use hypernel_telemetry::{Event, SpanKind, SpanNode, SpanTree, Track};
use std::collections::BTreeMap;

/// Aggregated cycle accounting for one `(track, span kind)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttributionRow {
    /// Track the spans ran on.
    pub track: Track,
    /// Span kind.
    pub kind: SpanKind,
    /// Completed + open spans aggregated.
    pub count: u64,
    /// Sum of total durations (including nested children).
    pub total_cycles: u64,
    /// Sum of self durations (excluding nested children).
    pub self_cycles: u64,
    /// Largest single total duration.
    pub max_cycles: u64,
    /// Spans of this kind that never closed.
    pub open: u64,
}

/// The full attribution result.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Attribution {
    /// One row per `(track, span kind)` seen, sorted by self cycles,
    /// largest first.
    pub rows: Vec<AttributionRow>,
    /// Cycles covered by top-level spans (the "accounted" wall time).
    pub accounted_cycles: u64,
    /// Last cycle stamp in the trace.
    pub trace_end_cycles: u64,
    /// Tree-building diagnostics, forwarded for honest reporting.
    pub unmatched_ends: u64,
    /// Spans closed implicitly by an outer end.
    pub implicitly_closed: u64,
}

/// Builds the attribution from a raw event stream.
pub fn attribute(events: &[Event]) -> Attribution {
    let tree = SpanTree::build(events);
    attribute_tree(&tree)
}

/// Builds the attribution from an already-built span tree.
pub fn attribute_tree(tree: &SpanTree) -> Attribution {
    let close = tree.last_cycles;
    let mut map: BTreeMap<(Track, SpanKind), AttributionRow> = BTreeMap::new();
    tree.walk(|node, _| {
        let row = map
            .entry((node.track, node.kind))
            .or_insert(AttributionRow {
                track: node.track,
                kind: node.kind,
                count: 0,
                total_cycles: 0,
                self_cycles: 0,
                max_cycles: 0,
                open: 0,
            });
        let total = node.total_cycles(close);
        row.count += 1;
        row.total_cycles += total;
        row.self_cycles += node.self_cycles(close);
        row.max_cycles = row.max_cycles.max(total);
        if node.end.is_none() {
            row.open += 1;
        }
    });
    let mut rows: Vec<AttributionRow> = map.into_values().collect();
    rows.sort_by_key(|row| std::cmp::Reverse(row.self_cycles));
    Attribution {
        rows,
        accounted_cycles: tree.roots.iter().map(|r| r.total_cycles(close)).sum(),
        trace_end_cycles: close,
        unmatched_ends: tree.unmatched_ends,
        implicitly_closed: tree.implicitly_closed,
    }
}

impl Attribution {
    /// Renders the sorted attribution table.
    pub fn render_table(&self, top: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<18} {:<5} {:>8} {:>12} {:>12} {:>7} {:>10}\n",
            "span", "track", "count", "self cyc", "total cyc", "self%", "max cyc"
        ));
        let denom = self.accounted_cycles.max(1) as f64;
        for row in self.rows.iter().take(top.max(1)) {
            out.push_str(&format!(
                "{:<18} {:<5} {:>8} {:>12} {:>12} {:>6.1}% {:>10}{}\n",
                row.kind.name(),
                row.track.name(),
                row.count,
                row.self_cycles,
                row.total_cycles,
                row.self_cycles as f64 / denom * 100.0,
                row.max_cycles,
                if row.open > 0 {
                    format!("  ({} open)", row.open)
                } else {
                    String::new()
                },
            ));
        }
        let attributed: u64 = self.rows.iter().map(|r| r.self_cycles).sum();
        out.push_str(&format!(
            "accounted {} cycles in top-level spans ({} self-attributed); trace ends at cycle {}\n",
            self.accounted_cycles, attributed, self.trace_end_cycles
        ));
        if self.unmatched_ends > 0 || self.implicitly_closed > 0 {
            out.push_str(&format!(
                "warning: {} unmatched end(s), {} span(s) implicitly closed\n",
                self.unmatched_ends, self.implicitly_closed
            ));
        }
        out
    }
}

/// Renders the span tree as collapsed stacks: one line per unique root→
/// leaf path, `track:span;track:span… <self cycles>`, the input format
/// of `flamegraph.pl` and compatible viewers.
pub fn collapsed_stacks(events: &[Event]) -> String {
    let tree = SpanTree::build(events);
    let close = tree.last_cycles;
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    fn go(node: &SpanNode, prefix: &str, close: u64, stacks: &mut BTreeMap<String, u64>) {
        let frame = format!("{}:{}", node.track.name(), node.kind.name());
        let path = if prefix.is_empty() {
            frame
        } else {
            format!("{prefix};{frame}")
        };
        *stacks.entry(path.clone()).or_insert(0) += node.self_cycles(close);
        for child in &node.children {
            go(child, &path, close, stacks);
        }
    }
    for root in &tree.roots {
        go(root, "", close, &mut stacks);
    }
    let mut out = String::new();
    for (path, cycles) in stacks {
        out.push_str(&format!("{path} {cycles}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypernel_telemetry::{PointKind, Track};

    fn sample() -> Vec<Event> {
        vec![
            Event::begin(0, Track::El1, SpanKind::Syscall, 57),
            Event::mark(2, Track::El1, PointKind::Hypercall, 3, 0),
            Event::begin(10, Track::El2, SpanKind::HypercallVerify, 3),
            Event::begin(12, Track::El2, SpanKind::Stage2Check, 0),
            Event::end(20, Track::El2, SpanKind::Stage2Check, 0),
            Event::end(30, Track::El2, SpanKind::HypercallVerify, 0),
            Event::end(100, Track::El1, SpanKind::Syscall, 0),
            Event::begin(200, Track::El1, SpanKind::Syscall, 57),
            Event::end(260, Track::El1, SpanKind::Syscall, 0),
        ]
    }

    #[test]
    fn self_cycles_exclude_children() {
        let attr = attribute(&sample());
        let find = |kind: SpanKind| attr.rows.iter().find(|r| r.kind == kind).unwrap();
        let syscall = find(SpanKind::Syscall);
        assert_eq!(syscall.count, 2);
        assert_eq!(syscall.total_cycles, 100 + 60);
        // First syscall: 100 total − 20 nested verify = 80 self.
        assert_eq!(syscall.self_cycles, 80 + 60);
        let verify = find(SpanKind::HypercallVerify);
        assert_eq!(verify.total_cycles, 20);
        assert_eq!(verify.self_cycles, 12); // 20 − 8 nested check
        let check = find(SpanKind::Stage2Check);
        assert_eq!(check.self_cycles, 8);
        // Self times of all rows partition the accounted wall time.
        let self_sum: u64 = attr.rows.iter().map(|r| r.self_cycles).sum();
        assert_eq!(self_sum, attr.accounted_cycles);
        assert_eq!(attr.accounted_cycles, 160);
    }

    #[test]
    fn rows_sort_by_self_cycles_desc() {
        let attr = attribute(&sample());
        let selfs: Vec<u64> = attr.rows.iter().map(|r| r.self_cycles).collect();
        let mut sorted = selfs.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(selfs, sorted);
        assert_eq!(attr.rows[0].kind, SpanKind::Syscall);
    }

    #[test]
    fn collapsed_stacks_are_flamegraph_shaped() {
        let text = collapsed_stacks(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.contains(&"el1:syscall 140"));
        assert!(lines.contains(&"el1:syscall;el2:hypercall-verify 12"));
        assert!(lines.contains(&"el1:syscall;el2:hypercall-verify;el2:stage2-check 8"));
        // Every line is "path space number".
        for line in lines {
            let (path, n) = line.rsplit_once(' ').expect("space separator");
            assert!(!path.is_empty());
            n.parse::<u64>().expect("numeric self cycles");
        }
    }

    #[test]
    fn table_renders_percentages_and_warnings() {
        let mut events = sample();
        events.push(Event::end(300, Track::El2, SpanKind::MbmDrain, 0)); // unmatched
        let attr = attribute(&events);
        let table = attr.render_table(10);
        assert!(table.contains("syscall"));
        assert!(table.contains("unmatched end(s)"));
        assert!(table.contains('%'));
    }

    #[test]
    fn empty_trace_attributes_nothing() {
        let attr = attribute(&[]);
        assert!(attr.rows.is_empty());
        assert_eq!(attr.accounted_cycles, 0);
        assert_eq!(collapsed_stacks(&[]), "");
    }
}
