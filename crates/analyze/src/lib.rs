#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # hypernel-analyze
//!
//! Turns the telemetry artifacts the simulation emits — JSONL event
//! traces (`hypernel-sim --trace-out t.jsonl --trace-format jsonl`) and
//! machine-readable run reports (`--report-json r.json`) — into the
//! analyses the paper's evaluation is built on:
//!
//! * [`attribution`] — per-span self-vs-nested cycle accounting over the
//!   reconstructed span tree (a poor-man's profiler for the cost model),
//!   rendered as a sorted table and as collapsed stacks loadable by
//!   flamegraph tooling.
//! * [`forensics`] — causal reconstruction of every MBM incident:
//!   watched-word write → FIFO entry → drain → IRQ → kernel service →
//!   EL2 verdict, with end-to-end detection latency in cycles (the
//!   paper's Table 2 shape).
//! * [`compare`] — structural diff of two run reports with a
//!   configurable regression threshold over the cost-like metrics, the
//!   perf gate CI runs on every push.
//! * [`bench`] — aggregation of `crates/bench` machine-readable
//!   summaries into dated `BENCH_<date>.json` trajectory artifacts.
//! * [`audit`] — ingestion of `hypernel-audit` static-audit reports
//!   with per-invariant finding breakdowns.
//! * [`coverage`] — coverage-atlas rendering (per-group tables and
//!   uncovered-feature lists) and the baseline diff the CI coverage
//!   gate fails on.
//! * [`timeline`] — rendering and cross-run diffing of windowed
//!   `metrics.jsonl` time series, including the ones embedded in
//!   `blackbox.json` flight-recorder dumps.
//!
//! The `hypernel-analyze` binary fronts all of these; see its `--help`.

pub mod attribution;
pub mod audit;
pub mod bench;
pub mod campaign;
pub mod compare;
pub mod coverage;
pub mod forensics;
pub mod timeline;

pub use attribution::{attribute, Attribution, AttributionRow};
pub use audit::{ingest_report, AuditFinding, AuditSummary};
pub use bench::{read_summaries_dir, trajectory_json, BenchEntry};
pub use campaign::{diff_campaigns, ingest_records, CampaignFinding, CampaignRow};
pub use compare::{compare_reports, flatten_metrics, Comparison, MetricDelta};
pub use coverage::{
    diff_atlases, ingest_atlas, per_group, render_report, Atlas, CoverageDiff, GroupCoverage,
};
pub use forensics::{reconstruct_incidents, Incident, IncidentKind};
pub use timeline::{
    diff as diff_timelines, ingest as ingest_timeline, render_csv, render_markdown, Timeline,
    TimelineDelta,
};

/// Modeled core clock, cycles per microsecond (1.15 GHz) — mirrors the
/// simulator's cost model for human-readable latency rendering.
pub const CYCLES_PER_US: f64 = 1150.0;
