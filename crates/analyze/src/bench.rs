//! Aggregation of bench summaries into BENCH trajectory artifacts.
//!
//! Each bench target in `crates/bench` can emit a machine-readable
//! summary (`HYPERNEL_BENCH_DIR=… cargo bench`), one JSON file per
//! bench:
//!
//! ```json
//! {"schema":1,"kind":"hypernel-bench-summary","name":"table1_lmbench",
//!  "metrics":{"null_syscall_overhead_pct":4.0, …}}
//! ```
//!
//! [`read_summaries_dir`] collects a directory of those and
//! [`trajectory_json`] folds them into one dated `BENCH_<date>.json`
//! document whose flattened keys (`benches.<name>.<metric>`) feed the
//! [`crate::compare`] regression gate — because the simulation is
//! deterministic, a committed baseline trajectory is portable across
//! hosts.

use hypernel_telemetry::json::Json;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

/// Schema version of summary and trajectory documents.
pub const BENCH_SCHEMA: u64 = 1;
/// `kind` tag of a single-bench summary file.
pub const SUMMARY_KIND: &str = "hypernel-bench-summary";
/// `kind` tag of an aggregated trajectory artifact.
pub const TRAJECTORY_KIND: &str = "hypernel-bench-trajectory";

/// One bench target's summarized metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Bench target name (e.g. `table1_lmbench`).
    pub name: String,
    /// Metric name → value.
    pub metrics: BTreeMap<String, f64>,
}

/// Parses one summary document; `None` when it isn't a bench summary.
pub fn entry_from_json(doc: &Json) -> Option<BenchEntry> {
    if doc.get("kind").and_then(Json::as_str) != Some(SUMMARY_KIND) {
        return None;
    }
    let name = doc.get("name").and_then(Json::as_str)?.to_string();
    let mut metrics = BTreeMap::new();
    if let Some(Json::Object(fields)) = doc.get("metrics") {
        for (key, value) in fields {
            if let Some(v) = value.as_f64() {
                metrics.insert(key.clone(), v);
            }
        }
    }
    Some(BenchEntry { name, metrics })
}

/// Reads every `*.json` summary in `dir`. Returns the entries sorted by
/// name plus the file names that were present but not parseable
/// summaries (skipped, never fatal — mirroring the lossy trace reader).
pub fn read_summaries_dir(dir: &Path) -> io::Result<(Vec<BenchEntry>, Vec<String>)> {
    let mut entries = Vec::new();
    let mut skipped = Vec::new();
    let mut names: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    names.sort();
    for path in names {
        let display = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let parsed = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| Json::parse(&text).ok())
            .and_then(|doc| entry_from_json(&doc));
        match parsed {
            Some(entry) => entries.push(entry),
            None => skipped.push(display),
        }
    }
    entries.sort_by(|a, b| a.name.cmp(&b.name));
    Ok((entries, skipped))
}

/// Folds bench entries into one trajectory document.
pub fn trajectory_json(entries: &[BenchEntry], generated: &str) -> Json {
    Json::obj(vec![
        ("schema", Json::UInt(BENCH_SCHEMA)),
        ("kind", Json::str(TRAJECTORY_KIND)),
        ("generated", Json::str(generated)),
        (
            "benches",
            Json::Array(
                entries
                    .iter()
                    .map(|entry| {
                        Json::obj(vec![
                            ("name", Json::str(&entry.name)),
                            (
                                "metrics",
                                Json::Object(
                                    entry
                                        .metrics
                                        .iter()
                                        .map(|(k, v)| (k.clone(), Json::Float(*v)))
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Today's UTC date as `YYYY-MM-DD` (no external date crate: civil
/// date via Howard Hinnant's days-from-epoch algorithm).
pub fn today_utc() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Converts days since 1970-01-01 to a (year, month, day) civil date.
pub fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::{compare_reports, flatten_metrics};

    fn summary(name: &str, metric: &str, value: f64) -> String {
        format!(
            r#"{{"schema":1,"kind":"hypernel-bench-summary","name":"{name}",
                 "metrics":{{"{metric}":{value}}}}}"#
        )
    }

    #[test]
    fn entry_parses_and_rejects_foreign_documents() {
        let doc = Json::parse(&summary("smoke", "fork_cycles", 1234.0)).unwrap();
        let entry = entry_from_json(&doc).expect("valid summary");
        assert_eq!(entry.name, "smoke");
        assert_eq!(entry.metrics["fork_cycles"], 1234.0);
        // A run report is not a bench summary.
        let other = Json::parse(r#"{"schema":1,"kind":"hypernel-run-report"}"#).unwrap();
        assert!(entry_from_json(&other).is_none());
    }

    #[test]
    fn directory_scan_collects_and_skips() {
        let dir = std::env::temp_dir().join("hypernel-analyze-bench-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("b.json"), summary("beta", "m", 2.0)).unwrap();
        std::fs::write(dir.join("a.json"), summary("alpha", "m", 1.0)).unwrap();
        std::fs::write(dir.join("junk.json"), "{not json").unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored entirely").unwrap();
        let (entries, skipped) = read_summaries_dir(&dir).unwrap();
        assert_eq!(
            entries.iter().map(|e| e.name.as_str()).collect::<Vec<_>>(),
            ["alpha", "beta"]
        );
        assert_eq!(skipped, vec!["junk.json".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trajectory_flattens_into_comparable_keys() {
        let entries = vec![
            BenchEntry {
                name: "smoke".into(),
                metrics: [("fork_cycles".to_string(), 1200.0)].into(),
            },
            BenchEntry {
                name: "traps".into(),
                metrics: [("wp_traps".to_string(), 7.0)].into(),
            },
        ];
        let doc = trajectory_json(&entries, "2026-08-07");
        assert_eq!(
            doc.get("kind").and_then(Json::as_str),
            Some(TRAJECTORY_KIND)
        );
        let flat = flatten_metrics(&doc);
        assert_eq!(flat["benches.smoke.metrics.fork_cycles"], 1200.0);
        assert_eq!(flat["benches.traps.metrics.wp_traps"], 7.0);
        // Self-compare of a trajectory is regression-free.
        let c = compare_reports(&doc, &doc, 0.05);
        assert!(!c.has_regressions());
        // Round-trips through text.
        let reparsed = Json::parse(&doc.to_string()).unwrap();
        assert_eq!(flatten_metrics(&reparsed), flat);
    }

    #[test]
    fn civil_date_known_values() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1)); // 2024 leap year start
        assert_eq!(civil_from_days(19_723 + 31 + 29), (2024, 3, 1));
        assert_eq!(civil_from_days(20_672), (2026, 8, 7));
        let today = today_utc();
        assert_eq!(today.len(), 10);
        assert_eq!(&today[4..5], "-");
    }
}
