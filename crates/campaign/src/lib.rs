//! Adversarial campaign engine for the Hypernel reproduction.
//!
//! The rest of the workspace asks "does the pipeline work?"; this crate
//! asks "when does it stop working?". A **scenario** declares an
//! attacker program (composed from `hypernel-kernel`'s attack
//! primitives), background workload noise, the protection mode, MBM
//! pressure overrides, and a schedule of injected hardware faults. A
//! **campaign** sweeps scenarios across many seeds in parallel, and
//! **oracles** judge every run: W⊕X must hold, the secure region must
//! stay unmapped, every surviving watched-word write must be detected
//! within the latency bound.
//!
//! The moving parts:
//!
//! - [`scenario`] — the declarative model (Rust builder + TOML loader);
//! - [`engine`] — one deterministic `(scenario, seed)` run;
//! - [`oracle`] — the invariant checks and their expected-violation
//!   escape hatch for declared fault masks;
//! - [`sweep`] — the multi-seed thread-pool sweep with deterministic,
//!   scheduling-independent output;
//! - [`minimize`] — reduction of a failing run's fault schedule to a
//!   minimal repro;
//! - [`blackbox`] — the always-on flight recorder and the
//!   `blackbox.json` post-mortem dump a failing run leaves behind;
//! - [`record`] — `campaign.jsonl` records and summary artifacts that
//!   `hypernel-analyze campaign` consumes;
//! - [`coverage`] — structural coverage of a run (which model behaviors
//!   it exercised), merged across a sweep into the `coverage.json`
//!   atlas `hypernel-analyze coverage` renders and gates on;
//! - [`explore`] — the coverage-guided mutation loop: corpus mutants
//!   that reach new `(outcome, fault, oracle, mode)` tuples are emitted
//!   as ready-to-lint scenario TOMLs;
//! - [`lint`] — the corpus schema linter (flags keys the lenient
//!   loader would silently ignore, plus semantic smells);
//! - [`toml`] — the dependency-free parser for the scenario file
//!   subset (re-exported from `hypernel-compose`, which shares the
//!   same subset for system descriptions).
//!
//! Scenarios may also embed a `hypernel-compose` system description
//! (`[compose]` / `[[domain]]` / `[[channel]]` / `[[region]]`): the
//! engine lowers it right after boot, before any attack step runs, so
//! composed multi-domain systems flow through the same deterministic
//! `(scenario, seed)` pipeline.

#![forbid(unsafe_code)]

pub mod blackbox;
pub mod coverage;
pub mod engine;
pub mod explore;
pub mod lint;
pub mod minimize;
pub mod oracle;
pub mod record;
pub mod scenario;
pub mod sweep;

pub use hypernel_compose::toml;

pub use blackbox::{BLACKBOX_KIND, BLACKBOX_SCHEMA, FLIGHT_RING_CAPACITY};
pub use coverage::{
    atlas_json, coverage_of_run, known_features, mode_key, CoverageMap, COVERAGE_KIND,
    COVERAGE_SCHEMA,
};
pub use engine::{boot_system, run_one, run_one_full, run_one_logged, EngineError};
pub use explore::{explore, EmittedScenario, ExploreConfig, ExploreError, ExploreOutcome};
pub use lint::{lint_dir, lint_source, LintIssue};
pub use minimize::{minimize, MinimizeError, MinimizeOutcome};
pub use oracle::{evaluate, OracleInput};
pub use record::{
    summarize, summary_json, RunRecord, ScenarioSummary, StepRecord, Violation, CAMPAIGN_SCHEMA,
    RECORD_KIND, SUMMARY_KIND,
};
pub use scenario::{MetricsSpec, Scenario, ScenarioError, StepExpect, StepSpec};
pub use sweep::{
    run_sweep, run_sweep_with, SweepConfig, SweepFailure, SweepOutcome, SweepProgress,
};
