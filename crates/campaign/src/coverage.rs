//! Structural coverage: which model behaviors a run actually exercised.
//!
//! The oracles judge *correctness*; this module measures *reach*. Every
//! run derives a [`CoverageMap`] — feature-key → hit-count — from the
//! final simulated state: machine trap/TLB/IRQ activity and fault-site
//! hits, the MBM pipeline stages and overflow edges, which Hypersec
//! policy rules fired, kernel syscall families and attack outcomes,
//! which oracles spoke, and the run's `(outcome, fault, oracle, mode)`
//! tuples. Everything counted is **model-visible** — host fast-path
//! counters (L0 micro-TLB, MBM watch-page filter) never appear — so a
//! coverage map is a pure function of `(scenario, seed)` and the merged
//! `coverage.json` atlas is byte-identical at any `--jobs`, with fast
//! paths disabled, and across fork vs fresh boot
//! (`tests/coverage_determinism.rs`).
//!
//! Key namespaces (`<crate>/<facet>/<detail>`):
//!
//! - `machine/trap/*`, `machine/irq/delivered`, `machine/tlb/*`,
//!   `machine/fault-site/<kind>` — one hit per injected-fault firing;
//! - `mbm/stage/*` (snooped → captured → translated → matched →
//!   irq-raised), `mbm/capture/{matched,unmatched}`, `mbm/edge/*`
//!   (overflow/drop/alarm/divergence), `mbm/fifo-occupancy/<bucket>`;
//! - `hypersec/rule/<code-name>` — which policy denial fired —
//!   and `hypersec/verdict/*` — allowed/denied counts per boundary;
//! - `kernel/syscall/<family>`, `kernel/event/*`,
//!   `kernel/irq-service/*`, `kernel/attack/<step>/<outcome>`;
//! - `compose/*` — composed multi-domain systems: domains spawned by
//!   role, channel/region lowering, legitimate channel traffic, and
//!   the derived/merged/issued watch-set spans;
//! - `oracle/<name>/{expected,unexpected}` (or `oracle/none`);
//! - `tuple/<outcome>/<fault>/<oracle>/<mode>` — the cross product the
//!   `explore` loop hunts for. The fault dimension is the *declared*
//!   plan (the scenario shape); actual firings are under
//!   `machine/fault-site/*`.
//!
//! [`known_features`] enumerates the full universe so the analyzer can
//! list what was *never* reached; the universe is embedded in the atlas
//! artifact because `hypernel-analyze` deliberately does not link this
//! crate.

use std::collections::{BTreeMap, BTreeSet};

use hypernel::{Mode, System};
use hypernel_hypersec::codes;
use hypernel_machine::FaultHit;
use hypernel_mbm::Mbm;
use hypernel_telemetry::json::Json;

use crate::record::{StepRecord, Violation};
use crate::scenario::Scenario;

/// Schema version stamped into the coverage atlas artifact.
pub const COVERAGE_SCHEMA: u64 = 1;

/// `kind` tag of the coverage atlas artifact.
pub const COVERAGE_KIND: &str = "hypernel-coverage-atlas";

/// Every attack-step kind name, sorted (mirrors the scenario loader).
pub const STEP_KINDS: &[&str] = &[
    "atra-cred",
    "atra-dentry",
    "channel-spoof",
    "code-injection",
    "cred-escalation",
    "cross-domain-cred-theft",
    "dentry-hijack",
    "double-map-cred",
    "map-secure-region",
    "pt-direct-write",
    "shared-region-toctou",
    "text-patch",
    "ttbr-redirect",
];

/// Per-step outcome classes a run can land in.
pub const OUTCOMES: &[&str] = &["blocked", "detected", "undetected"];

/// Every fault kind name, sorted (mirrors [`hypernel_machine::FaultKind`]).
pub const FAULT_KINDS: &[&str] = &[
    "delay-irq",
    "desync-bitmap",
    "drop-irq",
    "flip-snoop-addr",
    "lose-hypercall",
    "stall-translator",
];

/// Every oracle name, sorted (mirrors `crate::oracle`).
pub const ORACLES: &[&str] = &["audit", "detection", "latency", "outcomes", "wx"];

/// Every mode key, sorted (the scenario-TOML `mode` values).
pub const MODES: &[&str] = &["hypernel", "kvm", "native"];

/// The lowercase scenario-TOML key for a mode (`Mode`'s `Display` is
/// the human form — `KVM-guest` — which makes poor feature keys).
pub fn mode_key(mode: Mode) -> &'static str {
    match mode {
        Mode::Native => "native",
        Mode::KvmGuest => "kvm",
        Mode::Hypernel => "hypernel",
    }
}

/// The outcome class of one executed step.
pub fn step_outcome(step: &StepRecord) -> &'static str {
    if step.blocked {
        "blocked"
    } else if step.detections > 0 {
        "detected"
    } else {
        "undetected"
    }
}

/// Feature-key → hit-count accumulator. Keys are sorted (BTreeMap), a
/// count is never zero (an absent key *is* "uncovered"), and merging is
/// commutative addition — so merged maps are independent of worker
/// scheduling and serialize canonically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageMap {
    counts: BTreeMap<String, u64>,
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one hit of `key`.
    pub fn record(&mut self, key: impl Into<String>) {
        self.record_n(key, 1);
    }

    /// Counts `n` hits of `key`; `n == 0` records nothing (zero counts
    /// are represented by absence).
    pub fn record_n(&mut self, key: impl Into<String>, n: u64) {
        if n > 0 {
            *self.counts.entry(key.into()).or_insert(0) += n;
        }
    }

    /// Adds every count from `other` into this map.
    pub fn merge(&mut self, other: &CoverageMap) {
        for (key, n) in &other.counts {
            self.record_n(key.clone(), *n);
        }
    }

    /// Whether `key` was hit at least once.
    pub fn covers(&self, key: &str) -> bool {
        self.counts.contains_key(key)
    }

    /// Hit count of `key` (0 when uncovered).
    pub fn count(&self, key: &str) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Number of distinct covered features.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether nothing was covered.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// `(key, count)` pairs in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counts.iter().map(|(k, n)| (k.as_str(), *n))
    }

    /// The covered `tuple/...` keys, sorted.
    pub fn tuples(&self) -> impl Iterator<Item = &str> + '_ {
        self.counts
            .keys()
            .filter(|k| k.starts_with("tuple/"))
            .map(String::as_str)
    }
}

/// The `tuple/<outcome>/<fault>/<oracle>/<mode>` keys one run covers:
/// the cross product of its observed step outcomes, its *declared*
/// fault kinds (or `none`), the oracles that spoke (or `none`), and the
/// scenario mode.
pub fn tuple_keys(
    scenario: &Scenario,
    steps: &[StepRecord],
    violations: &[Violation],
) -> Vec<String> {
    let outcomes: BTreeSet<&str> = steps.iter().map(step_outcome).collect();
    let mut faults: BTreeSet<&str> = scenario
        .faults
        .specs
        .iter()
        .map(|s| s.kind.name())
        .collect();
    if faults.is_empty() {
        faults.insert("none");
    }
    let mut oracles: BTreeSet<&str> = violations.iter().map(|v| v.oracle).collect();
    if oracles.is_empty() {
        oracles.insert("none");
    }
    let mode = mode_key(scenario.mode);
    let mut out = Vec::new();
    for outcome in &outcomes {
        for fault in &faults {
            for oracle in &oracles {
                out.push(format!("tuple/{outcome}/{fault}/{oracle}/{mode}"));
            }
        }
    }
    out
}

/// Derives the coverage map of one finished run from the final system
/// state and the run's own step/violation/fault-log records. Reads only
/// model-visible counters — never the host-only fast-path statistics —
/// so the result is identical with fast paths on or off.
pub fn coverage_of_run(
    sys: &System,
    scenario: &Scenario,
    steps: &[StepRecord],
    violations: &[Violation],
    fault_log: &[FaultHit],
) -> CoverageMap {
    let mut cov = CoverageMap::new();

    let machine = sys.machine().stats();
    cov.record_n("machine/trap/hypercall", machine.hypercalls);
    cov.record_n("machine/trap/sysreg", machine.sysreg_traps);
    cov.record_n("machine/trap/stage2-fault", machine.stage2_faults);
    cov.record_n("machine/trap/el1-abort", machine.el1_aborts);
    cov.record_n("machine/irq/delivered", machine.irqs_delivered);
    let tlb = sys.machine().tlb().stats();
    cov.record_n("machine/tlb/hit", tlb.hits);
    cov.record_n("machine/tlb/miss", tlb.misses);
    cov.record_n("machine/tlb/eviction", tlb.evictions);
    cov.record_n("machine/tlb/flush", tlb.flushes);
    for hit in fault_log {
        cov.record(format!("machine/fault-site/{}", hit.kind.name()));
    }

    if let Some(mbm) = sys.machine().bus().snooper::<Mbm>() {
        let s = mbm.stats();
        cov.record_n("mbm/stage/snooped", s.bus_writes_seen);
        cov.record_n("mbm/stage/captured", s.captured);
        cov.record_n("mbm/stage/translated", s.bitmap_lookups);
        cov.record_n("mbm/stage/matched", s.events_matched);
        cov.record_n("mbm/stage/irq-raised", s.irqs_raised);
        cov.record_n("mbm/capture/matched", s.events_matched);
        cov.record_n(
            "mbm/capture/unmatched",
            s.captured.saturating_sub(s.events_matched),
        );
        cov.record_n("mbm/edge/fifo-overflow", s.fifo_dropped);
        cov.record_n("mbm/edge/ring-overflow", s.ring_overflows);
        cov.record_n("mbm/edge/secure-alarm", s.secure_alarms);
        cov.record_n("mbm/edge/lookup-divergence", s.lookup_divergences);
        cov.record(format!(
            "mbm/fifo-occupancy/{}",
            mbm.fifo_occupancy_bucket()
        ));
    }

    if let Some(hypersec) = sys.hypersec() {
        let s = hypersec.stats();
        cov.record_n("hypersec/verdict/pt-write-allowed", s.pt_writes);
        cov.record_n("hypersec/verdict/pt-write-denied", s.pt_denials);
        cov.record_n("hypersec/verdict/table-registered", s.tables_registered);
        cov.record_n("hypersec/verdict/sysreg-allowed", s.sysreg_allowed);
        cov.record_n("hypersec/verdict/sysreg-denied", s.sysreg_denied);
        cov.record_n("hypersec/verdict/event-dispatched", s.events_dispatched);
        cov.record_n("hypersec/verdict/stray-event", s.stray_events);
        cov.record_n("hypersec/verdict/detection", s.detections);
        cov.record_n("hypersec/verdict/emulated-write", s.emulated_writes);
        for (code, n) in hypersec.rule_hits() {
            cov.record_n(format!("hypersec/rule/{}", codes::name(code)), n);
        }
    }

    let kernel = sys.kernel().stats();
    for (family, n) in kernel.syscall_families() {
        cov.record_n(format!("kernel/syscall/{family}"), n);
    }
    cov.record_n("kernel/event/context-switch", kernel.context_switches);
    cov.record_n("kernel/event/page-fault", kernel.page_faults);
    cov.record_n("kernel/event/file-create", kernel.files_created);
    cov.record_n("kernel/irq-service/forwarded", kernel.irqs_forwarded);
    cov.record_n("kernel/irq-service/emulated-write", kernel.emulated_writes);
    cov.record_n(
        "kernel/irq-service/monitor-registration",
        kernel.monitor_registrations,
    );

    let compose = sys.kernel().compose_stats();
    cov.record_n("compose/domain/server", compose.server_domains);
    cov.record_n("compose/domain/client", compose.client_domains);
    cov.record_n("compose/domain/task", compose.domain_tasks);
    cov.record_n("compose/channel/created", compose.channels_created);
    cov.record_n("compose/channel/message", compose.channel_messages);
    cov.record_n("compose/region/mapped", compose.regions_mapped);
    cov.record_n("compose/region/protected", compose.protected_regions);
    cov.record_n("compose/region/shared-mapping", compose.shared_mappings);
    cov.record_n("compose/watch/derived-span", compose.watch_spans_derived);
    cov.record_n("compose/watch/merged-span", compose.watch_spans_merged);
    cov.record_n("compose/watch/batched-call", compose.watch_calls_issued);

    for step in steps {
        cov.record(format!(
            "kernel/attack/{}/{}",
            step.name,
            step_outcome(step)
        ));
    }

    if violations.is_empty() {
        cov.record("oracle/none");
    }
    for v in violations {
        let verdict = if v.expected { "expected" } else { "unexpected" };
        cov.record(format!("oracle/{}/{verdict}", v.oracle));
    }

    for key in tuple_keys(scenario, steps, violations) {
        cov.record(key);
    }
    cov
}

/// The full feature universe: every key [`coverage_of_run`] can emit,
/// sorted. The atlas embeds this list so uncovered features can be
/// computed from the artifact alone.
pub fn known_features() -> Vec<String> {
    let mut out: BTreeSet<String> = BTreeSet::new();
    for k in ["hypercall", "sysreg", "stage2-fault", "el1-abort"] {
        out.insert(format!("machine/trap/{k}"));
    }
    out.insert("machine/irq/delivered".to_string());
    for k in ["hit", "miss", "eviction", "flush"] {
        out.insert(format!("machine/tlb/{k}"));
    }
    for k in FAULT_KINDS {
        out.insert(format!("machine/fault-site/{k}"));
    }
    for k in ["snooped", "captured", "translated", "matched", "irq-raised"] {
        out.insert(format!("mbm/stage/{k}"));
    }
    for k in ["matched", "unmatched"] {
        out.insert(format!("mbm/capture/{k}"));
    }
    for k in [
        "fifo-overflow",
        "ring-overflow",
        "secure-alarm",
        "lookup-divergence",
    ] {
        out.insert(format!("mbm/edge/{k}"));
    }
    for k in ["empty", "low", "high", "full"] {
        out.insert(format!("mbm/fifo-occupancy/{k}"));
    }
    for code in codes::ALL {
        out.insert(format!("hypersec/rule/{}", codes::name(*code)));
    }
    for k in [
        "pt-write-allowed",
        "pt-write-denied",
        "table-registered",
        "sysreg-allowed",
        "sysreg-denied",
        "event-dispatched",
        "stray-event",
        "detection",
        "emulated-write",
    ] {
        out.insert(format!("hypersec/verdict/{k}"));
    }
    for k in ["fork", "exec", "exit", "other"] {
        out.insert(format!("kernel/syscall/{k}"));
    }
    for k in ["context-switch", "page-fault", "file-create"] {
        out.insert(format!("kernel/event/{k}"));
    }
    for k in ["forwarded", "emulated-write", "monitor-registration"] {
        out.insert(format!("kernel/irq-service/{k}"));
    }
    for k in ["server", "client", "task"] {
        out.insert(format!("compose/domain/{k}"));
    }
    for k in ["created", "message"] {
        out.insert(format!("compose/channel/{k}"));
    }
    for k in ["mapped", "protected", "shared-mapping"] {
        out.insert(format!("compose/region/{k}"));
    }
    for k in ["derived-span", "merged-span", "batched-call"] {
        out.insert(format!("compose/watch/{k}"));
    }
    for step in STEP_KINDS {
        for outcome in OUTCOMES {
            out.insert(format!("kernel/attack/{step}/{outcome}"));
        }
    }
    out.insert("oracle/none".to_string());
    for oracle in ORACLES {
        for verdict in ["expected", "unexpected"] {
            out.insert(format!("oracle/{oracle}/{verdict}"));
        }
    }
    let fault_dim: Vec<&str> = FAULT_KINDS.iter().copied().chain(["none"]).collect();
    let oracle_dim: Vec<&str> = ORACLES.iter().copied().chain(["none"]).collect();
    for outcome in OUTCOMES {
        for fault in &fault_dim {
            for oracle in &oracle_dim {
                for mode in MODES {
                    out.insert(format!("tuple/{outcome}/{fault}/{oracle}/{mode}"));
                }
            }
        }
    }
    out.into_iter().collect()
}

/// Serializes a merged coverage map as the canonical atlas artifact:
/// sorted feature counts plus the embedded feature universe. Same map,
/// same bytes — the determinism gates diff this file directly.
pub fn atlas_json(map: &CoverageMap, runs: u64) -> Json {
    Json::obj(vec![
        ("schema", Json::UInt(COVERAGE_SCHEMA)),
        ("kind", Json::str(COVERAGE_KIND)),
        ("runs", Json::UInt(runs)),
        (
            "features",
            Json::Object(
                map.iter()
                    .map(|(k, n)| (k.to_string(), Json::UInt(n)))
                    .collect(),
            ),
        ),
        (
            "universe",
            Json::Array(known_features().iter().map(|k| Json::str(k)).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_one;
    use crate::scenario::StepExpect;
    use hypernel_kernel::AttackStep;
    use hypernel_machine::{FaultKind, FaultSpec};

    #[test]
    fn merge_is_commutative_and_additive() {
        let mut a = CoverageMap::new();
        a.record("x");
        a.record_n("y", 3);
        let mut b = CoverageMap::new();
        b.record_n("y", 2);
        b.record("z");
        b.record_n("never", 0);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count("y"), 5);
        assert!(!ab.covers("never"), "zero counts are not coverage");
        assert_eq!(ab.len(), 3);
    }

    #[test]
    fn constant_tables_mirror_the_model() {
        for kind in FAULT_KINDS {
            assert!(FaultKind::parse(kind).is_some(), "unknown fault `{kind}`");
        }
        assert_eq!(FAULT_KINDS.len(), 6);
        for step in STEP_KINDS {
            // The loader is the source of truth for step kinds.
            let toml = format!("name = \"t\"\n[[step]]\nkind = \"{step}\"");
            assert!(
                Scenario::from_toml(&toml).is_ok(),
                "unknown step kind `{step}`"
            );
        }
        let mut sorted = known_features();
        let len = sorted.len();
        sorted.dedup();
        assert_eq!(sorted.len(), len, "universe must be duplicate-free");
    }

    fn run(scenario: &Scenario, seed: u64) -> crate::record::RunRecord {
        run_one(scenario, seed).expect("runs")
    }

    #[test]
    fn a_real_run_covers_the_expected_features() {
        let s = Scenario::new("cov-cred", Mode::Hypernel)
            .background(2)
            .step(AttackStep::CredEscalation { pid: 1 }, StepExpect::Detected);
        let record = run(&s, 7);
        let cov = record.coverage.expect("campaign runs derive coverage");
        for key in [
            "machine/trap/hypercall",
            "machine/irq/delivered",
            "machine/tlb/hit",
            "mbm/stage/snooped",
            "mbm/stage/matched",
            "hypersec/verdict/detection",
            "kernel/syscall/fork",
            "kernel/attack/cred-escalation/detected",
            "tuple/detected/none/none/hypernel",
        ] {
            assert!(cov.covers(key), "missing `{key}`: {:?}", cov);
        }
        assert!(
            cov.iter().all(|(_, n)| n > 0),
            "no zero counts may be stored"
        );
    }

    #[test]
    fn every_emitted_feature_is_in_the_universe() {
        let universe: BTreeSet<String> = known_features().into_iter().collect();
        let scenarios = [
            Scenario::new("cov-hyp", Mode::Hypernel)
                .background(2)
                .step(AttackStep::CredEscalation { pid: 1 }, StepExpect::Detected)
                .step(AttackStep::TextPatch, StepExpect::Blocked),
            Scenario::new("cov-native", Mode::Native)
                .background(1)
                .step(
                    AttackStep::CredEscalation { pid: 1 },
                    StepExpect::Undetected,
                ),
            Scenario::new("cov-masked", Mode::Hypernel)
                .step(AttackStep::CredEscalation { pid: 1 }, StepExpect::Masked)
                .fault(FaultSpec::drop_irq(1, u64::MAX)),
        ];
        for s in scenarios {
            let record = run(&s, 3);
            let cov = record.coverage.expect("coverage");
            for (key, _) in cov.iter() {
                assert!(universe.contains(key), "`{key}` missing from universe");
            }
        }
    }

    #[test]
    fn atlas_artifact_is_deterministic_and_parses() {
        let s = Scenario::new("cov-atlas", Mode::Hypernel)
            .step(AttackStep::CredEscalation { pid: 1 }, StepExpect::Detected);
        let mut merged = CoverageMap::new();
        for seed in 0..2 {
            merged.merge(&run(&s, seed).coverage.expect("coverage"));
        }
        let a = atlas_json(&merged, 2).to_string();
        let b = atlas_json(&merged, 2).to_string();
        assert_eq!(a, b);
        let doc = Json::parse(&a).expect("valid JSON");
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some(COVERAGE_KIND));
        assert_eq!(doc.get("runs").and_then(Json::as_u64), Some(2));
        let universe = doc.get("universe").and_then(Json::as_array).expect("u");
        assert_eq!(universe.len(), known_features().len());
    }
}
