//! Fault-schedule minimization: reduce a failing `(scenario, seed)` to
//! the smallest fault schedule that still masks detection.
//!
//! A scenario may declare broad fault windows (`drop-irq` on *every*
//! IRQ raise). To understand a miss you want the opposite: the fewest
//! single-occurrence faults that still reproduce it. The minimizer
//!
//! 1. runs the scenario once and expands the injector's hit log into
//!    single-occurrence [`FaultSpec`]s (one per fault that actually
//!    fired, pinned to its observed site index);
//! 2. greedily removes one event at a time, re-running the scenario
//!    after each removal and keeping the removal only if the detection
//!    gap persists (1-minimal reduction);
//! 3. validates the final schedule with one more run.
//!
//! Every probe is a full deterministic run, so the result is exact,
//! not probabilistic.

use hypernel_machine::{FaultPlan, FaultSpec};

use crate::blackbox;
use crate::engine::{self, EngineError};
use crate::record::RunRecord;
use crate::scenario::Scenario;

/// The result of minimizing one `(scenario, seed)`.
#[derive(Debug, Clone)]
pub struct MinimizeOutcome {
    /// Fault events the original run actually injected.
    pub original_events: usize,
    /// The minimal schedule that still reproduces the detection gap.
    pub schedule: Vec<FaultSpec>,
    /// Runs executed while minimizing (probes + validation).
    pub probes: u64,
    /// Record of the validation run under the minimal schedule.
    pub record: RunRecord,
    /// Flight-recorder dump of the validation run (pre-serialized
    /// JSON): the minimal schedule reproduced the detection gap, so the
    /// run leaves the same self-contained post-mortem a failing
    /// campaign run would.
    pub blackbox: String,
}

/// Why minimization could not proceed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MinimizeError {
    /// The baseline run did not exhibit a detection gap — nothing to
    /// minimize.
    NoDetectionGap,
    /// A probe run failed outright.
    Engine(EngineError),
}

impl std::fmt::Display for MinimizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoDetectionGap => f.write_str("run has no detection gap; nothing to minimize"),
            Self::Engine(e) => write!(f, "probe run failed: {e}"),
        }
    }
}

impl std::error::Error for MinimizeError {}

impl From<EngineError> for MinimizeError {
    fn from(e: EngineError) -> Self {
        Self::Engine(e)
    }
}

/// The property being minimized against: some surviving watched-word
/// write went undetected.
fn has_detection_gap(record: &RunRecord) -> bool {
    record
        .steps
        .iter()
        .any(|s| !s.blocked && s.monitored.is_some() && s.detections == 0)
}

fn with_plan(scenario: &Scenario, specs: &[FaultSpec]) -> Scenario {
    let mut probe = scenario.clone();
    probe.faults = FaultPlan {
        specs: specs.to_vec(),
    };
    probe
}

/// Minimizes the fault schedule of `(scenario, seed)`.
///
/// # Errors
///
/// [`MinimizeError::NoDetectionGap`] when the baseline run detects
/// everything (the schedule isn't masking anything), or
/// [`MinimizeError::Engine`] if a probe run fails to execute.
pub fn minimize(scenario: &Scenario, seed: u64) -> Result<MinimizeOutcome, MinimizeError> {
    let (baseline, hits) = engine::run_one_logged(scenario, seed)?;
    let mut probes = 1u64;
    if !has_detection_gap(&baseline) {
        return Err(MinimizeError::NoDetectionGap);
    }

    // Expand the hit log into single-occurrence specs pinned to the
    // site indices that actually fired, inheriting each kind's param
    // from the first declaring spec.
    let param_of = |spec_kind| {
        scenario
            .faults
            .specs
            .iter()
            .find(|s| s.kind == spec_kind)
            .map_or(0, |s| s.param)
    };
    let mut schedule: Vec<FaultSpec> = hits
        .iter()
        .map(|hit| FaultSpec {
            kind: hit.kind,
            at: hit.site_index,
            count: 1,
            param: param_of(hit.kind),
        })
        .collect();
    let original_events = schedule.len();

    // Greedy 1-minimal reduction: keep dropping events whose removal
    // preserves the gap, restarting the scan after each success until a
    // full pass removes nothing.
    let mut changed = true;
    while changed {
        changed = false;
        let mut i = 0;
        while i < schedule.len() {
            let mut candidate = schedule.clone();
            candidate.remove(i);
            let probe = with_plan(scenario, &candidate);
            let record = engine::run_one(&probe, seed)?;
            probes += 1;
            if has_detection_gap(&record) {
                schedule = candidate;
                changed = true;
                // Same index now names the next event; don't advance.
            } else {
                i += 1;
            }
        }
    }

    // Validate: the reduced schedule must still reproduce the gap. The
    // validation run keeps its finished `System` so the repro leaves a
    // flight-recorder dump behind, like any other failing run.
    let final_scenario = with_plan(scenario, &schedule);
    let (record, fault_log, sys) =
        engine::run_one_full(engine::boot_system(&final_scenario)?, &final_scenario, seed)?;
    probes += 1;
    debug_assert!(has_detection_gap(&record), "1-minimal reduction regressed");
    let dump = blackbox::capture(
        &sys,
        &final_scenario,
        seed,
        "fault-schedule minimization reproduced the detection gap",
        &record.violations,
        &fault_log,
        record.metrics.as_ref(),
    )
    .to_string();
    Ok(MinimizeOutcome {
        original_events,
        schedule,
        probes,
        record,
        blackbox: dump,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::StepExpect;
    use hypernel::Mode;
    use hypernel_kernel::AttackStep;

    #[test]
    fn drop_irq_schedule_reduces_to_a_tiny_repro() {
        // Blanket drop of every IRQ raise. dentry-hijack writes one
        // watched word, so with no background noise only a couple of
        // raise attempts happen and the minimal mask needs at most those.
        let scenario = Scenario::new("min-drop", Mode::Hypernel)
            .step(
                AttackStep::DentryHijack {
                    path: "/bin/sh".to_string(),
                    rogue_inode: 0xBAD,
                },
                StepExpect::Masked,
            )
            .fault(FaultSpec::drop_irq(1, u64::MAX));
        let outcome = minimize(&scenario, 1).expect("minimizes");
        assert!(outcome.original_events >= 1);
        assert!(
            outcome.schedule.len() <= 3,
            "expected a <=3-event repro, got {:?}",
            outcome.schedule
        );
        assert!(outcome.schedule.len() <= outcome.original_events);
        assert!(has_detection_gap(&outcome.record));
        assert!(outcome.probes >= 2);
        let dump = hypernel_telemetry::json::Json::parse(&outcome.blackbox)
            .expect("validation run leaves a parseable blackbox");
        assert_eq!(
            dump.get("kind")
                .and_then(hypernel_telemetry::json::Json::as_str),
            Some(crate::blackbox::BLACKBOX_KIND)
        );
        assert!(
            dump.get("metrics_jsonl").is_some(),
            "dump embeds the run's windowed metrics"
        );
    }

    #[test]
    fn healthy_run_has_nothing_to_minimize() {
        let scenario = Scenario::new("min-clean", Mode::Hypernel)
            .step(AttackStep::CredEscalation { pid: 1 }, StepExpect::Detected);
        assert_eq!(
            minimize(&scenario, 1).unwrap_err(),
            MinimizeError::NoDetectionGap
        );
    }
}
