//! Coverage-guided scenario exploration: the loop the atlas exists for.
//!
//! `explore` sweeps the corpus to learn which
//! `tuple/<outcome>/<fault>/<oracle>/<mode>` coverage keys the existing
//! scenarios already reach, then derives deterministic mutants — mode
//! flips, adjacent step swaps, fault-kind substitutions and additions,
//! MBM pressure knobs — and keeps only mutants that (a) run clean on
//! every probe seed, (b) cover at least one tuple the corpus never
//! reached, and (c) serialize to a lint-clean TOML. Survivors come back
//! as ready-to-commit scenario sources (`hypernel-campaign explore`
//! writes them to `--out`).
//!
//! There is no randomness anywhere: mutants are generated in a fixed
//! order from a name-sorted corpus, so the same corpus always yields
//! the same discoveries.

use std::collections::BTreeSet;
use std::fmt;

use hypernel::Mode;
use hypernel_kernel::kernel::MonitorMode;
use hypernel_machine::{FaultKind, FaultSpec};

use crate::coverage::tuple_keys;
use crate::engine::run_one;
use crate::lint::lint_source;
use crate::record::RunRecord;
use crate::scenario::{Scenario, StepExpect};
use crate::sweep::{run_sweep, SweepConfig};

/// Knobs of one exploration pass.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Probe seeds per candidate (`0..seeds`); the baseline corpus
    /// sweep uses the same count.
    pub seeds: u64,
    /// Worker threads for the baseline sweep.
    pub jobs: usize,
    /// Stop after emitting this many novel scenarios.
    pub max_emit: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        Self {
            seeds: 2,
            jobs: 1,
            max_emit: 4,
        }
    }
}

/// One discovered scenario: a mutant that reached tuples the corpus
/// missed and lints clean.
#[derive(Debug, Clone)]
pub struct EmittedScenario {
    /// Mutant name (`<base>-x<id>` where `<id>` is a stable hash of
    /// the mutant's own TOML; also the suggested file stem). The id
    /// depends only on the mutant's content — never on its position in
    /// the mutation schedule — so re-running explore over a grown
    /// corpus renames nothing, and two distinct novel mutants of the
    /// same base scenario can never overwrite each other on disk.
    pub name: String,
    /// Ready-to-lint TOML source.
    pub toml: String,
    /// The tuple keys this mutant covers that the corpus did not.
    pub new_tuples: Vec<String>,
}

/// Result of an exploration pass.
#[derive(Debug, Clone, Default)]
pub struct ExploreOutcome {
    /// Distinct tuple keys the baseline corpus covers.
    pub baseline_tuples: usize,
    /// Mutants generated and probed.
    pub candidates_tried: usize,
    /// Novel scenarios, in discovery order.
    pub emitted: Vec<EmittedScenario>,
}

/// Exploration failed outright (empty corpus).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreError {
    /// Human-readable cause.
    pub message: String,
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ExploreError {}

/// Runs one exploration pass over `corpus`. Pure apart from CPU time:
/// writes nothing, returns the discoveries.
///
/// # Errors
///
/// Returns [`ExploreError`] when the corpus is empty — there is nothing
/// to mutate from.
pub fn explore(
    corpus: &[Scenario],
    config: &ExploreConfig,
) -> Result<ExploreOutcome, ExploreError> {
    if corpus.is_empty() {
        return Err(ExploreError {
            message: "explore needs a non-empty corpus to mutate from".to_string(),
        });
    }
    let mut bases: Vec<&Scenario> = corpus.iter().collect();
    bases.sort_by(|a, b| a.name.cmp(&b.name));

    // Baseline: which tuples does the corpus already reach?
    let baseline = run_sweep(
        corpus,
        SweepConfig {
            seeds: config.seeds,
            jobs: config.jobs,
        },
    );
    let mut covered: BTreeSet<String> = BTreeSet::new();
    for record in &baseline.records {
        if let Some(cov) = &record.coverage {
            covered.extend(cov.tuples().map(str::to_string));
        }
    }
    let mut outcome = ExploreOutcome {
        baseline_tuples: covered.len(),
        ..ExploreOutcome::default()
    };

    'search: for base in bases {
        for mutant in mutants_of(base) {
            if outcome.emitted.len() >= config.max_emit {
                break 'search;
            }
            let mutant = named(mutant, &base.name);
            outcome.candidates_tried += 1;
            let Some(new_tuples) = probe(&mutant, config.seeds, &covered) else {
                continue;
            };
            let toml = mutant.to_toml();
            if !lint_source(Some(&mutant.name), &toml).is_empty() {
                continue;
            }
            // Count everything the survivor reaches as covered so the
            // next mutant must be novel *beyond* it.
            covered.extend(all_tuples(&mutant, config.seeds));
            outcome.emitted.push(EmittedScenario {
                name: mutant.name.clone(),
                toml,
                new_tuples,
            });
        }
    }
    Ok(outcome)
}

/// Runs the candidate on every probe seed; returns the tuple keys it
/// covers beyond `covered`, or `None` if any run fails (engine error or
/// undeclared oracle violation) or nothing new is reached.
fn probe(candidate: &Scenario, seeds: u64, covered: &BTreeSet<String>) -> Option<Vec<String>> {
    let mut fresh: BTreeSet<String> = BTreeSet::new();
    for seed in 0..seeds {
        let record = run_one(candidate, seed).ok()?;
        if !record.passed {
            return None;
        }
        for key in record_tuples(&record, candidate) {
            if !covered.contains(&key) {
                fresh.insert(key);
            }
        }
    }
    if fresh.is_empty() {
        None
    } else {
        Some(fresh.into_iter().collect())
    }
}

/// Every tuple key the candidate reaches across the probe seeds
/// (runs it again; runs are deterministic so this matches `probe`).
fn all_tuples(candidate: &Scenario, seeds: u64) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for seed in 0..seeds {
        if let Ok(record) = run_one(candidate, seed) {
            out.extend(record_tuples(&record, candidate));
        }
    }
    out
}

fn record_tuples(record: &RunRecord, candidate: &Scenario) -> Vec<String> {
    match &record.coverage {
        Some(cov) => cov.tuples().map(str::to_string).collect(),
        // Coverage is always derived by the engine; recompute from the
        // record if a caller stripped it.
        None => tuple_keys(candidate, &record.steps, &record.violations),
    }
}

/// Names a mutant with a stable content-derived id: FNV-1a of the
/// mutant's serialized form (still carrying the base name, so equal
/// mutations of different bases differ). Schedule position never
/// enters the name — reordering or extending the mutation schedule
/// cannot rename an existing discovery or collide two of them.
fn named(mut mutant: Scenario, base: &str) -> Scenario {
    let id = crate::engine::fnv1a(&mutant.to_toml()) & 0xFFFF_FFFF;
    mutant.name = format!("{base}-x{id:08x}");
    mutant
}

/// The deterministic mutation schedule for one base scenario, in the
/// order they are probed: mode flips first (whole uncovered mode
/// columns), then step-order swaps, fault substitutions/additions, and
/// MBM pressure knobs.
fn mutants_of(base: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    for mode in [Mode::Hypernel, Mode::KvmGuest, Mode::Native] {
        if mode != base.mode {
            out.push(with_mode(base, mode));
        }
    }
    for i in 0..base.steps.len().saturating_sub(1) {
        let mut m = base.clone();
        m.steps.swap(i, i + 1);
        m.description = format!("explore: swap steps {} and {} of {}", i, i + 1, base.name);
        out.push(m);
    }
    let kinds = [
        FaultKind::DropIrq,
        FaultKind::DelayIrq,
        FaultKind::StallTranslator,
        FaultKind::FlipSnoopAddr,
        FaultKind::LoseHypercall,
        FaultKind::DesyncBitmap,
    ];
    if base.faults.specs.is_empty() {
        for kind in kinds {
            let mut m = base.clone();
            m.faults = m.faults.with(fault_with_kind(kind, 1, u64::MAX));
            m.description = format!("explore: {} under a persistent {}", base.name, kind.name());
            out.push(m);
        }
    } else {
        for (i, spec) in base.faults.specs.iter().enumerate() {
            for kind in kinds {
                if kind == spec.kind {
                    continue;
                }
                let mut m = base.clone();
                m.faults.specs[i] = fault_with_kind(kind, spec.at, spec.count);
                m.description =
                    format!("explore: {} with fault {} as {}", base.name, i, kind.name());
                out.push(m);
            }
        }
    }
    if base.mode == Mode::Hypernel {
        let mut fifo = base.clone();
        fifo.fifo_capacity = Some(4);
        fifo.description = format!("explore: {} under FIFO pressure", base.name);
        out.push(fifo);
        let mut drain = base.clone();
        drain.drain_budget = Some(1);
        drain.description = format!("explore: {} under drain pressure", base.name);
        out.push(drain);
    }
    out
}

/// A fault spec of `kind` at the given schedule, with the kind's
/// default parameter (mirrors the TOML loader's defaults).
fn fault_with_kind(kind: FaultKind, at: u64, count: u64) -> FaultSpec {
    let param = match kind {
        FaultKind::DelayIrq => 1,
        FaultKind::FlipSnoopAddr => 12,
        FaultKind::LoseHypercall => u64::MAX,
        _ => 0,
    };
    FaultSpec {
        kind,
        at,
        count,
        param,
    }
}

/// Re-targets a scenario at another mode, rewriting everything that is
/// mode-specific: baseline modes lose the hypernel-only knobs and any
/// detection expectations; a hypernel re-target drops expectations to
/// `any` (exploration will observe what actually happens).
fn with_mode(base: &Scenario, mode: Mode) -> Scenario {
    let mut m = base.clone();
    m.mode = mode;
    let mode_name = match mode {
        Mode::Native => "native",
        Mode::KvmGuest => "kvm",
        Mode::Hypernel => "hypernel",
    };
    m.description = format!("explore: {} under {}", base.name, mode_name);
    if mode == Mode::Hypernel {
        for step in &mut m.steps {
            step.expect = StepExpect::Any;
        }
    } else {
        m.monitor = MonitorMode::SensitiveFields;
        m.latency_bound = None;
        m.fifo_capacity = None;
        m.drain_budget = None;
        for step in &mut m.steps {
            step.expect = match step.expect {
                StepExpect::Detected | StepExpect::Masked => StepExpect::Undetected,
                StepExpect::Blocked => StepExpect::Any,
                other => other,
            };
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypernel_kernel::AttackStep;

    fn tiny_corpus() -> Vec<Scenario> {
        vec![
            Scenario::new("probe-hypernel", Mode::Hypernel)
                .describe("detected escalation")
                .background(2)
                .step(AttackStep::CredEscalation { pid: 1 }, StepExpect::Detected),
            Scenario::new("probe-drop", Mode::Hypernel)
                .describe("masked escalation under drop-irq")
                .step(AttackStep::CredEscalation { pid: 1 }, StepExpect::Masked)
                .fault(FaultSpec::drop_irq(1, u64::MAX)),
        ]
    }

    #[test]
    fn explore_discovers_lint_clean_novel_scenarios() {
        let corpus = tiny_corpus();
        let outcome = explore(&corpus, &ExploreConfig::default()).expect("explores");
        assert!(outcome.baseline_tuples > 0);
        assert!(
            !outcome.emitted.is_empty(),
            "tried {} candidates, none novel",
            outcome.candidates_tried
        );
        for e in &outcome.emitted {
            assert!(
                lint_source(Some(&e.name), &e.toml).is_empty(),
                "{} must lint clean",
                e.name
            );
            assert!(!e.new_tuples.is_empty());
            let parsed = Scenario::from_toml(&e.toml).expect("emitted TOML parses");
            assert_eq!(parsed.name, e.name);
        }
    }

    #[test]
    fn explore_is_deterministic() {
        let corpus = tiny_corpus();
        let config = ExploreConfig {
            max_emit: 2,
            ..ExploreConfig::default()
        };
        let a = explore(&corpus, &config).expect("explores");
        let b = explore(&corpus, &config).expect("explores");
        let names =
            |o: &ExploreOutcome| o.emitted.iter().map(|e| e.name.clone()).collect::<Vec<_>>();
        assert_eq!(names(&a), names(&b));
        assert_eq!(a.candidates_tried, b.candidates_tried);
        for (x, y) in a.emitted.iter().zip(b.emitted.iter()) {
            assert_eq!(x.toml, y.toml);
            assert_eq!(x.new_tuples, y.new_tuples);
        }
    }

    #[test]
    fn explore_rejects_an_empty_corpus() {
        assert!(explore(&[], &ExploreConfig::default()).is_err());
    }

    #[test]
    fn mutant_names_are_stable_content_hashes() {
        let base = tiny_corpus().remove(1);
        let mutants = mutants_of(&base);
        assert!(mutants.len() > 2);
        let name_of = |m: &Scenario| named(m.clone(), &base.name).name;
        let names: Vec<String> = mutants.iter().map(name_of).collect();
        let unique: BTreeSet<&String> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "no two mutants share a name");
        // Position independence: the id survives schedule reordering,
        // so growing the mutation schedule can never rename or clobber
        // an earlier discovery.
        let mut reversed: Vec<String> = mutants.iter().rev().map(name_of).collect();
        reversed.reverse();
        assert_eq!(reversed, names);
        for name in &names {
            let suffix = name.rsplit("-x").next().expect("suffix");
            assert_eq!(suffix.len(), 8, "`{name}` must end in an 8-hex-digit id");
            assert!(suffix.chars().all(|c| c.is_ascii_hexdigit()));
        }
    }
}
